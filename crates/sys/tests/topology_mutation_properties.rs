//! Property tests of the topology fault domain: under arbitrary chains of
//! `without_device` + `without_link` + `with_degraded_link`, the island
//! decomposition stays canonical (a sorted partition with ascending
//! leaders), each mutation only ever *refines* the islands it started
//! from (degrades never change them), every real change mints a fresh
//! fingerprint so stale cached plans can never be rebound, and replaying
//! the same chain reproduces the same fingerprints and islands bit for
//! bit.

use neon_sys::{Backend, DeviceId, LinkModel, Topology};
use proptest::prelude::*;

/// One link- or device-level fault applied to the current backend. The
/// raw indices are reduced modulo the *current* device count at apply
/// time, so a chain stays meaningful as `Drop` shrinks the system.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Sever the peer wire between two devices (`without_link`).
    Sever(usize, usize),
    /// Degrade the peer wire's bandwidth by a factor in (0, 1)
    /// (`with_degraded_link`).
    Degrade(usize, usize, f64),
    /// Evict a device outright (`without_device`).
    Drop(usize),
}

fn base_backend(idx: usize) -> Backend {
    match idx {
        0 => Backend::dgx_a100(2),
        1 => Backend::dgx_a100(4),
        2 => Backend::dgx_a100(8),
        3 => Backend::gv100_pcie(4),
        4 => Backend::dgx_islands(&[2, 2]),
        _ => Backend::dgx_islands(&[4, 2]),
    }
}

/// Apply one mutation, returning the degraded backend plus whether the
/// topology fingerprint *must* change (severing an already-PCIe wire is
/// the one legitimate no-op). `None` means the mutation is inapplicable
/// in the current state (self-link, or dropping below two devices) and
/// the chain skips it.
fn apply(b: &Backend, m: Mutation) -> Option<(Backend, bool)> {
    let n = b.num_devices();
    match m {
        Mutation::Sever(a, c) => {
            let (a, c) = (DeviceId(a % n), DeviceId(c % n));
            if a == c {
                return None;
            }
            let already_pcie = *b.topology().link(a, c) == LinkModel::pcie3();
            Some((b.without_link(a, c).unwrap(), !already_pcie))
        }
        Mutation::Degrade(a, c, f) => {
            let (a, c) = (DeviceId(a % n), DeviceId(c % n));
            if a == c {
                return None;
            }
            // factor < 1 strictly shrinks the bandwidth, so the
            // fingerprint must always move.
            Some((b.with_degraded_link(a, c, f).unwrap(), true))
        }
        Mutation::Drop(d) => {
            if n <= 2 {
                return None;
            }
            Some((b.without_device(DeviceId(d % n)).unwrap(), true))
        }
    }
}

/// Islands must always be a canonical partition: non-empty, members
/// sorted ascending, islands ordered by leader, every device in exactly
/// one island.
fn assert_islands_canonical(topo: &Topology) {
    let islands = topo.islands();
    let mut seen = vec![false; topo.num_devices()];
    let mut last_leader: Option<usize> = None;
    for isl in &islands {
        assert!(!isl.is_empty(), "empty island");
        for w in isl.windows(2) {
            assert!(w[0].0 < w[1].0, "island members not sorted: {isl:?}");
        }
        if let Some(l) = last_leader {
            assert!(isl[0].0 > l, "islands not ordered by leader");
        }
        last_leader = Some(isl[0].0);
        for d in isl {
            assert!(!seen[d.0], "device {d:?} in two islands");
            seen[d.0] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "device missing from all islands");
}

/// Every new island must sit inside exactly one old island (`old_of`
/// maps a new-numbering device to its pre-mutation island id): losing a
/// wire or a device can split an island, never merge two.
fn assert_refines(new_islands: &[Vec<DeviceId>], old_of: &[usize]) {
    for isl in new_islands {
        let owner = old_of[isl[0].0];
        for d in isl {
            assert_eq!(
                old_of[d.0], owner,
                "island {isl:?} spans two pre-mutation islands"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary fault chains keep `islands()` canonical, only refine the
    /// decomposition, mint a fresh fingerprint on every real change, and
    /// replay deterministically.
    #[test]
    fn mutation_chains_refine_islands_and_mint_fresh_fingerprints(
        base in 0usize..6,
        chain in prop::collection::vec(
            prop_oneof![
                (any::<usize>(), any::<usize>())
                    .prop_map(|(a, c)| Mutation::Sever(a, c)),
                (any::<usize>(), any::<usize>(), 1u32..=15)
                    .prop_map(|(a, c, f)| Mutation::Degrade(a, c, 0.2 + f as f64 / 20.0)),
                any::<usize>().prop_map(Mutation::Drop),
            ],
            1..8,
        ),
    ) {
        let mut b = base_backend(base);
        assert_islands_canonical(b.topology());
        let mut applied = Vec::new();
        for m in chain {
            let n = b.num_devices();
            let old_islands = b.topology().islands();
            let old_topo_fp = b.topology().fingerprint();
            let old_fp = b.fingerprint();
            let Some((next, must_change)) = apply(&b, m) else { continue };
            applied.push(m);
            assert_islands_canonical(next.topology());

            // Old-island ownership in the *new* numbering (identity for
            // link mutations; devices past the dropped one shift down).
            let old_of: Vec<usize> = {
                let dead = match m {
                    Mutation::Drop(d) => Some(d % n),
                    _ => None,
                };
                let mut of = vec![usize::MAX; n];
                for (i, isl) in old_islands.iter().enumerate() {
                    for d in isl {
                        of[d.0] = i;
                    }
                }
                (0..n)
                    .filter(|&i| Some(i) != dead)
                    .map(|i| of[i])
                    .collect()
            };
            let new_islands = next.topology().islands();
            assert_refines(&new_islands, &old_of);
            if let Mutation::Degrade(..) = m {
                // A degrade keeps the link class, so islands are frozen.
                prop_assert_eq!(&new_islands, &old_islands);
            }

            if must_change {
                prop_assert_ne!(next.topology().fingerprint(), old_topo_fp);
                prop_assert_ne!(next.fingerprint(), old_fp);
            } else {
                // Severing an already-PCIe wire changes nothing, so the
                // fingerprint must not churn (plan caches stay warm).
                prop_assert_eq!(next.topology().fingerprint(), old_topo_fp);
                prop_assert_eq!(next.fingerprint(), old_fp);
            }
            b = next;
        }

        // Replaying the surviving chain from scratch lands on the exact
        // same backend: fingerprints and islands are pure functions of
        // the fault history.
        let mut replay = base_backend(base);
        for &m in &applied {
            replay = apply(&replay, m).expect("replay accepts the same chain").0;
        }
        prop_assert_eq!(replay.fingerprint(), b.fingerprint());
        prop_assert_eq!(replay.topology().fingerprint(), b.topology().fingerprint());
        prop_assert_eq!(replay.topology().islands(), b.topology().islands());
    }
}
