//! Sanity constraints on the performance model: the simulated hardware
//! must respect the orderings real hardware would (faster parts are
//! faster, overlap never slows things down, costs are additive), so that
//! every conclusion the benchmarks draw rests on a sane substrate.

use neon_sys::{
    Backend, DeviceId, DeviceModel, LinkModel, QueueSim, SimTime, SpanKind, StreamId, Topology,
};

#[test]
fn a100_beats_gv100_on_every_axis_that_matters() {
    let a = DeviceModel::a100_40gb();
    let g = DeviceModel::gv100();
    for bytes in [1u64 << 10, 1 << 20, 1 << 30] {
        assert!(a.kernel_time(bytes, 0, 1.0) < g.kernel_time(bytes, 0, 1.0));
    }
    for flops in [1u64 << 20, 1 << 30] {
        assert!(a.kernel_time(0, flops, 1.0) <= g.kernel_time(0, flops, 1.0));
    }
    assert!(a.mem_capacity_bytes > g.mem_capacity_bytes);
}

#[test]
fn kernel_time_is_monotone_in_work() {
    let d = DeviceModel::a100_40gb();
    let mut last = SimTime::ZERO;
    for i in 0..20 {
        let t = d.kernel_time(i * 1_000_000, i * 500_000, 1.0);
        assert!(t.as_us() >= last.as_us());
        last = t;
    }
}

#[test]
fn roofline_ridge_point() {
    // Below the ridge (bytes-heavy) the kernel is memory bound; above it
    // compute bound. The crossover must sit at bandwidth/flops ratio.
    let d = DeviceModel::a100_40gb();
    let bytes = 1u64 << 30;
    // Arithmetic intensity at the ridge: peak_flops / bandwidth.
    let ridge = d.peak_gflop_s / d.mem_bandwidth_gb_s; // flops per byte
    let low = (bytes as f64 * ridge * 0.5) as u64;
    let high = (bytes as f64 * ridge * 2.0) as u64;
    let t_mem = d.kernel_time(bytes, low, 1.0);
    let t_cmp = d.kernel_time(bytes, high, 1.0);
    // The low-intensity kernel's time equals the pure-memory time.
    assert_eq!(t_mem, d.kernel_time(bytes, 0, 1.0));
    // The high-intensity kernel is slower than pure memory.
    assert!(t_cmp > t_mem);
}

#[test]
fn transfer_time_additive_in_latency_and_bytes() {
    let l = LinkModel::nvlink();
    let t0 = l.transfer_time(0);
    assert!((t0.as_us() - l.latency_us).abs() < 1e-12);
    let t1 = l.transfer_time(1_000_000);
    let t2 = l.transfer_time(2_000_000);
    // Doubling payload doubles only the payload part.
    assert!(((t2.as_us() - t0.as_us()) - 2.0 * (t1.as_us() - t0.as_us())).abs() < 1e-9);
}

#[test]
fn overlap_never_hurts() {
    // Splitting work across two streams can only reduce the makespan
    // relative to serializing it on one (no contention in this model —
    // which is exactly why the executor serializes kernels; transfers
    // genuinely run on separate engines).
    for (w1, w2) in [(10.0, 10.0), (1.0, 100.0), (55.5, 44.5)] {
        let mut serial = QueueSim::new(1, 2);
        let s = StreamId::new(DeviceId(0), 0);
        serial.enqueue(s, SimTime::from_us(w1), "a", SpanKind::Kernel);
        serial.enqueue(s, SimTime::from_us(w2), "b", SpanKind::Transfer);
        let mut parallel = QueueSim::new(1, 2);
        parallel.enqueue(s, SimTime::from_us(w1), "a", SpanKind::Kernel);
        parallel.enqueue(
            StreamId::new(DeviceId(0), 1),
            SimTime::from_us(w2),
            "b",
            SpanKind::Transfer,
        );
        assert!(parallel.makespan() <= serial.makespan());
        assert_eq!(parallel.makespan().as_us(), w1.max(w2));
        assert_eq!(serial.makespan().as_us(), w1 + w2);
    }
}

#[test]
fn backends_compose_heterogeneous_devices() {
    let devices = vec![DeviceModel::a100_40gb(), DeviceModel::gv100()];
    let b = Backend::new(
        neon_sys::BackendKind::Gpu,
        devices,
        Topology::nvlink_all_to_all(2, 1555.0),
    )
    .unwrap();
    assert_eq!(b.device(DeviceId(0)).name, "A100-40GB");
    assert_eq!(b.device(DeviceId(1)).name, "GV100");
    assert_ne!(
        b.ledger(DeviceId(0)).capacity(),
        b.ledger(DeviceId(1)).capacity()
    );
}

#[test]
fn event_chains_accumulate_correctly() {
    // A chain of N dependent stages across two devices costs the sum of
    // stage times, regardless of which device runs which stage.
    let mut q = QueueSim::new(2, 1);
    let mut expected = 0.0;
    let mut last_event = None;
    for i in 0..10 {
        let s = StreamId::new(DeviceId(i % 2), 0);
        if let Some(e) = last_event {
            q.wait_event(s, e).unwrap();
        }
        let d = 3.0 + i as f64;
        q.enqueue(s, SimTime::from_us(d), "stage", SpanKind::Kernel);
        expected += d;
        let e = q.create_event();
        q.record_event(s, e);
        last_event = Some(e);
    }
    assert!((q.makespan().as_us() - expected).abs() < 1e-9);
}

#[test]
fn trace_busy_time_equals_enqueued_durations() {
    let mut q = QueueSim::new(1, 1);
    q.enable_trace();
    let mut total = 0.0;
    for i in 1..=5 {
        let d = i as f64 * 2.0;
        q.enqueue(
            StreamId::new(DeviceId(0), 0),
            SimTime::from_us(d),
            "op",
            SpanKind::Kernel,
        );
        total += d;
    }
    let busy = q.trace().unwrap().busy_time(DeviceId(0), 0);
    assert!((busy.as_us() - total).abs() < 1e-9);
}
