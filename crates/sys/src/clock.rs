//! Virtual simulation time.
//!
//! All durations in the performance model are expressed in microseconds on a
//! monotonically increasing virtual clock. [`SimTime`] is a thin newtype over
//! `f64` so times cannot be confused with other floating-point quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span length) on the virtual clock, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        SimTime(ms * 1e3)
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        SimTime(s * 1e6)
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 / 1e3
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1e6
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Pointwise minimum.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} s", self.as_secs())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} ms", self.as_ms())
        } else {
            write!(f, "{:.3} us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert!((t.as_us() - 1500.0).abs() < 1e-12);
        assert!((t.as_secs() - 0.0015).abs() < 1e-12);
        let t = SimTime::from_secs(2.0);
        assert!((t.as_ms() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10.0);
        let b = SimTime::from_us(32.0);
        assert_eq!((a + b).as_us(), 42.0);
        assert_eq!((b - a).as_us(), 22.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.as_us(), 42.0);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = [1.0, 2.0, 3.0].iter().map(|&u| SimTime::from_us(u)).sum();
        assert_eq!(total.as_us(), 6.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_us(12.0)), "12.000 us");
        assert_eq!(format!("{}", SimTime::from_us(1200.0)), "1.200 ms");
        assert_eq!(format!("{}", SimTime::from_secs(3.0)), "3.000 s");
    }
}
