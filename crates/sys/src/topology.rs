//! Inter-device interconnect models.
//!
//! The paper evaluates on two systems: a DGX A100 whose GPUs are fully
//! connected through NVLink/NVSwitch, and an 8×GV100 box on PCIe Gen3 where
//! peer transfers are staged through the host root complex. A transfer of
//! `bytes` between two devices costs
//!
//! ```text
//! t = latency + bytes / bandwidth
//! ```
//!
//! with per-link parameters. The latency term folds in peer-copy driver
//! overhead, which dominates small halo exchanges and is what OCC hides.

use serde::{Deserialize, Serialize};

use crate::clock::SimTime;
use crate::device::DeviceId;

/// The class of a link between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// NVLink / NVSwitch class: high bandwidth, direct peer access.
    NvLink,
    /// PCIe Gen3 class: staged through the host, lower bandwidth.
    PciE3,
    /// Same device (no transfer needed) or host shared memory.
    Local,
}

/// Performance parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Link class.
    pub kind: LinkKind,
    /// Fixed cost per transfer, in microseconds (driver + wire latency).
    pub latency_us: f64,
    /// Sustained link bandwidth, in GB/s.
    pub bandwidth_gb_s: f64,
}

impl LinkModel {
    /// NVLink-class link as on a DGX A100.
    ///
    /// The bandwidth is the *effective per-neighbour* rate observed for halo
    /// exchanges (a slab partition talks to at most two neighbours, each over
    /// a dedicated set of links); the latency is the per-copy launch/driver
    /// overhead of a `cudaMemcpyPeerAsync`. Calibrated so that an 8-GPU
    /// D3Q19 halo exchange (19 segments per direction, SoA) costs ≈49 % of
    /// a 192³ iteration and ≈10 % of a 512³ one (paper §VI-A).
    pub fn nvlink() -> Self {
        LinkModel {
            kind: LinkKind::NvLink,
            latency_us: 9.5,
            bandwidth_gb_s: 173.0,
        }
    }

    /// PCIe Gen3 x16 link. Peer copies are staged through the host root
    /// complex, roughly halving the achievable peer bandwidth.
    pub fn pcie3() -> Self {
        LinkModel {
            kind: LinkKind::PciE3,
            latency_us: 18.0,
            bandwidth_gb_s: 6.5,
        }
    }

    /// Intra-device "link" — copies inside one device's memory.
    pub fn local(bandwidth_gb_s: f64) -> Self {
        LinkModel {
            kind: LinkKind::Local,
            latency_us: 1.0,
            bandwidth_gb_s,
        }
    }

    /// Time to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::from_us(self.latency_us + bytes as f64 / self.bandwidth_gb_s * 1e-3)
    }
}

/// The interconnect of a backend: a link model for every ordered device pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// Row-major `n × n` matrix of links; `links[src][dst]`.
    links: Vec<LinkModel>,
}

impl Topology {
    /// Build from an explicit link function.
    pub fn from_fn(n: usize, f: impl Fn(DeviceId, DeviceId) -> LinkModel) -> Self {
        assert!(n > 0, "topology needs at least one device");
        let mut links = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                links.push(f(DeviceId(s), DeviceId(d)));
            }
        }
        Topology { n, links }
    }

    /// Fully-connected NVLink topology (DGX A100 class) over `n` devices.
    pub fn nvlink_all_to_all(n: usize, local_bw_gb_s: f64) -> Self {
        Topology::from_fn(n, |s, d| {
            if s == d {
                LinkModel::local(local_bw_gb_s)
            } else {
                LinkModel::nvlink()
            }
        })
    }

    /// PCIe Gen3 topology (GV100 box class) over `n` devices.
    pub fn pcie_host_staged(n: usize, local_bw_gb_s: f64) -> Self {
        Topology::from_fn(n, |s, d| {
            if s == d {
                LinkModel::local(local_bw_gb_s)
            } else {
                LinkModel::pcie3()
            }
        })
    }

    /// Number of devices the topology covers.
    pub fn num_devices(&self) -> usize {
        self.n
    }

    /// The link used from `src` to `dst`.
    pub fn link(&self, src: DeviceId, dst: DeviceId) -> &LinkModel {
        assert!(src.0 < self.n && dst.0 < self.n, "device out of topology");
        &self.links[src.0 * self.n + dst.0]
    }

    /// Time to move `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> SimTime {
        self.link(src, dst).transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_time() {
        let l = LinkModel::nvlink();
        // 173 MB at 173 GB/s = 1 ms plus 9.5 us latency.
        let t = l.transfer_time(173_000_000);
        assert!((t.as_us() - 1009.5).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn nvlink_faster_than_pcie() {
        let bytes = 10_000_000;
        assert!(
            LinkModel::nvlink().transfer_time(bytes) < LinkModel::pcie3().transfer_time(bytes)
        );
    }

    #[test]
    fn topology_lookup() {
        let t = Topology::nvlink_all_to_all(4, 1555.0);
        assert_eq!(t.num_devices(), 4);
        assert_eq!(t.link(DeviceId(0), DeviceId(0)).kind, LinkKind::Local);
        assert_eq!(t.link(DeviceId(0), DeviceId(3)).kind, LinkKind::NvLink);
        assert_eq!(t.link(DeviceId(3), DeviceId(1)).kind, LinkKind::NvLink);
    }

    #[test]
    fn pcie_topology() {
        let t = Topology::pcie_host_staged(2, 870.0);
        assert_eq!(t.link(DeviceId(0), DeviceId(1)).kind, LinkKind::PciE3);
        assert_eq!(t.link(DeviceId(1), DeviceId(1)).kind, LinkKind::Local);
    }

    #[test]
    #[should_panic(expected = "out of topology")]
    fn out_of_range_panics() {
        let t = Topology::nvlink_all_to_all(2, 1555.0);
        t.link(DeviceId(0), DeviceId(2));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_topology_rejected() {
        Topology::from_fn(0, |_, _| LinkModel::nvlink());
    }
}
