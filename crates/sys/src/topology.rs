//! Inter-device interconnect models.
//!
//! The paper evaluates on two systems: a DGX A100 whose GPUs are fully
//! connected through NVLink/NVSwitch, and an 8×GV100 box on PCIe Gen3 where
//! peer transfers are staged through the host root complex. A transfer of
//! `bytes` between two devices costs
//!
//! ```text
//! t = latency + bytes / bandwidth
//! ```
//!
//! with per-link parameters. The latency term folds in peer-copy driver
//! overhead, which dominates small halo exchanges and is what OCC hides.
//!
//! ## Link resources and contention
//!
//! Beyond the per-pair cost model, a topology names the *physical resources*
//! a transfer occupies, so that [`QueueSim::enqueue_transfer`] can serialize
//! concurrent transfers that share hardware:
//!
//! * NVLink pairs get a **dedicated** resource per ordered pair — two
//!   different pairs never contend;
//! * PCIe peer transfers (and every device↔host copy) all occupy the single
//!   shared **host root complex** resource, so simultaneous transfers
//!   serialize and pay an arbitration penalty.
//!
//! [`QueueSim::enqueue_transfer`]: crate::queue::QueueSim::enqueue_transfer

use crate::clock::SimTime;
use crate::device::DeviceId;

/// Identifier of a physical link resource within a [`Topology`].
pub type LinkResourceId = usize;

/// The class of a link between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// NVLink / NVSwitch class: high bandwidth, direct peer access.
    NvLink,
    /// PCIe Gen3 class: staged through the host, lower bandwidth.
    PciE3,
    /// Same device (no transfer needed) or host shared memory.
    Local,
}

/// Performance parameters of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Link class.
    pub kind: LinkKind,
    /// Fixed cost per transfer, in microseconds (driver + wire latency).
    pub latency_us: f64,
    /// Sustained link bandwidth, in GB/s.
    pub bandwidth_gb_s: f64,
}

impl LinkModel {
    /// NVLink-class link as on a DGX A100.
    ///
    /// The bandwidth is the *effective per-neighbour* rate observed for halo
    /// exchanges (a slab partition talks to at most two neighbours, each over
    /// a dedicated set of links); the latency is the per-copy launch/driver
    /// overhead of a `cudaMemcpyPeerAsync`. Calibrated so that an 8-GPU
    /// D3Q19 halo exchange (19 segments per direction, SoA) costs ≈49 % of
    /// a 192³ iteration and ≈10 % of a 512³ one (paper §VI-A).
    pub fn nvlink() -> Self {
        LinkModel {
            kind: LinkKind::NvLink,
            latency_us: 9.5,
            bandwidth_gb_s: 173.0,
        }
    }

    /// PCIe Gen3 x16 link. Peer copies are staged through the host root
    /// complex, roughly halving the achievable peer bandwidth.
    pub fn pcie3() -> Self {
        LinkModel {
            kind: LinkKind::PciE3,
            latency_us: 18.0,
            bandwidth_gb_s: 6.5,
        }
    }

    /// Device↔host staging link of a DGX A100 class machine (PCIe Gen4 x16
    /// behind the root complex; pinned-memory effective rate).
    pub fn pcie4_host() -> Self {
        LinkModel {
            kind: LinkKind::PciE3,
            latency_us: 10.0,
            bandwidth_gb_s: 22.0,
        }
    }

    /// Intra-device "link" — copies inside one device's memory.
    pub fn local(bandwidth_gb_s: f64) -> Self {
        LinkModel {
            kind: LinkKind::Local,
            latency_us: 1.0,
            bandwidth_gb_s,
        }
    }

    /// Time to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::from_us(self.latency_us + bytes as f64 / self.bandwidth_gb_s * 1e-3)
    }
}

/// The interconnect of a backend: a link model for every ordered device pair,
/// the device↔host staging link, and the physical resources each transfer
/// occupies.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n: usize,
    /// Row-major `n × n` matrix of links; `links[src][dst]`.
    links: Vec<LinkModel>,
    /// Link used for device↔host staging copies.
    host_link: LinkModel,
    /// Row-major `n × n` matrix of resource sets occupied by a peer transfer.
    resources: Vec<Vec<LinkResourceId>>,
    /// Human-readable name per resource (index = [`LinkResourceId`]).
    resource_names: Vec<String>,
    /// The host root complex resource (always resource 0).
    host_resource: LinkResourceId,
}

impl Topology {
    /// Build from an explicit link function.
    ///
    /// Link resources are derived from the link classes: every ordered NVLink
    /// pair gets a dedicated resource, while PCIe peer links — and all
    /// device↔host staging copies — share the single host root complex
    /// resource. The host staging link defaults to [`LinkModel::pcie3`] when
    /// any peer link is PCIe-class and [`LinkModel::pcie4_host`] otherwise;
    /// override it with [`Topology::with_host_link`].
    pub fn from_fn(n: usize, f: impl Fn(DeviceId, DeviceId) -> LinkModel) -> Self {
        assert!(n > 0, "topology needs at least one device");
        let mut links = Vec::with_capacity(n * n);
        for s in 0..n {
            for d in 0..n {
                links.push(f(DeviceId(s), DeviceId(d)));
            }
        }
        let mut resource_names = vec!["host-rc".to_string()];
        let host_resource: LinkResourceId = 0;
        let mut resources = vec![Vec::new(); n * n];
        let mut any_pcie = false;
        for s in 0..n {
            for d in 0..n {
                let idx = s * n + d;
                match links[idx].kind {
                    LinkKind::Local => {}
                    LinkKind::NvLink => {
                        let id = resource_names.len();
                        resource_names.push(format!("nvlink:{s}->{d}"));
                        resources[idx] = vec![id];
                    }
                    LinkKind::PciE3 => {
                        any_pcie = true;
                        resources[idx] = vec![host_resource];
                    }
                }
            }
        }
        let host_link = if any_pcie {
            LinkModel::pcie3()
        } else {
            LinkModel::pcie4_host()
        };
        Topology {
            n,
            links,
            host_link,
            resources,
            resource_names,
            host_resource,
        }
    }

    /// Replace the device↔host staging link model.
    pub fn with_host_link(mut self, link: LinkModel) -> Self {
        self.host_link = link;
        self
    }

    /// Fully-connected NVLink topology (DGX A100 class) over `n` devices.
    pub fn nvlink_all_to_all(n: usize, local_bw_gb_s: f64) -> Self {
        Topology::from_fn(n, |s, d| {
            if s == d {
                LinkModel::local(local_bw_gb_s)
            } else {
                LinkModel::nvlink()
            }
        })
    }

    /// PCIe Gen3 topology (GV100 box class) over `n` devices.
    pub fn pcie_host_staged(n: usize, local_bw_gb_s: f64) -> Self {
        Topology::from_fn(n, |s, d| {
            if s == d {
                LinkModel::local(local_bw_gb_s)
            } else {
                LinkModel::pcie3()
            }
        })
    }

    /// Mixed "multi-box" topology: NVLink all-to-all inside each island,
    /// PCIe Gen3 between islands (DGX boxes bridged through the host root
    /// complex). `sizes` lists the island sizes in device order, so
    /// `nvlink_islands(&[2, 2], bw)` is two 2-GPU boxes.
    pub fn nvlink_islands(sizes: &[usize], local_bw_gb_s: f64) -> Self {
        assert!(!sizes.is_empty(), "need at least one island");
        assert!(sizes.iter().all(|&s| s > 0), "islands must be non-empty");
        let n: usize = sizes.iter().sum();
        let mut island_of = Vec::with_capacity(n);
        for (i, &s) in sizes.iter().enumerate() {
            island_of.extend(std::iter::repeat_n(i, s));
        }
        Topology::from_fn(n, |s, d| {
            if s == d {
                LinkModel::local(local_bw_gb_s)
            } else if island_of[s.0] == island_of[d.0] {
                LinkModel::nvlink()
            } else {
                LinkModel::pcie3()
            }
        })
    }

    /// Partition the devices into NVLink islands: connected components of
    /// the undirected graph whose edges are NvLink-class peer links.
    /// Devices with no NVLink neighbour (an all-PCIe box, or a lone
    /// survivor after eviction) form singleton islands. Islands are
    /// ordered by their smallest member and each island's members are
    /// sorted ascending, so the first member is a deterministic leader.
    pub fn islands(&self) -> Vec<Vec<DeviceId>> {
        let mut comp = vec![usize::MAX; self.n];
        let mut islands: Vec<Vec<DeviceId>> = Vec::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = islands.len();
            comp[start] = id;
            let mut stack = vec![start];
            let mut members = Vec::new();
            while let Some(s) = stack.pop() {
                members.push(DeviceId(s));
                for (d, c) in comp.iter_mut().enumerate() {
                    let fwd = self.links[s * self.n + d].kind == LinkKind::NvLink;
                    let bwd = self.links[d * self.n + s].kind == LinkKind::NvLink;
                    if *c == usize::MAX && (fwd || bwd) {
                        *c = id;
                        stack.push(d);
                    }
                }
            }
            members.sort_unstable_by_key(|d| d.0);
            islands.push(members);
        }
        islands
    }

    /// Number of devices the topology covers.
    pub fn num_devices(&self) -> usize {
        self.n
    }

    /// The topology with device `dead` removed (graceful eviction after a
    /// permanent device loss). Surviving devices are renumbered to stay
    /// contiguous — device `i > dead` becomes `i - 1` — and link resources
    /// are rebuilt for the smaller system; the host staging link is kept.
    pub fn without_device(&self, dead: DeviceId) -> Topology {
        assert!(dead.0 < self.n, "device out of topology");
        assert!(self.n > 1, "cannot evict the only device");
        let keep: Vec<DeviceId> = (0..self.n).filter(|&i| i != dead.0).map(DeviceId).collect();
        self.with_devices(&keep)
    }

    /// The sub-topology induced by `keep`: device `keep[i]` of `self` becomes
    /// device `i` of the result, links between kept devices are preserved,
    /// and link resources are rebuilt for the smaller system; the host
    /// staging link is kept. `keep` must be non-empty, sorted, duplicate-free
    /// and in range — the serving layer carves disjoint device subsets out of
    /// one fleet with this.
    pub fn with_devices(&self, keep: &[DeviceId]) -> Topology {
        assert!(!keep.is_empty(), "device subset must be non-empty");
        for w in keep.windows(2) {
            assert!(w[0].0 < w[1].0, "device subset must be sorted and unique");
        }
        assert!(keep[keep.len() - 1].0 < self.n, "device out of topology");
        Topology::from_fn(keep.len(), |s, d| {
            self.links[keep[s.0].0 * self.n + keep[d.0].0]
        })
        .with_host_link(self.host_link)
    }

    /// The topology with the direct peer link between `src` and `dst`
    /// severed (both directions — the physical wire is gone). Traffic
    /// between the pair falls back to PCIe-class staging through the host
    /// root complex, so an NVLink island that relied on the wire may split
    /// into two. Link resources are rebuilt for the new link classes and
    /// the host staging link is kept; the fingerprint changes, so cached
    /// plans compiled for the healthy interconnect can never be rebound to
    /// the degraded one.
    pub fn without_link(&self, src: DeviceId, dst: DeviceId) -> Topology {
        assert!(src.0 < self.n && dst.0 < self.n, "device out of topology");
        assert!(src != dst, "cannot sever a device's local link");
        Topology::from_fn(self.n, |s, d| {
            if (s, d) == (src, dst) || (s, d) == (dst, src) {
                LinkModel::pcie3()
            } else {
                self.links[s.0 * self.n + d.0]
            }
        })
        .with_host_link(self.host_link)
    }

    /// The topology with the peer link between `src` and `dst` degraded to
    /// `factor` of its bandwidth in both directions (0 < factor ≤ 1; a
    /// flapping retimer or a lane failure). The link keeps its class —
    /// islands do not change — but the fingerprint does, so stale plans
    /// cannot serve the slower wire.
    pub fn with_degraded_link(&self, src: DeviceId, dst: DeviceId, factor: f64) -> Topology {
        assert!(src.0 < self.n && dst.0 < self.n, "device out of topology");
        assert!(src != dst, "cannot degrade a device's local link");
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "degrade factor must be in (0, 1], got {factor}"
        );
        Topology::from_fn(self.n, |s, d| {
            let l = self.links[s.0 * self.n + d.0];
            if (s, d) == (src, dst) || (s, d) == (dst, src) {
                LinkModel {
                    bandwidth_gb_s: l.bandwidth_gb_s * factor,
                    ..l
                }
            } else {
                l
            }
        })
        .with_host_link(self.host_link)
    }

    /// The link used from `src` to `dst`.
    pub fn link(&self, src: DeviceId, dst: DeviceId) -> &LinkModel {
        assert!(src.0 < self.n && dst.0 < self.n, "device out of topology");
        &self.links[src.0 * self.n + dst.0]
    }

    /// Time to move `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> SimTime {
        self.link(src, dst).transfer_time(bytes)
    }

    /// The device↔host staging link.
    pub fn host_link(&self) -> &LinkModel {
        &self.host_link
    }

    /// Time to stage `bytes` between a device and the host.
    pub fn host_transfer_time(&self, bytes: u64) -> SimTime {
        self.host_link.transfer_time(bytes)
    }

    /// Total number of distinct link resources (host root complex included).
    pub fn num_link_resources(&self) -> usize {
        self.resource_names.len()
    }

    /// Human-readable name of a link resource.
    pub fn link_resource_name(&self, r: LinkResourceId) -> &str {
        &self.resource_names[r]
    }

    /// The resources a `src → dst` peer transfer occupies (empty for local).
    pub fn link_resources(&self, src: DeviceId, dst: DeviceId) -> &[LinkResourceId] {
        assert!(src.0 < self.n && dst.0 < self.n, "device out of topology");
        &self.resources[src.0 * self.n + dst.0]
    }

    /// The resources a device↔host staging copy occupies.
    pub fn host_resources(&self) -> &[LinkResourceId] {
        std::slice::from_ref(&self.host_resource)
    }

    /// Stable fingerprint of the interconnect: device count, every directed
    /// link's parameters, the host staging link, and the resource structure.
    ///
    /// Two topologies with the same fingerprint time transfers identically,
    /// which is what plan caching needs — nothing about allocation state or
    /// resource *names* enters the hash.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::hash::StableHasher::new();
        let link_bits = |h: &mut crate::hash::StableHasher, l: &LinkModel| {
            h.write_u8(match l.kind {
                LinkKind::NvLink => 0,
                LinkKind::PciE3 => 1,
                LinkKind::Local => 2,
            });
            h.write_u64(l.latency_us.to_bits());
            h.write_u64(l.bandwidth_gb_s.to_bits());
        };
        h.write_u64(self.n as u64);
        for l in &self.links {
            link_bits(&mut h, l);
        }
        link_bits(&mut h, &self.host_link);
        for rs in &self.resources {
            h.write_u64(rs.len() as u64);
            for &r in rs {
                h.write_u64(r as u64);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_time() {
        let l = LinkModel::nvlink();
        // 173 MB at 173 GB/s = 1 ms plus 9.5 us latency.
        let t = l.transfer_time(173_000_000);
        assert!((t.as_us() - 1009.5).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn nvlink_faster_than_pcie() {
        let bytes = 10_000_000;
        assert!(LinkModel::nvlink().transfer_time(bytes) < LinkModel::pcie3().transfer_time(bytes));
    }

    #[test]
    fn topology_lookup() {
        let t = Topology::nvlink_all_to_all(4, 1555.0);
        assert_eq!(t.num_devices(), 4);
        assert_eq!(t.link(DeviceId(0), DeviceId(0)).kind, LinkKind::Local);
        assert_eq!(t.link(DeviceId(0), DeviceId(3)).kind, LinkKind::NvLink);
        assert_eq!(t.link(DeviceId(3), DeviceId(1)).kind, LinkKind::NvLink);
    }

    #[test]
    fn pcie_topology() {
        let t = Topology::pcie_host_staged(2, 870.0);
        assert_eq!(t.link(DeviceId(0), DeviceId(1)).kind, LinkKind::PciE3);
        assert_eq!(t.link(DeviceId(1), DeviceId(1)).kind, LinkKind::Local);
    }

    #[test]
    fn nvlink_pairs_get_dedicated_resources() {
        let t = Topology::nvlink_all_to_all(3, 1555.0);
        // host-rc + one resource per ordered NVLink pair (3·2 pairs).
        assert_eq!(t.num_link_resources(), 1 + 6);
        let r01 = t.link_resources(DeviceId(0), DeviceId(1));
        let r10 = t.link_resources(DeviceId(1), DeviceId(0));
        let r02 = t.link_resources(DeviceId(0), DeviceId(2));
        assert_eq!(r01.len(), 1);
        assert_ne!(r01, r10, "each direction is its own resource");
        assert_ne!(r01, r02);
        assert!(t.link_resources(DeviceId(1), DeviceId(1)).is_empty());
        assert_eq!(t.host_resources(), &[0]);
        assert!(t.link_resource_name(r01[0]).starts_with("nvlink:"));
    }

    #[test]
    fn pcie_pairs_share_host_root_complex() {
        let t = Topology::pcie_host_staged(4, 870.0);
        assert_eq!(t.num_link_resources(), 1, "only the host root complex");
        for s in 0..4 {
            for d in 0..4 {
                if s == d {
                    continue;
                }
                assert_eq!(
                    t.link_resources(DeviceId(s), DeviceId(d)),
                    t.host_resources(),
                    "pcie peer {s}->{d} goes through the root complex"
                );
            }
        }
        assert_eq!(t.link_resource_name(0), "host-rc");
    }

    #[test]
    fn host_link_defaults_follow_peer_class() {
        let nv = Topology::nvlink_all_to_all(2, 1555.0);
        let pc = Topology::pcie_host_staged(2, 870.0);
        assert_eq!(nv.host_link().bandwidth_gb_s, 22.0);
        assert_eq!(pc.host_link().bandwidth_gb_s, 6.5);
        let custom = Topology::nvlink_all_to_all(2, 1555.0).with_host_link(LinkModel::pcie3());
        assert_eq!(custom.host_link().bandwidth_gb_s, 6.5);
        assert!(nv.host_transfer_time(22_000_000).as_us() > 1000.0);
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        let a = Topology::nvlink_all_to_all(4, 1555.0);
        let b = Topology::nvlink_all_to_all(4, 1555.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            Topology::nvlink_all_to_all(8, 1555.0).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            Topology::pcie_host_staged(4, 1555.0).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            b.with_host_link(LinkModel::pcie3()).fingerprint()
        );
    }

    #[test]
    fn islands_single_device() {
        let t = Topology::nvlink_all_to_all(1, 1555.0);
        assert_eq!(t.islands(), vec![vec![DeviceId(0)]]);
    }

    #[test]
    fn islands_all_nvlink_is_one_island() {
        let t = Topology::nvlink_all_to_all(4, 1555.0);
        assert_eq!(t.islands(), vec![(0..4).map(DeviceId).collect::<Vec<_>>()]);
    }

    #[test]
    fn islands_all_pcie_is_singletons() {
        let t = Topology::pcie_host_staged(3, 870.0);
        assert_eq!(
            t.islands(),
            vec![vec![DeviceId(0)], vec![DeviceId(1)], vec![DeviceId(2)]]
        );
    }

    #[test]
    fn islands_mixed_topology() {
        let t = Topology::nvlink_islands(&[2, 3], 1555.0);
        assert_eq!(t.num_devices(), 5);
        assert_eq!(t.link(DeviceId(0), DeviceId(1)).kind, LinkKind::NvLink);
        assert_eq!(t.link(DeviceId(1), DeviceId(2)).kind, LinkKind::PciE3);
        assert_eq!(t.link(DeviceId(3), DeviceId(4)).kind, LinkKind::NvLink);
        assert_eq!(
            t.islands(),
            vec![
                vec![DeviceId(0), DeviceId(1)],
                vec![DeviceId(2), DeviceId(3), DeviceId(4)],
            ]
        );
        // Mixed topology has PCIe peer links, so host staging defaults slow.
        assert_eq!(t.host_link().bandwidth_gb_s, 6.5);
    }

    #[test]
    fn islands_survive_eviction_renumbering() {
        // Two 2-GPU islands; evicting device 1 leaves a singleton island
        // {0} and the intact island {2,3} renumbered to {1,2}.
        let t = Topology::nvlink_islands(&[2, 2], 1555.0);
        let sub = t.with_devices(&[DeviceId(0), DeviceId(2), DeviceId(3)]);
        assert_eq!(
            sub.islands(),
            vec![vec![DeviceId(0)], vec![DeviceId(1), DeviceId(2)]]
        );
        // An asymmetric survivor subset keeps its island structure too.
        let sub2 = t.with_devices(&[DeviceId(0), DeviceId(1), DeviceId(2)]);
        assert_eq!(
            sub2.islands(),
            vec![vec![DeviceId(0), DeviceId(1)], vec![DeviceId(2)]]
        );
    }

    #[test]
    fn without_link_splits_an_island_and_mints_a_fresh_fingerprint() {
        let t = Topology::nvlink_all_to_all(4, 1555.0);
        let cut = t.without_link(DeviceId(1), DeviceId(2));
        // Severed in both directions, downgraded to host-staged PCIe.
        assert_eq!(cut.link(DeviceId(1), DeviceId(2)).kind, LinkKind::PciE3);
        assert_eq!(cut.link(DeviceId(2), DeviceId(1)).kind, LinkKind::PciE3);
        // Other links untouched.
        assert_eq!(cut.link(DeviceId(0), DeviceId(3)).kind, LinkKind::NvLink);
        // All-to-all stays connected through the other wires...
        assert_eq!(cut.islands().len(), 1);
        // ...but a 2+2 island bridge does split.
        let bridge = Topology::nvlink_islands(&[4], 1555.0);
        assert_eq!(bridge.islands().len(), 1);
        let mut split = bridge.clone();
        for a in [0usize, 1] {
            for b in [2usize, 3] {
                split = split.without_link(DeviceId(a), DeviceId(b));
            }
        }
        assert_eq!(
            split.islands(),
            vec![
                vec![DeviceId(0), DeviceId(1)],
                vec![DeviceId(2), DeviceId(3)],
            ]
        );
        assert_ne!(cut.fingerprint(), t.fingerprint());
        assert_ne!(split.fingerprint(), bridge.fingerprint());
        // Deterministic: the same severing yields the same fingerprint.
        assert_eq!(
            t.without_link(DeviceId(1), DeviceId(2)).fingerprint(),
            t.without_link(DeviceId(2), DeviceId(1)).fingerprint()
        );
        // Host link survives the rebuild.
        assert_eq!(cut.host_link(), t.host_link());
    }

    #[test]
    fn with_degraded_link_keeps_islands_but_changes_fingerprint() {
        let t = Topology::nvlink_all_to_all(4, 1555.0);
        let slow = t.with_degraded_link(DeviceId(0), DeviceId(3), 0.25);
        assert_eq!(slow.link(DeviceId(0), DeviceId(3)).kind, LinkKind::NvLink);
        assert_eq!(
            slow.link(DeviceId(0), DeviceId(3)).bandwidth_gb_s,
            t.link(DeviceId(0), DeviceId(3)).bandwidth_gb_s * 0.25
        );
        assert_eq!(
            slow.link(DeviceId(3), DeviceId(0)).bandwidth_gb_s,
            t.link(DeviceId(3), DeviceId(0)).bandwidth_gb_s * 0.25
        );
        assert_eq!(slow.islands(), t.islands());
        assert_ne!(slow.fingerprint(), t.fingerprint());
        assert!(
            slow.transfer_time(DeviceId(0), DeviceId(3), 1 << 20)
                > t.transfer_time(DeviceId(0), DeviceId(3), 1 << 20)
        );
        // A full-bandwidth "degrade" is the identity on the link matrix.
        assert_eq!(
            t.with_degraded_link(DeviceId(0), DeviceId(3), 1.0)
                .fingerprint(),
            t.fingerprint()
        );
    }

    #[test]
    #[should_panic(expected = "local link")]
    fn without_link_rejects_self_loops() {
        Topology::nvlink_all_to_all(2, 1555.0).without_link(DeviceId(1), DeviceId(1));
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn degraded_link_rejects_bad_factor() {
        Topology::nvlink_all_to_all(2, 1555.0).with_degraded_link(DeviceId(0), DeviceId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of topology")]
    fn out_of_range_panics() {
        let t = Topology::nvlink_all_to_all(2, 1555.0);
        t.link(DeviceId(0), DeviceId(2));
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_topology_rejected() {
        Topology::from_fn(0, |_, _| LinkModel::nvlink());
    }
}
