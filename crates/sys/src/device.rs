//! Simulated accelerator devices and their performance model.
//!
//! Every kernel launched by Neon is memory-bound or compute-bound; its
//! duration on a device is given by a roofline model:
//!
//! ```text
//! t = launch_overhead + max(bytes / effective_bandwidth, flops / peak_flops)
//! ```
//!
//! The presets are calibrated to the hardware used in the paper's
//! evaluation: NVIDIA A100-40GB (DGX A100) and Quadro GV100. A CPU-socket
//! model is provided for the paper's portability claim (same user code on a
//! serial/OpenMP back end).

use std::fmt;

use crate::clock::SimTime;

/// Identifier of a device within a [`crate::backend::Backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Broad class of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// A (simulated) GPU accelerator: many concurrent queues.
    Gpu,
    /// A multi-core CPU modelled with the same accelerator interface.
    ///
    /// As in the paper (§IV-A), the CPU back end is limited to one kernel at
    /// a time.
    Cpu,
}

/// The analytic performance model of a single device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Human-readable device name.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// Effective (achievable) memory bandwidth, in GB/s.
    pub mem_bandwidth_gb_s: f64,
    /// Peak double-precision throughput, in GFLOP/s.
    pub peak_gflop_s: f64,
    /// Fixed overhead per kernel launch, in microseconds.
    pub kernel_launch_us: f64,
    /// Fixed overhead for a host-side synchronization, in microseconds.
    pub sync_overhead_us: f64,
    /// Device memory capacity, in bytes.
    pub mem_capacity_bytes: u64,
}

impl DeviceModel {
    /// NVIDIA A100-40GB (as in the DGX A100 used by the paper).
    ///
    /// 1555 GB/s HBM2e; 9.7 TFLOP/s fp64 (19.5 with FMA on tensor cores, not
    /// assumed here); 40 GB capacity.
    pub fn a100_40gb() -> Self {
        DeviceModel {
            name: "A100-40GB".to_string(),
            kind: DeviceKind::Gpu,
            mem_bandwidth_gb_s: 1555.0,
            peak_gflop_s: 9700.0,
            kernel_launch_us: 4.0,
            sync_overhead_us: 12.0,
            mem_capacity_bytes: 40 * (1 << 30),
        }
    }

    /// NVIDIA Quadro GV100 (the paper's second, PCIe-connected system).
    pub fn gv100() -> Self {
        DeviceModel {
            name: "GV100".to_string(),
            kind: DeviceKind::Gpu,
            mem_bandwidth_gb_s: 870.0,
            peak_gflop_s: 7400.0,
            kernel_launch_us: 6.0,
            sync_overhead_us: 15.0,
            mem_capacity_bytes: 32 * (1 << 30),
        }
    }

    /// A contemporary two-socket Xeon-class CPU node.
    pub fn cpu_socket() -> Self {
        DeviceModel {
            name: "Xeon-E5".to_string(),
            kind: DeviceKind::Cpu,
            mem_bandwidth_gb_s: 120.0,
            peak_gflop_s: 600.0,
            kernel_launch_us: 1.0,
            sync_overhead_us: 1.0,
            mem_capacity_bytes: 256 * (1 << 30),
        }
    }

    /// Duration of a kernel that moves `bytes` of memory and executes
    /// `flops` floating-point operations, per the roofline model.
    ///
    /// `efficiency` scales the achievable bandwidth (1.0 = the model's
    /// effective bandwidth). Implementations with extra per-access work —
    /// e.g. Neon's out-of-bound guards (paper §VI-B) or an untuned
    /// comparator — use an efficiency below 1.
    pub fn kernel_time(&self, bytes: u64, flops: u64, efficiency: f64) -> SimTime {
        assert!(
            efficiency > 0.0 && efficiency <= 1.5,
            "bandwidth efficiency {efficiency} outside sane range"
        );
        let mem_us = bytes as f64 / (self.mem_bandwidth_gb_s * efficiency) * 1e-3;
        let cmp_us = flops as f64 / self.peak_gflop_s * 1e-3;
        SimTime::from_us(self.kernel_launch_us + mem_us.max(cmp_us))
    }

    /// Launch overhead alone (e.g. for an empty kernel).
    pub fn launch_overhead(&self) -> SimTime {
        SimTime::from_us(self.kernel_launch_us)
    }

    /// Host-side synchronization overhead.
    pub fn sync_overhead(&self) -> SimTime {
        SimTime::from_us(self.sync_overhead_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_memory_bound() {
        let d = DeviceModel::a100_40gb();
        // 1.555 GB at 1555 GB/s = 1 ms, plus 4 us launch.
        let t = d.kernel_time(1_555_000_000, 0, 1.0);
        assert!((t.as_us() - 1004.0).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn roofline_compute_bound() {
        let d = DeviceModel::a100_40gb();
        // 9.7 GFLOP at 9.7 TFLOP/s = 1 ms; negligible bytes.
        let t = d.kernel_time(8, 9_700_000_000, 1.0);
        assert!((t.as_us() - 1004.0).abs() < 1e-3, "got {t}");
    }

    #[test]
    fn efficiency_scales_bandwidth() {
        let d = DeviceModel::a100_40gb();
        let fast = d.kernel_time(1_000_000_000, 0, 1.0);
        let slow = d.kernel_time(1_000_000_000, 0, 0.5);
        let fast_body = fast.as_us() - d.kernel_launch_us;
        let slow_body = slow.as_us() - d.kernel_launch_us;
        assert!((slow_body / fast_body - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        DeviceModel::a100_40gb().kernel_time(1, 0, 0.0);
    }

    #[test]
    fn presets_have_sane_capacities() {
        assert_eq!(DeviceModel::a100_40gb().mem_capacity_bytes, 40 << 30);
        assert_eq!(DeviceModel::gv100().mem_capacity_bytes, 32 << 30);
        assert!(DeviceModel::cpu_socket().mem_capacity_bytes > 100 << 30);
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let d = DeviceModel::gv100();
        assert_eq!(d.kernel_time(0, 0, 1.0), d.launch_overhead());
    }
}
