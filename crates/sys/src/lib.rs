//! # neon-sys — the System abstraction
//!
//! The lowest layer of the Neon programming model (paper §IV-A). It shields
//! the rest of the stack from architecture- and hardware-specific mechanisms
//! by providing:
//!
//! * **Device models** ([`device::DeviceModel`]) — simulated accelerators with
//!   a roofline-style performance model (memory bandwidth, peak FLOP/s,
//!   kernel-launch overhead) and a memory capacity.
//! * **Interconnect topologies** ([`topology::Topology`]) — NVLink- and
//!   PCIe-class link models used to time inter-device transfers.
//! * **Memory management** ([`memory::MemoryLedger`]) — per-device allocation
//!   accounting with out-of-memory detection, mirroring a real allocator.
//! * **A queue-based runtime model** ([`queue::QueueSim`]) — virtual-clock
//!   streams and events with CUDA-like semantics (`record`, `wait`,
//!   `synchronize`), which the Skeleton layer schedules onto.
//! * **Execution traces** ([`trace::Trace`]) — per-stream span recording,
//!   exportable as Chrome `about:tracing` JSON.
//!
//! ## Why simulated devices?
//!
//! This crate reproduces the *runtime* behaviour that the Neon paper's
//! orchestration layer exercises — asynchronous queues, cross-device events,
//! transfer/kernel overlap — without requiring CUDA hardware. Kernels still
//! execute functionally (on host threads, one per device) while durations are
//! produced by the analytic model, so scheduling decisions such as
//! overlapping computation and communication (OCC) have observable,
//! reproducible effects on the simulated makespan.

pub mod backend;
pub mod clock;
pub mod device;
pub mod error;
pub mod fault;
pub mod hash;
pub mod memory;
pub mod pool;
pub mod queue;
pub mod topology;
pub mod trace;

pub use backend::{Backend, BackendKind};
pub use clock::SimTime;
pub use device::{DeviceId, DeviceKind, DeviceModel};
pub use error::{NeonSysError, Result};
pub use fault::{
    FaultInjector, FaultPlan, FaultSite, FaultSiteKind, FaultSpec, FaultStats, FaultVerdict,
    LinkEvent, PermanentFault, RetryPolicy,
};
pub use hash::{stable_hash_of, StableHasher};
pub use memory::{AllocationTicket, MemoryLedger};
pub use pool::{host_cores, WorkerPool};
pub use queue::{CounterSnapshot, EventId, QueueSim, StreamId};
pub use topology::{LinkKind, LinkModel, LinkResourceId, Topology};
pub use trace::{SpanKind, Trace, TraceSpan};
