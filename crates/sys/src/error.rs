//! Error types for the System abstraction.

use std::fmt;

use crate::device::DeviceId;

/// Result alias for System-level operations.
pub type Result<T> = std::result::Result<T, NeonSysError>;

/// Errors raised by the System abstraction.
#[derive(Debug, Clone, PartialEq)]
pub enum NeonSysError {
    /// A device allocation exceeded the device's memory capacity.
    OutOfMemory {
        /// Device on which the allocation failed.
        device: DeviceId,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes already in use on the device.
        in_use: u64,
        /// Total capacity of the device, in bytes.
        capacity: u64,
    },
    /// A device index was outside the backend's device set.
    InvalidDevice {
        /// The offending device id.
        device: DeviceId,
        /// Number of devices in the backend.
        num_devices: usize,
    },
    /// A stream id referenced a stream that was never created.
    InvalidStream {
        /// Human-readable description of the offending reference.
        what: String,
    },
    /// An event was waited on before ever being recorded.
    EventNeverRecorded {
        /// The event index.
        event: usize,
    },
    /// Backend configuration was inconsistent (e.g. zero devices).
    InvalidConfig {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for NeonSysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeonSysError::OutOfMemory {
                device,
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "out of memory on device {device}: requested {requested} B with {in_use} B in use of {capacity} B capacity"
            ),
            NeonSysError::InvalidDevice {
                device,
                num_devices,
            } => write!(
                f,
                "invalid device {device}: backend has {num_devices} device(s)"
            ),
            NeonSysError::InvalidStream { what } => write!(f, "invalid stream: {what}"),
            NeonSysError::EventNeverRecorded { event } => {
                write!(f, "event {event} waited on before being recorded")
            }
            NeonSysError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for NeonSysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NeonSysError::OutOfMemory {
            device: DeviceId(3),
            requested: 100,
            in_use: 50,
            capacity: 120,
        };
        let s = e.to_string();
        assert!(s.contains("device 3"));
        assert!(s.contains("100 B"));
        let e = NeonSysError::InvalidDevice {
            device: DeviceId(9),
            num_devices: 8,
        };
        assert!(e.to_string().contains("8 device"));
    }
}
