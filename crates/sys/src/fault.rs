//! Deterministic fault injection for the simulated runtime.
//!
//! A production multi-GPU system must survive transient kernel launch
//! failures, corrupted transfers and permanent device loss. The simulated
//! backend is the ideal place to *model* those events: a [`FaultPlan`]
//! schedules faults by `iteration × device × span kind × occurrence`, and a
//! [`FaultInjector`] delivers them deterministically — the same plan against
//! the same program always fires at the same operations, so recovery paths
//! can be pinned bit-for-bit against fault-free runs.
//!
//! ## Fault taxonomy
//!
//! * **Transient kernel fault** — a launch fails before any side effect
//!   (CUDA's `ERROR_LAUNCH_FAILED` at submit time). The retrying executor
//!   re-launches after an exponential backoff; each failed attempt costs the
//!   kernel's duration plus the backoff on the virtual clock.
//! * **Transient transfer fault** — a halo payload arrives corrupted and is
//!   dropped at the receiver before commit (checksum model), then re-sent.
//!   Like a failed launch it has no data side effect; only the clock and the
//!   counters see it.
//! * **Permanent device loss** — from the given iteration on, the device is
//!   gone. The injector reports it at the iteration boundary (before any
//!   partial mutation) and keeps reporting it until the executor is rebuilt
//!   for the surviving devices.
//!
//! A transient fault *escapes* retry when its configured consecutive failure
//! count reaches the policy's attempt bound. Escaped faults abort the
//! iteration mid-flight — the self-healing layer rolls back to the last
//! checkpoint. A spec fires at most once: replaying the iteration after a
//! rollback finds the fault consumed, which is exactly what "transient"
//! means.
//!
//! Occurrence counting is **per device per kind per iteration** and is kept
//! identical between the virtual-timing replay and the functional replay
//! (both walk a device's kernels / halo pulls in schedule order and skip
//! empty partitions), so a single plan drives both facets coherently.

use std::sync::{Arc, Mutex};

use crate::clock::SimTime;
use crate::device::DeviceId;

/// The kinds of operations a transient fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSiteKind {
    /// A compute kernel launch.
    Kernel,
    /// A halo transfer (all pulls into one destination device count as one
    /// occurrence — the granularity at which the functional replay retries).
    Transfer,
    /// A collective step transfer on an inter-device link (each chunk sent
    /// toward a destination rank counts as one occurrence — the granularity
    /// at which the collective engine retries).
    Link,
}

impl FaultSiteKind {
    /// Dense index used for per-device occurrence counters.
    pub(crate) fn slot(self) -> usize {
        match self {
            FaultSiteKind::Kernel => 0,
            FaultSiteKind::Transfer => 1,
            FaultSiteKind::Link => 2,
        }
    }
}

impl std::fmt::Display for FaultSiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultSiteKind::Kernel => "kernel",
            FaultSiteKind::Transfer => "transfer",
            FaultSiteKind::Link => "link",
        })
    }
}

/// Where a fault fires: the `nth` operation of `kind` on `device` within
/// `iteration` (all counters are per-iteration, per-device, per-kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Logical solver iteration (the executor numbers executions).
    pub iteration: u64,
    /// Target device.
    pub device: DeviceId,
    /// Targeted operation kind.
    pub kind: FaultSiteKind,
    /// Zero-based occurrence index within the iteration.
    pub nth: u32,
}

/// One scheduled transient fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Consecutive failed attempts the operation suffers before it would
    /// succeed. `fails >= RetryPolicy::max_attempts` means the fault escapes
    /// retry and forces a rollback.
    pub fails: u32,
}

/// A permanent interconnect event: from `iteration` on, the peer link
/// between `src` and `dst` is severed (`factor == None`) or degraded to
/// the given fraction of its bandwidth (`factor == Some(f)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEvent {
    /// First iteration at which the event is reported.
    pub iteration: u64,
    /// One end of the affected link.
    pub src: DeviceId,
    /// The other end of the affected link.
    pub dst: DeviceId,
    /// `None` = the wire is gone; `Some(f)` = bandwidth drops to `f`.
    pub factor: Option<f64>,
}

/// A permanent fault reported at an iteration boundary. Permanent faults
/// keep being reported until the caller rebuilds the executor for the
/// degraded hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PermanentFault {
    /// The device is gone for good (evict + repartition to heal).
    DeviceLoss(DeviceId),
    /// The peer link between the pair is gone for good (recompile on
    /// [`crate::topology::Topology::without_link`] to heal).
    LinkLoss(DeviceId, DeviceId),
    /// The peer link between the pair runs at the given fraction of its
    /// bandwidth from now on (recompile on
    /// [`crate::topology::Topology::with_degraded_link`] to heal).
    LinkDegrade(DeviceId, DeviceId, f64),
}

impl std::fmt::Display for PermanentFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermanentFault::DeviceLoss(d) => write!(f, "permanent loss of device {}", d.0),
            PermanentFault::LinkLoss(s, d) => {
                write!(f, "permanent loss of link {}<->{}", s.0, d.0)
            }
            PermanentFault::LinkDegrade(s, d, x) => {
                write!(f, "link {}<->{} degraded to {x} of its bandwidth", s.0, d.0)
            }
        }
    }
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    transients: Vec<FaultSpec>,
    loss: Option<(u64, DeviceId)>,
    link_event: Option<LinkEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.transients.is_empty() && self.loss.is_none() && self.link_event.is_none()
    }

    /// Schedule a transient kernel fault.
    pub fn with_kernel_fault(
        mut self,
        iteration: u64,
        device: DeviceId,
        nth: u32,
        fails: u32,
    ) -> Self {
        self.transients.push(FaultSpec {
            site: FaultSite {
                iteration,
                device,
                kind: FaultSiteKind::Kernel,
                nth,
            },
            fails: fails.max(1),
        });
        self
    }

    /// Schedule a transient (corrupted, dropped-before-commit) transfer.
    pub fn with_transfer_fault(
        mut self,
        iteration: u64,
        device: DeviceId,
        nth: u32,
        fails: u32,
    ) -> Self {
        self.transients.push(FaultSpec {
            site: FaultSite {
                iteration,
                device,
                kind: FaultSiteKind::Transfer,
                nth,
            },
            fails: fails.max(1),
        });
        self
    }

    /// Schedule a transient (corrupted chunk, dropped-before-commit)
    /// collective link transfer: the `nth` chunk sent toward destination
    /// rank `device` within `iteration`.
    pub fn with_link_fault(
        mut self,
        iteration: u64,
        device: DeviceId,
        nth: u32,
        fails: u32,
    ) -> Self {
        self.transients.push(FaultSpec {
            site: FaultSite {
                iteration,
                device,
                kind: FaultSiteKind::Link,
                nth,
            },
            fails: fails.max(1),
        });
        self
    }

    /// Schedule a permanent device loss at the start of `iteration`.
    pub fn with_device_loss(mut self, iteration: u64, device: DeviceId) -> Self {
        self.loss = Some((iteration, device));
        self
    }

    /// Schedule a permanent link loss (both directions) at the start of
    /// `iteration`.
    pub fn with_link_loss(mut self, iteration: u64, src: DeviceId, dst: DeviceId) -> Self {
        self.link_event = Some(LinkEvent {
            iteration,
            src,
            dst,
            factor: None,
        });
        self
    }

    /// Schedule a permanent link degrade to `factor` of its bandwidth
    /// (both directions) at the start of `iteration`.
    pub fn with_link_degrade(
        mut self,
        iteration: u64,
        src: DeviceId,
        dst: DeviceId,
        factor: f64,
    ) -> Self {
        self.link_event = Some(LinkEvent {
            iteration,
            src,
            dst,
            factor: Some(factor),
        });
        self
    }

    /// The scheduled device loss, if any.
    pub fn device_loss(&self) -> Option<(u64, DeviceId)> {
        self.loss
    }

    /// The scheduled permanent link event, if any.
    pub fn link_event(&self) -> Option<LinkEvent> {
        self.link_event
    }

    /// The scheduled transient faults.
    pub fn transients(&self) -> &[FaultSpec] {
        &self.transients
    }

    /// A seeded pseudo-random plan: `n_faults` transient faults spread over
    /// `iterations` iterations and `devices` devices (xorshift64*, fully
    /// deterministic — the shrink-free property harness relies on it).
    pub fn seeded(seed: u64, iterations: u64, devices: usize, n_faults: usize) -> Self {
        // splitmix64-style scramble so nearby seeds diverge fully.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state |= 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut plan = FaultPlan::none();
        for _ in 0..n_faults {
            let iteration = next() % iterations.max(1);
            let device = DeviceId((next() % devices.max(1) as u64) as usize);
            let nth = (next() % 4) as u32;
            let fails = 1 + (next() % 2) as u32;
            plan = if next() % 2 == 0 {
                plan.with_kernel_fault(iteration, device, nth, fails)
            } else {
                plan.with_transfer_fault(iteration, device, nth, fails)
            };
        }
        plan
    }

    /// [`FaultPlan::seeded`] with the link fault domain in the mix: each
    /// transient is a kernel, halo-transfer or collective-link fault with
    /// equal probability (same deterministic generator family).
    pub fn seeded_with_links(seed: u64, iterations: u64, devices: usize, n_faults: usize) -> Self {
        let mut state = seed.wrapping_add(0xD1B5_4A32_D192_ED03);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state |= 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut plan = FaultPlan::none();
        for _ in 0..n_faults {
            let iteration = next() % iterations.max(1);
            let device = DeviceId((next() % devices.max(1) as u64) as usize);
            let nth = (next() % 4) as u32;
            let fails = 1 + (next() % 2) as u32;
            plan = match next() % 3 {
                0 => plan.with_kernel_fault(iteration, device, nth, fails),
                1 => plan.with_transfer_fault(iteration, device, nth, fails),
                _ => plan.with_link_fault(iteration, device, nth, fails),
            };
        }
        plan
    }
}

/// Bounded-retry policy applied to transient faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per operation, including the first
    /// (`1` disables retry: any fault escapes immediately).
    pub max_attempts: u32,
    /// Base backoff before the first re-attempt; doubles per retry.
    pub backoff: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: SimTime::from_us(50.0),
        }
    }
}

impl RetryPolicy {
    /// Virtual time spent in backoff across `failed` consecutive failures
    /// (exponential: `backoff · (2^failed - 1)`).
    pub fn backoff_total(&self, failed: u32) -> SimTime {
        let factor = (1u64 << failed.min(16)) - 1;
        SimTime::from_us(self.backoff.as_us() * factor as f64)
    }
}

/// Lifetime counters of an injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events delivered (transient specs fired + device losses).
    pub injected: u64,
    /// Transient faults that retry absorbed.
    pub recovered: u64,
    /// Re-attempts made (failed launches / transfers that were retried).
    pub retries: u64,
    /// Transient faults that escaped the attempt bound (forced rollbacks).
    pub escaped: u64,
}

/// What the injector decided for one observed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// No fault scheduled here.
    Clean,
    /// The operation failed `failed_attempts` times, then succeeded on a
    /// retry within the attempt bound.
    Recovered {
        /// Number of failed attempts absorbed.
        failed_attempts: u32,
    },
    /// Every allowed attempt failed; the iteration must abort and roll back.
    Escaped {
        /// Number of failed attempts (= the policy's attempt bound).
        failed_attempts: u32,
    },
}

struct InjectorState {
    iteration: u64,
    /// Per-device `[kernel, transfer, link]` occurrence counters, reset
    /// each iteration.
    seen: Vec<[u32; 3]>,
    /// One flag per plan spec: a spec fires at most once.
    consumed: Vec<bool>,
    /// The site whose fault escaped retry in the current iteration, if any
    /// (the functional replay aborts exactly there).
    escape: Option<FaultSite>,
    loss_reported: bool,
    link_reported: bool,
    stats: FaultStats,
}

/// Delivers a [`FaultPlan`] deterministically. Shared (`Arc`) between the
/// virtual-clock queue and the executor; interior mutability keeps the
/// consult sites cheap.
pub struct FaultInjector {
    plan: FaultPlan,
    policy: RetryPolicy,
    state: Mutex<InjectorState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("policy", &self.policy)
            .finish()
    }
}

impl FaultInjector {
    /// Build an injector for `devices` devices.
    pub fn new(plan: FaultPlan, policy: RetryPolicy, devices: usize) -> Arc<Self> {
        let consumed = vec![false; plan.transients.len()];
        Arc::new(FaultInjector {
            plan,
            policy,
            state: Mutex::new(InjectorState {
                iteration: 0,
                seen: vec![[0, 0, 0]; devices],
                consumed,
                escape: None,
                loss_reported: false,
                link_reported: false,
                stats: FaultStats::default(),
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The retry policy faults are judged against.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The plan being delivered.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Start logical iteration `iter`: reset occurrence counters, clear
    /// the escape marker, and report a scheduled permanent fault once its
    /// iteration is reached. Permanent faults keep being reported on every
    /// later call until the caller rebuilds for the degraded hardware
    /// (device loss: surviving devices; link loss/degrade: the mutated
    /// topology). A device loss outranks a link event due at the same
    /// iteration — the dead device subsumes its links.
    pub fn begin_iteration(&self, iter: u64) -> Result<(), PermanentFault> {
        let mut st = self.lock();
        if let Some((at, dev)) = self.plan.loss {
            if iter >= at {
                if !st.loss_reported {
                    st.loss_reported = true;
                    st.stats.injected += 1;
                }
                return Err(PermanentFault::DeviceLoss(dev));
            }
        }
        if let Some(ev) = self.plan.link_event {
            if iter >= ev.iteration {
                if !st.link_reported {
                    st.link_reported = true;
                    st.stats.injected += 1;
                }
                return Err(match ev.factor {
                    None => PermanentFault::LinkLoss(ev.src, ev.dst),
                    Some(f) => PermanentFault::LinkDegrade(ev.src, ev.dst, f),
                });
            }
        }
        st.iteration = iter;
        for s in &mut st.seen {
            *s = [0, 0, 0];
        }
        st.escape = None;
        Ok(())
    }

    /// Observe one operation on `device` and return the fault verdict.
    /// Called from the virtual-timing replay (single-threaded), which keeps
    /// the occurrence order deterministic.
    pub fn observe(&self, device: DeviceId, kind: FaultSiteKind) -> FaultVerdict {
        let mut st = self.lock();
        // Once a fault escapes, the iteration is doomed: the rest of it is
        // never executed functionally, so later operations must not consume
        // specs (the rollback's clean re-run would otherwise diverge from a
        // fault-free run).
        if st.escape.is_some() {
            return FaultVerdict::Clean;
        }
        let slot = kind.slot();
        let nth = st.seen[device.0][slot];
        st.seen[device.0][slot] += 1;
        let iteration = st.iteration;
        let hit = self.plan.transients.iter().enumerate().find(|(i, s)| {
            !st.consumed[*i]
                && s.site.iteration == iteration
                && s.site.device == device
                && s.site.kind == kind
                && s.site.nth == nth
        });
        let (idx, spec) = match hit {
            Some((i, s)) => (i, *s),
            None => return FaultVerdict::Clean,
        };
        st.consumed[idx] = true;
        st.stats.injected += 1;
        if spec.fails >= self.policy.max_attempts {
            let failed = self.policy.max_attempts;
            st.stats.retries += u64::from(failed.saturating_sub(1));
            st.stats.escaped += 1;
            st.escape = Some(spec.site);
            FaultVerdict::Escaped {
                failed_attempts: failed,
            }
        } else {
            st.stats.retries += u64::from(spec.fails);
            st.stats.recovered += 1;
            FaultVerdict::Recovered {
                failed_attempts: spec.fails,
            }
        }
    }

    /// The site whose fault escaped retry in the current iteration, if any.
    pub fn escape_site(&self) -> Option<FaultSite> {
        self.lock().escape
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_observes_clean() {
        let inj = FaultInjector::new(FaultPlan::none(), RetryPolicy::default(), 2);
        inj.begin_iteration(0).unwrap();
        assert_eq!(
            inj.observe(DeviceId(0), FaultSiteKind::Kernel),
            FaultVerdict::Clean
        );
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn transient_fault_fires_at_exact_site_and_only_once() {
        let plan = FaultPlan::none().with_kernel_fault(1, DeviceId(1), 2, 1);
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 2);
        // Iteration 0: nothing.
        inj.begin_iteration(0).unwrap();
        for _ in 0..4 {
            assert_eq!(
                inj.observe(DeviceId(1), FaultSiteKind::Kernel),
                FaultVerdict::Clean
            );
        }
        // Iteration 1: third kernel on device 1 fails once, recovers.
        inj.begin_iteration(1).unwrap();
        assert_eq!(
            inj.observe(DeviceId(1), FaultSiteKind::Kernel),
            FaultVerdict::Clean
        );
        assert_eq!(
            inj.observe(DeviceId(1), FaultSiteKind::Kernel),
            FaultVerdict::Clean
        );
        assert_eq!(
            inj.observe(DeviceId(1), FaultSiteKind::Kernel),
            FaultVerdict::Recovered { failed_attempts: 1 }
        );
        // Replaying the iteration: the spec is consumed — transient.
        inj.begin_iteration(1).unwrap();
        for _ in 0..4 {
            assert_eq!(
                inj.observe(DeviceId(1), FaultSiteKind::Kernel),
                FaultVerdict::Clean
            );
        }
        let s = inj.stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.escaped, 0);
    }

    #[test]
    fn exhausted_retries_escape_and_mark_the_site() {
        let plan = FaultPlan::none().with_transfer_fault(0, DeviceId(0), 0, 99);
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 1);
        inj.begin_iteration(0).unwrap();
        assert_eq!(
            inj.observe(DeviceId(0), FaultSiteKind::Transfer),
            FaultVerdict::Escaped { failed_attempts: 3 }
        );
        let site = inj.escape_site().expect("escape recorded");
        assert_eq!(site.kind, FaultSiteKind::Transfer);
        assert_eq!(site.nth, 0);
        // The escape marker clears at the next iteration boundary.
        inj.begin_iteration(1).unwrap();
        assert!(inj.escape_site().is_none());
        assert_eq!(inj.stats().escaped, 1);
    }

    #[test]
    fn device_loss_is_permanent_and_counted_once() {
        let plan = FaultPlan::none().with_device_loss(3, DeviceId(2));
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 4);
        assert!(inj.begin_iteration(2).is_ok());
        assert_eq!(
            inj.begin_iteration(3),
            Err(PermanentFault::DeviceLoss(DeviceId(2)))
        );
        assert_eq!(
            inj.begin_iteration(4),
            Err(PermanentFault::DeviceLoss(DeviceId(2)))
        );
        assert_eq!(inj.stats().injected, 1);
    }

    #[test]
    fn link_events_are_permanent_and_counted_once() {
        let plan = FaultPlan::none().with_link_loss(2, DeviceId(0), DeviceId(1));
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 4);
        assert!(inj.begin_iteration(1).is_ok());
        assert_eq!(
            inj.begin_iteration(2),
            Err(PermanentFault::LinkLoss(DeviceId(0), DeviceId(1)))
        );
        assert_eq!(
            inj.begin_iteration(5),
            Err(PermanentFault::LinkLoss(DeviceId(0), DeviceId(1)))
        );
        assert_eq!(inj.stats().injected, 1);

        let plan = FaultPlan::none().with_link_degrade(1, DeviceId(2), DeviceId(3), 0.5);
        assert!(!plan.is_empty());
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 4);
        assert_eq!(
            inj.begin_iteration(1),
            Err(PermanentFault::LinkDegrade(DeviceId(2), DeviceId(3), 0.5))
        );
    }

    #[test]
    fn device_loss_outranks_link_event() {
        let plan = FaultPlan::none()
            .with_device_loss(1, DeviceId(0))
            .with_link_loss(1, DeviceId(1), DeviceId(2));
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 4);
        assert_eq!(
            inj.begin_iteration(1),
            Err(PermanentFault::DeviceLoss(DeviceId(0)))
        );
    }

    #[test]
    fn link_transients_count_independently_of_transfers() {
        let plan = FaultPlan::none().with_link_fault(0, DeviceId(1), 1, 1);
        let inj = FaultInjector::new(plan, RetryPolicy::default(), 2);
        inj.begin_iteration(0).unwrap();
        // A halo transfer on the same device does not advance the link
        // occurrence counter.
        assert_eq!(
            inj.observe(DeviceId(1), FaultSiteKind::Transfer),
            FaultVerdict::Clean
        );
        assert_eq!(
            inj.observe(DeviceId(1), FaultSiteKind::Link),
            FaultVerdict::Clean
        );
        assert_eq!(
            inj.observe(DeviceId(1), FaultSiteKind::Link),
            FaultVerdict::Recovered { failed_attempts: 1 }
        );
        assert_eq!(inj.stats().recovered, 1);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 10, 4, 5);
        let b = FaultPlan::seeded(42, 10, 4, 5);
        let c = FaultPlan::seeded(43, 10, 4, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.transients().len(), 5);
        assert_eq!(
            FaultPlan::seeded_with_links(42, 10, 4, 12),
            FaultPlan::seeded_with_links(42, 10, 4, 12)
        );
        // The link-domain generator does produce link sites.
        assert!(FaultPlan::seeded_with_links(42, 10, 4, 12)
            .transients()
            .iter()
            .any(|s| s.site.kind == FaultSiteKind::Link));
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let p = RetryPolicy {
            max_attempts: 4,
            backoff: SimTime::from_us(10.0),
        };
        assert_eq!(p.backoff_total(0).as_us(), 0.0);
        assert_eq!(p.backoff_total(1).as_us(), 10.0);
        assert_eq!(p.backoff_total(2).as_us(), 30.0);
        assert_eq!(p.backoff_total(3).as_us(), 70.0);
    }
}
