//! Stable, process-independent hashing for fingerprints and cache keys.
//!
//! `std::collections::hash_map::DefaultHasher` is randomly seeded per process
//! and its algorithm is unspecified, so it cannot back anything that must be
//! stable across runs — plan-cache keys, topology fingerprints, golden IR
//! dumps. [`StableHasher`] is a plain FNV-1a over the byte stream fed through
//! the [`std::hash::Hasher`] interface: deterministic, dependency-free, and
//! good enough for cache keys (collisions only cost a spurious cache miss or
//! an extra validation, never wrong results — plan rebinding re-checks
//! structure).

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hasher with a stable, documented algorithm.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hash a `Hash` value with the stable hasher in one call.
pub fn stable_hash_of(value: &impl std::hash::Hash) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of "hello" is a published test vector.
        let mut h = StableHasher::new();
        h.write(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        assert_eq!(stable_hash_of(&("a", 1u64)), stable_hash_of(&("a", 1u64)));
        assert_ne!(stable_hash_of(&("a", 1u64)), stable_hash_of(&("a", 2u64)));
        assert_ne!(stable_hash_of(&("ab", "c")), stable_hash_of(&("a", "bc")));
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
