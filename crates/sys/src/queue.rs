//! Queue-based runtime model on a virtual clock.
//!
//! This module mirrors the CUDA execution model the paper builds on
//! (§IV-A): each device owns a set of *streams* (in-order command queues)
//! and *events* (markers recorded on one stream and awaited by others). The
//! difference is that our queues advance a **virtual clock** instead of real
//! hardware: enqueueing an operation of duration `d` on a stream moves that
//! stream's clock forward by `d` starting from the stream's current ready
//! time; waiting on an event raises the stream clock to the event's recorded
//! time.
//!
//! This is sufficient to faithfully replay any schedule the Skeleton layer
//! produces and to measure its makespan, including every overlap effect that
//! OCC optimizations are designed to exploit.

use std::sync::Arc;

use crate::clock::SimTime;
use crate::device::DeviceId;
use crate::error::{NeonSysError, Result};
use crate::fault::{FaultInjector, FaultSiteKind, FaultVerdict};
use crate::topology::LinkResourceId;
use crate::trace::{SpanKind, Trace, TraceSpan};

/// Identifier of a stream: a queue on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId {
    /// Owning device.
    pub device: DeviceId,
    /// Queue index within the device.
    pub index: usize,
}

impl StreamId {
    /// Convenience constructor.
    pub fn new(device: DeviceId, index: usize) -> Self {
        StreamId { device, index }
    }
}

/// Identifier of an event within a [`QueueSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub usize);

/// A point-in-time snapshot of a [`QueueSim`]'s cumulative utilization
/// counters. Subtracting two snapshots (`after - before`) yields the traffic
/// of exactly the window between them, which is how concurrent tenants slice
/// their own usage out of shared counters without a global
/// [`QueueSim::reset_counters`] (which would race under multi-tenancy).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CounterSnapshot {
    /// Kernel launches recorded so far.
    pub kernel_launches: u64,
    /// Bytes swept by recorded kernel launches.
    pub kernel_bytes_moved: u64,
    /// Ghost-zone flops recomputed by temporally-blocked kernels: work a
    /// depth-1 execution would have received from a halo exchange instead.
    pub redundant_flops: u64,
    /// Halo exchange rounds executed (one per halo node per execution,
    /// regardless of how many segment transfers the round performs).
    pub halo_rounds: u64,
    /// Total busy time summed over every link resource.
    pub link_busy: SimTime,
    /// Contention events summed over every link resource.
    pub link_contended: u64,
    /// Bytes moved through the shared host root complex (link resource 0
    /// by [`Topology`] convention) — the slow path on PCIe boxes and on
    /// mixed NVLink-island topologies, where every cross-island transfer
    /// lands here. Hierarchical collectives exist to shrink this number.
    ///
    /// [`Topology`]: crate::topology::Topology
    pub slow_link_bytes: u64,
}

impl CounterSnapshot {
    /// Accumulate another snapshot/delta into this one (used when a job's
    /// traffic spans several executors, e.g. across a device-loss migration).
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        self.kernel_launches += other.kernel_launches;
        self.kernel_bytes_moved += other.kernel_bytes_moved;
        self.redundant_flops += other.redundant_flops;
        self.halo_rounds += other.halo_rounds;
        self.link_busy += other.link_busy;
        self.link_contended += other.link_contended;
        self.slow_link_bytes += other.slow_link_bytes;
    }
}

impl std::ops::Sub for CounterSnapshot {
    type Output = CounterSnapshot;

    /// Delta between two snapshots. Saturates rather than panics so a delta
    /// taken across a [`QueueSim::reset_counters`] degrades to zero instead
    /// of poisoning accounting.
    fn sub(self, before: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            kernel_launches: self.kernel_launches.saturating_sub(before.kernel_launches),
            kernel_bytes_moved: self
                .kernel_bytes_moved
                .saturating_sub(before.kernel_bytes_moved),
            redundant_flops: self.redundant_flops.saturating_sub(before.redundant_flops),
            halo_rounds: self.halo_rounds.saturating_sub(before.halo_rounds),
            link_busy: if self.link_busy.as_us() >= before.link_busy.as_us() {
                self.link_busy - before.link_busy
            } else {
                SimTime::ZERO
            },
            link_contended: self.link_contended.saturating_sub(before.link_contended),
            slow_link_bytes: self.slow_link_bytes.saturating_sub(before.slow_link_bytes),
        }
    }
}

/// Occupancy bookkeeping for one physical link resource.
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    /// Time until which the resource is held by an in-flight transfer.
    busy_until: SimTime,
    /// Total time the resource has been occupied (utilization counter).
    busy_total: SimTime,
    /// Number of transfers that found the resource busy and were delayed.
    contended: u64,
    /// Payload bytes moved over the resource (utilization counter; only
    /// sized enqueues contribute).
    bytes_total: u64,
}

/// Virtual-clock simulator for a set of devices' stream queues.
#[derive(Debug)]
pub struct QueueSim {
    /// `clocks[device][stream]` = time at which that queue becomes idle.
    clocks: Vec<Vec<SimTime>>,
    /// Recorded completion time per event (`None` until recorded).
    events: Vec<Option<SimTime>>,
    /// Occupancy per link resource (indexed by [`LinkResourceId`]; grown on
    /// demand by [`QueueSim::enqueue_transfer`]).
    links: Vec<LinkState>,
    /// Extra delay paid by a transfer that found one of its link resources
    /// busy — models root-complex / switch arbitration.
    link_arbitration: SimTime,
    /// Cumulative kernel launches recorded (utilization counter; survives
    /// [`QueueSim::reset`] like the link counters).
    kernel_launches: u64,
    /// Cumulative bytes swept by recorded kernel launches.
    kernel_bytes_moved: u64,
    /// Cumulative ghost-zone flops recomputed by temporally-blocked launches.
    redundant_flops: u64,
    /// Cumulative halo exchange rounds recorded.
    halo_rounds: u64,
    trace: Option<Trace>,
    /// Fault injector consulted for kernel launches (transfers are consulted
    /// by the executor at halo-node granularity instead).
    injector: Option<Arc<FaultInjector>>,
}

impl QueueSim {
    /// Create a simulator for `num_devices` devices with `streams_per_device`
    /// queues each.
    pub fn new(num_devices: usize, streams_per_device: usize) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(streams_per_device > 0, "need at least one stream");
        QueueSim {
            clocks: vec![vec![SimTime::ZERO; streams_per_device]; num_devices],
            events: Vec::new(),
            links: Vec::new(),
            link_arbitration: SimTime::from_us(2.0),
            kernel_launches: 0,
            kernel_bytes_moved: 0,
            redundant_flops: 0,
            halo_rounds: 0,
            trace: None,
            injector: None,
        }
    }

    /// Install (or clear) the fault injector consulted by kernel enqueues.
    /// Injected failed attempts show up as [`SpanKind::Fault`] spans followed
    /// by exponential backoff idle time on the stream.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.injector = injector;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Model `failed` consecutive failed attempts of an operation of length
    /// `duration` starting no earlier than `ready`: each attempt occupies the
    /// stream for the operation's duration (recorded as a [`SpanKind::Fault`]
    /// span), then backs off exponentially before the next attempt. Returns
    /// the time at which the next (re-)attempt may start.
    fn faulty_attempts(
        &mut self,
        s: StreamId,
        mut ready: SimTime,
        duration: SimTime,
        name: &str,
        failed: u32,
        backoff: SimTime,
    ) -> SimTime {
        for a in 0..failed {
            let start = ready;
            let end = start + duration;
            if let Some(trace) = &mut self.trace {
                trace.push(TraceSpan {
                    device: s.device,
                    stream: s.index,
                    name: format!("{name}!fail{a}"),
                    kind: SpanKind::Fault,
                    start,
                    end,
                });
            }
            let factor = 1u64 << a.min(16);
            ready = end + SimTime::from_us(backoff.as_us() * factor as f64);
        }
        ready
    }

    /// Set the arbitration penalty paid by contended transfers
    /// (default 2 µs).
    pub fn set_link_arbitration(&mut self, t: SimTime) {
        self.link_arbitration = t;
    }

    /// Enable span recording. Disabled by default to keep hot paths cheap.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Take ownership of the recorded trace, leaving tracing enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.as_mut().map(std::mem::take)
    }

    /// Mutable access to the recorded trace, if tracing is enabled (used to
    /// attach utilization counters).
    pub fn trace_mut(&mut self) -> Option<&mut Trace> {
        self.trace.as_mut()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.clocks.len()
    }

    /// Number of streams per device.
    pub fn streams_per_device(&self) -> usize {
        self.clocks[0].len()
    }

    fn clock_mut(&mut self, s: StreamId) -> &mut SimTime {
        &mut self.clocks[s.device.0][s.index]
    }

    /// Current ready time of a stream.
    pub fn now(&self, s: StreamId) -> SimTime {
        self.clocks[s.device.0][s.index]
    }

    /// Allocate a fresh, unrecorded event.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(None);
        EventId(self.events.len() - 1)
    }

    /// Enqueue an operation of length `duration` on stream `s`, not starting
    /// before `earliest`. Returns the `(start, end)` span.
    ///
    /// If a fault injector is installed and `kind` is [`SpanKind::Kernel`],
    /// the injector is consulted: a recovered fault prepends failed-attempt
    /// spans plus backoff before the successful launch; an escaped fault
    /// records only the failed attempts (the launch never succeeds) and
    /// returns the span of the failed episode.
    pub fn enqueue_from(
        &mut self,
        s: StreamId,
        earliest: SimTime,
        duration: SimTime,
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        if kind == SpanKind::Kernel {
            if let Some(inj) = self.injector.clone() {
                let verdict = inj.observe(s.device, FaultSiteKind::Kernel);
                if verdict != FaultVerdict::Clean {
                    let policy = inj.policy();
                    let first = self.now(s).max(earliest);
                    return match verdict {
                        FaultVerdict::Recovered { failed_attempts } => {
                            let ready = self.faulty_attempts(
                                s,
                                first,
                                duration,
                                name,
                                failed_attempts,
                                policy.backoff,
                            );
                            self.enqueue_from_clean(s, ready, duration, name, kind)
                        }
                        FaultVerdict::Escaped { failed_attempts } => {
                            // All attempts fail; no successful span. The last
                            // backoff gap is not paid (there is no re-attempt).
                            let ready = self.faulty_attempts(
                                s,
                                first,
                                duration,
                                name,
                                failed_attempts,
                                policy.backoff,
                            );
                            let last_gap = 1u64 << failed_attempts.saturating_sub(1).min(16);
                            let end =
                                ready - SimTime::from_us(policy.backoff.as_us() * last_gap as f64);
                            *self.clock_mut(s) = end;
                            (first, end)
                        }
                        FaultVerdict::Clean => unreachable!(),
                    };
                }
            }
        }
        self.enqueue_from_clean(s, earliest, duration, name, kind)
    }

    /// [`QueueSim::enqueue_from`] without the fault-injection consult.
    fn enqueue_from_clean(
        &mut self,
        s: StreamId,
        earliest: SimTime,
        duration: SimTime,
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        let start = self.now(s).max(earliest);
        let end = start + duration;
        *self.clock_mut(s) = end;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceSpan {
                device: s.device,
                stream: s.index,
                name: name.to_string(),
                kind,
                start,
                end,
            });
        }
        (start, end)
    }

    /// Enqueue a transfer occupying the given link `resources`.
    ///
    /// Like [`QueueSim::enqueue_from`], but the transfer additionally holds
    /// every resource in `resources` for its duration: it cannot start while
    /// any of them is still held by an earlier transfer, and if it *was*
    /// delayed by one — i.e. the resources freed up later than the stream and
    /// `earliest` would otherwise allow — it pays the arbitration penalty on
    /// top. This serializes concurrent transfers through a shared physical
    /// link (notably the PCIe host root complex) while leaving transfers on
    /// dedicated links (NVLink pairs) unaffected.
    ///
    /// Per-resource busy totals and contention counts are accumulated as
    /// utilization counters (see [`QueueSim::link_busy_time`]).
    pub fn enqueue_transfer(
        &mut self,
        s: StreamId,
        earliest: SimTime,
        duration: SimTime,
        resources: &[LinkResourceId],
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        self.enqueue_transfer_sized(s, earliest, duration, resources, 0, name, kind)
    }

    /// [`QueueSim::enqueue_transfer`] that additionally attributes `bytes`
    /// of payload to every occupied resource, feeding the per-resource
    /// byte counters ([`QueueSim::link_bytes`]) and the snapshot's
    /// [`CounterSnapshot::slow_link_bytes`]. The timing model is identical
    /// to the unsized variant.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_transfer_sized(
        &mut self,
        s: StreamId,
        earliest: SimTime,
        duration: SimTime,
        resources: &[LinkResourceId],
        bytes: u64,
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        if let Some(&max) = resources.iter().max() {
            if max >= self.links.len() {
                self.links.resize(max + 1, LinkState::default());
            }
        }
        let stream_ready = self.now(s).max(earliest);
        let res_ready = resources
            .iter()
            .map(|&r| self.links[r].busy_until)
            .fold(SimTime::ZERO, SimTime::max);
        let contended = res_ready > stream_ready;
        let mut start = stream_ready.max(res_ready);
        if contended {
            start += self.link_arbitration;
        }
        let end = start + duration;
        *self.clock_mut(s) = end;
        for &r in resources {
            let l = &mut self.links[r];
            l.busy_until = end;
            l.busy_total += end - start;
            l.bytes_total += bytes;
            if contended {
                l.contended += 1;
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceSpan {
                device: s.device,
                stream: s.index,
                name: name.to_string(),
                kind,
                start,
                end,
            });
        }
        (start, end)
    }

    /// [`QueueSim::enqueue_transfer`] with a fault verdict applied.
    ///
    /// Transfers are consulted for faults by the executor at halo-node
    /// granularity (one verdict per destination device), so the verdict is
    /// passed in rather than looked up here. A recovered fault prepends
    /// failed-attempt spans (the corrupted payloads, dropped at the receiver
    /// before commit) plus backoff; an escaped fault records only the failed
    /// attempts and never occupies the link with a successful transfer.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_transfer_with_faults(
        &mut self,
        s: StreamId,
        earliest: SimTime,
        duration: SimTime,
        resources: &[LinkResourceId],
        bytes: u64,
        name: &str,
        kind: SpanKind,
        verdict: FaultVerdict,
        backoff: SimTime,
    ) -> (SimTime, SimTime) {
        match verdict {
            FaultVerdict::Clean => {
                self.enqueue_transfer_sized(s, earliest, duration, resources, bytes, name, kind)
            }
            FaultVerdict::Recovered { failed_attempts } => {
                let first = self.now(s).max(earliest);
                let ready =
                    self.faulty_attempts(s, first, duration, name, failed_attempts, backoff);
                self.enqueue_transfer_sized(s, ready, duration, resources, bytes, name, kind)
            }
            FaultVerdict::Escaped { failed_attempts } => {
                let first = self.now(s).max(earliest);
                let ready =
                    self.faulty_attempts(s, first, duration, name, failed_attempts, backoff);
                let last_gap = 1u64 << failed_attempts.saturating_sub(1).min(16);
                let end = ready - SimTime::from_us(backoff.as_us() * last_gap as f64);
                *self.clock_mut(s) = end;
                (first, end)
            }
        }
    }

    /// Zero the cumulative utilization counters (kernel launches, bytes
    /// moved, per-link busy totals and contention counts) without touching
    /// clocks, events or the trace. [`QueueSim::reset`] deliberately keeps
    /// these counters so multi-execution reports accumulate.
    ///
    /// This is a *global* reset: under multi-tenancy (several jobs sharing
    /// one process, as in `neon-serve`) it erases everyone's counters, not
    /// just the caller's. Prefer [`QueueSim::counters_snapshot`] and delta
    /// subtraction, which compose; this method is kept for single-owner
    /// callers and tests.
    pub fn reset_counters(&mut self) {
        self.kernel_launches = 0;
        self.kernel_bytes_moved = 0;
        self.redundant_flops = 0;
        self.halo_rounds = 0;
        for l in &mut self.links {
            l.busy_total = SimTime::ZERO;
            l.contended = 0;
            l.bytes_total = 0;
        }
    }

    /// Snapshot the cumulative utilization counters. Take one snapshot
    /// before a measured (or tenant-attributed) window and one after;
    /// `after - before` is the window's own traffic, untouched by whatever
    /// other jobs did to the same counters in between their own windows.
    pub fn counters_snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            kernel_launches: self.kernel_launches,
            kernel_bytes_moved: self.kernel_bytes_moved,
            redundant_flops: self.redundant_flops,
            halo_rounds: self.halo_rounds,
            link_busy: self.links.iter().map(|l| l.busy_total).sum(),
            link_contended: self.links.iter().map(|l| l.contended).sum(),
            slow_link_bytes: self.links.first().map_or(0, |l| l.bytes_total),
        }
    }

    /// Total occupied time of a link resource (utilization counter; zero for
    /// resources never used).
    pub fn link_busy_time(&self, r: LinkResourceId) -> SimTime {
        self.links.get(r).map_or(SimTime::ZERO, |l| l.busy_total)
    }

    /// Number of transfers that found link resource `r` busy and were
    /// delayed behind it.
    pub fn link_contention_events(&self, r: LinkResourceId) -> u64 {
        self.links.get(r).map_or(0, |l| l.contended)
    }

    /// Payload bytes attributed to link resource `r` by sized transfers
    /// (utilization counter; zero for resources never used).
    pub fn link_bytes(&self, r: LinkResourceId) -> u64 {
        self.links.get(r).map_or(0, |l| l.bytes_total)
    }

    /// Record one kernel launch sweeping `bytes` (utilization counter; the
    /// executor calls this once per compute launch it enqueues).
    pub fn record_launch(&mut self, bytes: u64) {
        self.kernel_launches += 1;
        self.kernel_bytes_moved += bytes;
    }

    /// Cumulative kernel launches recorded since construction (survives
    /// [`QueueSim::reset`]).
    pub fn kernel_launches(&self) -> u64 {
        self.kernel_launches
    }

    /// Cumulative bytes swept by recorded kernel launches.
    pub fn kernel_bytes_moved(&self) -> u64 {
        self.kernel_bytes_moved
    }

    /// Record ghost-zone flops a temporally-blocked launch recomputed
    /// instead of receiving via halo exchange (utilization counter).
    pub fn record_redundant_flops(&mut self, flops: u64) {
        self.redundant_flops += flops;
    }

    /// Cumulative ghost-zone flops recomputed by temporally-blocked launches.
    pub fn redundant_flops(&self) -> u64 {
        self.redundant_flops
    }

    /// Record one halo exchange round (all segments of one halo node).
    pub fn record_halo_round(&mut self) {
        self.halo_rounds += 1;
    }

    /// Cumulative halo exchange rounds recorded.
    pub fn halo_rounds(&self) -> u64 {
        self.halo_rounds
    }

    /// Number of link resources touched so far.
    pub fn num_link_resources(&self) -> usize {
        self.links.len()
    }

    /// Enqueue an operation of length `duration` on stream `s` at the
    /// stream's current ready time. Returns the `(start, end)` span.
    pub fn enqueue(
        &mut self,
        s: StreamId,
        duration: SimTime,
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        self.enqueue_from(s, SimTime::ZERO, duration, name, kind)
    }

    /// Record `event` as completing at stream `s`'s current ready time.
    ///
    /// Re-recording overwrites the previous time (CUDA semantics).
    pub fn record_event(&mut self, s: StreamId, event: EventId) {
        let t = self.now(s);
        self.events[event.0] = Some(t);
    }

    /// Make stream `s` wait for `event`: its clock is raised to the event's
    /// recorded time (no-op if the event completed earlier than `now`).
    pub fn wait_event(&mut self, s: StreamId, event: EventId) -> Result<()> {
        let t = self.events[event.0].ok_or(NeonSysError::EventNeverRecorded { event: event.0 })?;
        let c = self.clock_mut(s);
        *c = c.max(t);
        Ok(())
    }

    /// The recorded time of an event, if any.
    pub fn event_time(&self, event: EventId) -> Option<SimTime> {
        self.events[event.0]
    }

    /// Device-wide synchronization: every stream of `device` is raised to the
    /// device's latest stream time. Returns that time.
    pub fn sync_device(&mut self, device: DeviceId) -> SimTime {
        let t = self.clocks[device.0]
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        for c in &mut self.clocks[device.0] {
            *c = t;
        }
        t
    }

    /// Global barrier: all streams of all devices are raised to the global
    /// maximum. Returns that time.
    pub fn sync_all(&mut self) -> SimTime {
        let t = self.makespan();
        for dev in &mut self.clocks {
            for c in dev.iter_mut() {
                *c = t;
            }
        }
        t
    }

    /// Latest ready time over all streams — the makespan so far.
    pub fn makespan(&self) -> SimTime {
        self.clocks
            .iter()
            .flat_map(|d| d.iter().copied())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Reset all clocks and forget all events. The trace, if any, is kept,
    /// and so are the per-link utilization counters; only the links'
    /// `busy_until` occupancy is rewound with the clocks.
    pub fn reset(&mut self) {
        for dev in &mut self.clocks {
            for c in dev.iter_mut() {
                *c = SimTime::ZERO;
            }
        }
        for l in &mut self.links {
            l.busy_until = SimTime::ZERO;
        }
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: usize, i: usize) -> StreamId {
        StreamId::new(DeviceId(d), i)
    }

    #[test]
    fn sequential_enqueue_advances_clock() {
        let mut q = QueueSim::new(1, 1);
        let (a0, a1) = q.enqueue(s(0, 0), SimTime::from_us(10.0), "k1", SpanKind::Kernel);
        let (b0, b1) = q.enqueue(s(0, 0), SimTime::from_us(5.0), "k2", SpanKind::Kernel);
        assert_eq!(a0.as_us(), 0.0);
        assert_eq!(a1.as_us(), 10.0);
        assert_eq!(b0.as_us(), 10.0);
        assert_eq!(b1.as_us(), 15.0);
        assert_eq!(q.makespan().as_us(), 15.0);
    }

    #[test]
    fn parallel_streams_overlap() {
        let mut q = QueueSim::new(1, 2);
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "compute", SpanKind::Kernel);
        q.enqueue(s(0, 1), SimTime::from_us(8.0), "copy", SpanKind::Transfer);
        // Overlapped: makespan is max, not sum.
        assert_eq!(q.makespan().as_us(), 10.0);
    }

    #[test]
    fn event_synchronization_orders_streams() {
        let mut q = QueueSim::new(2, 1);
        let e = q.create_event();
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "produce", SpanKind::Kernel);
        q.record_event(s(0, 0), e);
        q.wait_event(s(1, 0), e).unwrap();
        let (start, _) = q.enqueue(s(1, 0), SimTime::from_us(5.0), "consume", SpanKind::Kernel);
        assert_eq!(start.as_us(), 10.0);
    }

    #[test]
    fn waiting_on_past_event_is_noop() {
        let mut q = QueueSim::new(1, 2);
        let e = q.create_event();
        q.record_event(s(0, 0), e); // recorded at t=0
        q.enqueue(s(0, 1), SimTime::from_us(20.0), "busy", SpanKind::Kernel);
        q.wait_event(s(0, 1), e).unwrap();
        assert_eq!(q.now(s(0, 1)).as_us(), 20.0);
    }

    #[test]
    fn unrecorded_event_errors() {
        let mut q = QueueSim::new(1, 1);
        let e = q.create_event();
        assert!(matches!(
            q.wait_event(s(0, 0), e),
            Err(NeonSysError::EventNeverRecorded { event: 0 })
        ));
    }

    #[test]
    fn sync_device_aligns_streams() {
        let mut q = QueueSim::new(2, 2);
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "a", SpanKind::Kernel);
        q.enqueue(s(0, 1), SimTime::from_us(4.0), "b", SpanKind::Kernel);
        q.enqueue(s(1, 0), SimTime::from_us(99.0), "c", SpanKind::Kernel);
        let t = q.sync_device(DeviceId(0));
        assert_eq!(t.as_us(), 10.0);
        assert_eq!(q.now(s(0, 1)).as_us(), 10.0);
        // Other device untouched by device-local sync.
        assert_eq!(q.now(s(1, 0)).as_us(), 99.0);
    }

    #[test]
    fn sync_all_is_global_barrier() {
        let mut q = QueueSim::new(2, 1);
        q.enqueue(s(0, 0), SimTime::from_us(3.0), "a", SpanKind::Kernel);
        q.enqueue(s(1, 0), SimTime::from_us(7.0), "b", SpanKind::Kernel);
        let t = q.sync_all();
        assert_eq!(t.as_us(), 7.0);
        assert_eq!(q.now(s(0, 0)).as_us(), 7.0);
    }

    #[test]
    fn enqueue_from_respects_earliest() {
        let mut q = QueueSim::new(1, 1);
        let (start, end) = q.enqueue_from(
            s(0, 0),
            SimTime::from_us(50.0),
            SimTime::from_us(5.0),
            "late",
            SpanKind::Kernel,
        );
        assert_eq!(start.as_us(), 50.0);
        assert_eq!(end.as_us(), 55.0);
    }

    #[test]
    fn trace_records_spans() {
        let mut q = QueueSim::new(1, 1);
        q.enable_trace();
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "k", SpanKind::Kernel);
        let tr = q.trace().unwrap();
        assert_eq!(tr.spans().len(), 1);
        assert_eq!(tr.spans()[0].name, "k");
    }

    #[test]
    fn reset_clears_clocks_and_events() {
        let mut q = QueueSim::new(1, 1);
        let e = q.create_event();
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "k", SpanKind::Kernel);
        q.record_event(s(0, 0), e);
        q.reset();
        assert_eq!(q.makespan(), SimTime::ZERO);
        let e2 = q.create_event();
        assert_eq!(e2.0, 0);
    }

    #[test]
    fn shared_link_serializes_concurrent_transfers() {
        let mut q = QueueSim::new(2, 1);
        let d = SimTime::from_us(10.0);
        // Two transfers issued at t=0 on different devices, same resource.
        let (a0, a1) =
            q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[0], "t0", SpanKind::Transfer);
        let (b0, b1) =
            q.enqueue_transfer(s(1, 0), SimTime::ZERO, d, &[0], "t1", SpanKind::Transfer);
        assert_eq!(a0.as_us(), 0.0);
        assert_eq!(a1.as_us(), 10.0);
        // Second waits for the link, plus the 2 us arbitration penalty.
        assert_eq!(b0.as_us(), 12.0);
        assert_eq!(b1.as_us(), 22.0);
        assert_eq!(q.link_contention_events(0), 1);
        // Longer than the same two transfers serialized on one stream (20 us).
        assert!(q.makespan().as_us() > 20.0);
    }

    #[test]
    fn dedicated_links_do_not_contend() {
        let mut q = QueueSim::new(2, 1);
        let d = SimTime::from_us(10.0);
        q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[1], "t0", SpanKind::Transfer);
        let (b0, _) = q.enqueue_transfer(s(1, 0), SimTime::ZERO, d, &[2], "t1", SpanKind::Transfer);
        assert_eq!(b0.as_us(), 0.0, "different resources overlap fully");
        assert_eq!(q.link_contention_events(1), 0);
        assert_eq!(q.link_contention_events(2), 0);
    }

    #[test]
    fn back_to_back_same_stream_pays_no_penalty() {
        let mut q = QueueSim::new(1, 1);
        let d = SimTime::from_us(10.0);
        q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[0], "t0", SpanKind::Transfer);
        let (b0, b1) =
            q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[0], "t1", SpanKind::Transfer);
        // The stream itself was busy until 10, so the link being busy until
        // the same moment is not contention.
        assert_eq!(b0.as_us(), 10.0);
        assert_eq!(b1.as_us(), 20.0);
        assert_eq!(q.link_contention_events(0), 0);
        assert_eq!(q.link_busy_time(0).as_us(), 20.0);
    }

    #[test]
    fn link_utilization_counters_accumulate() {
        let mut q = QueueSim::new(2, 1);
        let d = SimTime::from_us(5.0);
        q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[3], "a", SpanKind::Transfer);
        q.enqueue_transfer(s(1, 0), SimTime::ZERO, d, &[3], "b", SpanKind::Collective);
        assert_eq!(q.num_link_resources(), 4);
        assert_eq!(q.link_busy_time(3).as_us(), 10.0);
        assert_eq!(q.link_busy_time(99), SimTime::ZERO);
        q.reset();
        // Counters survive reset; occupancy does not.
        assert_eq!(q.link_busy_time(3).as_us(), 10.0);
        let (c0, _) = q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[3], "c", SpanKind::Transfer);
        assert_eq!(c0.as_us(), 0.0);
    }

    #[test]
    fn kernel_launch_counters_accumulate_and_survive_reset() {
        let mut q = QueueSim::new(1, 1);
        assert_eq!(q.kernel_launches(), 0);
        assert_eq!(q.kernel_bytes_moved(), 0);
        q.record_launch(1024);
        q.record_launch(512);
        assert_eq!(q.kernel_launches(), 2);
        assert_eq!(q.kernel_bytes_moved(), 1536);
        q.reset();
        assert_eq!(q.kernel_launches(), 2, "utilization counters survive reset");
        assert_eq!(q.kernel_bytes_moved(), 1536);
    }

    #[test]
    fn temporal_counters_accumulate_snapshot_and_reset() {
        let mut q = QueueSim::new(1, 1);
        assert_eq!(q.redundant_flops(), 0);
        assert_eq!(q.halo_rounds(), 0);
        q.record_redundant_flops(300);
        q.record_halo_round();
        q.record_halo_round();
        assert_eq!(q.redundant_flops(), 300);
        assert_eq!(q.halo_rounds(), 2);
        q.reset();
        assert_eq!(q.redundant_flops(), 300, "survive queue reset");
        assert_eq!(q.halo_rounds(), 2);
        let before = q.counters_snapshot();
        q.record_redundant_flops(50);
        q.record_halo_round();
        let delta = q.counters_snapshot() - before;
        assert_eq!(delta.redundant_flops, 50);
        assert_eq!(delta.halo_rounds, 1);
        let mut total = CounterSnapshot::default();
        total.accumulate(&delta);
        total.accumulate(&delta);
        assert_eq!(total.redundant_flops, 100);
        assert_eq!(total.halo_rounds, 2);
        q.reset_counters();
        assert_eq!(q.redundant_flops(), 0);
        assert_eq!(q.halo_rounds(), 0);
    }

    #[test]
    fn reset_counters_zeroes_utilization_only() {
        let mut q = QueueSim::new(2, 1);
        let d = SimTime::from_us(10.0);
        q.record_launch(1024);
        q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[0], "a", SpanKind::Transfer);
        q.enqueue_transfer(s(1, 0), SimTime::ZERO, d, &[0], "b", SpanKind::Transfer);
        assert_eq!(q.link_contention_events(0), 1);
        q.reset_counters();
        assert_eq!(q.kernel_launches(), 0);
        assert_eq!(q.kernel_bytes_moved(), 0);
        assert_eq!(q.link_busy_time(0), SimTime::ZERO);
        assert_eq!(q.link_contention_events(0), 0);
        // Clocks are untouched: the streams are still busy.
        assert!(q.makespan().as_us() > 0.0);
    }

    #[test]
    fn counter_snapshots_slice_windows_without_reset() {
        let mut q = QueueSim::new(2, 1);
        let d = SimTime::from_us(10.0);
        q.record_launch(1024);
        q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[0], "a", SpanKind::Transfer);
        let before = q.counters_snapshot();
        // "Tenant" window: one launch, two contending transfers.
        q.record_launch(512);
        q.enqueue_transfer(s(0, 0), SimTime::ZERO, d, &[1], "b", SpanKind::Transfer);
        q.enqueue_transfer(s(1, 0), SimTime::ZERO, d, &[1], "c", SpanKind::Transfer);
        let delta = q.counters_snapshot() - before;
        assert_eq!(delta.kernel_launches, 1);
        assert_eq!(delta.kernel_bytes_moved, 512);
        assert_eq!(delta.link_busy.as_us(), 20.0);
        assert_eq!(delta.link_contended, 1);
        // The cumulative counters were never disturbed.
        assert_eq!(q.kernel_launches(), 2);
        // Deltas accumulate across executors/migrations.
        let mut total = CounterSnapshot::default();
        total.accumulate(&delta);
        total.accumulate(&delta);
        assert_eq!(total.kernel_launches, 2);
        assert_eq!(total.link_busy.as_us(), 40.0);
        // A delta taken across a reset saturates to zero instead of panicking.
        let hi = q.counters_snapshot();
        q.reset_counters();
        let across = q.counters_snapshot() - hi;
        assert_eq!(across, CounterSnapshot::default());
    }

    #[test]
    fn injected_kernel_fault_costs_attempts_plus_backoff() {
        use crate::fault::{FaultInjector, FaultPlan, RetryPolicy};
        let mut q = QueueSim::new(1, 1);
        q.enable_trace();
        let plan = FaultPlan::none().with_kernel_fault(0, DeviceId(0), 1, 2);
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff: SimTime::from_us(5.0),
        };
        let inj = FaultInjector::new(plan, policy, 1);
        inj.begin_iteration(0).unwrap();
        q.set_fault_injector(Some(inj));
        let d = SimTime::from_us(10.0);
        q.enqueue(s(0, 0), d, "k0", SpanKind::Kernel);
        // Second kernel: fails twice (10 + 5, 10 + 10), then succeeds.
        let (start, end) = q.enqueue(s(0, 0), d, "k1", SpanKind::Kernel);
        assert_eq!(start.as_us(), 45.0);
        assert_eq!(end.as_us(), 55.0);
        let tr = q.trace().unwrap();
        let faults: Vec<_> = tr
            .spans()
            .iter()
            .filter(|sp| sp.kind == SpanKind::Fault)
            .collect();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].start.as_us(), 10.0);
        assert_eq!(faults[1].start.as_us(), 25.0);
    }

    #[test]
    fn escaped_kernel_fault_never_succeeds() {
        use crate::fault::{FaultInjector, FaultPlan, RetryPolicy};
        let mut q = QueueSim::new(1, 1);
        q.enable_trace();
        let plan = FaultPlan::none().with_kernel_fault(0, DeviceId(0), 0, 99);
        let policy = RetryPolicy {
            max_attempts: 2,
            backoff: SimTime::from_us(5.0),
        };
        let inj = FaultInjector::new(plan, policy, 1);
        inj.begin_iteration(0).unwrap();
        q.set_fault_injector(Some(inj.clone()));
        let d = SimTime::from_us(10.0);
        // Two failed attempts: [0,10] then backoff 5, [15,25]. No final gap.
        let (start, end) = q.enqueue(s(0, 0), d, "k", SpanKind::Kernel);
        assert_eq!(start.as_us(), 0.0);
        assert_eq!(end.as_us(), 25.0);
        assert!(inj.escape_site().is_some());
        let tr = q.trace().unwrap();
        assert!(tr.spans().iter().all(|sp| sp.kind == SpanKind::Fault));
        assert_eq!(tr.spans().len(), 2);
    }

    #[test]
    fn faulted_transfer_retries_before_occupying_link() {
        use crate::fault::FaultVerdict;
        let mut q = QueueSim::new(1, 1);
        let d = SimTime::from_us(10.0);
        let (start, end) = q.enqueue_transfer_with_faults(
            s(0, 0),
            SimTime::ZERO,
            d,
            &[0],
            256,
            "t",
            SpanKind::Transfer,
            FaultVerdict::Recovered { failed_attempts: 1 },
            SimTime::from_us(5.0),
        );
        // One corrupted send [0,10], backoff 5, clean send [15,25].
        assert_eq!(start.as_us(), 15.0);
        assert_eq!(end.as_us(), 25.0);
        // Only the successful transfer holds the link.
        assert_eq!(q.link_busy_time(0).as_us(), 10.0);
        // And only the committed payload is counted.
        assert_eq!(q.link_bytes(0), 256);
    }

    #[test]
    fn sized_transfers_attribute_bytes_per_resource() {
        let mut q = QueueSim::new(2, 1);
        let d = SimTime::from_us(10.0);
        // Resource 0 is the host root complex by Topology convention: its
        // traffic is the snapshot's slow_link_bytes.
        q.enqueue_transfer_sized(
            s(0, 0),
            SimTime::ZERO,
            d,
            &[0],
            100,
            "slow",
            SpanKind::Transfer,
        );
        q.enqueue_transfer_sized(
            s(1, 0),
            SimTime::ZERO,
            d,
            &[1],
            70,
            "fast",
            SpanKind::Transfer,
        );
        q.enqueue_transfer(
            s(1, 0),
            SimTime::ZERO,
            d,
            &[0],
            "unsized",
            SpanKind::Transfer,
        );
        assert_eq!(q.link_bytes(0), 100);
        assert_eq!(q.link_bytes(1), 70);
        assert_eq!(q.link_bytes(99), 0);
        let before = q.counters_snapshot();
        assert_eq!(before.slow_link_bytes, 100);
        q.enqueue_transfer_sized(
            s(0, 0),
            SimTime::ZERO,
            d,
            &[0],
            25,
            "slow2",
            SpanKind::Transfer,
        );
        let delta = q.counters_snapshot() - before;
        assert_eq!(delta.slow_link_bytes, 25);
        // reset() keeps byte counters, reset_counters() zeroes them.
        q.reset();
        assert_eq!(q.link_bytes(0), 125);
        q.reset_counters();
        assert_eq!(q.link_bytes(0), 0);
        assert_eq!(q.counters_snapshot().slow_link_bytes, 0);
    }

    #[test]
    fn re_recording_event_overwrites() {
        let mut q = QueueSim::new(1, 1);
        let e = q.create_event();
        q.record_event(s(0, 0), e);
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "k", SpanKind::Kernel);
        q.record_event(s(0, 0), e);
        assert_eq!(q.event_time(e).unwrap().as_us(), 10.0);
    }
}
