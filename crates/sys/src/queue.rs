//! Queue-based runtime model on a virtual clock.
//!
//! This module mirrors the CUDA execution model the paper builds on
//! (§IV-A): each device owns a set of *streams* (in-order command queues)
//! and *events* (markers recorded on one stream and awaited by others). The
//! difference is that our queues advance a **virtual clock** instead of real
//! hardware: enqueueing an operation of duration `d` on a stream moves that
//! stream's clock forward by `d` starting from the stream's current ready
//! time; waiting on an event raises the stream clock to the event's recorded
//! time.
//!
//! This is sufficient to faithfully replay any schedule the Skeleton layer
//! produces and to measure its makespan, including every overlap effect that
//! OCC optimizations are designed to exploit.

use crate::clock::SimTime;
use crate::device::DeviceId;
use crate::error::{NeonSysError, Result};
use crate::trace::{SpanKind, Trace, TraceSpan};

/// Identifier of a stream: a queue on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId {
    /// Owning device.
    pub device: DeviceId,
    /// Queue index within the device.
    pub index: usize,
}

impl StreamId {
    /// Convenience constructor.
    pub fn new(device: DeviceId, index: usize) -> Self {
        StreamId { device, index }
    }
}

/// Identifier of an event within a [`QueueSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub usize);

/// Virtual-clock simulator for a set of devices' stream queues.
#[derive(Debug)]
pub struct QueueSim {
    /// `clocks[device][stream]` = time at which that queue becomes idle.
    clocks: Vec<Vec<SimTime>>,
    /// Recorded completion time per event (`None` until recorded).
    events: Vec<Option<SimTime>>,
    trace: Option<Trace>,
}

impl QueueSim {
    /// Create a simulator for `num_devices` devices with `streams_per_device`
    /// queues each.
    pub fn new(num_devices: usize, streams_per_device: usize) -> Self {
        assert!(num_devices > 0, "need at least one device");
        assert!(streams_per_device > 0, "need at least one stream");
        QueueSim {
            clocks: vec![vec![SimTime::ZERO; streams_per_device]; num_devices],
            events: Vec::new(),
            trace: None,
        }
    }

    /// Enable span recording. Disabled by default to keep hot paths cheap.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Take ownership of the recorded trace, leaving tracing enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.as_mut().map(std::mem::take)
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.clocks.len()
    }

    /// Number of streams per device.
    pub fn streams_per_device(&self) -> usize {
        self.clocks[0].len()
    }

    fn clock_mut(&mut self, s: StreamId) -> &mut SimTime {
        &mut self.clocks[s.device.0][s.index]
    }

    /// Current ready time of a stream.
    pub fn now(&self, s: StreamId) -> SimTime {
        self.clocks[s.device.0][s.index]
    }

    /// Allocate a fresh, unrecorded event.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(None);
        EventId(self.events.len() - 1)
    }

    /// Enqueue an operation of length `duration` on stream `s`, not starting
    /// before `earliest`. Returns the `(start, end)` span.
    pub fn enqueue_from(
        &mut self,
        s: StreamId,
        earliest: SimTime,
        duration: SimTime,
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        let start = self.now(s).max(earliest);
        let end = start + duration;
        *self.clock_mut(s) = end;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceSpan {
                device: s.device,
                stream: s.index,
                name: name.to_string(),
                kind,
                start,
                end,
            });
        }
        (start, end)
    }

    /// Enqueue an operation of length `duration` on stream `s` at the
    /// stream's current ready time. Returns the `(start, end)` span.
    pub fn enqueue(
        &mut self,
        s: StreamId,
        duration: SimTime,
        name: &str,
        kind: SpanKind,
    ) -> (SimTime, SimTime) {
        self.enqueue_from(s, SimTime::ZERO, duration, name, kind)
    }

    /// Record `event` as completing at stream `s`'s current ready time.
    ///
    /// Re-recording overwrites the previous time (CUDA semantics).
    pub fn record_event(&mut self, s: StreamId, event: EventId) {
        let t = self.now(s);
        self.events[event.0] = Some(t);
    }

    /// Make stream `s` wait for `event`: its clock is raised to the event's
    /// recorded time (no-op if the event completed earlier than `now`).
    pub fn wait_event(&mut self, s: StreamId, event: EventId) -> Result<()> {
        let t = self.events[event.0].ok_or(NeonSysError::EventNeverRecorded { event: event.0 })?;
        let c = self.clock_mut(s);
        *c = c.max(t);
        Ok(())
    }

    /// The recorded time of an event, if any.
    pub fn event_time(&self, event: EventId) -> Option<SimTime> {
        self.events[event.0]
    }

    /// Device-wide synchronization: every stream of `device` is raised to the
    /// device's latest stream time. Returns that time.
    pub fn sync_device(&mut self, device: DeviceId) -> SimTime {
        let t = self.clocks[device.0]
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        for c in &mut self.clocks[device.0] {
            *c = t;
        }
        t
    }

    /// Global barrier: all streams of all devices are raised to the global
    /// maximum. Returns that time.
    pub fn sync_all(&mut self) -> SimTime {
        let t = self.makespan();
        for dev in &mut self.clocks {
            for c in dev.iter_mut() {
                *c = t;
            }
        }
        t
    }

    /// Latest ready time over all streams — the makespan so far.
    pub fn makespan(&self) -> SimTime {
        self.clocks
            .iter()
            .flat_map(|d| d.iter().copied())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Reset all clocks and forget all events (the trace, if any, is kept).
    pub fn reset(&mut self) {
        for dev in &mut self.clocks {
            for c in dev.iter_mut() {
                *c = SimTime::ZERO;
            }
        }
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(d: usize, i: usize) -> StreamId {
        StreamId::new(DeviceId(d), i)
    }

    #[test]
    fn sequential_enqueue_advances_clock() {
        let mut q = QueueSim::new(1, 1);
        let (a0, a1) = q.enqueue(s(0, 0), SimTime::from_us(10.0), "k1", SpanKind::Kernel);
        let (b0, b1) = q.enqueue(s(0, 0), SimTime::from_us(5.0), "k2", SpanKind::Kernel);
        assert_eq!(a0.as_us(), 0.0);
        assert_eq!(a1.as_us(), 10.0);
        assert_eq!(b0.as_us(), 10.0);
        assert_eq!(b1.as_us(), 15.0);
        assert_eq!(q.makespan().as_us(), 15.0);
    }

    #[test]
    fn parallel_streams_overlap() {
        let mut q = QueueSim::new(1, 2);
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "compute", SpanKind::Kernel);
        q.enqueue(s(0, 1), SimTime::from_us(8.0), "copy", SpanKind::Transfer);
        // Overlapped: makespan is max, not sum.
        assert_eq!(q.makespan().as_us(), 10.0);
    }

    #[test]
    fn event_synchronization_orders_streams() {
        let mut q = QueueSim::new(2, 1);
        let e = q.create_event();
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "produce", SpanKind::Kernel);
        q.record_event(s(0, 0), e);
        q.wait_event(s(1, 0), e).unwrap();
        let (start, _) = q.enqueue(s(1, 0), SimTime::from_us(5.0), "consume", SpanKind::Kernel);
        assert_eq!(start.as_us(), 10.0);
    }

    #[test]
    fn waiting_on_past_event_is_noop() {
        let mut q = QueueSim::new(1, 2);
        let e = q.create_event();
        q.record_event(s(0, 0), e); // recorded at t=0
        q.enqueue(s(0, 1), SimTime::from_us(20.0), "busy", SpanKind::Kernel);
        q.wait_event(s(0, 1), e).unwrap();
        assert_eq!(q.now(s(0, 1)).as_us(), 20.0);
    }

    #[test]
    fn unrecorded_event_errors() {
        let mut q = QueueSim::new(1, 1);
        let e = q.create_event();
        assert!(matches!(
            q.wait_event(s(0, 0), e),
            Err(NeonSysError::EventNeverRecorded { event: 0 })
        ));
    }

    #[test]
    fn sync_device_aligns_streams() {
        let mut q = QueueSim::new(2, 2);
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "a", SpanKind::Kernel);
        q.enqueue(s(0, 1), SimTime::from_us(4.0), "b", SpanKind::Kernel);
        q.enqueue(s(1, 0), SimTime::from_us(99.0), "c", SpanKind::Kernel);
        let t = q.sync_device(DeviceId(0));
        assert_eq!(t.as_us(), 10.0);
        assert_eq!(q.now(s(0, 1)).as_us(), 10.0);
        // Other device untouched by device-local sync.
        assert_eq!(q.now(s(1, 0)).as_us(), 99.0);
    }

    #[test]
    fn sync_all_is_global_barrier() {
        let mut q = QueueSim::new(2, 1);
        q.enqueue(s(0, 0), SimTime::from_us(3.0), "a", SpanKind::Kernel);
        q.enqueue(s(1, 0), SimTime::from_us(7.0), "b", SpanKind::Kernel);
        let t = q.sync_all();
        assert_eq!(t.as_us(), 7.0);
        assert_eq!(q.now(s(0, 0)).as_us(), 7.0);
    }

    #[test]
    fn enqueue_from_respects_earliest() {
        let mut q = QueueSim::new(1, 1);
        let (start, end) = q.enqueue_from(
            s(0, 0),
            SimTime::from_us(50.0),
            SimTime::from_us(5.0),
            "late",
            SpanKind::Kernel,
        );
        assert_eq!(start.as_us(), 50.0);
        assert_eq!(end.as_us(), 55.0);
    }

    #[test]
    fn trace_records_spans() {
        let mut q = QueueSim::new(1, 1);
        q.enable_trace();
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "k", SpanKind::Kernel);
        let tr = q.trace().unwrap();
        assert_eq!(tr.spans().len(), 1);
        assert_eq!(tr.spans()[0].name, "k");
    }

    #[test]
    fn reset_clears_clocks_and_events() {
        let mut q = QueueSim::new(1, 1);
        let e = q.create_event();
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "k", SpanKind::Kernel);
        q.record_event(s(0, 0), e);
        q.reset();
        assert_eq!(q.makespan(), SimTime::ZERO);
        let e2 = q.create_event();
        assert_eq!(e2.0, 0);
    }

    #[test]
    fn re_recording_event_overwrites() {
        let mut q = QueueSim::new(1, 1);
        let e = q.create_event();
        q.record_event(s(0, 0), e);
        q.enqueue(s(0, 0), SimTime::from_us(10.0), "k", SpanKind::Kernel);
        q.record_event(s(0, 0), e);
        assert_eq!(q.event_time(e).unwrap().as_us(), 10.0);
    }
}
