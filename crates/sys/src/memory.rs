//! Per-device memory accounting.
//!
//! Field partitions, halo regions and connectivity tables all register their
//! footprint with the owning device's [`MemoryLedger`]. Exceeding the
//! device's modelled capacity yields [`NeonSysError::OutOfMemory`], which is
//! how the reproduction of Fig. 9 observes the paper's "element-sparse grid
//! runs out of memory at 512³, sparsity 1.0" data point.
//!
//! The ledger is purely an accountant: actual storage lives in ordinary
//! `Vec`s owned by the Set/Domain layers. Tickets release their bytes on
//! drop (RAII), so accounting cannot leak.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::device::DeviceId;
use crate::error::{NeonSysError, Result};

#[derive(Debug)]
struct LedgerInner {
    device: DeviceId,
    capacity: u64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

/// Allocation accountant for one device.
#[derive(Debug, Clone)]
pub struct MemoryLedger {
    inner: Arc<LedgerInner>,
}

impl MemoryLedger {
    /// Create a ledger for `device` with `capacity` bytes.
    pub fn new(device: DeviceId, capacity: u64) -> Self {
        MemoryLedger {
            inner: Arc::new(LedgerInner {
                device,
                capacity,
                in_use: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// Register an allocation of `bytes`, or fail with an OOM error.
    pub fn alloc(&self, bytes: u64) -> Result<AllocationTicket> {
        let mut cur = self.inner.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.inner.capacity {
                return Err(NeonSysError::OutOfMemory {
                    device: self.inner.device,
                    requested: bytes,
                    in_use: cur,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.in_use.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::AcqRel);
                    return Ok(AllocationTicket {
                        ledger: self.clone(),
                        bytes,
                    });
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// The device this ledger accounts for.
    pub fn device(&self) -> DeviceId {
        self.inner.device
    }

    /// Bytes currently registered.
    pub fn in_use(&self) -> u64 {
        self.inner.in_use.load(Ordering::Acquire)
    }

    /// High-water mark of registered bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Acquire)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    fn release(&self, bytes: u64) {
        let prev = self.inner.in_use.fetch_sub(bytes, Ordering::AcqRel);
        debug_assert!(prev >= bytes, "memory ledger release underflow");
    }
}

/// RAII handle for a registered allocation; releases its bytes on drop.
#[derive(Debug)]
pub struct AllocationTicket {
    ledger: MemoryLedger,
    bytes: u64,
}

impl AllocationTicket {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The device holding the allocation.
    pub fn device(&self) -> DeviceId {
        self.ledger.device()
    }
}

impl Drop for AllocationTicket {
    fn drop(&mut self) {
        self.ledger.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release() {
        let ledger = MemoryLedger::new(DeviceId(0), 1000);
        let t1 = ledger.alloc(400).unwrap();
        assert_eq!(ledger.in_use(), 400);
        let t2 = ledger.alloc(600).unwrap();
        assert_eq!(ledger.in_use(), 1000);
        drop(t1);
        assert_eq!(ledger.in_use(), 600);
        drop(t2);
        assert_eq!(ledger.in_use(), 0);
        assert_eq!(ledger.peak(), 1000);
    }

    #[test]
    fn oom_detected() {
        let ledger = MemoryLedger::new(DeviceId(2), 100);
        let _t = ledger.alloc(80).unwrap();
        let err = ledger.alloc(30).unwrap_err();
        match err {
            NeonSysError::OutOfMemory {
                device,
                requested,
                in_use,
                capacity,
            } => {
                assert_eq!(device, DeviceId(2));
                assert_eq!(requested, 30);
                assert_eq!(in_use, 80);
                assert_eq!(capacity, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn failed_alloc_does_not_change_accounting() {
        let ledger = MemoryLedger::new(DeviceId(0), 100);
        let _t = ledger.alloc(90).unwrap();
        assert!(ledger.alloc(20).is_err());
        assert_eq!(ledger.in_use(), 90);
    }

    #[test]
    fn concurrent_allocations_are_consistent() {
        let ledger = MemoryLedger::new(DeviceId(0), 1_000_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = ledger.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let t = l.alloc(10).unwrap();
                        drop(t);
                    }
                });
            }
        });
        assert_eq!(ledger.in_use(), 0);
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let ledger = MemoryLedger::new(DeviceId(0), 0);
        let t = ledger.alloc(0).unwrap();
        assert_eq!(t.bytes(), 0);
    }
}
