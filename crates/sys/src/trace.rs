//! Execution traces on the virtual clock.
//!
//! Every kernel, transfer and synchronization executed by the queue runtime
//! can be recorded as a [`TraceSpan`]. Traces make OCC visible: the Fig. 1
//! reproduction renders them as ASCII timelines, and [`Trace::to_chrome_json`]
//! exports them for `chrome://tracing` / Perfetto.

use std::fmt::Write as _;

use crate::clock::SimTime;
use crate::device::DeviceId;

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A compute kernel.
    Kernel,
    /// An inter-device (or intra-device) memory transfer.
    Transfer,
    /// A synchronization (event wait materialized as stream idle time).
    Sync,
    /// Host-side work.
    Host,
    /// One step of a collective communication primitive (all-reduce, …).
    Collective,
    /// A compile-time pass of the skeleton's pass pipeline (wall-clock time
    /// mapped onto the virtual timeline for inspection, not simulation).
    Compile,
    /// A failed attempt of an injected fault (the retried launch or
    /// corrupted transfer itself; backoff shows as stream idle time).
    Fault,
}

impl SpanKind {
    fn label(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::Transfer => "transfer",
            SpanKind::Sync => "sync",
            SpanKind::Host => "host",
            SpanKind::Collective => "collective",
            SpanKind::Compile => "compile",
            SpanKind::Fault => "fault",
        }
    }
}

/// One span of activity on a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Device the stream belongs to.
    pub device: DeviceId,
    /// Stream index within the device.
    pub stream: usize,
    /// Name of the operation (container name, transfer description, …).
    pub name: String,
    /// Kind of activity.
    pub kind: SpanKind,
    /// Start time on the virtual clock.
    pub start: SimTime,
    /// End time on the virtual clock.
    pub end: SimTime,
}

/// An ordered collection of spans, plus named scalar counters (per-link
/// utilization totals and the like).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    spans: Vec<TraceSpan>,
    counters: Vec<(String, f64)>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a span.
    pub fn push(&mut self, span: TraceSpan) {
        debug_assert!(span.end.as_us() >= span.start.as_us(), "negative span");
        self.spans.push(span);
    }

    /// All recorded spans, in insertion order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Remove all spans and counters.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.counters.clear();
    }

    /// Set a named counter (overwriting any previous value).
    pub fn set_counter(&mut self, name: &str, value: f64) {
        if let Some(c) = self.counters.iter_mut().find(|(n, _)| n == name) {
            c.1 = value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// All counters, in insertion order.
    pub fn counters(&self) -> &[(String, f64)] {
        &self.counters
    }

    /// Latest end time across all spans (zero if empty).
    pub fn end_time(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time attributed to a `(device, stream)` lane.
    pub fn busy_time(&self, device: DeviceId, stream: usize) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.device == device && s.stream == stream)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Total time of spans of a given kind, summed over all lanes.
    pub fn time_by_kind(&self, kind: SpanKind) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Serialize to Chrome `about:tracing` JSON (array-of-events form).
    ///
    /// Written by hand to avoid a JSON dependency; names are escaped for the
    /// characters that can legally appear in container names.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        out.push('[');
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let name = escape_json(&s.name);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid}}}",
                cat = s.kind.label(),
                ts = s.start.as_us(),
                dur = (s.end - s.start).as_us(),
                pid = s.device.0,
                tid = s.stream,
            );
        }
        // Counters as Chrome counter events at the end of the timeline.
        let ts = self.end_time().as_us();
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let name = escape_json(name);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":0,\"args\":{{\"value\":{value:.3}}}}}",
            );
        }
        out.push(']');
        out
    }

    /// Render a fixed-width ASCII timeline, one row per `(device, stream)`,
    /// scaled to `width` columns. Used by the Fig. 1 reproduction.
    pub fn ascii_timeline(&self, width: usize) -> String {
        let end = self.end_time().as_us().max(1e-9);
        let mut lanes: Vec<(DeviceId, usize)> = self
            .spans
            .iter()
            .map(|s| (s.device, s.stream))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        lanes.sort();
        let mut out = String::new();
        for (dev, stream) in lanes {
            let mut row = vec![b'.'; width];
            for s in self
                .spans
                .iter()
                .filter(|s| s.device == dev && s.stream == stream)
            {
                let a = ((s.start.as_us() / end) * width as f64).floor() as usize;
                let b = (((s.end.as_us() / end) * width as f64).ceil() as usize).min(width);
                let ch = match s.kind {
                    SpanKind::Kernel => s.name.bytes().next().unwrap_or(b'K'),
                    SpanKind::Transfer => b'~',
                    SpanKind::Sync => b'|',
                    SpanKind::Host => b'H',
                    SpanKind::Collective => b'#',
                    SpanKind::Compile => b'C',
                    SpanKind::Fault => b'!',
                };
                for c in row.iter_mut().take(b).skip(a) {
                    *c = ch;
                }
            }
            let _ = writeln!(
                out,
                "dev{} s{} |{}|",
                dev.0,
                stream,
                String::from_utf8_lossy(&row)
            );
        }
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(dev: usize, stream: usize, name: &str, kind: SpanKind, a: f64, b: f64) -> TraceSpan {
        TraceSpan {
            device: DeviceId(dev),
            stream,
            name: name.to_string(),
            kind,
            start: SimTime::from_us(a),
            end: SimTime::from_us(b),
        }
    }

    #[test]
    fn end_time_and_busy_time() {
        let mut t = Trace::new();
        t.push(span(0, 0, "a", SpanKind::Kernel, 0.0, 5.0));
        t.push(span(0, 0, "b", SpanKind::Kernel, 7.0, 10.0));
        t.push(span(1, 0, "c", SpanKind::Transfer, 2.0, 12.0));
        assert_eq!(t.end_time().as_us(), 12.0);
        assert_eq!(t.busy_time(DeviceId(0), 0).as_us(), 8.0);
        assert_eq!(t.time_by_kind(SpanKind::Transfer).as_us(), 10.0);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new();
        t.push(span(0, 1, "axpy \"x\"", SpanKind::Kernel, 0.0, 5.0));
        let json = t.to_chrome_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.ends_with(']'));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"dur\":5.000"));
    }

    #[test]
    fn ascii_timeline_has_one_row_per_lane() {
        let mut t = Trace::new();
        t.push(span(0, 0, "map", SpanKind::Kernel, 0.0, 10.0));
        t.push(span(1, 0, "map", SpanKind::Kernel, 0.0, 10.0));
        t.push(span(1, 1, "halo", SpanKind::Transfer, 5.0, 10.0));
        let art = t.ascii_timeline(20);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("dev0 s0"));
        assert!(art.contains("dev1 s1"));
        assert!(art.contains('~'));
    }

    #[test]
    fn counters_roundtrip_and_export() {
        let mut t = Trace::new();
        t.push(span(0, 0, "ar", SpanKind::Collective, 0.0, 4.0));
        t.set_counter("link:host-rc busy_us", 4.0);
        t.set_counter("link:host-rc busy_us", 6.0);
        assert_eq!(t.counters(), &[("link:host-rc busy_us".to_string(), 6.0)]);
        let json = t.to_chrome_json();
        assert!(json.contains("\"cat\":\"collective\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"value\":6.000"), "{json}");
        let art = t.ascii_timeline(8);
        assert!(art.contains('#'), "{art}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new();
        t.push(span(0, 0, "a", SpanKind::Kernel, 0.0, 5.0));
        t.clear();
        assert!(t.spans().is_empty());
        assert_eq!(t.end_time(), SimTime::ZERO);
    }
}
