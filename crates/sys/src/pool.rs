//! Persistent per-device worker pool.
//!
//! The functional execution path runs one host thread per simulated device.
//! Spawning a fresh `std::thread::scope` for every kernel launch costs a
//! thread create/join round-trip per launch — thousands per solver run. A
//! [`WorkerPool`] instead spawns its workers **once** (per `Executor`) and
//! parks them on a condvar between jobs, so the steady-state dispatch cost
//! is a mutex round-trip plus a wake-up.
//!
//! ## Job model
//!
//! [`WorkerPool::run`] hands every worker the *same* closure and each worker
//! calls it with its own index (`0..num_workers`). The closure borrows from
//! the caller's stack; the pool erases the lifetime internally and `run`
//! does not return until every worker has finished the call, which keeps the
//! erasure sound (see the safety comment in [`WorkerPool::run`]).
//!
//! ## Panics
//!
//! A panicking job does not poison the pool: each worker catches unwinds,
//! the first captured payload is re-raised on the *caller's* thread by
//! `run`, and the pool remains usable for subsequent jobs. Dropping the pool
//! signals shutdown and joins all workers.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of physical cores the host offers, probed once.
///
/// Drives every spin-vs-park decision in the functional runtime (and the
/// multi-core gates of the reproduction benches): on a single-core host
/// spinning steals cycles from the very thread being waited for, so all
/// spin budgets collapse to zero there.
pub fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Iterations a pool participant spins before parking on a condvar.
///
/// Back-to-back kernel launches post jobs microseconds apart; on a host
/// with enough cores to run every worker concurrently, a short spin lets
/// workers catch the next epoch without a park/wake round-trip (two
/// context switches each). Oversubscribed hosts get no spin at all.
pub(crate) fn wake_spin() -> usize {
    match host_cores() {
        0 | 1 => 0,
        2 | 3 => 64,
        _ => 512,
    }
}

/// The type every job is erased to. `Sync` because all workers share one
/// reference; the `usize` argument is the worker index.
type Job = &'static (dyn Fn(usize) + Sync);

struct State {
    /// Incremented for every submitted job; workers trigger on the change.
    epoch: u64,
    /// The current job, valid only while `remaining > 0` for this epoch.
    job: Option<Job>,
    /// Workers that have not finished the current job yet.
    remaining: usize,
    /// First panic payload captured from a worker during the current job.
    panic: Option<Box<dyn Any + Send>>,
    /// Set once by `Drop`; workers exit their loop when they observe it.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a new job is posted or shutdown is requested.
    go: Condvar,
    /// Signaled by the last worker to finish the current job.
    done: Condvar,
    /// Lock-free mirror of `state.epoch`, stored before waking workers so
    /// spinning workers catch a fresh job without a mutex round-trip.
    posted: AtomicU64,
    /// Epoch of the last fully completed job; the caller spins on it
    /// briefly before parking on `done` (short kernels finish in
    /// microseconds — a park/wake round-trip would dominate them).
    completed: AtomicU64,
}

/// A fixed-size pool of persistent worker threads, one per simulated
/// device. See the [module docs](self) for the job and panic model.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("num_workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `num_workers` parked worker threads.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "a worker pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            posted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let workers = (0..num_workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("neon-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `f(idx)` on every worker concurrently and wait for all of them.
    ///
    /// If any worker panics inside `f`, the first captured payload is
    /// re-raised here after *all* workers have finished; the pool stays
    /// usable.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        // SAFETY: we erase `&f`'s lifetime to `'static` to store it in the
        // shared state. This is sound because `run` blocks until
        // `remaining == 0`, i.e. every worker has returned from its call
        // into the job, and the job slot is cleared before `run` returns —
        // no worker can observe the pointer after `f` is dropped.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                &f as &(dyn Fn(usize) + Sync),
            )
        };
        let payload = {
            let mut st = self.shared.state.lock().unwrap();
            assert_eq!(st.remaining, 0, "WorkerPool::run is not reentrant");
            st.epoch += 1;
            let epoch = st.epoch;
            st.job = Some(job);
            st.remaining = self.workers.len();
            st.panic = None;
            drop(st);
            // Publish the epoch lock-free first: workers spinning between
            // jobs pick it up without waiting for the condvar wake to
            // percolate through the scheduler.
            self.shared.posted.store(epoch, Ordering::Release);
            self.shared.go.notify_all();

            // Spin briefly before parking — on a multi-core host a short
            // job completes while a park/wake round-trip would still be in
            // flight. The condvar loop below remains the source of truth.
            for _ in 0..wake_spin() {
                if self.shared.completed.load(Ordering::Acquire) >= epoch {
                    break;
                }
                std::hint::spin_loop();
            }
            let mut st = self.shared.state.lock().unwrap();
            while st.remaining != 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            st.panic.take()
        };
        if let Some(p) = payload {
            panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.go.notify_all();
        for w in self.workers.drain(..) {
            // A worker only terminates by observing `shutdown`; it never
            // panics outside a caught job, so join errors are impossible in
            // practice. Ignore them to keep Drop infallible regardless.
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut last_epoch = 0u64;
    loop {
        // Catch back-to-back launches lock-free: the caller publishes the
        // new epoch to `posted` before notifying, so a short spin here
        // skips the park/wake round-trip entirely on busy solvers. The
        // spin budget is zero on single-core hosts, and bounded otherwise
        // so shutdown (observed under the lock) is never delayed long.
        for _ in 0..wake_spin() {
            if shared.posted.load(Ordering::Acquire) != last_epoch {
                break;
            }
            std::hint::spin_loop();
        }
        let job = {
            let mut st = shared.state.lock().unwrap();
            while st.epoch == last_epoch && !st.shutdown {
                st = shared.go.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
            last_epoch = st.epoch;
            st.job.expect("job must be posted for a new epoch")
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| job(idx)));
        let mut st = shared.state.lock().unwrap();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            drop(st);
            // Publish completion for the caller's spin loop, then wake it.
            // Only one thread ever waits on `done` (`run` is not
            // reentrant), so a single wake-up suffices — `notify_all` here
            // would batch-wake nobody else.
            shared.completed.store(last_epoch, Ordering::Release);
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_worker_with_its_index() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.run(|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn reusable_across_many_rounds() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|i| {
                if i == 1 {
                    panic!("kernel exploded");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool is still functional after the panic.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        pool.run(|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn two_pools_coexist() {
        let a = WorkerPool::new(2);
        let b = WorkerPool::new(3);
        let na = AtomicUsize::new(0);
        let nb = AtomicUsize::new(0);
        a.run(|_| {
            na.fetch_add(1, Ordering::SeqCst);
        });
        b.run(|_| {
            nb.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(na.load(Ordering::SeqCst), 2);
        assert_eq!(nb.load(Ordering::SeqCst), 3);
    }
}
