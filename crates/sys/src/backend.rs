//! Back-end configuration: the set of devices an application runs on.
//!
//! A [`Backend`] bundles the device models, the interconnect topology and
//! one [`MemoryLedger`] per device. Every higher layer (grids, fields,
//! skeletons) is parameterized by a `Backend`, which is what lets the same
//! user code run on 1 GPU, 8 GPUs, or a CPU without modification — the
//! paper's portability goal.

use std::sync::Arc;

use crate::device::{DeviceId, DeviceModel};
use crate::error::{NeonSysError, Result};
use crate::memory::MemoryLedger;
use crate::topology::Topology;

/// Class of a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// One or more (simulated) GPUs.
    Gpu,
    /// Single-node CPU execution (one kernel at a time, as in the paper).
    Cpu,
}

#[derive(Debug)]
struct BackendInner {
    kind: BackendKind,
    devices: Vec<DeviceModel>,
    topology: Topology,
    ledgers: Vec<MemoryLedger>,
}

/// A set of devices with their interconnect and memory accounting.
#[derive(Debug, Clone)]
pub struct Backend {
    inner: Arc<BackendInner>,
}

impl Backend {
    /// Build a backend from explicit devices and topology.
    pub fn new(kind: BackendKind, devices: Vec<DeviceModel>, topology: Topology) -> Result<Self> {
        if devices.is_empty() {
            return Err(NeonSysError::InvalidConfig {
                what: "backend requires at least one device".to_string(),
            });
        }
        if topology.num_devices() != devices.len() {
            return Err(NeonSysError::InvalidConfig {
                what: format!(
                    "topology covers {} devices but {} device models were given",
                    topology.num_devices(),
                    devices.len()
                ),
            });
        }
        let ledgers = devices
            .iter()
            .enumerate()
            .map(|(i, d)| MemoryLedger::new(DeviceId(i), d.mem_capacity_bytes))
            .collect();
        Ok(Backend {
            inner: Arc::new(BackendInner {
                kind,
                devices,
                topology,
                ledgers,
            }),
        })
    }

    /// DGX-A100-like backend: `n` A100-40GB GPUs, NVLink all-to-all.
    pub fn dgx_a100(n: usize) -> Self {
        let dev = DeviceModel::a100_40gb();
        let local_bw = dev.mem_bandwidth_gb_s;
        Backend::new(
            BackendKind::Gpu,
            vec![dev; n],
            Topology::nvlink_all_to_all(n, local_bw),
        )
        .expect("valid preset")
    }

    /// Multi-box backend: A100 GPUs in NVLink islands of the given sizes,
    /// bridged across islands over PCIe Gen3 through the host root
    /// complex. `dgx_islands(&[4, 4])` models two 4-GPU boxes — the mixed
    /// regime where hierarchical collectives beat flat ring/tree.
    pub fn dgx_islands(sizes: &[usize]) -> Self {
        let dev = DeviceModel::a100_40gb();
        let local_bw = dev.mem_bandwidth_gb_s;
        let n: usize = sizes.iter().sum();
        Backend::new(
            BackendKind::Gpu,
            vec![dev; n],
            Topology::nvlink_islands(sizes, local_bw),
        )
        .expect("valid preset")
    }

    /// GV100-box-like backend: `n` GV100 GPUs over PCIe Gen3.
    pub fn gv100_pcie(n: usize) -> Self {
        let dev = DeviceModel::gv100();
        let local_bw = dev.mem_bandwidth_gb_s;
        Backend::new(
            BackendKind::Gpu,
            vec![dev; n],
            Topology::pcie_host_staged(n, local_bw),
        )
        .expect("valid preset")
    }

    /// Single-socket CPU backend (serial debugging back end, paper §IV-A).
    pub fn cpu() -> Self {
        let dev = DeviceModel::cpu_socket();
        let local_bw = dev.mem_bandwidth_gb_s;
        Backend::new(
            BackendKind::Cpu,
            vec![dev],
            Topology::nvlink_all_to_all(1, local_bw),
        )
        .expect("valid preset")
    }

    /// Backend kind.
    pub fn kind(&self) -> BackendKind {
        self.inner.kind
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.inner.devices.len()
    }

    /// Iterate over the device ids of this backend.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.num_devices()).map(DeviceId)
    }

    /// The model of device `d`.
    pub fn device(&self, d: DeviceId) -> &DeviceModel {
        &self.inner.devices[d.0]
    }

    /// All device models.
    pub fn devices(&self) -> &[DeviceModel] {
        &self.inner.devices
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The memory ledger of device `d`.
    pub fn ledger(&self, d: DeviceId) -> &MemoryLedger {
        &self.inner.ledgers[d.0]
    }

    /// The backend with device `dead` evicted: its model and topology row
    /// are removed, survivors are renumbered contiguously, and fresh
    /// memory ledgers are created (data objects must be rebuilt — the
    /// self-healing executor restores them from a checkpoint). The new
    /// backend has a different [`Backend::fingerprint`], so stale compiled
    /// plans cannot be rebound to it by accident.
    pub fn without_device(&self, dead: DeviceId) -> Result<Self> {
        self.check_device(dead)?;
        if self.num_devices() == 1 {
            return Err(NeonSysError::InvalidConfig {
                what: "cannot evict the only device of a backend".to_string(),
            });
        }
        let keep: Vec<DeviceId> = self.device_ids().filter(|d| *d != dead).collect();
        self.with_devices(&keep)
    }

    /// The sub-backend induced by the device subset `keep` (space sharing):
    /// device `keep[i]` of `self` becomes device `i` of the result, with its
    /// model, the induced sub-topology and a *fresh* memory ledger. `keep`
    /// must be non-empty, sorted, duplicate-free and in range.
    ///
    /// On a homogeneous fleet every equal-size subset produces the same
    /// [`Backend::fingerprint`], so tenants running on disjoint subsets of
    /// one fleet still share compiled plans through the plan cache.
    pub fn with_devices(&self, keep: &[DeviceId]) -> Result<Self> {
        if keep.is_empty() {
            return Err(NeonSysError::InvalidConfig {
                what: "device subset must be non-empty".to_string(),
            });
        }
        for w in keep.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(NeonSysError::InvalidConfig {
                    what: format!("device subset must be sorted and unique, got {keep:?}"),
                });
            }
        }
        self.check_device(keep[keep.len() - 1])?;
        let devices = keep
            .iter()
            .map(|d| self.inner.devices[d.0].clone())
            .collect();
        Backend::new(
            self.inner.kind,
            devices,
            self.inner.topology.with_devices(keep),
        )
    }

    /// The backend with the peer link between `src` and `dst` severed
    /// (both directions): same devices, fresh ledgers, and the degraded
    /// topology of [`Topology::without_link`]. The fingerprint changes, so
    /// plans compiled for the healthy interconnect cannot be rebound.
    pub fn without_link(&self, src: DeviceId, dst: DeviceId) -> Result<Self> {
        self.check_device(src)?;
        self.check_device(dst)?;
        if src == dst {
            return Err(NeonSysError::InvalidConfig {
                what: "cannot sever a device's local link".to_string(),
            });
        }
        Backend::new(
            self.inner.kind,
            self.inner.devices.clone(),
            self.inner.topology.without_link(src, dst),
        )
    }

    /// The backend with the peer link between `src` and `dst` degraded to
    /// `factor` of its bandwidth (both directions); see
    /// [`Topology::with_degraded_link`].
    pub fn with_degraded_link(&self, src: DeviceId, dst: DeviceId, factor: f64) -> Result<Self> {
        self.check_device(src)?;
        self.check_device(dst)?;
        if src == dst || !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
            return Err(NeonSysError::InvalidConfig {
                what: format!(
                    "link degrade needs two distinct devices and a factor in (0, 1], \
                     got {}<->{} at {factor}",
                    src.0, dst.0
                ),
            });
        }
        Backend::new(
            self.inner.kind,
            self.inner.devices.clone(),
            self.inner.topology.with_degraded_link(src, dst, factor),
        )
    }

    /// Validate a device id against this backend.
    pub fn check_device(&self, d: DeviceId) -> Result<()> {
        if d.0 < self.num_devices() {
            Ok(())
        } else {
            Err(NeonSysError::InvalidDevice {
                device: d,
                num_devices: self.num_devices(),
            })
        }
    }

    /// Whether concurrent kernels on one device are allowed.
    ///
    /// The CPU back end is modelled with a single queue (paper: "we limit
    /// the system to only one kernel at the time").
    pub fn concurrent_kernels(&self) -> bool {
        self.inner.kind == BackendKind::Gpu
    }

    /// Stable fingerprint of the hardware configuration: backend kind, every
    /// device's performance parameters, and the topology fingerprint.
    ///
    /// Two backends with the same fingerprint time every kernel and transfer
    /// identically, so a compiled plan keyed on this value is reusable across
    /// them. Memory-ledger *state* deliberately stays out of the hash.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::hash::StableHasher::new();
        h.write_u8(match self.inner.kind {
            BackendKind::Gpu => 0,
            BackendKind::Cpu => 1,
        });
        h.write_u64(self.inner.devices.len() as u64);
        for d in &self.inner.devices {
            d.name.hash(&mut h);
            h.write_u8(match d.kind {
                crate::device::DeviceKind::Gpu => 0,
                crate::device::DeviceKind::Cpu => 1,
            });
            h.write_u64(d.mem_bandwidth_gb_s.to_bits());
            h.write_u64(d.peak_gflop_s.to_bits());
            h.write_u64(d.kernel_launch_us.to_bits());
            h.write_u64(d.sync_overhead_us.to_bits());
            h.write_u64(d.mem_capacity_bytes);
        }
        h.write_u64(self.inner.topology.fingerprint());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkKind;

    #[test]
    fn dgx_preset() {
        let b = Backend::dgx_a100(8);
        assert_eq!(b.num_devices(), 8);
        assert_eq!(b.kind(), BackendKind::Gpu);
        assert_eq!(
            b.topology().link(DeviceId(0), DeviceId(7)).kind,
            LinkKind::NvLink
        );
        assert!(b.concurrent_kernels());
        assert_eq!(b.ledger(DeviceId(3)).capacity(), 40 << 30);
    }

    #[test]
    fn pcie_preset() {
        let b = Backend::gv100_pcie(4);
        assert_eq!(
            b.topology().link(DeviceId(1), DeviceId(2)).kind,
            LinkKind::PciE3
        );
    }

    #[test]
    fn islands_preset() {
        let b = Backend::dgx_islands(&[2, 2]);
        assert_eq!(b.num_devices(), 4);
        assert_eq!(
            b.topology().link(DeviceId(0), DeviceId(1)).kind,
            LinkKind::NvLink
        );
        assert_eq!(
            b.topology().link(DeviceId(1), DeviceId(2)).kind,
            LinkKind::PciE3
        );
        assert_eq!(b.topology().islands().len(), 2);
        assert_ne!(b.fingerprint(), Backend::dgx_a100(4).fingerprint());
        assert_ne!(b.fingerprint(), Backend::gv100_pcie(4).fingerprint());
    }

    #[test]
    fn cpu_preset_single_queue() {
        let b = Backend::cpu();
        assert_eq!(b.num_devices(), 1);
        assert!(!b.concurrent_kernels());
    }

    #[test]
    fn mismatched_topology_rejected() {
        let err = Backend::new(
            BackendKind::Gpu,
            vec![DeviceModel::a100_40gb(); 3],
            Topology::nvlink_all_to_all(2, 1555.0),
        )
        .unwrap_err();
        assert!(matches!(err, NeonSysError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_backend_rejected() {
        let err = Backend::new(
            BackendKind::Gpu,
            vec![],
            Topology::nvlink_all_to_all(1, 1555.0),
        )
        .unwrap_err();
        assert!(matches!(err, NeonSysError::InvalidConfig { .. }));
    }

    #[test]
    fn check_device_bounds() {
        let b = Backend::dgx_a100(2);
        assert!(b.check_device(DeviceId(1)).is_ok());
        assert!(b.check_device(DeviceId(2)).is_err());
    }

    #[test]
    fn fingerprint_stable_and_sensitive() {
        assert_eq!(
            Backend::dgx_a100(2).fingerprint(),
            Backend::dgx_a100(2).fingerprint()
        );
        assert_ne!(
            Backend::dgx_a100(2).fingerprint(),
            Backend::dgx_a100(4).fingerprint()
        );
        assert_ne!(
            Backend::dgx_a100(2).fingerprint(),
            Backend::gv100_pcie(2).fingerprint()
        );
        assert_ne!(
            Backend::cpu().fingerprint(),
            Backend::dgx_a100(1).fingerprint()
        );
    }

    #[test]
    fn without_device_renumbers_survivors() {
        let b = Backend::dgx_a100(4);
        let evicted = b.without_device(DeviceId(1)).unwrap();
        assert_eq!(evicted.num_devices(), 3);
        assert_eq!(evicted.topology().num_devices(), 3);
        // Survivors keep their models and their links stay NVLink.
        assert_eq!(evicted.device(DeviceId(2)).name, b.device(DeviceId(3)).name);
        assert_eq!(
            evicted.topology().link(DeviceId(0), DeviceId(2)).kind,
            LinkKind::NvLink
        );
        // Eviction changes the fingerprint, so cached plans cannot rebind.
        assert_ne!(evicted.fingerprint(), b.fingerprint());
        assert_eq!(evicted.fingerprint(), Backend::dgx_a100(3).fingerprint());
    }

    #[test]
    fn without_device_rejects_bad_evictions() {
        let b = Backend::dgx_a100(2);
        assert!(b.without_device(DeviceId(5)).is_err());
        let one = b.without_device(DeviceId(0)).unwrap();
        assert!(one.without_device(DeviceId(0)).is_err());
    }

    #[test]
    fn without_device_preserves_host_link() {
        let b = Backend::gv100_pcie(3);
        let evicted = b.without_device(DeviceId(0)).unwrap();
        assert_eq!(
            evicted.topology().host_link().kind,
            b.topology().host_link().kind
        );
        assert_eq!(
            evicted.topology().link(DeviceId(0), DeviceId(1)).kind,
            LinkKind::PciE3
        );
    }

    #[test]
    fn without_link_keeps_devices_and_changes_fingerprint() {
        let b = Backend::dgx_islands(&[2, 2]);
        let cut = b.without_link(DeviceId(0), DeviceId(1)).unwrap();
        assert_eq!(cut.num_devices(), 4);
        assert_eq!(
            cut.topology().link(DeviceId(0), DeviceId(1)).kind,
            LinkKind::PciE3
        );
        // The first box split into singletons; the second is intact.
        assert_eq!(cut.topology().islands().len(), 3);
        assert_ne!(cut.fingerprint(), b.fingerprint());
        assert!(b.without_link(DeviceId(1), DeviceId(1)).is_err());
        assert!(b.without_link(DeviceId(0), DeviceId(9)).is_err());
    }

    #[test]
    fn with_degraded_link_keeps_kind_and_changes_fingerprint() {
        let b = Backend::dgx_a100(4);
        let slow = b.with_degraded_link(DeviceId(0), DeviceId(1), 0.5).unwrap();
        assert_eq!(
            slow.topology().link(DeviceId(0), DeviceId(1)).kind,
            LinkKind::NvLink
        );
        assert_ne!(slow.fingerprint(), b.fingerprint());
        assert!(b.with_degraded_link(DeviceId(0), DeviceId(1), 0.0).is_err());
        assert!(b.with_degraded_link(DeviceId(0), DeviceId(1), 1.5).is_err());
        assert!(b.with_degraded_link(DeviceId(2), DeviceId(2), 0.5).is_err());
    }

    #[test]
    fn with_devices_equal_size_subsets_share_fingerprint() {
        let fleet = Backend::dgx_a100(4);
        let a = fleet.with_devices(&[DeviceId(0), DeviceId(1)]).unwrap();
        let b = fleet.with_devices(&[DeviceId(2), DeviceId(3)]).unwrap();
        assert_eq!(a.num_devices(), 2);
        // Homogeneous fleet: any equal-size subset is plan-compatible.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), Backend::dgx_a100(2).fingerprint());
        assert_ne!(a.fingerprint(), fleet.fingerprint());
        // Subsets get fresh ledgers, not the fleet's.
        assert_eq!(a.ledger(DeviceId(0)).capacity(), 40 << 30);
    }

    #[test]
    fn with_devices_rejects_bad_subsets() {
        let fleet = Backend::dgx_a100(4);
        assert!(fleet.with_devices(&[]).is_err());
        assert!(fleet.with_devices(&[DeviceId(1), DeviceId(1)]).is_err());
        assert!(fleet.with_devices(&[DeviceId(2), DeviceId(1)]).is_err());
        assert!(fleet.with_devices(&[DeviceId(0), DeviceId(4)]).is_err());
    }

    #[test]
    fn with_devices_preserves_links_of_kept_devices() {
        let fleet = Backend::gv100_pcie(4);
        let sub = fleet.with_devices(&[DeviceId(1), DeviceId(3)]).unwrap();
        assert_eq!(
            sub.topology().link(DeviceId(0), DeviceId(1)).kind,
            LinkKind::PciE3
        );
        assert_eq!(
            sub.topology().host_link().kind,
            fleet.topology().host_link().kind
        );
    }

    #[test]
    fn device_ids_iterates_all() {
        let b = Backend::dgx_a100(3);
        let ids: Vec<_> = b.device_ids().collect();
        assert_eq!(ids, vec![DeviceId(0), DeviceId(1), DeviceId(2)]);
    }
}
