//! Radius-2 stencils: the halo machinery must move *two* boundary layers
//! per direction, classify two layers as boundary cells, and resolve
//! neighbours two slabs away — on both grid types.

use neon_domain::{
    DataView, DenseGrid, Dim3, Field, FieldStencil as _, GridLike, Loader, MemLayout, Offset3,
    SparseGrid, Stencil, StorageMode,
};
use neon_set::IterationSpace;
use neon_sys::{Backend, DeviceId};

fn value(x: i32, y: i32, z: i32) -> f64 {
    (x + 100 * y + 10_000 * z) as f64
}

#[test]
fn dense_radius2_views_and_halos() {
    let b = Backend::dgx_a100(3);
    let st = Stencil::star(2);
    let dim = Dim3::new(4, 4, 18);
    let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
    assert_eq!(g.radius(), 2);
    // Middle partition: 2 boundary layers on each side.
    assert_eq!(g.cell_count(DeviceId(1), DataView::Boundary), 4 * 16);
    assert_eq!(g.cell_count(DeviceId(1), DataView::Internal), (6 - 4) * 16);
    // Halo segments move 2 layers each.
    let segs = g.halo_segments(1, MemLayout::SoA);
    for s in &segs {
        assert_eq!(s.len, 2 * 16, "radius-2 halo must move two layers");
    }
}

#[test]
fn dense_radius2_cross_partition_reads() {
    let b = Backend::dgx_a100(3);
    let st = Stencil::star(2);
    let dim = Dim3::new(4, 4, 18);
    let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
    let f = Field::<f64, _>::new(&g, "f", 1, -1.0, MemLayout::SoA).unwrap();
    f.fill(|x, y, z, _| value(x, y, z));
    let up2 = g.slot_of(Offset3::new(0, 0, 2)).unwrap();
    let dn2 = g.slot_of(Offset3::new(0, 0, -2)).unwrap();
    for d in 0..3 {
        let mut ldr = Loader::for_execution(DeviceId(d), 3, DataView::Standard);
        let sv = ldr.read_stencil(&f);
        g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
            let expect_up = if c.z + 2 < dim.z as i32 {
                value(c.x, c.y, c.z + 2)
            } else {
                -1.0
            };
            assert_eq!(sv.ngh(c, up2, 0), expect_up, "at ({},{},{})", c.x, c.y, c.z);
            let expect_dn = if c.z >= 2 {
                value(c.x, c.y, c.z - 2)
            } else {
                -1.0
            };
            assert_eq!(sv.ngh(c, dn2, 0), expect_dn);
        });
    }
}

#[test]
fn sparse_radius2_cross_partition_reads() {
    let b = Backend::dgx_a100(2);
    let st = Stencil::star(2);
    let dim = Dim3::new(4, 4, 16);
    // A plate occupying x < 3 so the mask is nontrivial.
    let g = SparseGrid::new(&b, dim, &[&st], |x, _, _| x < 3, StorageMode::Real).unwrap();
    assert_eq!(g.radius(), 2);
    let f = Field::<f64, _>::new(&g, "f", 2, -5.0, MemLayout::AoS).unwrap();
    f.fill(|x, y, z, k| value(x, y, z) + k as f64 * 0.5);
    let up2 = g.slot_of(Offset3::new(0, 0, 2)).unwrap();
    for d in 0..2 {
        let mut ldr = Loader::for_execution(DeviceId(d), 2, DataView::Standard);
        let sv = ldr.read_stencil(&f);
        g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
            for k in 0..2 {
                let expect = if c.z + 2 < dim.z as i32 {
                    value(c.x, c.y, c.z + 2) + k as f64 * 0.5
                } else {
                    -5.0
                };
                assert_eq!(sv.ngh(c, up2, k), expect, "({},{},{})[{k}]", c.x, c.y, c.z);
            }
        });
    }
}

#[test]
fn radius2_rejects_partitions_thinner_than_two_layers() {
    let b = Backend::dgx_a100(4);
    let st = Stencil::star(2);
    // 12 layers over 4 devices = 3 layers each; middle partitions need 4.
    assert!(DenseGrid::new(&b, Dim3::new(4, 4, 12), &[&st], StorageMode::Real).is_err());
    // 16 layers = 4 each: exactly enough.
    assert!(DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&st], StorageMode::Real).is_ok());
}

#[test]
fn mixed_radius_union_uses_max() {
    let b = Backend::dgx_a100(2);
    let s1 = Stencil::seven_point();
    let s2 = Stencil::star(2);
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 12), &[&s1, &s2], StorageMode::Real).unwrap();
    assert_eq!(g.radius(), 2);
    // Union keeps the 7-point slots first.
    for (i, o) in s1.offsets().iter().enumerate() {
        assert_eq!(g.slot_of(*o), Some(i));
    }
}

#[test]
fn grid_ext_new_field_sugar() {
    use neon_domain::GridExt as _;
    let b = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&st], StorageMode::Real).unwrap();
    // Paper Listing 1 style: the grid creates its fields.
    let velocity = g
        .new_field::<f64>("velocity", 3, 0.0, MemLayout::SoA)
        .unwrap();
    assert_eq!(velocity.card(), 3);
    velocity.fill(|x, _, _, k| x as f64 + k as f64);
    assert_eq!(velocity.get(2, 0, 0, 1), Some(3.0));
}
