//! # neon-domain — the Domain abstraction
//!
//! The third layer of the Neon programming model (paper §IV-C): grids and
//! fields, the domain-specific machinery that completes the multi-GPU
//! *data challenge* — automatic partitioning, data views and halo
//! coherency.
//!
//! * [`DenseGrid`] — every cell of the rectilinear domain is stored.
//! * [`SparseGrid`] — element-sparse: only masked-active cells, with a
//!   connectivity table.
//! * [`BlockSparseGrid`] — sparsity at `B³`-block granularity: per-block
//!   (not per-cell) connectivity at the cost of computing padding cells.
//! * [`Field`] — scalar/vector quantities over a grid, SoA or AoS,
//!   loadable into containers with map/stencil/reduce patterns.
//! * [`Stencil`] — neighbour shapes (7-point, 27-point, D3Q19, D2Q9, …).
//! * [`ops`] — prebuilt BLAS-style containers (AXPY, dot, copy, …) with a
//!   unified interface across grid types.
//!
//! Both grids partition along z into slabs (each device talks to ≤ 2
//! neighbours), classify owned cells into *internal* / *boundary* views
//! based on the registered stencils, and lay boundary cells out
//! contiguously so halo updates are 2 copies per partition (2·cardinality
//! for SoA fields) with no marshaling — all as described in the paper.

pub mod block;
pub mod dense;
pub mod field;
pub mod grid;
pub mod io;
pub mod layout;
pub mod ops;
pub mod sparse;
pub mod stencil;
pub mod view;

pub use block::{BlockRead, BlockSparseGrid, BlockStencil, BlockWrite, BLOCK_NONE};
pub use dense::{DenseGrid, DenseRead, DenseStencil, DenseWrite, PartitionStrategy};
pub use field::{Field, FieldHalo, GridExt};
pub use grid::{
    proportional_slab_partition, slab_partition, weighted_slab_partition, Dim3, FieldParts,
    GridLike,
};
pub use layout::MemLayout;
pub use sparse::{SparseGrid, SparseRead, SparseStencil, SparseWrite, SPARSE_NONE};
pub use stencil::{d2q9_offsets, d3q19_offsets, union_offsets, Offset3, Stencil};
pub use view::{FieldRead, FieldStencil, FieldWrite, HaloSegment};

// Re-export the Set-layer vocabulary domain users constantly need.
pub use neon_set::{
    Cell, Container, DataView, KernelFn, KernelShape, Loader, ScalarSet, StorageMode,
};
