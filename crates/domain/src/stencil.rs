//! Stencil shapes.
//!
//! A [`Stencil`] is an ordered list of neighbour offsets. Grids register
//! the stencils an application will use at construction time (paper
//! §IV-C1: "Neon determines which cells are boundary or internal based on
//! the user-provided stencils at initialization"); the union of all
//! registered offsets determines the halo radius and, for sparse grids,
//! the connectivity table width.

use std::fmt;

/// A relative cell offset `(dx, dy, dz)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Offset3 {
    /// x displacement.
    pub dx: i32,
    /// y displacement.
    pub dy: i32,
    /// z displacement.
    pub dz: i32,
}

impl Offset3 {
    /// Construct an offset.
    pub const fn new(dx: i32, dy: i32, dz: i32) -> Self {
        Offset3 { dx, dy, dz }
    }

    /// The zero offset.
    pub const ZERO: Offset3 = Offset3::new(0, 0, 0);

    /// Chebyshev radius (max absolute component).
    pub fn radius(&self) -> usize {
        self.dx
            .unsigned_abs()
            .max(self.dy.unsigned_abs())
            .max(self.dz.unsigned_abs()) as usize
    }

    /// The opposite offset.
    pub fn opposite(&self) -> Offset3 {
        Offset3::new(-self.dx, -self.dy, -self.dz)
    }
}

impl fmt::Display for Offset3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.dx, self.dy, self.dz)
    }
}

/// An ordered set of neighbour offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stencil {
    name: String,
    offsets: Vec<Offset3>,
}

impl Stencil {
    /// Build from explicit offsets (order is preserved; it defines the
    /// neighbour *slots* kernels index with).
    pub fn new(name: &str, offsets: Vec<Offset3>) -> Self {
        assert!(!offsets.is_empty(), "stencil must have at least one offset");
        Stencil {
            name: name.to_string(),
            offsets,
        }
    }

    /// Name of the stencil.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The offsets, in slot order.
    pub fn offsets(&self) -> &[Offset3] {
        &self.offsets
    }

    /// Number of neighbour slots.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the stencil is empty (never for a valid stencil).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Halo radius required by this stencil (max |dz|, the partition axis;
    /// x/y extents stay within a slab partition).
    pub fn z_radius(&self) -> usize {
        self.offsets
            .iter()
            .map(|o| o.dz.unsigned_abs() as usize)
            .max()
            .unwrap_or(0)
    }

    /// Chebyshev radius over all axes.
    pub fn radius(&self) -> usize {
        self.offsets.iter().map(|o| o.radius()).max().unwrap_or(0)
    }

    /// The slot of `offset`, if present.
    pub fn slot_of(&self, offset: Offset3) -> Option<usize> {
        self.offsets.iter().position(|&o| o == offset)
    }

    /// The classic 7-point (von Neumann) Laplacian stencil: the six face
    /// neighbours. The centre cell is addressed directly, not via a slot.
    pub fn seven_point() -> Self {
        Stencil::new(
            "7-point",
            vec![
                Offset3::new(-1, 0, 0),
                Offset3::new(1, 0, 0),
                Offset3::new(0, -1, 0),
                Offset3::new(0, 1, 0),
                Offset3::new(0, 0, -1),
                Offset3::new(0, 0, 1),
            ],
        )
    }

    /// The 27-point (Moore) stencil: all neighbours in the 3³ cube,
    /// including the centre (slot 13), in z-major order — the layout
    /// finite-element kernels expect.
    pub fn twenty_seven_point() -> Self {
        let mut offsets = Vec::with_capacity(27);
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    offsets.push(Offset3::new(dx, dy, dz));
                }
            }
        }
        Stencil::new("27-point", offsets)
    }

    /// The D3Q19 lattice of the Lattice-Boltzmann method: the rest
    /// direction plus 18 neighbours (6 faces + 12 edges). Slot order
    /// follows the conventional D3Q19 velocity-set enumeration.
    pub fn d3q19() -> Self {
        Stencil::new("D3Q19", d3q19_offsets().to_vec())
    }

    /// The D2Q9 lattice (2-D LBM): rest + 8 neighbours in the z=0 plane.
    pub fn d2q9() -> Self {
        Stencil::new("D2Q9", d2q9_offsets().to_vec())
    }

    /// A star stencil of radius `r`: `±1..±r` along each axis (the shape
    /// of higher-order finite differences, e.g. `r = 2` for 4th order).
    pub fn star(r: usize) -> Self {
        assert!(r >= 1, "star stencil needs radius >= 1");
        let r = r as i32;
        let mut offsets = Vec::with_capacity(6 * r as usize);
        for d in 1..=r {
            offsets.push(Offset3::new(-d, 0, 0));
            offsets.push(Offset3::new(d, 0, 0));
            offsets.push(Offset3::new(0, -d, 0));
            offsets.push(Offset3::new(0, d, 0));
            offsets.push(Offset3::new(0, 0, -d));
            offsets.push(Offset3::new(0, 0, d));
        }
        Stencil::new(&format!("star-{r}"), offsets)
    }

    /// The 5-point stencil in the z=0 plane (2-D Laplacian).
    pub fn five_point_2d() -> Self {
        Stencil::new(
            "5-point-2d",
            vec![
                Offset3::new(-1, 0, 0),
                Offset3::new(1, 0, 0),
                Offset3::new(0, -1, 0),
                Offset3::new(0, 1, 0),
            ],
        )
    }
}

/// The D3Q19 velocity set, slot `q` ↔ `offsets[q]`.
pub fn d3q19_offsets() -> [Offset3; 19] {
    [
        Offset3::new(0, 0, 0),
        Offset3::new(1, 0, 0),
        Offset3::new(-1, 0, 0),
        Offset3::new(0, 1, 0),
        Offset3::new(0, -1, 0),
        Offset3::new(0, 0, 1),
        Offset3::new(0, 0, -1),
        Offset3::new(1, 1, 0),
        Offset3::new(-1, -1, 0),
        Offset3::new(1, -1, 0),
        Offset3::new(-1, 1, 0),
        Offset3::new(1, 0, 1),
        Offset3::new(-1, 0, -1),
        Offset3::new(1, 0, -1),
        Offset3::new(-1, 0, 1),
        Offset3::new(0, 1, 1),
        Offset3::new(0, -1, -1),
        Offset3::new(0, 1, -1),
        Offset3::new(0, -1, 1),
    ]
}

/// The D2Q9 velocity set, slot `q` ↔ `offsets[q]`.
pub fn d2q9_offsets() -> [Offset3; 9] {
    [
        Offset3::new(0, 0, 0),
        Offset3::new(1, 0, 0),
        Offset3::new(0, 1, 0),
        Offset3::new(-1, 0, 0),
        Offset3::new(0, -1, 0),
        Offset3::new(1, 1, 0),
        Offset3::new(-1, 1, 0),
        Offset3::new(-1, -1, 0),
        Offset3::new(1, -1, 0),
    ]
}

/// Union of several stencils' offsets, preserving first-occurrence order
/// (so a single registered stencil keeps its slot numbering verbatim).
pub fn union_offsets(stencils: &[&Stencil]) -> Vec<Offset3> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for s in stencils {
        for &o in s.offsets() {
            if seen.insert(o) {
                out.push(o);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_point_shape() {
        let s = Stencil::seven_point();
        assert_eq!(s.len(), 6);
        assert_eq!(s.z_radius(), 1);
        assert_eq!(s.radius(), 1);
        assert!(s.slot_of(Offset3::ZERO).is_none());
    }

    #[test]
    fn twenty_seven_point_contains_centre() {
        let s = Stencil::twenty_seven_point();
        assert_eq!(s.len(), 27);
        assert_eq!(s.slot_of(Offset3::ZERO), Some(13));
    }

    #[test]
    fn d3q19_has_19_unique_offsets_with_opposites() {
        let s = Stencil::d3q19();
        assert_eq!(s.len(), 19);
        let set: std::collections::HashSet<_> = s.offsets().iter().collect();
        assert_eq!(set.len(), 19);
        // Every non-rest direction has its opposite in the set.
        for o in s.offsets().iter().skip(1) {
            assert!(s.slot_of(o.opposite()).is_some(), "missing opposite of {o}");
        }
        // No offset exceeds radius 1 and none moves along all three axes.
        for o in s.offsets() {
            assert!(o.radius() <= 1);
            assert!(o.dx.abs() + o.dy.abs() + o.dz.abs() <= 2);
        }
    }

    #[test]
    fn d2q9_is_planar() {
        let s = Stencil::d2q9();
        assert_eq!(s.len(), 9);
        assert!(s.offsets().iter().all(|o| o.dz == 0));
        assert_eq!(s.z_radius(), 0);
    }

    #[test]
    fn union_preserves_first_stencil_slots() {
        let a = Stencil::d3q19();
        let b = Stencil::seven_point();
        let u = union_offsets(&[&a, &b]);
        assert_eq!(&u[..19], a.offsets());
        // 7-point offsets are all contained in D3Q19.
        assert_eq!(u.len(), 19);
    }

    #[test]
    fn union_appends_new_offsets() {
        let a = Stencil::seven_point();
        let b = Stencil::twenty_seven_point();
        let u = union_offsets(&[&a, &b]);
        assert_eq!(u.len(), 27);
        assert_eq!(&u[..6], a.offsets());
    }

    #[test]
    fn opposite_round_trip() {
        let o = Offset3::new(1, -1, 0);
        assert_eq!(o.opposite().opposite(), o);
    }

    #[test]
    #[should_panic(expected = "at least one offset")]
    fn empty_stencil_rejected() {
        Stencil::new("empty", vec![]);
    }

    #[test]
    fn star_radius_two() {
        let s = Stencil::star(2);
        assert_eq!(s.len(), 12);
        assert_eq!(s.z_radius(), 2);
        assert_eq!(s.radius(), 2);
        assert!(s.slot_of(Offset3::new(0, 0, 2)).is_some());
        assert!(s.slot_of(Offset3::new(1, 1, 0)).is_none());
    }

    #[test]
    fn star_one_equals_seven_point_set() {
        let a: std::collections::HashSet<_> = Stencil::star(1).offsets().iter().copied().collect();
        let b: std::collections::HashSet<_> =
            Stencil::seven_point().offsets().iter().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn five_point_is_planar() {
        let s = Stencil::five_point_2d();
        assert_eq!(s.len(), 4);
        assert_eq!(s.z_radius(), 0);
    }
}
