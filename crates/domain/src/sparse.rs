//! The element-sparse grid: only active cells are stored, with an explicit
//! connectivity table.
//!
//! The paper's second grid representation (§IV-C2). Cells of interest are
//! selected by a user mask; each partition stores its owned cells in class
//! order
//!
//! ```text
//! [ internal | boundary-low | boundary-high | halo-low | halo-high ]
//! ```
//!
//! so that the cells a neighbour needs (boundary) and the cells received
//! from a neighbour (halo) are contiguous — one copy per direction per
//! partition (times cardinality for SoA), exactly like the dense grid.
//!
//! Neighbour access goes through a per-cell **connectivity table**
//! (`owned_cells × slots` entries): entry `u32::MAX` means the neighbour
//! is inactive or outside, anything else is the local index of the
//! neighbour (owned or halo). The table's memory footprint and per-access
//! traffic are the sparse grid's overhead versus the dense grid — the
//! trade-off Fig. 9 of the paper explores.
//!
//! Partitioning balances **active** cells per device: z-slabs are chosen
//! by per-layer active counts ([`crate::grid::weighted_slab_partition`]).

use std::collections::HashMap;
use std::sync::Arc;

use neon_set::{Cell, ChunkBuffer, DataView, Elem, IterationSpace, RawRead, RawWrite, StorageMode};
use neon_sys::{AllocationTicket, Backend, DeviceId, NeonSysError, Result};

use crate::grid::{weighted_slab_partition, Dim3, FieldParts, GridLike};
use crate::layout::MemLayout;
use crate::stencil::{union_offsets, Offset3, Stencil};
use crate::view::{FieldRead, FieldStencil, FieldWrite, HaloSegment};

/// Connectivity sentinel: neighbour is inactive or outside the domain.
pub const SPARSE_NONE: u32 = u32::MAX;

#[derive(Debug)]
struct SparsePart {
    z0: usize,
    z1: usize,
    n_int: u32,
    n_bnd_lo: u32,
    n_bnd_hi: u32,
    n_halo_lo: u32,
    n_halo_hi: u32,
    /// Coordinates of stored cells (owned then halo), class-ordered.
    /// Empty in virtual mode.
    cells: Vec<(i32, i32, i32)>,
    /// Connectivity: `owned × slots` local indices. Empty in virtual mode.
    conn: Vec<u32>,
    /// Host lookup from coords to local index (owned + halo cells).
    lookup: HashMap<(i32, i32, i32), u32>,
    /// Ledger registrations for connectivity + cell-coordinate storage.
    _tickets: Vec<AllocationTicket>,
}

impl SparsePart {
    fn n_owned(&self) -> u32 {
        self.n_int + self.n_bnd_lo + self.n_bnd_hi
    }
    fn n_halo(&self) -> u32 {
        self.n_halo_lo + self.n_halo_hi
    }
    fn n_stored(&self) -> u32 {
        self.n_owned() + self.n_halo()
    }
}

#[derive(Debug)]
struct SparseInner {
    backend: Backend,
    dim: Dim3,
    radius: usize,
    offsets: Arc<Vec<Offset3>>,
    mode: StorageMode,
    parts: Vec<SparsePart>,
    total_active: u64,
}

/// An element-sparse grid partitioned into active-cell-balanced z-slabs.
#[derive(Clone)]
pub struct SparseGrid {
    inner: Arc<SparseInner>,
}

impl std::fmt::Debug for SparseGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseGrid")
            .field("dim", &self.inner.dim)
            .field("active", &self.inner.total_active)
            .field("radius", &self.inner.radius)
            .field("partitions", &self.inner.parts.len())
            .finish()
    }
}

impl SparseGrid {
    /// Create a sparse grid over the cells where `mask` is true.
    pub fn new(
        backend: &Backend,
        dim: Dim3,
        stencils: &[&Stencil],
        mask: impl Fn(i32, i32, i32) -> bool,
        mode: StorageMode,
    ) -> Result<Self> {
        if dim.count() == 0 {
            return Err(NeonSysError::InvalidConfig {
                what: format!("empty domain {dim}"),
            });
        }
        let n = backend.num_devices();
        if dim.z < n {
            return Err(NeonSysError::InvalidConfig {
                what: format!("{dim} has fewer z-layers than the {n} devices"),
            });
        }
        let offsets = union_offsets(stencils);
        let nslots = offsets.len();
        let radius = offsets
            .iter()
            .map(|o| o.dz.unsigned_abs() as usize)
            .max()
            .unwrap_or(0);

        // One mask pass: per-layer active counts (both modes).
        let mut layer_counts = vec![0u64; dim.z];
        for (z, count) in layer_counts.iter_mut().enumerate() {
            for y in 0..dim.y as i32 {
                for x in 0..dim.x as i32 {
                    if mask(x, y, z as i32) {
                        *count += 1;
                    }
                }
            }
        }
        let total_active: u64 = layer_counts.iter().sum();
        if total_active == 0 {
            return Err(NeonSysError::InvalidConfig {
                what: "sparse grid has no active cells".to_string(),
            });
        }
        let slabs = weighted_slab_partition(&layer_counts, n);

        let layer_sum =
            |a: usize, b: usize| -> u64 { layer_counts[a.min(dim.z)..b.min(dim.z)].iter().sum() };

        let mut parts = Vec::with_capacity(n);
        for (p, &(z0, z1)) in slabs.iter().enumerate() {
            let has_lo = p > 0;
            let has_hi = p + 1 < n;
            let nz = z1 - z0;
            if (has_lo as usize + has_hi as usize) * radius > nz {
                return Err(NeonSysError::InvalidConfig {
                    what: format!("sparse partition [{z0}, {z1}) too thin for radius {radius}"),
                });
            }
            let bl = if has_lo { radius } else { 0 };
            let bh = if has_hi { radius } else { 0 };
            let n_bnd_lo = layer_sum(z0, z0 + bl) as u32;
            let n_bnd_hi = layer_sum(z1 - bh, z1) as u32;
            // Guard against double counting when bl + bh == nz.
            let n_owned = layer_sum(z0, z1) as u32;
            let n_int = n_owned - n_bnd_lo - n_bnd_hi;
            let n_halo_lo = if has_lo {
                layer_sum(z0 - radius, z0) as u32
            } else {
                0
            };
            let n_halo_hi = if has_hi {
                layer_sum(z1, z1 + radius) as u32
            } else {
                0
            };
            let n_stored = (n_owned + n_halo_lo + n_halo_hi) as u64;

            // Account device memory: connectivity (u32 per slot per owned
            // cell) + stored-cell coordinates (3 × i32).
            let dev = DeviceId(p);
            let conn_bytes = n_owned as u64 * nslots as u64 * 4;
            let coord_bytes = n_stored * 12;
            let tickets = vec![
                backend.ledger(dev).alloc(conn_bytes)?,
                backend.ledger(dev).alloc(coord_bytes)?,
            ];

            let (cells, conn, lookup) = if mode == StorageMode::Real {
                build_partition_tables(dim, &mask, &offsets, radius, z0, z1, bl, bh, has_lo, has_hi)
            } else {
                (Vec::new(), Vec::new(), HashMap::new())
            };

            if mode == StorageMode::Real {
                debug_assert_eq!(cells.len() as u64, n_stored);
            }
            if n_stored > u32::MAX as u64 {
                return Err(NeonSysError::InvalidConfig {
                    what: "sparse partition exceeds 32-bit cell indices".to_string(),
                });
            }

            parts.push(SparsePart {
                z0,
                z1,
                n_int,
                n_bnd_lo,
                n_bnd_hi,
                n_halo_lo,
                n_halo_hi,
                cells,
                conn,
                lookup,
                _tickets: tickets,
            });
        }

        // Cross-partition consistency: boundary/halo mirrors must agree.
        for p in 0..n.saturating_sub(1) {
            assert_eq!(
                parts[p].n_bnd_hi,
                parts[p + 1].n_halo_lo,
                "boundary/halo mismatch between partitions {p} and {}",
                p + 1
            );
            assert_eq!(parts[p + 1].n_bnd_lo, parts[p].n_halo_hi);
        }

        Ok(SparseGrid {
            inner: Arc::new(SparseInner {
                backend: backend.clone(),
                dim,
                radius,
                offsets: Arc::new(offsets),
                mode,
                parts,
                total_active,
            }),
        })
    }

    fn part(&self, dev: DeviceId) -> &SparsePart {
        &self.inner.parts[dev.0]
    }

    /// Owned z-range of device `dev`.
    pub fn owned_z_range(&self, dev: DeviceId) -> (usize, usize) {
        let p = self.part(dev);
        (p.z0, p.z1)
    }

    /// Number of stored (owned + halo) cells on `dev`.
    pub fn stored_cells(&self, dev: DeviceId) -> u64 {
        self.part(dev).n_stored() as u64
    }
}

/// Cell list, connectivity table and coordinate lookup of one partition.
type PartitionTables = (
    Vec<(i32, i32, i32)>,
    Vec<u32>,
    HashMap<(i32, i32, i32), u32>,
);

/// Build the cell list, connectivity table and lookup map of one partition.
#[allow(clippy::too_many_arguments)]
fn build_partition_tables(
    dim: Dim3,
    mask: &impl Fn(i32, i32, i32) -> bool,
    offsets: &[Offset3],
    radius: usize,
    z0: usize,
    z1: usize,
    bl: usize,
    bh: usize,
    has_lo: bool,
    has_hi: bool,
) -> PartitionTables {
    let collect_range = |za: i64, zb: i64| -> Vec<(i32, i32, i32)> {
        let za = za.max(0) as usize;
        let zb = (zb.max(0) as usize).min(dim.z);
        let mut v = Vec::new();
        for z in za..zb {
            for y in 0..dim.y as i32 {
                for x in 0..dim.x as i32 {
                    if mask(x, y, z as i32) {
                        v.push((x, y, z as i32));
                    }
                }
            }
        }
        v
    };

    let internal = collect_range((z0 + bl) as i64, (z1 - bh) as i64);
    let bnd_lo = collect_range(z0 as i64, (z0 + bl) as i64);
    let bnd_hi = collect_range((z1 - bh) as i64, z1 as i64);
    let halo_lo = if has_lo {
        collect_range(z0 as i64 - radius as i64, z0 as i64)
    } else {
        Vec::new()
    };
    let halo_hi = if has_hi {
        collect_range(z1 as i64, z1 as i64 + radius as i64)
    } else {
        Vec::new()
    };

    let mut cells = Vec::with_capacity(
        internal.len() + bnd_lo.len() + bnd_hi.len() + halo_lo.len() + halo_hi.len(),
    );
    cells.extend(internal);
    cells.extend(bnd_lo);
    cells.extend(bnd_hi);
    let n_owned = cells.len();
    cells.extend(halo_lo);
    cells.extend(halo_hi);

    let lookup: HashMap<(i32, i32, i32), u32> = cells
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i as u32))
        .collect();

    let nslots = offsets.len();
    let mut conn = vec![SPARSE_NONE; n_owned * nslots];
    for (i, &(x, y, z)) in cells[..n_owned].iter().enumerate() {
        for (s, o) in offsets.iter().enumerate() {
            let (nx, ny, nz) = (x + o.dx, y + o.dy, z + o.dz);
            if !dim.contains(nx, ny, nz) || !mask(nx, ny, nz) {
                continue;
            }
            let idx = lookup.get(&(nx, ny, nz)).copied().unwrap_or_else(|| {
                panic!(
                    "active neighbour ({nx},{ny},{nz}) of ({x},{y},{z}) not stored; \
                     halo radius {radius} violated"
                )
            });
            conn[i * nslots + s] = idx;
        }
    }
    (cells, conn, lookup)
}

impl IterationSpace for SparseGrid {
    fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    fn space_id(&self) -> Option<u64> {
        Some(Arc::as_ptr(&self.inner) as *const () as u64)
    }

    fn cell_count(&self, dev: DeviceId, view: DataView) -> u64 {
        let p = self.part(dev);
        match view {
            DataView::Standard => p.n_owned() as u64,
            DataView::Internal => p.n_int as u64,
            DataView::Boundary => (p.n_bnd_lo + p.n_bnd_hi) as u64,
        }
    }

    fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
        assert!(
            self.inner.mode == StorageMode::Real,
            "sparse grid has virtual storage; functional iteration unavailable"
        );
        let p = self.part(dev);
        let (a, b) = match view {
            DataView::Standard => (0u32, p.n_owned()),
            DataView::Internal => (0, p.n_int),
            DataView::Boundary => (p.n_int, p.n_owned()),
        };
        for i in a..b {
            let (x, y, z) = p.cells[i as usize];
            f(Cell::new(i, x, y, z));
        }
    }

    fn for_each_cell_chunked(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(&[Cell])) {
        assert!(
            self.inner.mode == StorageMode::Real,
            "sparse grid has virtual storage; functional iteration unavailable"
        );
        let p = self.part(dev);
        let (a, b) = match view {
            DataView::Standard => (0u32, p.n_owned()),
            DataView::Internal => (0, p.n_int),
            DataView::Boundary => (p.n_int, p.n_owned()),
        };
        // Monomorphized producer loop over the class-ordered cell list;
        // `ChunkBuffer` owns the buffering, one virtual call per chunk.
        let mut chunks = ChunkBuffer::new();
        for i in a..b {
            let (x, y, z) = p.cells[i as usize];
            chunks.push(Cell::new(i, x, y, z), f);
        }
        chunks.flush(f);
    }

    fn supports_functional(&self) -> bool {
        self.inner.mode == StorageMode::Real
    }
}

/// Cell-local read view of a sparse partition.
pub struct SparseRead<T: Elem> {
    raw: RawRead<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
}

impl<T: Elem> FieldRead<T> for SparseRead<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    fn card(&self) -> usize {
        self.card
    }
}

/// Neighbourhood read view of a sparse partition (connectivity-table
/// based).
pub struct SparseStencil<T: Elem> {
    raw: RawRead<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
    outside: T,
    grid: Arc<SparseInner>,
    dev: DeviceId,
    nslots: usize,
}

impl<T: Elem> FieldRead<T> for SparseStencil<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    fn card(&self) -> usize {
        self.card
    }
}

impl<T: Elem> FieldStencil<T> for SparseStencil<T> {
    #[inline]
    fn ngh(&self, cell: Cell, slot: usize, comp: usize) -> T {
        let conn = &self.grid.parts[self.dev.0].conn;
        let n = conn[cell.idx() * self.nslots + slot];
        if n == SPARSE_NONE {
            self.outside
        } else {
            self.raw
                .get(self.layout.index(n as usize, comp, self.stride, self.card))
        }
    }

    #[inline]
    fn ngh_active(&self, cell: Cell, slot: usize) -> bool {
        let conn = &self.grid.parts[self.dev.0].conn;
        conn[cell.idx() * self.nslots + slot] != SPARSE_NONE
    }

    fn num_slots(&self) -> usize {
        self.nslots
    }
}

/// Write view of a sparse partition.
pub struct SparseWrite<T: Elem> {
    raw: RawWrite<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
}

impl<T: Elem> FieldWrite<T> for SparseWrite<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    #[inline]
    fn set(&self, cell: Cell, comp: usize, v: T) {
        self.raw.set(
            self.layout.index(cell.idx(), comp, self.stride, self.card),
            v,
        )
    }
    fn card(&self) -> usize {
        self.card
    }
}

impl GridLike for SparseGrid {
    type ReadView<T: Elem> = SparseRead<T>;
    type StencilView<T: Elem> = SparseStencil<T>;
    type WriteView<T: Elem> = SparseWrite<T>;

    fn backend(&self) -> &Backend {
        &self.inner.backend
    }

    fn dim(&self) -> Dim3 {
        self.inner.dim
    }

    fn storage_mode(&self) -> StorageMode {
        self.inner.mode
    }

    fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    fn radius(&self) -> usize {
        self.inner.radius
    }

    fn active_cells(&self) -> u64 {
        self.inner.total_active
    }

    fn owned_cells(&self, dev: DeviceId, view: DataView) -> u64 {
        self.cell_count(dev, view)
    }

    fn alloc_len(&self, dev: DeviceId) -> usize {
        self.part(dev).n_stored() as usize
    }

    fn as_space(&self) -> Arc<dyn IterationSpace> {
        Arc::new(self.clone())
    }

    fn union_offsets(&self) -> &[Offset3] {
        &self.inner.offsets
    }

    fn stencil_extra_bytes_per_cell(&self) -> u64 {
        // Each iterated cell streams its connectivity row.
        self.inner.offsets.len() as u64 * 4
    }

    fn halo_segments(&self, card: usize, layout: MemLayout) -> Vec<HaloSegment> {
        if self.inner.radius == 0 || self.inner.parts.len() == 1 {
            return Vec::new();
        }
        let mut segs = Vec::new();
        for i in 0..self.inner.parts.len() - 1 {
            let lo = DeviceId(i);
            let hi = DeviceId(i + 1);
            let plo = self.part(lo);
            let phi = self.part(hi);
            // Upward: lo's boundary-high → hi's halo-low.
            let up_src = (plo.n_int + plo.n_bnd_lo) as usize;
            let up_dst = phi.n_owned() as usize;
            let up_len = plo.n_bnd_hi as usize;
            // Downward: hi's boundary-low → lo's halo-high.
            let dn_src = phi.n_int as usize;
            let dn_dst = (plo.n_owned() + plo.n_halo_lo) as usize;
            let dn_len = phi.n_bnd_lo as usize;
            match layout {
                MemLayout::SoA => {
                    let stride_lo = self.alloc_len(lo);
                    let stride_hi = self.alloc_len(hi);
                    for c in 0..card {
                        if up_len > 0 {
                            segs.push(HaloSegment {
                                src: lo,
                                dst: hi,
                                src_off: c * stride_lo + up_src,
                                dst_off: c * stride_hi + up_dst,
                                len: up_len,
                            });
                        }
                        if dn_len > 0 {
                            segs.push(HaloSegment {
                                src: hi,
                                dst: lo,
                                src_off: c * stride_hi + dn_src,
                                dst_off: c * stride_lo + dn_dst,
                                len: dn_len,
                            });
                        }
                    }
                }
                MemLayout::AoS => {
                    if up_len > 0 {
                        segs.push(HaloSegment {
                            src: lo,
                            dst: hi,
                            src_off: up_src * card,
                            dst_off: up_dst * card,
                            len: up_len * card,
                        });
                    }
                    if dn_len > 0 {
                        segs.push(HaloSegment {
                            src: hi,
                            dst: lo,
                            src_off: dn_src * card,
                            dst_off: dn_dst * card,
                            len: dn_len * card,
                        });
                    }
                }
            }
        }
        segs
    }

    fn for_each_ghost_ring(&self, dev: DeviceId, level: usize, f: &mut dyn FnMut(Cell)) {
        assert!(level >= 1, "ghost rings are 1-indexed");
        if self.inner.mode != StorageMode::Real || level > self.inner.radius {
            return;
        }
        let p = self.part(dev);
        let z_lo = p.z0 as i64 - level as i64;
        let z_hi = (p.z1 - 1 + level) as i64;
        // Halo classes are contiguous and collected in ascending z, so a
        // ring is a z-filter over the two halo ranges.
        let owned = p.n_owned() as usize;
        let halo_lo_end = owned + p.n_halo_lo as usize;
        for i in owned..halo_lo_end {
            let (x, y, z) = p.cells[i];
            if z as i64 == z_lo {
                f(Cell::new(i as u32, x, y, z));
            }
        }
        for i in halo_lo_end..p.n_stored() as usize {
            let (x, y, z) = p.cells[i];
            if z as i64 == z_hi {
                f(Cell::new(i as u32, x, y, z));
            }
        }
    }

    fn locate(&self, x: i32, y: i32, z: i32) -> Option<(DeviceId, u32)> {
        if !self.inner.dim.contains(x, y, z) {
            return None;
        }
        let z_us = z as usize;
        let dev = self
            .inner
            .parts
            .iter()
            .position(|p| z_us >= p.z0 && z_us < p.z1)
            .map(DeviceId)?;
        let p = self.part(dev);
        p.lookup.get(&(x, y, z)).map(|&lin| (dev, lin))
    }

    fn for_each_owned(&self, dev: DeviceId, f: &mut dyn FnMut(Cell)) {
        self.for_each_cell(dev, DataView::Standard, f);
    }

    fn make_read_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> SparseRead<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        SparseRead {
            raw: if null {
                parts.mem.null_read()
            } else {
                parts.mem.read(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
        }
    }

    fn make_stencil_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> SparseStencil<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        SparseStencil {
            raw: if null {
                parts.mem.null_read()
            } else {
                parts.mem.read(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
            outside: parts.outside,
            grid: self.inner.clone(),
            dev,
            nslots: self.inner.offsets.len(),
        }
    }

    fn make_write_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> SparseWrite<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        SparseWrite {
            raw: if null {
                parts.mem.null_write()
            } else {
                parts.mem.write(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A solid ball of radius `r` centred in the domain.
    fn ball_mask(dim: Dim3, r: f64) -> impl Fn(i32, i32, i32) -> bool {
        let cx = dim.x as f64 / 2.0;
        let cy = dim.y as f64 / 2.0;
        let cz = dim.z as f64 / 2.0;
        move |x, y, z| {
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            let dz = z as f64 + 0.5 - cz;
            (dx * dx + dy * dy + dz * dz).sqrt() <= r
        }
    }

    fn grid(n_dev: usize) -> SparseGrid {
        let b = Backend::dgx_a100(n_dev);
        let s = Stencil::seven_point();
        let dim = Dim3::cube(16);
        SparseGrid::new(&b, dim, &[&s], ball_mask(dim, 6.0), StorageMode::Real).unwrap()
    }

    #[test]
    fn active_count_matches_mask() {
        let g = grid(2);
        let dim = g.dim();
        let mask = ball_mask(dim, 6.0);
        let mut expect = 0u64;
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..16 {
                    if mask(x, y, z) {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(g.active_cells(), expect);
        let per_dev: u64 = (0..2)
            .map(|d| g.cell_count(DeviceId(d), DataView::Standard))
            .sum();
        assert_eq!(per_dev, expect);
    }

    #[test]
    fn views_partition_standard() {
        let g = grid(4);
        for d in 0..4 {
            let d = DeviceId(d);
            assert_eq!(
                g.cell_count(d, DataView::Internal) + g.cell_count(d, DataView::Boundary),
                g.cell_count(d, DataView::Standard)
            );
        }
    }

    #[test]
    fn iteration_covers_active_cells_once() {
        let g = grid(2);
        let mut seen = std::collections::HashSet::new();
        for d in 0..2 {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                assert!(seen.insert((c.x, c.y, c.z)));
            });
        }
        assert_eq!(seen.len() as u64, g.active_cells());
    }

    #[test]
    fn locate_round_trips() {
        let g = grid(2);
        for d in 0..2 {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                let (dev, lin) = g.locate(c.x, c.y, c.z).unwrap();
                assert_eq!(dev, DeviceId(d));
                assert_eq!(lin, c.lin);
            });
        }
        // Corner of the box is outside the ball.
        assert!(g.locate(0, 0, 0).is_none());
    }

    #[test]
    fn connectivity_agrees_with_geometry() {
        let g = grid(2);
        let dim = g.dim();
        let mask = ball_mask(dim, 6.0);
        let offsets = g.union_offsets().to_vec();
        for d in 0..2 {
            let part = &g.inner.parts[d];
            let nslots = offsets.len();
            for i in 0..part.n_owned() as usize {
                let (x, y, z) = part.cells[i];
                for (s, o) in offsets.iter().enumerate() {
                    let n = part.conn[i * nslots + s];
                    let (nx, ny, nz) = (x + o.dx, y + o.dy, z + o.dz);
                    let active = dim.contains(nx, ny, nz) && mask(nx, ny, nz);
                    if active {
                        assert_ne!(n, SPARSE_NONE, "missing neighbour at ({nx},{ny},{nz})");
                        assert_eq!(part.cells[n as usize], (nx, ny, nz));
                    } else {
                        assert_eq!(n, SPARSE_NONE);
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_halo_mirror_counts() {
        let g = grid(4);
        for p in 0..3 {
            let a = &g.inner.parts[p];
            let b = &g.inner.parts[p + 1];
            assert_eq!(a.n_bnd_hi, b.n_halo_lo);
            assert_eq!(b.n_bnd_lo, a.n_halo_hi);
            // And the mirrored cells are the same coordinates in order.
            let a_bnd_hi: Vec<_> =
                a.cells[(a.n_int + a.n_bnd_lo) as usize..a.n_owned() as usize].to_vec();
            let b_halo_lo: Vec<_> =
                b.cells[b.n_owned() as usize..(b.n_owned() + b.n_halo_lo) as usize].to_vec();
            assert_eq!(a_bnd_hi, b_halo_lo);
        }
    }

    #[test]
    fn halo_segments_match_paper_counts() {
        let g = grid(4);
        let scalar = g.halo_segments(1, MemLayout::SoA);
        assert!(scalar.len() <= 2 * 3);
        let aos = g.halo_segments(3, MemLayout::AoS);
        assert_eq!(aos.len(), scalar.len());
        let soa = g.halo_segments(3, MemLayout::SoA);
        assert_eq!(soa.len(), scalar.len() * 3);
    }

    #[test]
    fn memory_accounted_for_connectivity() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let dim = Dim3::cube(16);
        let before: u64 = (0..2).map(|d| b.ledger(DeviceId(d)).in_use()).sum();
        let g = SparseGrid::new(&b, dim, &[&s], |_, _, _| true, StorageMode::Real).unwrap();
        let after: u64 = (0..2).map(|d| b.ledger(DeviceId(d)).in_use()).sum();
        let owned = g.active_cells();
        // conn: owned × 6 slots × 4 bytes; coords: stored × 12 bytes ≥ owned × 12.
        assert!(after - before >= owned * 24 + owned * 12);
    }

    #[test]
    fn virtual_mode_counts_without_tables() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let dim = Dim3::cube(16);
        let real = SparseGrid::new(&b, dim, &[&s], ball_mask(dim, 6.0), StorageMode::Real).unwrap();
        let virt =
            SparseGrid::new(&b, dim, &[&s], ball_mask(dim, 6.0), StorageMode::Virtual).unwrap();
        assert!(!virt.supports_functional());
        for d in 0..2 {
            for v in [DataView::Standard, DataView::Internal, DataView::Boundary] {
                assert_eq!(
                    real.cell_count(DeviceId(d), v),
                    virt.cell_count(DeviceId(d), v)
                );
            }
            assert_eq!(real.alloc_len(DeviceId(d)), virt.alloc_len(DeviceId(d)));
        }
        assert_eq!(
            real.halo_segments(1, MemLayout::SoA),
            virt.halo_segments(1, MemLayout::SoA)
        );
    }

    #[test]
    fn empty_mask_rejected() {
        let b = Backend::dgx_a100(1);
        let s = Stencil::seven_point();
        let err = SparseGrid::new(&b, Dim3::cube(8), &[&s], |_, _, _| false, StorageMode::Real);
        assert!(err.is_err());
    }

    #[test]
    fn ghost_rings_cover_halo_classes() {
        let g = grid(2);
        let dim = g.dim();
        let mask = ball_mask(dim, 6.0);
        for d in 0..2 {
            let dev = DeviceId(d);
            let p = &g.inner.parts[d];
            let (z0, z1) = g.owned_z_range(dev);
            let mut ring_total = 0u64;
            for level in 1..=g.radius() {
                g.for_each_ghost_ring(dev, level, &mut |c| {
                    // Rings sit exactly `level` layers outside the owned
                    // slab, are active, and index into the halo classes.
                    assert!(
                        c.z == z0 as i32 - level as i32 || c.z == (z1 - 1 + level) as i32,
                        "ring {level} cell at z={}",
                        c.z
                    );
                    assert!(mask(c.x, c.y, c.z));
                    assert!(c.lin >= p.n_owned() && c.lin < p.n_stored());
                    ring_total += 1;
                });
            }
            // Every stored halo cell belongs to exactly one ring.
            assert_eq!(ring_total, p.n_halo() as u64);
            // Levels past the stored radius enumerate nothing.
            g.for_each_ghost_ring(dev, g.radius() + 1, &mut |_| {
                panic!("ring beyond halo storage")
            });
        }
    }

    #[test]
    fn load_balance_beats_naive_split() {
        // All active cells in the top half of z: a naive even split would
        // give the lower devices nothing.
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let dim = Dim3::new(8, 8, 32);
        let g = SparseGrid::new(&b, dim, &[&s], |_, _, z| z >= 16, StorageMode::Real).unwrap();
        let c0 = g.cell_count(DeviceId(0), DataView::Standard);
        let c1 = g.cell_count(DeviceId(1), DataView::Standard);
        let total = c0 + c1;
        assert_eq!(total, 8 * 8 * 16);
        let imbalance = c0.abs_diff(c1) as f64 / total as f64;
        assert!(imbalance < 0.2, "imbalance {imbalance}: {c0} vs {c1}");
    }
}
