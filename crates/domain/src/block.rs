//! A block-sparse grid: sparsity at the granularity of `B³` cell blocks.
//!
//! The third point in the data-structure design space the paper's §VI-C
//! explores (and the direction the Neon project's later `bGrid` took):
//!
//! * the **dense** grid stores everything — no per-cell metadata, wasted
//!   compute on inactive regions;
//! * the **element-sparse** grid stores exactly the active cells — but
//!   pays a per-cell × per-slot connectivity table;
//! * the **block-sparse** grid stores whole `B³` blocks whenever any cell
//!   of the block is active — connectivity shrinks to 27 entries *per
//!   block* (amortized `27·4/B³` bytes per cell ≈ 1.7 B at `B = 4`,
//!   versus `slots·4` bytes per cell for element-sparse), at the price of
//!   computing the inactive *padding* cells inside partially-active
//!   blocks.
//!
//! Layout per partition mirrors the element-sparse grid at block
//! granularity: `[internal | boundary-low | boundary-high | halo-low |
//! halo-high]` blocks, each `B³` cells, so halo updates are again two
//! contiguous copies per partition pair (× cardinality for SoA). The
//! halo radius must not exceed `B` (one block layer of halo).
//!
//! Block-level activity means a cell is iterated iff its block is active
//! *and* it lies inside the domain box; mask-inactive cells inside an
//! active block are computed as padding (their values are whatever the
//! kernels produce — the usual bGrid contract).

use std::collections::HashMap;
use std::sync::Arc;

use neon_set::{Cell, ChunkBuffer, DataView, Elem, IterationSpace, RawRead, RawWrite, StorageMode};
use neon_sys::{AllocationTicket, Backend, DeviceId, NeonSysError, Result};

use crate::grid::{weighted_slab_partition, Dim3, FieldParts, GridLike};
use crate::layout::MemLayout;
use crate::stencil::{union_offsets, Offset3, Stencil};
use crate::view::{FieldRead, FieldStencil, FieldWrite, HaloSegment};

/// Block-connectivity sentinel: the neighbouring block is inactive.
pub const BLOCK_NONE: u32 = u32::MAX;

#[derive(Debug)]
struct BlockPart {
    /// Owned global block-layer range `[bz0, bz1)`.
    bz0: usize,
    bz1: usize,
    n_int: u32,
    n_bnd_lo: u32,
    n_bnd_hi: u32,
    n_halo_lo: u32,
    n_halo_hi: u32,
    /// Origins (block coords) of stored blocks, class-ordered.
    origins: Vec<(i32, i32, i32)>,
    /// `stored × 27` block neighbour table (3×3×3, index `(dx+1) +
    /// 3(dy+1) + 9(dz+1)`), defined for owned blocks.
    block_conn: Vec<u32>,
    /// Block coords → local block id (owned + halo).
    lookup: HashMap<(i32, i32, i32), u32>,
    /// In-domain cell count per owned block (padding excluded).
    cells_in_domain: Vec<u32>,
    _tickets: Vec<AllocationTicket>,
}

impl BlockPart {
    fn n_owned(&self) -> u32 {
        self.n_int + self.n_bnd_lo + self.n_bnd_hi
    }
    fn n_stored(&self) -> u32 {
        self.n_owned() + self.n_halo_lo + self.n_halo_hi
    }
}

#[derive(Debug)]
struct BlockInner {
    backend: Backend,
    dim: Dim3,
    block: usize,
    radius: usize,
    offsets: Arc<Vec<Offset3>>,
    mode: StorageMode,
    parts: Vec<BlockPart>,
    active_cells: u64,
}

/// A block-sparse grid with `B³` blocks, partitioned in block-layer
/// z-slabs balanced by active block count.
#[derive(Clone)]
pub struct BlockSparseGrid {
    inner: Arc<BlockInner>,
}

impl std::fmt::Debug for BlockSparseGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockSparseGrid")
            .field("dim", &self.inner.dim)
            .field("block", &self.inner.block)
            .field("active_cells", &self.inner.active_cells)
            .field("partitions", &self.inner.parts.len())
            .finish()
    }
}

impl BlockSparseGrid {
    /// Create a block-sparse grid with block edge `block` over the cells
    /// where `mask` is true (a block is active if any of its in-domain
    /// cells is).
    pub fn new(
        backend: &Backend,
        dim: Dim3,
        block: usize,
        stencils: &[&Stencil],
        mask: impl Fn(i32, i32, i32) -> bool,
        mode: StorageMode,
    ) -> Result<Self> {
        if dim.count() == 0 {
            return Err(NeonSysError::InvalidConfig {
                what: format!("empty domain {dim}"),
            });
        }
        if block < 2 {
            return Err(NeonSysError::InvalidConfig {
                what: "block edge must be at least 2".to_string(),
            });
        }
        let offsets = union_offsets(stencils);
        let radius = offsets.iter().map(|o| o.radius()).max().unwrap_or(0);
        if radius > block {
            return Err(NeonSysError::InvalidConfig {
                what: format!("stencil radius {radius} exceeds block edge {block}"),
            });
        }
        let n = backend.num_devices();
        let nbx = dim.x.div_ceil(block);
        let nby = dim.y.div_ceil(block);
        let nbz = dim.z.div_ceil(block);
        if nbz < n {
            return Err(NeonSysError::InvalidConfig {
                what: format!("{dim} has fewer block layers ({nbz}) than the {n} devices"),
            });
        }

        // Which blocks are active, and active blocks per block-layer.
        let block_active = |bx: i32, by: i32, bz: i32| -> bool {
            for z in 0..block as i32 {
                for y in 0..block as i32 {
                    for x in 0..block as i32 {
                        let (gx, gy, gz) = (
                            bx * block as i32 + x,
                            by * block as i32 + y,
                            bz * block as i32 + z,
                        );
                        if dim.contains(gx, gy, gz) && mask(gx, gy, gz) {
                            return true;
                        }
                    }
                }
            }
            false
        };
        let mut layer_weights = vec![0u64; nbz];
        let mut any = false;
        for (bz, w) in layer_weights.iter_mut().enumerate() {
            for by in 0..nby as i32 {
                for bx in 0..nbx as i32 {
                    if block_active(bx, by, bz as i32) {
                        *w += 1;
                        any = true;
                    }
                }
            }
        }
        if !any {
            return Err(NeonSysError::InvalidConfig {
                what: "block-sparse grid has no active blocks".to_string(),
            });
        }
        let slabs = weighted_slab_partition(&layer_weights, n);

        // In-domain cell count of one block.
        let in_domain_count = |bx: i32, by: i32, bz: i32| -> u32 {
            let cx = (dim.x as i32 - bx * block as i32).clamp(0, block as i32);
            let cy = (dim.y as i32 - by * block as i32).clamp(0, block as i32);
            let cz = (dim.z as i32 - bz * block as i32).clamp(0, block as i32);
            (cx * cy * cz) as u32
        };

        let collect = |bza: i64, bzb: i64| -> Vec<(i32, i32, i32)> {
            let bza = bza.max(0) as usize;
            let bzb = (bzb.max(0) as usize).min(nbz);
            let mut v = Vec::new();
            for bz in bza..bzb {
                for by in 0..nby as i32 {
                    for bx in 0..nbx as i32 {
                        if block_active(bx, by, bz as i32) {
                            v.push((bx, by, bz as i32));
                        }
                    }
                }
            }
            v
        };

        let mut parts = Vec::with_capacity(n);
        let mut active_cells = 0u64;
        for (p, &(bz0, bz1)) in slabs.iter().enumerate() {
            let has_lo = p > 0;
            let has_hi = p + 1 < n;
            let internal = collect(
                bz0 as i64 + i64::from(has_lo),
                bz1 as i64 - i64::from(has_hi),
            );
            let bnd_lo = if has_lo {
                collect(bz0 as i64, bz0 as i64 + 1)
            } else {
                Vec::new()
            };
            let bnd_hi = if has_hi {
                collect(bz1 as i64 - 1, bz1 as i64)
            } else {
                Vec::new()
            };
            let halo_lo = if has_lo {
                collect(bz0 as i64 - 1, bz0 as i64)
            } else {
                Vec::new()
            };
            let halo_hi = if has_hi {
                collect(bz1 as i64, bz1 as i64 + 1)
            } else {
                Vec::new()
            };
            let (n_int, n_bnd_lo, n_bnd_hi) = (
                internal.len() as u32,
                bnd_lo.len() as u32,
                bnd_hi.len() as u32,
            );
            let (n_halo_lo, n_halo_hi) = (halo_lo.len() as u32, halo_hi.len() as u32);

            let mut origins = internal;
            origins.extend(bnd_lo);
            origins.extend(bnd_hi);
            let n_owned = origins.len();
            origins.extend(halo_lo);
            origins.extend(halo_hi);
            let n_stored = origins.len();

            let dev = DeviceId(p);
            // Account block metadata: 27×u32 connectivity + 3×i32 origin
            // per stored block.
            let tickets = vec![
                backend.ledger(dev).alloc(n_stored as u64 * 27 * 4)?,
                backend.ledger(dev).alloc(n_stored as u64 * 12)?,
            ];

            let (lookup, block_conn, cells_in_domain);
            if mode == StorageMode::Real {
                let lk: HashMap<(i32, i32, i32), u32> = origins
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (b, i as u32))
                    .collect();
                let mut conn = vec![BLOCK_NONE; n_owned * 27];
                for (i, &(bx, by, bz)) in origins[..n_owned].iter().enumerate() {
                    for dz in -1..=1i32 {
                        for dy in -1..=1i32 {
                            for dx in -1..=1i32 {
                                let s = ((dx + 1) + 3 * (dy + 1) + 9 * (dz + 1)) as usize;
                                if let Some(&t) = lk.get(&(bx + dx, by + dy, bz + dz)) {
                                    conn[i * 27 + s] = t;
                                }
                            }
                        }
                    }
                }
                let cid: Vec<u32> = origins[..n_owned]
                    .iter()
                    .map(|&(bx, by, bz)| in_domain_count(bx, by, bz))
                    .collect();
                lookup = lk;
                block_conn = conn;
                cells_in_domain = cid;
            } else {
                // Virtual mode keeps only counts; compute the per-class
                // in-domain totals directly from the origins we already
                // gathered (then drop them).
                lookup = HashMap::new();
                block_conn = Vec::new();
                cells_in_domain = origins[..n_owned]
                    .iter()
                    .map(|&(bx, by, bz)| in_domain_count(bx, by, bz))
                    .collect();
            }
            active_cells += cells_in_domain.iter().map(|&c| c as u64).sum::<u64>();

            parts.push(BlockPart {
                bz0,
                bz1,
                n_int,
                n_bnd_lo,
                n_bnd_hi,
                n_halo_lo,
                n_halo_hi,
                origins: if mode == StorageMode::Real {
                    origins
                } else {
                    Vec::new()
                },
                block_conn,
                lookup,
                cells_in_domain,
                _tickets: tickets,
            });
        }
        for p in 0..n.saturating_sub(1) {
            assert_eq!(parts[p].n_bnd_hi, parts[p + 1].n_halo_lo);
            assert_eq!(parts[p + 1].n_bnd_lo, parts[p].n_halo_hi);
        }

        Ok(BlockSparseGrid {
            inner: Arc::new(BlockInner {
                backend: backend.clone(),
                dim,
                block,
                radius,
                offsets: Arc::new(offsets),
                mode,
                parts,
                active_cells,
            }),
        })
    }

    fn part(&self, dev: DeviceId) -> &BlockPart {
        &self.inner.parts[dev.0]
    }

    /// Block edge length.
    pub fn block_edge(&self) -> usize {
        self.inner.block
    }

    /// Cells per block (`B³`).
    pub fn cells_per_block(&self) -> usize {
        self.inner.block * self.inner.block * self.inner.block
    }

    /// Stored blocks (owned + halo) on a device.
    pub fn stored_blocks(&self, dev: DeviceId) -> usize {
        self.part(dev).n_stored() as usize
    }

    /// Stored cells (incl. padding and halos) on a device — the storage
    /// overhead Fig. 9-style comparisons weigh against the dense grid.
    pub fn stored_cells(&self, dev: DeviceId) -> u64 {
        self.stored_blocks(dev) as u64 * self.cells_per_block() as u64
    }

    fn class_range(&self, dev: DeviceId, view: DataView) -> (u32, u32) {
        let p = self.part(dev);
        match view {
            DataView::Standard => (0, p.n_owned()),
            DataView::Internal => (0, p.n_int),
            DataView::Boundary => (p.n_int, p.n_owned()),
        }
    }
}

impl IterationSpace for BlockSparseGrid {
    fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    fn space_id(&self) -> Option<u64> {
        Some(Arc::as_ptr(&self.inner) as *const () as u64)
    }

    fn cell_count(&self, dev: DeviceId, view: DataView) -> u64 {
        let (a, b) = self.class_range(dev, view);
        let p = self.part(dev);
        p.cells_in_domain[a as usize..b as usize]
            .iter()
            .map(|&c| c as u64)
            .sum()
    }

    fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
        assert!(
            self.inner.mode == StorageMode::Real,
            "block-sparse grid has virtual storage"
        );
        let p = self.part(dev);
        let bb = self.inner.block as i32;
        let (a, b) = self.class_range(dev, view);
        for bi in a..b {
            let (bx, by, bz) = p.origins[bi as usize];
            let base = bi * (bb * bb * bb) as u32;
            let mut intra = 0u32;
            for z in 0..bb {
                for y in 0..bb {
                    for x in 0..bb {
                        let (gx, gy, gz) = (bx * bb + x, by * bb + y, bz * bb + z);
                        if self.inner.dim.contains(gx, gy, gz) {
                            f(Cell::new(base + intra, gx, gy, gz));
                        }
                        intra += 1;
                    }
                }
            }
        }
    }

    // The only grid that previously lacked a chunked variant: the domain
    // mask makes block iteration skip out-of-domain padding cells, so the
    // producer can't emit whole slices directly — it pushes into a
    // `ChunkBuffer` (inlined per cell, one virtual call per chunk).
    fn for_each_cell_chunked(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(&[Cell])) {
        assert!(
            self.inner.mode == StorageMode::Real,
            "block-sparse grid has virtual storage"
        );
        let p = self.part(dev);
        let bb = self.inner.block as i32;
        let (a, b) = self.class_range(dev, view);
        let mut chunks = ChunkBuffer::new();
        for bi in a..b {
            let (bx, by, bz) = p.origins[bi as usize];
            let base = bi * (bb * bb * bb) as u32;
            let mut intra = 0u32;
            for z in 0..bb {
                for y in 0..bb {
                    for x in 0..bb {
                        let (gx, gy, gz) = (bx * bb + x, by * bb + y, bz * bb + z);
                        if self.inner.dim.contains(gx, gy, gz) {
                            chunks.push(Cell::new(base + intra, gx, gy, gz), f);
                        }
                        intra += 1;
                    }
                }
            }
        }
        chunks.flush(f);
    }

    fn supports_functional(&self) -> bool {
        self.inner.mode == StorageMode::Real
    }
}

/// Cell-local read view of a block-sparse partition.
pub struct BlockRead<T: Elem> {
    raw: RawRead<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
}

impl<T: Elem> FieldRead<T> for BlockRead<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    fn card(&self) -> usize {
        self.card
    }
}

/// Neighbourhood read view: block-level connectivity + intra-block math.
pub struct BlockStencil<T: Elem> {
    raw: RawRead<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
    outside: T,
    grid: Arc<BlockInner>,
    dev: DeviceId,
}

impl<T: Elem> FieldRead<T> for BlockStencil<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    fn card(&self) -> usize {
        self.card
    }
}

impl<T: Elem> BlockStencil<T> {
    #[inline]
    fn resolve(&self, cell: Cell, o: Offset3) -> Option<usize> {
        let (gx, gy, gz) = (cell.x + o.dx, cell.y + o.dy, cell.z + o.dz);
        if !self.grid.dim.contains(gx, gy, gz) {
            return None;
        }
        let b = self.grid.block as i32;
        let bpb = (b * b * b) as u32;
        let my_block = cell.lin / bpb;
        // Intra coords of the current cell derive from its global coords.
        let (ix, iy, iz) = (
            cell.x.rem_euclid(b),
            cell.y.rem_euclid(b),
            cell.z.rem_euclid(b),
        );
        let (nx, ny, nz) = (ix + o.dx, iy + o.dy, iz + o.dz);
        let (sx, sy, sz) = (nx.div_euclid(b), ny.div_euclid(b), nz.div_euclid(b));
        let target = if (sx, sy, sz) == (0, 0, 0) {
            my_block
        } else {
            let slot = ((sx + 1) + 3 * (sy + 1) + 9 * (sz + 1)) as usize;
            let part = &self.grid.parts[self.dev.0];
            let t = part.block_conn[my_block as usize * 27 + slot];
            if t == BLOCK_NONE {
                return None;
            }
            t
        };
        let (jx, jy, jz) = (nx.rem_euclid(b), ny.rem_euclid(b), nz.rem_euclid(b));
        let intra = ((jz * b + jy) * b + jx) as u32;
        Some((target * bpb + intra) as usize)
    }
}

impl<T: Elem> FieldStencil<T> for BlockStencil<T> {
    #[inline]
    fn ngh(&self, cell: Cell, slot: usize, comp: usize) -> T {
        let o = self.grid.offsets[slot];
        match self.resolve(cell, o) {
            Some(idx) => self
                .raw
                .get(self.layout.index(idx, comp, self.stride, self.card)),
            None => self.outside,
        }
    }

    #[inline]
    fn ngh_active(&self, cell: Cell, slot: usize) -> bool {
        let o = self.grid.offsets[slot];
        self.resolve(cell, o).is_some()
    }

    fn num_slots(&self) -> usize {
        self.grid.offsets.len()
    }
}

/// Write view of a block-sparse partition.
pub struct BlockWrite<T: Elem> {
    raw: RawWrite<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
}

impl<T: Elem> FieldWrite<T> for BlockWrite<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    #[inline]
    fn set(&self, cell: Cell, comp: usize, v: T) {
        self.raw.set(
            self.layout.index(cell.idx(), comp, self.stride, self.card),
            v,
        )
    }
    fn card(&self) -> usize {
        self.card
    }
}

impl GridLike for BlockSparseGrid {
    type ReadView<T: Elem> = BlockRead<T>;
    type StencilView<T: Elem> = BlockStencil<T>;
    type WriteView<T: Elem> = BlockWrite<T>;

    fn backend(&self) -> &Backend {
        &self.inner.backend
    }

    fn dim(&self) -> Dim3 {
        self.inner.dim
    }

    fn storage_mode(&self) -> StorageMode {
        self.inner.mode
    }

    fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    fn radius(&self) -> usize {
        self.inner.radius
    }

    fn active_cells(&self) -> u64 {
        self.inner.active_cells
    }

    fn owned_cells(&self, dev: DeviceId, view: DataView) -> u64 {
        self.cell_count(dev, view)
    }

    fn alloc_len(&self, dev: DeviceId) -> usize {
        self.stored_blocks(dev) * self.cells_per_block()
    }

    fn as_space(&self) -> Arc<dyn IterationSpace> {
        Arc::new(self.clone())
    }

    fn union_offsets(&self) -> &[Offset3] {
        &self.inner.offsets
    }

    fn stencil_extra_bytes_per_cell(&self) -> u64 {
        // The block-connectivity row is shared by all B³ cells.
        (27 * 4) / self.cells_per_block() as u64 + 1
    }

    fn halo_segments(&self, card: usize, layout: MemLayout) -> Vec<HaloSegment> {
        if self.inner.radius == 0 || self.inner.parts.len() == 1 {
            return Vec::new();
        }
        let bpb = self.cells_per_block();
        let mut segs = Vec::new();
        for i in 0..self.inner.parts.len() - 1 {
            let lo = DeviceId(i);
            let hi = DeviceId(i + 1);
            let plo = self.part(lo);
            let phi = self.part(hi);
            let up_src = (plo.n_int + plo.n_bnd_lo) as usize * bpb;
            let up_dst = phi.n_owned() as usize * bpb;
            let up_len = plo.n_bnd_hi as usize * bpb;
            let dn_src = phi.n_int as usize * bpb;
            let dn_dst = (plo.n_owned() + plo.n_halo_lo) as usize * bpb;
            let dn_len = phi.n_bnd_lo as usize * bpb;
            match layout {
                MemLayout::SoA => {
                    let stride_lo = self.alloc_len(lo);
                    let stride_hi = self.alloc_len(hi);
                    for c in 0..card {
                        if up_len > 0 {
                            segs.push(HaloSegment {
                                src: lo,
                                dst: hi,
                                src_off: c * stride_lo + up_src,
                                dst_off: c * stride_hi + up_dst,
                                len: up_len,
                            });
                        }
                        if dn_len > 0 {
                            segs.push(HaloSegment {
                                src: hi,
                                dst: lo,
                                src_off: c * stride_hi + dn_src,
                                dst_off: c * stride_lo + dn_dst,
                                len: dn_len,
                            });
                        }
                    }
                }
                MemLayout::AoS => {
                    if up_len > 0 {
                        segs.push(HaloSegment {
                            src: lo,
                            dst: hi,
                            src_off: up_src * card,
                            dst_off: up_dst * card,
                            len: up_len * card,
                        });
                    }
                    if dn_len > 0 {
                        segs.push(HaloSegment {
                            src: hi,
                            dst: lo,
                            src_off: dn_src * card,
                            dst_off: dn_dst * card,
                            len: dn_len * card,
                        });
                    }
                }
            }
        }
        segs
    }

    fn for_each_ghost_ring(&self, dev: DeviceId, level: usize, f: &mut dyn FnMut(Cell)) {
        assert!(level >= 1, "ghost rings are 1-indexed");
        // Halo storage is one full block layer per side: rings exist up to
        // depth `B` even though only `radius` layers are exchange-fresh.
        if self.inner.mode != StorageMode::Real || level > self.inner.block {
            return;
        }
        let p = self.part(dev);
        let bb = self.inner.block as i32;
        let bpb = (bb * bb * bb) as u32;
        let owned = p.n_owned();
        let halo_lo_end = owned + p.n_halo_lo;
        // One intra-block z-layer of every halo block, in-domain cells only
        // (same padding contract as ordinary iteration).
        let scan_layer = |range: std::ops::Range<u32>, iz: i32, f: &mut dyn FnMut(Cell)| {
            for bi in range {
                let (bx, by, bz) = p.origins[bi as usize];
                let gz = bz * bb + iz;
                for y in 0..bb {
                    for x in 0..bb {
                        let (gx, gy) = (bx * bb + x, by * bb + y);
                        if self.inner.dim.contains(gx, gy, gz) {
                            let intra = ((iz * bb + y) * bb + x) as u32;
                            f(Cell::new(bi * bpb + intra, gx, gy, gz));
                        }
                    }
                }
            }
        };
        scan_layer(owned..halo_lo_end, bb - level as i32, f);
        scan_layer(halo_lo_end..p.n_stored(), level as i32 - 1, f);
    }

    fn locate(&self, x: i32, y: i32, z: i32) -> Option<(DeviceId, u32)> {
        if !self.inner.dim.contains(x, y, z) {
            return None;
        }
        let b = self.inner.block as i32;
        let (bx, by, bz) = (x.div_euclid(b), y.div_euclid(b), z.div_euclid(b));
        let dev = self
            .inner
            .parts
            .iter()
            .position(|p| (bz as usize) >= p.bz0 && (bz as usize) < p.bz1)
            .map(DeviceId)?;
        let part = self.part(dev);
        let bi = *part.lookup.get(&(bx, by, bz))?;
        if bi >= part.n_owned() {
            return None; // halo copy, not owned here
        }
        let (ix, iy, iz) = (x.rem_euclid(b), y.rem_euclid(b), z.rem_euclid(b));
        let intra = ((iz * b + iy) * b + ix) as u32;
        Some((dev, bi * (b * b * b) as u32 + intra))
    }

    fn for_each_owned(&self, dev: DeviceId, f: &mut dyn FnMut(Cell)) {
        self.for_each_cell(dev, DataView::Standard, f);
    }

    fn make_read_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> BlockRead<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        BlockRead {
            raw: if null {
                parts.mem.null_read()
            } else {
                parts.mem.read(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
        }
    }

    fn make_stencil_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> BlockStencil<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        BlockStencil {
            raw: if null {
                parts.mem.null_read()
            } else {
                parts.mem.read(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
            outside: parts.outside,
            grid: self.inner.clone(),
            dev,
        }
    }

    fn make_write_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> BlockWrite<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        BlockWrite {
            raw: if null {
                parts.mem.null_write()
            } else {
                parts.mem.write(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use neon_set::Loader;

    fn ball(dim: Dim3, r: f64) -> impl Fn(i32, i32, i32) -> bool + Copy {
        let c = (dim.x as f64 / 2.0, dim.y as f64 / 2.0, dim.z as f64 / 2.0);
        move |x, y, z| {
            let dx = x as f64 + 0.5 - c.0;
            let dy = y as f64 + 0.5 - c.1;
            let dz = z as f64 + 0.5 - c.2;
            (dx * dx + dy * dy + dz * dz).sqrt() <= r
        }
    }

    fn grid(ndev: usize) -> BlockSparseGrid {
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        let dim = Dim3::cube(16);
        BlockSparseGrid::new(&b, dim, 4, &[&st], ball(dim, 6.5), StorageMode::Real).unwrap()
    }

    #[test]
    fn blocks_cover_masked_cells() {
        let g = grid(2);
        let dim = g.dim();
        let mask = ball(dim, 6.5);
        // Every masked cell must be iterated; padding cells may be too.
        let mut seen = std::collections::HashSet::new();
        for d in 0..2 {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                assert!(seen.insert((c.x, c.y, c.z)), "duplicate cell");
            });
        }
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..16 {
                    if mask(x, y, z) {
                        assert!(seen.contains(&(x, y, z)), "masked cell not covered");
                    }
                }
            }
        }
        // Padding exists but is bounded by block granularity.
        assert!(seen.len() as u64 >= g.active_cells());
    }

    #[test]
    fn views_partition_standard() {
        let g = grid(4);
        for d in 0..4 {
            let d = DeviceId(d);
            assert_eq!(
                g.cell_count(d, DataView::Internal) + g.cell_count(d, DataView::Boundary),
                g.cell_count(d, DataView::Standard)
            );
        }
    }

    #[test]
    fn locate_round_trips() {
        let g = grid(2);
        for d in 0..2 {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                let (dev, lin) = g.locate(c.x, c.y, c.z).unwrap();
                assert_eq!((dev, lin), (DeviceId(d), c.lin));
            });
        }
    }

    #[test]
    fn stencil_reads_cross_blocks_and_partitions() {
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dim = Dim3::cube(16);
        let g =
            BlockSparseGrid::new(&b, dim, 4, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
        let f = Field::<f64, _>::new(&g, "f", 1, -1.0, MemLayout::SoA).unwrap();
        f.fill(|x, y, z, _| (x + 100 * y + 10000 * z) as f64);
        for d in 0..2 {
            let mut ldr = Loader::for_execution(DeviceId(d), 2, DataView::Standard);
            let sv = ldr.read_stencil(&f);
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                for (slot, o) in g.union_offsets().to_vec().iter().enumerate() {
                    let (nx, ny, nz) = (c.x + o.dx, c.y + o.dy, c.z + o.dz);
                    let expect = if dim.contains(nx, ny, nz) {
                        (nx + 100 * ny + 10000 * nz) as f64
                    } else {
                        -1.0
                    };
                    assert_eq!(
                        sv.ngh(c, slot, 0),
                        expect,
                        "at ({},{},{}) slot {slot}",
                        c.x,
                        c.y,
                        c.z
                    );
                }
            });
        }
    }

    #[test]
    fn halo_counts_match_paper_structure() {
        let g = grid(4);
        let scalar = g.halo_segments(1, MemLayout::SoA).len();
        assert!(scalar <= 2 * 3);
        assert_eq!(g.halo_segments(2, MemLayout::SoA).len(), scalar * 2);
        assert_eq!(g.halo_segments(2, MemLayout::AoS).len(), scalar);
    }

    /// The `MemLayout` doc claim — SoA needs `2·card` transfers per
    /// partition pair, AoS needs 2 — asserted on the *block-sparse* grid
    /// (the dense and element-sparse grids assert it in their own tests).
    #[test]
    fn halo_transfers_per_pair_match_layout_claim() {
        use std::collections::HashMap;
        let g = grid(4);
        for (layout, card) in [
            (MemLayout::SoA, 1),
            (MemLayout::SoA, 3),
            (MemLayout::AoS, 3),
        ] {
            let mut per_pair: HashMap<(usize, usize), usize> = HashMap::new();
            for s in g.halo_segments(card, layout) {
                *per_pair.entry((s.src.0, s.dst.0)).or_default() += 1;
            }
            assert!(!per_pair.is_empty(), "grid(4) spans several partitions");
            // Each ordered pair carries one directed half of the exchange,
            // so an unordered pair totals `halo_transfers_per_pair`.
            for (&(src, dst), &n) in &per_pair {
                assert_eq!(
                    n,
                    layout.halo_transfers_per_pair(card) / 2,
                    "{}→{} under {:?} card {}",
                    src,
                    dst,
                    layout,
                    card
                );
            }
        }
    }

    #[test]
    fn metadata_is_lighter_than_element_sparse() {
        let b = Backend::dgx_a100(1);
        let st = Stencil::twenty_seven_point();
        let dim = Dim3::cube(16);
        let before = b.ledger(DeviceId(0)).in_use();
        let bs =
            BlockSparseGrid::new(&b, dim, 4, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
        let bs_meta = b.ledger(DeviceId(0)).in_use() - before;
        let before2 = b.ledger(DeviceId(0)).in_use();
        let es = crate::sparse::SparseGrid::new(&b, dim, &[&st], |_, _, _| true, StorageMode::Real)
            .unwrap();
        let es_meta = b.ledger(DeviceId(0)).in_use() - before2;
        assert!(
            bs_meta * 10 < es_meta,
            "block metadata {bs_meta} should be ≫ lighter than element-sparse {es_meta}"
        );
        assert_eq!(bs.active_cells(), es.active_cells());
    }

    #[test]
    fn virtual_mode_counts_match_real() {
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dim = Dim3::cube(16);
        let mask = ball(dim, 6.5);
        let real = BlockSparseGrid::new(&b, dim, 4, &[&st], mask, StorageMode::Real).unwrap();
        let virt = BlockSparseGrid::new(&b, dim, 4, &[&st], mask, StorageMode::Virtual).unwrap();
        for d in 0..2 {
            for v in [DataView::Standard, DataView::Internal, DataView::Boundary] {
                assert_eq!(
                    real.cell_count(DeviceId(d), v),
                    virt.cell_count(DeviceId(d), v)
                );
            }
            assert_eq!(real.alloc_len(DeviceId(d)), virt.alloc_len(DeviceId(d)));
        }
        assert_eq!(
            real.halo_segments(3, MemLayout::SoA),
            virt.halo_segments(3, MemLayout::SoA)
        );
    }

    #[test]
    fn ghost_rings_walk_halo_block_layers() {
        let g = grid(2);
        let dim = g.dim();
        for d in 0..2 {
            let dev = DeviceId(d);
            let p = &g.inner.parts[d];
            let (zlo, zhi) = (p.bz0 * g.block_edge(), (p.bz1 * g.block_edge()).min(dim.z));
            let mut total = 0u64;
            for level in 1..=g.block_edge() {
                g.for_each_ghost_ring(dev, level, &mut |c| {
                    // Exactly `level` layers outside the owned slab, inside
                    // the domain, indexed into a halo block.
                    assert!(
                        c.z == zlo as i32 - level as i32 || c.z == (zhi - 1 + level) as i32,
                        "ring {level} cell at z={}",
                        c.z
                    );
                    assert!(dim.contains(c.x, c.y, c.z));
                    let bi = c.lin / g.cells_per_block() as u32;
                    assert!(bi >= p.n_owned() && bi < p.n_stored());
                    total += 1;
                });
            }
            // Every in-domain cell of every halo block is in exactly one
            // ring (halo blocks span one full block layer per side).
            let halo_in_domain: u64 = p.origins[p.n_owned() as usize..p.n_stored() as usize]
                .iter()
                .map(|&(bx, by, bz)| {
                    let b = g.block_edge() as i32;
                    let cx = (dim.x as i32 - bx * b).clamp(0, b) as u64;
                    let cy = (dim.y as i32 - by * b).clamp(0, b) as u64;
                    let cz = (dim.z as i32 - bz * b).clamp(0, b) as u64;
                    cx * cy * cz
                })
                .sum();
            assert_eq!(total, halo_in_domain);
            g.for_each_ghost_ring(dev, g.block_edge() + 1, &mut |_| {
                panic!("ring beyond stored halo blocks")
            });
        }
    }

    #[test]
    fn radius_bigger_than_block_rejected() {
        let b = Backend::dgx_a100(1);
        let st = Stencil::star(3);
        assert!(BlockSparseGrid::new(
            &b,
            Dim3::cube(16),
            2,
            &[&st],
            |_, _, _| true,
            StorageMode::Real
        )
        .is_err());
    }
}
