//! Prebuilt BLAS-style containers with a unified interface for every grid
//! type (paper §III: "Neon also offers a set of well-optimized standard
//! BLAS operations (e.g., dot product) … to facilitate rapid
//! prototyping").
//!
//! All operations work on any cardinality (components are looped) and any
//! grid implementing [`GridLike`].
//!
//! Every operation here declares a typed [`KernelShape`] and registers a
//! **chunk-level** kernel: the `dyn Fn` boundary is crossed once per
//! `CELL_CHUNK` cells and the per-cell body — view `at`/`set` calls that
//! inline down to `MemLayout::index` arithmetic on the grid's concrete
//! view types — stays monomorphized. The [`mod@reference`] module keeps the
//! original per-cell `Generic` forms as the bit-identity oracle; the two
//! families visit cells and update reduction partials in the identical
//! order, so they must agree bit for bit (enforced by proptests in
//! `neon-core`).

use neon_set::{Cell, Container, KernelFn, KernelShape, ScalarSet};

use crate::field::Field;
use crate::grid::GridLike;
use crate::view::{FieldRead as _, FieldWrite as _};

/// `dst[i] ← v` for every component.
pub fn set_value<G: GridLike>(grid: &G, dst: &Field<f64, G>, v: f64) -> Container {
    let dst = dst.clone();
    let card = dst.card();
    Container::compute_shaped(
        &format!("set({})", dst.name()),
        grid.as_space(),
        KernelShape::Fill,
        move |ldr| {
            let d = ldr.write(&dst);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        d.set(c, k, v);
                    }
                }
            })
        },
    )
}

/// `dst[i] ← src[i]`.
pub fn copy<G: GridLike>(grid: &G, src: &Field<f64, G>, dst: &Field<f64, G>) -> Container {
    assert_eq!(src.card(), dst.card(), "cardinality mismatch");
    let (src, dst) = (src.clone(), dst.clone());
    let card = src.card();
    Container::compute_shaped(
        &format!("copy({}->{})", src.name(), dst.name()),
        grid.as_space(),
        KernelShape::Copy,
        move |ldr| {
            let s = ldr.read(&src);
            let d = ldr.write(&dst);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        d.set(c, k, s.at(c, k));
                    }
                }
            })
        },
    )
}

/// `y[i] ← a·x[i] + y[i]` with a compile-time constant `a`.
pub fn axpy_const<G: GridLike>(
    grid: &G,
    a: f64,
    x: &Field<f64, G>,
    y: &Field<f64, G>,
) -> Container {
    assert_eq!(x.card(), y.card(), "cardinality mismatch");
    let (x, y) = (x.clone(), y.clone());
    let card = x.card();
    Container::compute_shaped(
        &format!("axpy({},{})", x.name(), y.name()),
        grid.as_space(),
        KernelShape::Axpy,
        move |ldr| {
            let xv = ldr.read(&x);
            let yv = ldr.read_write(&y);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        yv.set(c, k, a * xv.at(c, k) + yv.at(c, k));
                    }
                }
            })
        },
    )
}

/// `y[i] ← sign·alpha·x[i] + y[i]` where `alpha` is a host scalar read at
/// launch time (CG-style dynamic coefficients).
pub fn axpy_scalar<G: GridLike>(
    grid: &G,
    alpha: &ScalarSet<f64>,
    sign: f64,
    x: &Field<f64, G>,
    y: &Field<f64, G>,
) -> Container {
    assert_eq!(x.card(), y.card(), "cardinality mismatch");
    let (x, y, alpha) = (x.clone(), y.clone(), alpha.clone());
    let card = x.card();
    Container::compute_shaped(
        &format!("axpy[{}]({},{})", alpha.name(), x.name(), y.name()),
        grid.as_space(),
        KernelShape::Axpy,
        move |ldr| {
            let a = sign * ldr.scalar(&alpha);
            let xv = ldr.read(&x);
            let yv = ldr.read_write(&y);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        yv.set(c, k, a * xv.at(c, k) + yv.at(c, k));
                    }
                }
            })
        },
    )
}

/// `dst[i] ← a·dst[i]` with a constant `a`.
pub fn scale_const<G: GridLike>(grid: &G, a: f64, dst: &Field<f64, G>) -> Container {
    let dst = dst.clone();
    let card = dst.card();
    Container::compute_shaped(
        &format!("scale({})", dst.name()),
        grid.as_space(),
        KernelShape::Scale,
        move |ldr| {
            let d = ldr.read_write(&dst);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        d.set(c, k, a * d.at(c, k));
                    }
                }
            })
        },
    )
}

/// `out ← Σ_i Σ_k x[i,k]·y[i,k]` (all components contribute).
///
/// The chunked kernel still folds one per-cell product sum into the
/// device partial *per cell*, in chunk order — the same floating-point
/// association as the per-cell reference, so the two are bit-identical.
pub fn dot<G: GridLike>(
    grid: &G,
    x: &Field<f64, G>,
    y: &Field<f64, G>,
    out: &ScalarSet<f64>,
) -> Container {
    assert_eq!(x.card(), y.card(), "cardinality mismatch");
    let (x, y, out_c) = (x.clone(), y.clone(), out.clone());
    let card = x.card();
    Container::compute_shaped(
        &format!("dot({},{})", x.name(), y.name()),
        grid.as_space(),
        KernelShape::DotChunk,
        move |ldr| {
            let xv = ldr.read(&x);
            let yv = ldr.read(&y);
            let acc = ldr.reduce(&out_c);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    let mut s = 0.0;
                    for k in 0..card {
                        s += xv.at(c, k) * yv.at(c, k);
                    }
                    acc.update(|a| a + s);
                }
            })
        },
    )
}

/// `w[i] ← a·x[i] + b·y[i]` with constants (BLAS `waxpby`).
pub fn waxpby_const<G: GridLike>(
    grid: &G,
    a: f64,
    x: &Field<f64, G>,
    b: f64,
    y: &Field<f64, G>,
    w: &Field<f64, G>,
) -> Container {
    assert_eq!(x.card(), y.card(), "cardinality mismatch");
    assert_eq!(x.card(), w.card(), "cardinality mismatch");
    let (x, y, w) = (x.clone(), y.clone(), w.clone());
    let card = x.card();
    Container::compute_shaped(
        &format!("waxpby({},{},{})", x.name(), y.name(), w.name()),
        grid.as_space(),
        KernelShape::Waxpby,
        move |ldr| {
            let xv = ldr.read(&x);
            let yv = ldr.read(&y);
            let wv = ldr.write(&w);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        wv.set(c, k, a * xv.at(c, k) + b * yv.at(c, k));
                    }
                }
            })
        },
    )
}

/// `out ← Σ_i Σ_k x[i,k]²` — the squared L² norm (`dot(x, x)` with the
/// single-operand traffic of a BLAS `nrm2`).
pub fn norm2_sq<G: GridLike>(grid: &G, x: &Field<f64, G>, out: &ScalarSet<f64>) -> Container {
    dot(grid, x, x, out)
}

/// `dst[i] ← s·dst[i]` where `s` is a host scalar read at launch time.
pub fn scale_scalar<G: GridLike>(grid: &G, s: &ScalarSet<f64>, dst: &Field<f64, G>) -> Container {
    let (s, dst) = (s.clone(), dst.clone());
    let card = dst.card();
    Container::compute_shaped(
        &format!("scale[{}]({})", s.name(), dst.name()),
        grid.as_space(),
        KernelShape::Scale,
        move |ldr| {
            let a = ldr.scalar(&s);
            let d = ldr.read_write(&dst);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    for k in 0..card {
                        d.set(c, k, a * d.at(c, k));
                    }
                }
            })
        },
    )
}

/// The original per-cell `Generic` forms of every operation above.
///
/// These are the bit-identity oracle for the shaped fast paths: same
/// container names, same access records, same per-cell math — only the
/// kernel shape differs, so a shaped program and its reference twin hash
/// to *different* sequence signatures (the shape byte is folded in) and
/// never alias each other in the plan cache, while their results must be
/// bit-for-bit equal.
pub mod reference {
    use super::*;

    /// Per-cell `Generic` form of [`super::set_value`].
    pub fn set_value<G: GridLike>(grid: &G, dst: &Field<f64, G>, v: f64) -> Container {
        let dst = dst.clone();
        let card = dst.card();
        Container::compute(
            &format!("set({})", dst.name()),
            grid.as_space(),
            move |ldr| {
                let d = ldr.write(&dst);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        d.set(c, k, v);
                    }
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::copy`].
    pub fn copy<G: GridLike>(grid: &G, src: &Field<f64, G>, dst: &Field<f64, G>) -> Container {
        assert_eq!(src.card(), dst.card(), "cardinality mismatch");
        let (src, dst) = (src.clone(), dst.clone());
        let card = src.card();
        Container::compute(
            &format!("copy({}->{})", src.name(), dst.name()),
            grid.as_space(),
            move |ldr| {
                let s = ldr.read(&src);
                let d = ldr.write(&dst);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        d.set(c, k, s.at(c, k));
                    }
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::axpy_const`].
    pub fn axpy_const<G: GridLike>(
        grid: &G,
        a: f64,
        x: &Field<f64, G>,
        y: &Field<f64, G>,
    ) -> Container {
        assert_eq!(x.card(), y.card(), "cardinality mismatch");
        let (x, y) = (x.clone(), y.clone());
        let card = x.card();
        Container::compute(
            &format!("axpy({},{})", x.name(), y.name()),
            grid.as_space(),
            move |ldr| {
                let xv = ldr.read(&x);
                let yv = ldr.read_write(&y);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        yv.set(c, k, a * xv.at(c, k) + yv.at(c, k));
                    }
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::axpy_scalar`].
    pub fn axpy_scalar<G: GridLike>(
        grid: &G,
        alpha: &ScalarSet<f64>,
        sign: f64,
        x: &Field<f64, G>,
        y: &Field<f64, G>,
    ) -> Container {
        assert_eq!(x.card(), y.card(), "cardinality mismatch");
        let (x, y, alpha) = (x.clone(), y.clone(), alpha.clone());
        let card = x.card();
        Container::compute(
            &format!("axpy[{}]({},{})", alpha.name(), x.name(), y.name()),
            grid.as_space(),
            move |ldr| {
                let a = sign * ldr.scalar(&alpha);
                let xv = ldr.read(&x);
                let yv = ldr.read_write(&y);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        yv.set(c, k, a * xv.at(c, k) + yv.at(c, k));
                    }
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::scale_const`].
    pub fn scale_const<G: GridLike>(grid: &G, a: f64, dst: &Field<f64, G>) -> Container {
        let dst = dst.clone();
        let card = dst.card();
        Container::compute(
            &format!("scale({})", dst.name()),
            grid.as_space(),
            move |ldr| {
                let d = ldr.read_write(&dst);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        d.set(c, k, a * d.at(c, k));
                    }
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::dot`].
    pub fn dot<G: GridLike>(
        grid: &G,
        x: &Field<f64, G>,
        y: &Field<f64, G>,
        out: &ScalarSet<f64>,
    ) -> Container {
        assert_eq!(x.card(), y.card(), "cardinality mismatch");
        let (x, y, out_c) = (x.clone(), y.clone(), out.clone());
        let card = x.card();
        Container::compute(
            &format!("dot({},{})", x.name(), y.name()),
            grid.as_space(),
            move |ldr| {
                let xv = ldr.read(&x);
                let yv = ldr.read(&y);
                let acc = ldr.reduce(&out_c);
                Box::new(move |c: Cell| {
                    let mut s = 0.0;
                    for k in 0..card {
                        s += xv.at(c, k) * yv.at(c, k);
                    }
                    acc.update(|a| a + s);
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::waxpby_const`].
    pub fn waxpby_const<G: GridLike>(
        grid: &G,
        a: f64,
        x: &Field<f64, G>,
        b: f64,
        y: &Field<f64, G>,
        w: &Field<f64, G>,
    ) -> Container {
        assert_eq!(x.card(), y.card(), "cardinality mismatch");
        assert_eq!(x.card(), w.card(), "cardinality mismatch");
        let (x, y, w) = (x.clone(), y.clone(), w.clone());
        let card = x.card();
        Container::compute(
            &format!("waxpby({},{},{})", x.name(), y.name(), w.name()),
            grid.as_space(),
            move |ldr| {
                let xv = ldr.read(&x);
                let yv = ldr.read(&y);
                let wv = ldr.write(&w);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        wv.set(c, k, a * xv.at(c, k) + b * yv.at(c, k));
                    }
                })
            },
        )
    }

    /// Per-cell `Generic` form of [`super::norm2_sq`].
    pub fn norm2_sq<G: GridLike>(grid: &G, x: &Field<f64, G>, out: &ScalarSet<f64>) -> Container {
        dot(grid, x, x, out)
    }

    /// Per-cell `Generic` form of [`super::scale_scalar`].
    pub fn scale_scalar<G: GridLike>(
        grid: &G,
        s: &ScalarSet<f64>,
        dst: &Field<f64, G>,
    ) -> Container {
        let (s, dst) = (s.clone(), dst.clone());
        let card = dst.card();
        Container::compute(
            &format!("scale[{}]({})", s.name(), dst.name()),
            grid.as_space(),
            move |ldr| {
                let a = ldr.scalar(&s);
                let d = ldr.read_write(&dst);
                Box::new(move |c: Cell| {
                    for k in 0..card {
                        d.set(c, k, a * d.at(c, k));
                    }
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseGrid;
    use crate::grid::Dim3;
    use crate::layout::MemLayout;
    use crate::stencil::Stencil;
    use neon_set::{ContainerKind, DataView, StorageMode};
    use neon_sys::{Backend, DeviceId};

    fn setup() -> (DenseGrid, Field<f64, DenseGrid>, Field<f64, DenseGrid>) {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        (g, x, y)
    }

    fn run_all(c: &Container, n_dev: usize) {
        if c.is_reduce() {
            c.reduce_init();
        }
        for d in 0..n_dev {
            c.run_device(DeviceId(d), DataView::Standard);
        }
        if c.is_reduce() {
            c.reduce_finalize();
        }
    }

    #[test]
    fn set_and_copy() {
        let (g, x, y) = setup();
        run_all(&set_value(&g, &x, 3.0), 2);
        run_all(&copy(&g, &x, &y), 2);
        y.for_each(|_, _, _, _, v| assert_eq!(v, 3.0));
    }

    #[test]
    fn ops_declare_shapes() {
        let (g, x, y) = setup();
        let out = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        assert_eq!(set_value(&g, &x, 0.0).shape(), KernelShape::Fill);
        assert_eq!(copy(&g, &x, &y).shape(), KernelShape::Copy);
        assert_eq!(axpy_const(&g, 1.0, &x, &y).shape(), KernelShape::Axpy);
        assert_eq!(scale_const(&g, 1.0, &x).shape(), KernelShape::Scale);
        assert_eq!(dot(&g, &x, &y, &out).shape(), KernelShape::DotChunk);
        assert_eq!(
            reference::copy(&g, &x, &y).shape(),
            KernelShape::Generic,
            "reference twins stay generic"
        );
    }

    #[test]
    fn shape_byte_distinguishes_reference_twin_signatures() {
        let (g, x, y) = setup();
        let shaped = neon_set::sequence_signature(&[copy(&g, &x, &y)]);
        let generic = neon_set::sequence_signature(&[reference::copy(&g, &x, &y)]);
        assert_ne!(
            shaped, generic,
            "same name and accesses, but the shape byte must split the plan key"
        );
    }

    #[test]
    fn axpy_const_math() {
        let (g, x, y) = setup();
        x.fill(|_, _, _, _| 2.0);
        y.fill(|_, _, _, _| 1.0);
        run_all(&axpy_const(&g, 3.0, &x, &y), 2);
        y.for_each(|_, _, _, _, v| assert_eq!(v, 7.0));
    }

    #[test]
    fn axpy_scalar_reads_alpha_at_launch() {
        let (g, x, y) = setup();
        x.fill(|_, _, _, _| 1.0);
        y.fill(|_, _, _, _| 0.0);
        let alpha = ScalarSet::<f64>::new(2, "alpha", 0.0, |a, b| a + b);
        let c = axpy_scalar(&g, &alpha, -1.0, &x, &y);
        alpha.set_host(4.0);
        run_all(&c, 2);
        y.for_each(|_, _, _, _, v| assert_eq!(v, -4.0));
        alpha.set_host(1.0);
        run_all(&c, 2);
        y.for_each(|_, _, _, _, v| assert_eq!(v, -5.0));
    }

    #[test]
    fn dot_product() {
        let (g, x, y) = setup();
        x.fill(|_, _, _, _| 2.0);
        y.fill(|_, _, _, _| 3.0);
        let out = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        let c = dot(&g, &x, &y, &out);
        assert_eq!(c.kind(), ContainerKind::Reduce);
        run_all(&c, 2);
        assert_eq!(out.host_value(), 6.0 * 128.0);
    }

    #[test]
    fn dot_multicomponent() {
        let b = Backend::dgx_a100(1);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::cube(4), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 3, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 3, 0.0, MemLayout::AoS).unwrap();
        x.fill(|_, _, _, c| (c + 1) as f64);
        y.fill(|_, _, _, _| 1.0);
        let out = ScalarSet::<f64>::new(1, "dot", 0.0, |a, b| a + b);
        run_all(&dot(&g, &x, &y, &out), 1);
        assert_eq!(out.host_value(), 6.0 * 64.0); // (1+2+3) per cell
    }

    #[test]
    fn scale_in_place() {
        let (g, x, _) = setup();
        x.fill(|_, _, _, _| 2.0);
        run_all(&scale_const(&g, 0.5, &x), 2);
        x.for_each(|_, _, _, _, v| assert_eq!(v, 1.0));
    }

    #[test]
    fn waxpby_combines() {
        let (g, x, y) = setup();
        let w = Field::<f64, _>::new(&g, "w", 1, 0.0, MemLayout::SoA).unwrap();
        x.fill(|_, _, _, _| 2.0);
        y.fill(|_, _, _, _| 5.0);
        run_all(&waxpby_const(&g, 3.0, &x, -1.0, &y, &w), 2);
        w.for_each(|_, _, _, _, v| assert_eq!(v, 1.0));
        // Inputs untouched.
        x.for_each(|_, _, _, _, v| assert_eq!(v, 2.0));
    }

    #[test]
    fn norm2_matches_dot_with_self() {
        let (g, x, _) = setup();
        x.fill(|xx, yy, zz, _| (xx + yy + zz) as f64);
        let a = ScalarSet::<f64>::new(2, "a", 0.0, |p, q| p + q);
        let b = ScalarSet::<f64>::new(2, "b", 0.0, |p, q| p + q);
        run_all(&norm2_sq(&g, &x, &a), 2);
        run_all(&dot(&g, &x, &x, &b), 2);
        assert_eq!(a.host_value(), b.host_value());
        assert!(a.host_value() > 0.0);
    }

    #[test]
    fn scale_scalar_reads_at_launch() {
        let (g, x, _) = setup();
        x.fill(|_, _, _, _| 2.0);
        let s = ScalarSet::<f64>::new(2, "s", 0.0, |p, q| p + q);
        let c = scale_scalar(&g, &s, &x);
        s.set_host(3.0);
        run_all(&c, 2);
        x.for_each(|_, _, _, _, v| assert_eq!(v, 6.0));
        s.set_host(0.5);
        run_all(&c, 2);
        x.for_each(|_, _, _, _, v| assert_eq!(v, 3.0));
    }

    #[test]
    fn repeated_dot_reinitializes() {
        let (g, x, y) = setup();
        x.fill(|_, _, _, _| 1.0);
        y.fill(|_, _, _, _| 1.0);
        let out = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        let c = dot(&g, &x, &y, &out);
        run_all(&c, 2);
        run_all(&c, 2);
        assert_eq!(out.host_value(), 128.0, "second run must not accumulate");
    }

    /// Every shaped op must be bit-identical to its reference twin.
    #[test]
    fn shaped_ops_match_reference_bitwise() {
        let (g, x, y) = setup();
        let (g2, x2, y2) = setup();
        let seed = |f: &Field<f64, DenseGrid>, salt: f64| {
            f.fill(|xx, yy, zz, _| ((xx * 31 + yy * 7 + zz) as f64).sin() * salt)
        };
        seed(&x, 1.0);
        seed(&x2, 1.0);
        seed(&y, 0.5);
        seed(&y2, 0.5);
        run_all(&axpy_const(&g, 1.25, &x, &y), 2);
        run_all(&reference::axpy_const(&g2, 1.25, &x2, &y2), 2);
        let collect = |f: &Field<f64, DenseGrid>| {
            let mut v = Vec::new();
            f.for_each(|_, _, _, _, val| v.push(val.to_bits()));
            v
        };
        assert_eq!(collect(&y), collect(&y2));
        let d1 = ScalarSet::<f64>::new(2, "d1", 0.0, |p, q| p + q);
        let d2 = ScalarSet::<f64>::new(2, "d2", 0.0, |p, q| p + q);
        run_all(&dot(&g, &x, &y, &d1), 2);
        run_all(&reference::dot(&g2, &x2, &y2, &d2), 2);
        assert_eq!(d1.host_value().to_bits(), d2.host_value().to_bits());
    }
}
