//! The `GridLike` trait — the contract between grids, fields and kernels.
//!
//! A grid is the blueprint of the computational layout (paper §III): it
//! owns the domain extent, the sparsity pattern, the partitioning over
//! devices and the data-view classification (internal / boundary). Fields
//! are created *from* a grid and inherit all of this; containers are
//! created from a grid's iteration space.
//!
//! Both provided grids partition the Cartesian domain along **z only**
//! (paper §IV-C2: with few GPUs per node, 1-D slabs mean each device talks
//! to at most two neighbours, and boundary cells land in contiguous
//! memory segments so halo updates need no marshaling).

use std::fmt;
use std::sync::Arc;

use neon_set::{Cell, DataView, Elem, IterationSpace, MemSet, StorageMode};
use neon_sys::{Backend, DeviceId};

use crate::layout::MemLayout;
use crate::stencil::Offset3;
use crate::view::{FieldRead, FieldStencil, FieldWrite, HaloSegment};

/// Extent of a 3-D rectilinear domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// Cells along x.
    pub x: usize,
    /// Cells along y.
    pub y: usize,
    /// Cells along z (the partition axis).
    pub z: usize,
}

impl Dim3 {
    /// Construct an extent.
    pub const fn new(x: usize, y: usize, z: usize) -> Self {
        Dim3 { x, y, z }
    }

    /// Cubic extent `n³`.
    pub const fn cube(n: usize) -> Self {
        Dim3 { x: n, y: n, z: n }
    }

    /// Total number of cells.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Whether `(x, y, z)` lies inside the extent.
    #[inline]
    pub fn contains(&self, x: i32, y: i32, z: i32) -> bool {
        x >= 0
            && y >= 0
            && z >= 0
            && (x as usize) < self.x
            && (y as usize) < self.y
            && (z as usize) < self.z
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.x, self.y, self.z)
    }
}

/// The storage a field hands to its grid's view factories.
pub struct FieldParts<T: Elem> {
    /// Per-device buffers.
    pub mem: MemSet<T>,
    /// Number of components.
    pub card: usize,
    /// Component layout.
    pub layout: MemLayout,
    /// Outside-domain value returned by stencil reads that leave the
    /// active domain.
    pub outside: T,
}

/// The grid interface: domain geometry, partitioning, views and halos.
pub trait GridLike: Clone + Send + Sync + Sized + 'static {
    /// Concrete cell-local read view.
    type ReadView<T: Elem>: FieldRead<T> + Send + 'static;
    /// Concrete neighbourhood read view.
    type StencilView<T: Elem>: FieldStencil<T> + Send + 'static;
    /// Concrete write view.
    type WriteView<T: Elem>: FieldWrite<T> + Send + 'static;

    /// The backend this grid is distributed over.
    fn backend(&self) -> &Backend;

    /// Domain extent.
    fn dim(&self) -> Dim3;

    /// Real or virtual (timing-only) storage.
    fn storage_mode(&self) -> StorageMode;

    /// Number of partitions (= devices).
    fn num_partitions(&self) -> usize;

    /// Halo radius in z-layers (max |dz| over registered stencils).
    fn radius(&self) -> usize;

    /// Number of active cells in the whole domain.
    fn active_cells(&self) -> u64;

    /// Number of cells device `dev` owns in `view`.
    fn owned_cells(&self, dev: DeviceId, view: DataView) -> u64;

    /// Per-component storage length of device `dev` (owned + halo cells).
    fn alloc_len(&self, dev: DeviceId) -> usize;

    /// This grid as a container iteration space.
    fn as_space(&self) -> Arc<dyn IterationSpace>;

    /// The union of registered stencil offsets, in slot order.
    fn union_offsets(&self) -> &[Offset3];

    /// The slot of `offset` in the union, if registered.
    fn slot_of(&self, offset: Offset3) -> Option<usize> {
        self.union_offsets().iter().position(|&o| o == offset)
    }

    /// Extra bytes a stencil access moves per cell beyond the field data
    /// itself (e.g. the sparse grid's connectivity-table traffic).
    fn stencil_extra_bytes_per_cell(&self) -> u64;

    /// The halo transfers one update of a `card`-component field with
    /// `layout` performs.
    fn halo_segments(&self, card: usize, layout: MemLayout) -> Vec<HaloSegment>;

    /// Ghost layers each partition *allocates* per neighbouring side. At
    /// least [`GridLike::radius`]; grids built for temporal blocking
    /// allocate `k·radius` so one deep exchange can stage `k` iterations'
    /// worth of ghost data.
    fn halo_capacity(&self) -> usize {
        self.radius()
    }

    /// The halo transfers refreshing `depth` ghost layers per side (the
    /// deepened form of [`GridLike::halo_segments`]). Grids whose
    /// allocation is fixed at `radius` only support `depth == radius`;
    /// capacity-aware grids override this for any `depth <=
    /// halo_capacity()`.
    fn halo_segments_depth(
        &self,
        card: usize,
        layout: MemLayout,
        depth: usize,
    ) -> Vec<HaloSegment> {
        assert!(
            depth == self.radius(),
            "grid only supports halo exchanges at its stencil radius ({}), not depth {depth}",
            self.radius()
        );
        self.halo_segments(card, layout)
    }

    /// Enumerate the ghost cells exactly `level` layers outside device
    /// `dev`'s owned region (level 1 = the innermost ghost ring). Temporal
    /// blocking recomputes rings `1..=(k-1)·radius`; diagnostics and tests
    /// use this to address individual rings. Grids without addressable
    /// ghost storage enumerate nothing.
    fn for_each_ghost_ring(&self, dev: DeviceId, level: usize, f: &mut dyn FnMut(Cell)) {
        let _ = (dev, level, f);
    }

    /// Locate the partition and local linear index of an active cell
    /// (`None` if outside the domain or inactive). Host-side only.
    fn locate(&self, x: i32, y: i32, z: i32) -> Option<(DeviceId, u32)>;

    /// Iterate device `dev`'s owned cells (host-side fills/verification).
    fn for_each_owned(&self, dev: DeviceId, f: &mut dyn FnMut(Cell));

    /// Build a read view of `parts` for `dev` (`null` during dry runs).
    fn make_read_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> Self::ReadView<T>;

    /// Build a stencil view of `parts` for `dev`.
    fn make_stencil_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> Self::StencilView<T>;

    /// Build a write view of `parts` for `dev`.
    fn make_write_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> Self::WriteView<T>;
}

/// Split `total` z-layers into `parts` contiguous, balanced slabs.
///
/// Earlier slabs get the remainder layer, matching the paper's
/// load-balanced 1-D decomposition.
pub fn slab_partition(total: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "need at least one partition");
    assert!(
        total >= parts,
        "cannot split {total} z-layers over {parts} devices"
    );
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut z = 0;
    for p in 0..parts {
        let nz = base + usize::from(p < extra);
        out.push((z, z + nz));
        z += nz;
    }
    debug_assert_eq!(z, total);
    out
}

/// Split `total` z-layers proportionally to `shares` (e.g. relative
/// device throughputs on a heterogeneous backend — the paper's §VII
/// future-work direction), largest-remainder rounded, every slab ≥ 1.
pub fn proportional_slab_partition(total: usize, shares: &[f64]) -> Vec<(usize, usize)> {
    let parts = shares.len();
    assert!(parts > 0, "need at least one partition");
    assert!(
        total >= parts,
        "cannot split {total} z-layers over {parts} devices"
    );
    assert!(shares.iter().all(|&s| s > 0.0), "shares must be positive");
    let sum: f64 = shares.iter().sum();
    // Start everyone at 1 layer, distribute the rest by largest remainder.
    let mut sizes = vec![1usize; parts];
    let mut remaining = total - parts;
    let ideal: Vec<f64> = shares.iter().map(|s| s / sum * total as f64).collect();
    while remaining > 0 {
        let (best, _) = ideal
            .iter()
            .enumerate()
            .map(|(i, &want)| (i, want - sizes[i] as f64))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        sizes[best] += 1;
        remaining -= 1;
    }
    let mut out = Vec::with_capacity(parts);
    let mut z = 0;
    for nz in sizes {
        out.push((z, z + nz));
        z += nz;
    }
    debug_assert_eq!(z, total);
    out
}

/// Split z-layers so that each slab holds a near-equal share of `weights`
/// (per-layer active cell counts) — the sparse grid's load balancing.
pub fn weighted_slab_partition(weights: &[u64], parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "need at least one partition");
    assert!(
        weights.len() >= parts,
        "cannot split {} z-layers over {parts} devices",
        weights.len()
    );
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(parts);
    let mut z = 0usize;
    let mut acc = 0u64;
    for p in 0..parts {
        let z0 = z;
        let target = total * (p as u64 + 1) / parts as u64;
        // Ensure every remaining partition can still get ≥1 layer.
        let max_z1 = weights.len() - (parts - 1 - p);
        while z < max_z1 && (acc < target || z == z0) {
            acc += weights[z];
            z += 1;
            // Stop early if taking more layers would starve the balance:
            if acc >= target && z > z0 {
                break;
            }
        }
        if p == parts - 1 {
            z = weights.len();
        }
        out.push((z0, z.max(z0 + 1)));
        z = z.max(z0 + 1);
    }
    // Normalize: the loop guarantees monotone non-empty ranges covering all.
    out.last_mut().unwrap().1 = weights.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_basics() {
        let d = Dim3::new(4, 5, 6);
        assert_eq!(d.count(), 120);
        assert!(d.contains(0, 0, 0));
        assert!(d.contains(3, 4, 5));
        assert!(!d.contains(4, 0, 0));
        assert!(!d.contains(-1, 0, 0));
        assert_eq!(Dim3::cube(8), Dim3::new(8, 8, 8));
        assert_eq!(format!("{d}"), "4x5x6");
    }

    #[test]
    fn slab_partition_covers_exactly() {
        for (total, parts) in [(64, 8), (65, 8), (71, 8), (10, 3), (8, 8)] {
            let slabs = slab_partition(total, parts);
            assert_eq!(slabs.len(), parts);
            assert_eq!(slabs[0].0, 0);
            assert_eq!(slabs.last().unwrap().1, total);
            for w in slabs.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = slabs.iter().map(|(a, b)| b - a).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn slab_partition_rejects_too_many_parts() {
        slab_partition(4, 8);
    }

    #[test]
    fn weighted_partition_balances_active_cells() {
        // All weight in the first half: partitions should crowd there.
        let mut weights = vec![100u64; 32];
        weights.extend(vec![1u64; 32]);
        let slabs = weighted_slab_partition(&weights, 4);
        assert_eq!(slabs.len(), 4);
        assert_eq!(slabs[0].0, 0);
        assert_eq!(slabs.last().unwrap().1, 64);
        for w in slabs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        let loads: Vec<u64> = slabs
            .iter()
            .map(|&(a, b)| weights[a..b].iter().sum())
            .collect();
        let total: u64 = weights.iter().sum();
        let ideal = total / 4;
        for l in &loads {
            assert!(
                *l <= ideal * 2,
                "load {l} too far from ideal {ideal}: {loads:?}"
            );
        }
    }

    #[test]
    fn weighted_partition_uniform_equals_slab() {
        let weights = vec![10u64; 64];
        let w = weighted_slab_partition(&weights, 8);
        let s = slab_partition(64, 8);
        assert_eq!(w, s);
    }

    #[test]
    fn weighted_partition_every_slab_nonempty() {
        let weights = vec![0u64, 0, 0, 1000, 0, 0, 0, 0];
        let slabs = weighted_slab_partition(&weights, 4);
        for (a, b) in slabs {
            assert!(b > a, "empty slab");
        }
    }
}
