//! Memory layouts for vector fields — re-exported from `neon-set`.
//!
//! [`MemLayout`] moved down to the Set layer when layout became a
//! *policy*: the compile pipeline's `layout-select` pass recommends a
//! layout per data object, and the monomorphized kernel fast paths index
//! partition storage through `MemLayout::index` directly. This module
//! stays so `neon_domain::layout::MemLayout` keeps resolving.

pub use neon_set::layout::MemLayout;
