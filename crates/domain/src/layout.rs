//! Memory layouts for vector fields.

/// How a cardinality-`n` field organizes its components in memory.
///
/// The choice is transparent to user code (paper §IV-C2) but changes the
/// halo-exchange structure: SoA needs `2n` transfers per partition, AoS
/// needs 2 — which this reproduction asserts in its tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemLayout {
    /// Structure-of-Arrays: all cells of component 0, then component 1, …
    #[default]
    SoA,
    /// Array-of-Structures: all components of cell 0, then cell 1, …
    AoS,
}

impl MemLayout {
    /// Element index of `(cell, comp)` given the per-component stride
    /// (total cells in the partition's storage) and cardinality.
    #[inline]
    pub fn index(self, cell: usize, comp: usize, stride: usize, card: usize) -> usize {
        match self {
            MemLayout::SoA => comp * stride + cell,
            MemLayout::AoS => cell * card + comp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_strides_by_component() {
        assert_eq!(MemLayout::SoA.index(5, 0, 100, 3), 5);
        assert_eq!(MemLayout::SoA.index(5, 2, 100, 3), 205);
    }

    #[test]
    fn aos_interleaves() {
        assert_eq!(MemLayout::AoS.index(5, 0, 100, 3), 15);
        assert_eq!(MemLayout::AoS.index(5, 2, 100, 3), 17);
    }

    #[test]
    fn scalar_fields_agree() {
        for cell in 0..10 {
            assert_eq!(
                MemLayout::SoA.index(cell, 0, 64, 1),
                MemLayout::AoS.index(cell, 0, 64, 1)
            );
        }
    }
}
