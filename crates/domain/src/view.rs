//! Field view traits and halo transfer segments.
//!
//! A compute lambda never touches raw storage; it goes through view objects
//! obtained from the [`crate::Loader`]. The traits here are the *common
//! interface* the dense and sparse grids both implement, which is what
//! makes user kernels grid-generic: the same lambda body compiles against
//! either grid's concrete view types (paper §VI-C: "the ease of changing
//! the data structures without changing the computation code").

use neon_set::{Cell, Elem};
use neon_sys::DeviceId;

/// Cell-local read access to a field partition.
pub trait FieldRead<T: Elem> {
    /// Value of component `comp` at `cell`.
    fn at(&self, cell: Cell, comp: usize) -> T;
    /// Number of components.
    fn card(&self) -> usize;
}

/// Neighbourhood read access (stencil pattern).
///
/// Neighbours are addressed by *slot* into the grid's registered stencil
/// offsets. Reads outside the active domain return the field's
/// outside-domain value (paper Listing 1); `ngh_active` distinguishes a
/// real neighbour from the outside default (needed e.g. for bounce-back
/// boundary conditions in LBM).
pub trait FieldStencil<T: Elem>: FieldRead<T> {
    /// Component `comp` of the neighbour at `slot`, or the outside value.
    fn ngh(&self, cell: Cell, slot: usize, comp: usize) -> T;
    /// Whether the neighbour at `slot` is an active cell.
    fn ngh_active(&self, cell: Cell, slot: usize) -> bool;
    /// Number of neighbour slots.
    fn num_slots(&self) -> usize;
}

/// Cell-local write access (own-compute rule: a kernel may write only the
/// cell it is invoked for; neighbour metadata is read-only).
pub trait FieldWrite<T: Elem> {
    /// Current value (for read-write accesses like AXPY's `y`).
    fn at(&self, cell: Cell, comp: usize) -> T;
    /// Store `v` into component `comp` at `cell`.
    fn set(&self, cell: Cell, comp: usize, v: T);
    /// Number of components.
    fn card(&self) -> usize;
}

/// One contiguous element range copied by a halo update.
///
/// Offsets and lengths are in *elements* of the field's scalar type,
/// relative to each partition's local storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloSegment {
    /// Source partition.
    pub src: DeviceId,
    /// Destination partition.
    pub dst: DeviceId,
    /// Element offset in the source partition.
    pub src_off: usize,
    /// Element offset in the destination partition.
    pub dst_off: usize,
    /// Number of elements.
    pub len: usize,
}
