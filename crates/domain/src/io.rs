//! Host-side field export: CSV and legacy-VTK, for inspecting and
//! visualizing simulation results (ParaView / VisIt open the `.vtk`
//! output directly).
//!
//! Works on any grid type: the export iterates the full rectilinear
//! extent; cells outside a sparse grid's active set are written with the
//! field's outside value and flagged `0` in the accompanying `active`
//! mask array.

use std::io::{self, Write};

use neon_set::Elem;

use crate::field::Field;
use crate::grid::GridLike;

/// Write `field` as CSV: `x,y,z,active,c0,...,cN` with a header row.
pub fn write_csv<T: Elem + std::fmt::Display, G: GridLike>(
    field: &Field<T, G>,
    out: &mut impl Write,
) -> io::Result<()> {
    let dim = field.grid().dim();
    let card = field.card();
    write!(out, "x,y,z,active")?;
    for k in 0..card {
        write!(out, ",c{k}")?;
    }
    writeln!(out)?;
    for z in 0..dim.z as i32 {
        for y in 0..dim.y as i32 {
            for x in 0..dim.x as i32 {
                let active = field.grid().locate(x, y, z).is_some();
                write!(out, "{x},{y},{z},{}", u8::from(active))?;
                for k in 0..card {
                    let v = field.get(x, y, z, k).unwrap_or(field.outside_value());
                    write!(out, ",{v}")?;
                }
                writeln!(out)?;
            }
        }
    }
    Ok(())
}

/// Write `field` as a legacy-VTK `STRUCTURED_POINTS` dataset with one
/// `SCALARS`/`VECTORS` array per configuration plus an `active` mask.
///
/// Cardinality 1 exports `SCALARS`, cardinality 3 `VECTORS`; other
/// cardinalities export one scalar array per component.
pub fn write_vtk<G: GridLike>(
    field: &Field<f64, G>,
    name: &str,
    out: &mut impl Write,
) -> io::Result<()> {
    let dim = field.grid().dim();
    let card = field.card();
    let npoints = dim.count();
    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "neon-rs field export: {name}")?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET STRUCTURED_POINTS")?;
    writeln!(out, "DIMENSIONS {} {} {}", dim.x, dim.y, dim.z)?;
    writeln!(out, "ORIGIN 0 0 0")?;
    writeln!(out, "SPACING 1 1 1")?;
    writeln!(out, "POINT_DATA {npoints}")?;

    let for_each_point =
        |f: &mut dyn FnMut(i32, i32, i32) -> String, out: &mut dyn Write| -> io::Result<()> {
            for z in 0..dim.z as i32 {
                for y in 0..dim.y as i32 {
                    for x in 0..dim.x as i32 {
                        writeln!(out, "{}", f(x, y, z))?;
                    }
                }
            }
            Ok(())
        };

    writeln!(out, "SCALARS active int 1")?;
    writeln!(out, "LOOKUP_TABLE default")?;
    for_each_point(
        &mut |x, y, z| u8::from(field.grid().locate(x, y, z).is_some()).to_string(),
        out,
    )?;

    let value = |x: i32, y: i32, z: i32, k: usize| -> f64 {
        field.get(x, y, z, k).unwrap_or(field.outside_value())
    };
    match card {
        1 => {
            writeln!(out, "SCALARS {name} double 1")?;
            writeln!(out, "LOOKUP_TABLE default")?;
            for_each_point(&mut |x, y, z| format!("{}", value(x, y, z, 0)), out)?;
        }
        3 => {
            writeln!(out, "VECTORS {name} double")?;
            for_each_point(
                &mut |x, y, z| {
                    format!(
                        "{} {} {}",
                        value(x, y, z, 0),
                        value(x, y, z, 1),
                        value(x, y, z, 2)
                    )
                },
                out,
            )?;
        }
        _ => {
            for k in 0..card {
                writeln!(out, "SCALARS {name}_{k} double 1")?;
                writeln!(out, "LOOKUP_TABLE default")?;
                for_each_point(&mut |x, y, z| format!("{}", value(x, y, z, k)), out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseGrid;
    use crate::grid::Dim3;
    use crate::layout::MemLayout;
    use crate::sparse::SparseGrid;
    use crate::stencil::Stencil;
    use neon_set::StorageMode;
    use neon_sys::Backend;

    fn dense_field(card: usize) -> Field<f64, DenseGrid> {
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(3, 2, 4), &[&st], StorageMode::Real).unwrap();
        let f = Field::<f64, _>::new(&g, "f", card, -9.0, MemLayout::SoA).unwrap();
        f.fill(|x, y, z, k| (x + 10 * y + 100 * z) as f64 + k as f64 * 0.5);
        f
    }

    #[test]
    fn csv_round_trip_values() {
        let f = dense_field(2);
        let mut buf = Vec::new();
        write_csv(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x,y,z,active,c0,c1");
        assert_eq!(lines.len(), 1 + 3 * 2 * 4);
        // Spot-check a row: cell (2,1,3) = 2 + 10 + 300 = 312.
        assert!(
            lines.iter().any(|l| l.starts_with("2,1,3,1,312,312.5")),
            "{text}"
        );
    }

    #[test]
    fn vtk_scalar_structure() {
        let f = dense_field(1);
        let mut buf = Vec::new();
        write_vtk(&f, "u", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("DATASET STRUCTURED_POINTS"));
        assert!(text.contains("DIMENSIONS 3 2 4"));
        assert!(text.contains("POINT_DATA 24"));
        assert!(text.contains("SCALARS u double 1"));
        // 24 actives + 24 values + headers.
        let n_values = text.lines().filter(|l| l.parse::<f64>().is_ok()).count();
        assert_eq!(n_values, 48);
    }

    #[test]
    fn vtk_vector_structure() {
        let f = dense_field(3);
        let mut buf = Vec::new();
        write_vtk(&f, "vel", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("VECTORS vel double"));
        // A vector line with three components.
        assert!(text.lines().any(|l| l.split_whitespace().count() == 3
            && l.split_whitespace().all(|t| t.parse::<f64>().is_ok())));
    }

    #[test]
    fn sparse_export_masks_inactive() {
        let b = Backend::dgx_a100(1);
        let st = Stencil::seven_point();
        let g = SparseGrid::new(
            &b,
            Dim3::new(3, 3, 3),
            &[&st],
            |x, _, _| x == 1,
            StorageMode::Real,
        )
        .unwrap();
        let f = Field::<f64, _>::new(&g, "f", 1, -2.5, MemLayout::SoA).unwrap();
        f.fill(|_, _, _, _| 7.0);
        let mut buf = Vec::new();
        write_csv(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("1,0,0,1,7"), "active cell exported: {text}");
        assert!(
            text.contains("0,0,0,0,-2.5"),
            "inactive flagged + outside value"
        );
    }
}
