//! The dense grid: every cell of the rectilinear domain is represented.
//!
//! Storage layout per partition (one per device): the slab of owned
//! z-layers plus `radius` halo layers below and above, always allocated so
//! all partitions share one indexing rule:
//!
//! ```text
//! local z-layer  0 .. r      halo (lower neighbour's boundary cells)
//! local z-layer  r .. r+nz   owned cells   ← iteration spans
//! local z-layer  r+nz .. r+nz+r  halo (upper neighbour's boundary cells)
//! ```
//!
//! A cell's local linear index is `((z - z0 + r)·ny + y)·nx + x`, so a
//! neighbour at offset `(dx,dy,dz)` is exactly `lin + dz·nx·ny + dy·nx +
//! dx` away — stencil views need no divisions. Boundary cells (the owned
//! layers within `radius` of an inter-partition edge) are contiguous,
//! which is why a halo update is two plain copies per partition (times
//! the cardinality for SoA fields).

use std::sync::Arc;

use neon_set::{Cell, ChunkBuffer, DataView, Elem, IterationSpace, RawRead, RawWrite, StorageMode};
use neon_sys::{Backend, DeviceId, NeonSysError, Result};

use crate::grid::{proportional_slab_partition, slab_partition, Dim3, FieldParts, GridLike};
use crate::layout::MemLayout;
use crate::stencil::{union_offsets, Offset3, Stencil};
use crate::view::{FieldRead, FieldStencil, FieldWrite, HaloSegment};

#[derive(Debug, Clone, Copy)]
struct DensePart {
    /// Owned global z-range `[z0, z1)`.
    z0: usize,
    z1: usize,
    /// Whether a lower / upper neighbouring partition exists.
    has_lo: bool,
    has_hi: bool,
}

impl DensePart {
    fn nz(&self) -> usize {
        self.z1 - self.z0
    }
}

#[derive(Debug)]
struct DenseInner {
    backend: Backend,
    dim: Dim3,
    radius: usize,
    /// Allocated ghost layers per neighbouring side (>= radius). The
    /// default equals the radius; temporal blocking allocates `k·radius`
    /// so one deep exchange can stage `k` iterations' worth of ghosts.
    halo_cap: usize,
    offsets: Arc<Vec<Offset3>>,
    mode: StorageMode,
    parts: Vec<DensePart>,
}

/// A dense rectilinear grid partitioned into z-slabs over the backend's
/// devices.
#[derive(Clone)]
pub struct DenseGrid {
    inner: Arc<DenseInner>,
}

impl std::fmt::Debug for DenseGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseGrid")
            .field("dim", &self.inner.dim)
            .field("radius", &self.inner.radius)
            .field("partitions", &self.inner.parts.len())
            .finish()
    }
}

/// How a dense grid splits its z-layers over the devices.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PartitionStrategy {
    /// Equal layer counts — correct for homogeneous systems.
    #[default]
    Even,
    /// Layers proportional to each device's effective memory bandwidth —
    /// load balance for heterogeneous systems (paper §VII future work).
    DeviceProportional,
    /// Layers proportional to explicit per-device shares — the feedback
    /// path for the straggler monitor, whose
    /// [`HealthReport::shares`](../../neon_core/health/struct.HealthReport.html)
    /// shrink a flagged device's slab on the next (re)build. Must hold
    /// one positive share per device.
    Shares(Vec<f64>),
}

impl DenseGrid {
    /// Create a dense grid over `backend`, registering `stencils` (their
    /// union determines the halo radius and the neighbour slots).
    pub fn new(
        backend: &Backend,
        dim: Dim3,
        stencils: &[&Stencil],
        mode: StorageMode,
    ) -> Result<Self> {
        DenseGrid::with_partitioning(backend, dim, stencils, mode, PartitionStrategy::Even)
    }

    /// [`DenseGrid::new`] with an explicit partitioning strategy.
    pub fn with_partitioning(
        backend: &Backend,
        dim: Dim3,
        stencils: &[&Stencil],
        mode: StorageMode,
        strategy: PartitionStrategy,
    ) -> Result<Self> {
        DenseGrid::build(backend, dim, stencils, mode, strategy, None)
    }

    /// [`DenseGrid::new`] allocating `halo_cap` ghost layers per
    /// neighbouring side instead of the stencil radius. A `Temporal(k)`
    /// super-step needs `k·radius` layers: rep 0 iterates `(k-1)·radius`
    /// ghost layers and its stencil reads reach `k·radius`. Partitions
    /// must be thick enough that a depth-`halo_cap` exchange still copies
    /// only owned cells.
    pub fn with_halo_capacity(
        backend: &Backend,
        dim: Dim3,
        stencils: &[&Stencil],
        mode: StorageMode,
        halo_cap: usize,
    ) -> Result<Self> {
        DenseGrid::build(
            backend,
            dim,
            stencils,
            mode,
            PartitionStrategy::Even,
            Some(halo_cap),
        )
    }

    fn build(
        backend: &Backend,
        dim: Dim3,
        stencils: &[&Stencil],
        mode: StorageMode,
        strategy: PartitionStrategy,
        halo_cap: Option<usize>,
    ) -> Result<Self> {
        if dim.count() == 0 {
            return Err(NeonSysError::InvalidConfig {
                what: format!("empty domain {dim}"),
            });
        }
        let n = backend.num_devices();
        if dim.z < n {
            return Err(NeonSysError::InvalidConfig {
                what: format!("{dim} has fewer z-layers than the {n} devices"),
            });
        }
        let offsets = union_offsets(stencils);
        let radius = offsets
            .iter()
            .map(|o| o.dz.unsigned_abs() as usize)
            .max()
            .unwrap_or(0);
        for o in &offsets {
            if o.dx.unsigned_abs() as usize >= dim.x || o.dy.unsigned_abs() as usize >= dim.y {
                return Err(NeonSysError::InvalidConfig {
                    what: format!("stencil offset {o} exceeds domain extent {dim}"),
                });
            }
        }
        let slabs = match strategy {
            PartitionStrategy::Even => slab_partition(dim.z, n),
            PartitionStrategy::DeviceProportional => {
                let shares: Vec<f64> = backend
                    .devices()
                    .iter()
                    .map(|d| d.mem_bandwidth_gb_s)
                    .collect();
                proportional_slab_partition(dim.z, &shares)
            }
            PartitionStrategy::Shares(ref shares) => {
                if shares.len() != n {
                    return Err(NeonSysError::InvalidConfig {
                        what: format!("{} partition shares for {n} devices", shares.len()),
                    });
                }
                if shares.iter().any(|s| !s.is_finite() || *s <= 0.0) {
                    return Err(NeonSysError::InvalidConfig {
                        what: format!("partition shares must be positive and finite: {shares:?}"),
                    });
                }
                proportional_slab_partition(dim.z, shares)
            }
        };
        let halo_cap = halo_cap.unwrap_or(radius);
        if halo_cap < radius {
            return Err(NeonSysError::InvalidConfig {
                what: format!("halo capacity {halo_cap} below stencil radius {radius}"),
            });
        }
        let parts: Vec<DensePart> = slabs
            .iter()
            .enumerate()
            .map(|(i, &(z0, z1))| DensePart {
                z0,
                z1,
                has_lo: i > 0,
                has_hi: i + 1 < n,
            })
            .collect();
        for p in &parts {
            let needed = p.has_lo as usize * halo_cap + p.has_hi as usize * halo_cap;
            if p.nz() < needed.max(1) {
                return Err(NeonSysError::InvalidConfig {
                    what: format!(
                        "partition [{}, {}) too thin for halo capacity {halo_cap}",
                        p.z0, p.z1
                    ),
                });
            }
            let alloc = dim.x * dim.y * (p.nz() + 2 * halo_cap);
            if alloc > u32::MAX as usize {
                return Err(NeonSysError::InvalidConfig {
                    what: format!("partition storage {alloc} exceeds 32-bit cell indices"),
                });
            }
        }
        Ok(DenseGrid {
            inner: Arc::new(DenseInner {
                backend: backend.clone(),
                dim,
                radius,
                halo_cap,
                offsets: Arc::new(offsets),
                mode,
                parts,
            }),
        })
    }

    fn sxy(&self) -> usize {
        self.inner.dim.x * self.inner.dim.y
    }

    fn part(&self, dev: DeviceId) -> &DensePart {
        &self.inner.parts[dev.0]
    }

    /// Owned z-range of device `dev`.
    pub fn owned_z_range(&self, dev: DeviceId) -> (usize, usize) {
        let p = self.part(dev);
        (p.z0, p.z1)
    }

    /// Boundary layer counts `(below, above)` of `dev`'s slab.
    fn bnd_layers(&self, dev: DeviceId) -> (usize, usize) {
        let p = self.part(dev);
        (
            if p.has_lo { self.inner.radius } else { 0 },
            if p.has_hi { self.inner.radius } else { 0 },
        )
    }

    /// The owned z-ranges iterated for `view` on `dev` (global coords).
    /// At most two (the boundary view's low and high slabs); returned
    /// inline so per-launch queries stay off the heap.
    fn view_z_ranges(&self, dev: DeviceId, view: DataView) -> ([(usize, usize); 2], usize) {
        let p = self.part(dev);
        let (bl, bh) = self.bnd_layers(dev);
        let mut ranges = [(0, 0); 2];
        let n = match view {
            DataView::Standard => {
                ranges[0] = (p.z0, p.z1);
                1
            }
            DataView::Internal => {
                ranges[0] = (p.z0 + bl, p.z1 - bh);
                1
            }
            DataView::Boundary => {
                let mut n = 0;
                if bl > 0 {
                    ranges[n] = (p.z0, p.z0 + bl);
                    n += 1;
                }
                if bh > 0 {
                    ranges[n] = (p.z1 - bh, p.z1);
                    n += 1;
                }
                n
            }
        };
        (ranges, n)
    }

    #[inline]
    fn local_lin(&self, dev: DeviceId, x: usize, y: usize, z: usize) -> u32 {
        let p = self.part(dev);
        // `z` may sit up to `halo_cap` layers below `z0` (ghost iteration),
        // so add the capacity before subtracting to stay in `usize` range.
        let zl = z + self.inner.halo_cap - p.z0;
        ((zl * self.inner.dim.y + y) * self.inner.dim.x + x) as u32
    }

    /// Ghost-layer counts `(below, above)` device `dev` iterates when
    /// expanded by `depth` (clamped to allocation and domain edges).
    fn expand_layers(&self, dev: DeviceId, depth: usize) -> (usize, usize) {
        let p = self.part(dev);
        let d = depth.min(self.inner.halo_cap);
        (if p.has_lo { d } else { 0 }, if p.has_hi { d } else { 0 })
    }
}

impl IterationSpace for DenseGrid {
    fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    fn space_id(&self) -> Option<u64> {
        Some(Arc::as_ptr(&self.inner) as *const () as u64)
    }

    fn cell_count(&self, dev: DeviceId, view: DataView) -> u64 {
        let (ranges, n) = self.view_z_ranges(dev, view);
        ranges[..n]
            .iter()
            .map(|&(a, b)| ((b - a) * self.sxy()) as u64)
            .sum()
    }

    fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
        let dim = self.inner.dim;
        let (ranges, nr) = self.view_z_ranges(dev, view);
        for &(za, zb) in &ranges[..nr] {
            for z in za..zb {
                for y in 0..dim.y {
                    let row = self.local_lin(dev, 0, y, z);
                    for x in 0..dim.x {
                        f(Cell::new(row + x as u32, x as i32, y as i32, z as i32));
                    }
                }
            }
        }
    }

    // Overridden (not the buffered default) so the per-cell producer loop
    // stays monomorphized: `ChunkBuffer::push` inlines here, and the only
    // virtual call is the one per full chunk. Chunks also span x-rows, so
    // small grids still hand the kernel full CELL_CHUNK slices.
    fn for_each_cell_chunked(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(&[Cell])) {
        let dim = self.inner.dim;
        let (ranges, nr) = self.view_z_ranges(dev, view);
        let mut chunks = ChunkBuffer::new();
        for &(za, zb) in &ranges[..nr] {
            for z in za..zb {
                for y in 0..dim.y {
                    let row = self.local_lin(dev, 0, y, z);
                    for x in 0..dim.x {
                        chunks.push(Cell::new(row + x as u32, x as i32, y as i32, z as i32), f);
                    }
                }
            }
        }
        chunks.flush(f);
    }

    fn supports_functional(&self) -> bool {
        self.inner.mode == StorageMode::Real
    }

    fn ghost_capacity(&self) -> usize {
        // A rep iterating `e` ghost layers stencil-reads to depth
        // `e + radius`, which must stay within the allocation.
        self.inner.halo_cap - self.inner.radius
    }

    fn cell_count_expanded(&self, dev: DeviceId, depth: usize) -> u64 {
        let (lo, hi) = self.expand_layers(dev, depth);
        ((self.part(dev).nz() + lo + hi) * self.sxy()) as u64
    }

    fn for_each_cell_chunked_expanded(
        &self,
        dev: DeviceId,
        depth: usize,
        f: &mut dyn FnMut(&[Cell]),
    ) {
        assert!(
            depth <= IterationSpace::ghost_capacity(self),
            "expanded depth {depth} exceeds ghost capacity {}",
            IterationSpace::ghost_capacity(self)
        );
        let dim = self.inner.dim;
        let p = self.part(dev);
        let (lo, hi) = self.expand_layers(dev, depth);
        let (za, zb) = (p.z0 - lo, p.z1 + hi);
        let mut chunks = ChunkBuffer::new();
        for z in za..zb {
            for y in 0..dim.y {
                let row = self.local_lin(dev, 0, y, z);
                for x in 0..dim.x {
                    chunks.push(Cell::new(row + x as u32, x as i32, y as i32, z as i32), f);
                }
            }
        }
        chunks.flush(f);
    }
}

/// Cell-local read view of a dense partition.
pub struct DenseRead<T: Elem> {
    raw: RawRead<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
}

impl<T: Elem> FieldRead<T> for DenseRead<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    fn card(&self) -> usize {
        self.card
    }
}

/// Neighbourhood read view of a dense partition.
pub struct DenseStencil<T: Elem> {
    raw: RawRead<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
    outside: T,
    offsets: Arc<Vec<Offset3>>,
    dim: Dim3,
    row: i64,
    plane: i64,
}

impl<T: Elem> FieldRead<T> for DenseStencil<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    fn card(&self) -> usize {
        self.card
    }
}

impl<T: Elem> FieldStencil<T> for DenseStencil<T> {
    #[inline]
    fn ngh(&self, cell: Cell, slot: usize, comp: usize) -> T {
        let o = self.offsets[slot];
        if !self
            .dim
            .contains(cell.x + o.dx, cell.y + o.dy, cell.z + o.dz)
        {
            return self.outside;
        }
        let lin = cell.lin as i64 + o.dz as i64 * self.plane + o.dy as i64 * self.row + o.dx as i64;
        debug_assert!(lin >= 0);
        self.raw.get(
            self.layout
                .index(lin as usize, comp, self.stride, self.card),
        )
    }

    #[inline]
    fn ngh_active(&self, cell: Cell, slot: usize) -> bool {
        let o = self.offsets[slot];
        self.dim
            .contains(cell.x + o.dx, cell.y + o.dy, cell.z + o.dz)
    }

    fn num_slots(&self) -> usize {
        self.offsets.len()
    }
}

/// Write view of a dense partition.
pub struct DenseWrite<T: Elem> {
    raw: RawWrite<T>,
    card: usize,
    layout: MemLayout,
    stride: usize,
}

impl<T: Elem> FieldWrite<T> for DenseWrite<T> {
    #[inline]
    fn at(&self, cell: Cell, comp: usize) -> T {
        self.raw
            .get(self.layout.index(cell.idx(), comp, self.stride, self.card))
    }
    #[inline]
    fn set(&self, cell: Cell, comp: usize, v: T) {
        self.raw.set(
            self.layout.index(cell.idx(), comp, self.stride, self.card),
            v,
        )
    }
    fn card(&self) -> usize {
        self.card
    }
}

impl GridLike for DenseGrid {
    type ReadView<T: Elem> = DenseRead<T>;
    type StencilView<T: Elem> = DenseStencil<T>;
    type WriteView<T: Elem> = DenseWrite<T>;

    fn backend(&self) -> &Backend {
        &self.inner.backend
    }

    fn dim(&self) -> Dim3 {
        self.inner.dim
    }

    fn storage_mode(&self) -> StorageMode {
        self.inner.mode
    }

    fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    fn radius(&self) -> usize {
        self.inner.radius
    }

    fn active_cells(&self) -> u64 {
        self.inner.dim.count()
    }

    fn owned_cells(&self, dev: DeviceId, view: DataView) -> u64 {
        self.cell_count(dev, view)
    }

    fn alloc_len(&self, dev: DeviceId) -> usize {
        self.sxy() * (self.part(dev).nz() + 2 * self.inner.halo_cap)
    }

    fn as_space(&self) -> Arc<dyn IterationSpace> {
        Arc::new(self.clone())
    }

    fn union_offsets(&self) -> &[Offset3] {
        &self.inner.offsets
    }

    fn stencil_extra_bytes_per_cell(&self) -> u64 {
        0
    }

    fn halo_segments(&self, card: usize, layout: MemLayout) -> Vec<HaloSegment> {
        self.halo_segments_depth(card, layout, self.inner.radius)
    }

    fn halo_capacity(&self) -> usize {
        self.inner.halo_cap
    }

    fn halo_segments_depth(
        &self,
        card: usize,
        layout: MemLayout,
        depth: usize,
    ) -> Vec<HaloSegment> {
        let cap = self.inner.halo_cap;
        assert!(
            depth <= cap,
            "halo depth {depth} exceeds allocated capacity {cap}"
        );
        if depth == 0 || self.inner.parts.len() == 1 {
            return Vec::new();
        }
        let sxy = self.sxy();
        let mut segs = Vec::new();
        for p in 0..self.inner.parts.len() - 1 {
            let lo = DeviceId(p);
            let hi = DeviceId(p + 1);
            let nz_lo = self.part(lo).nz();
            let nz_hi = self.part(hi).nz();
            // Element offsets within one component's storage: owned layers
            // occupy local z-layers [cap, cap + nz); a depth-d exchange
            // copies each side's d owned layers nearest the cut into the
            // d halo layers nearest the other side's owned region, so only
            // owner-computed values ever cross devices.
            let up_src = (cap + nz_lo - depth) * sxy; // lo's top d owned layers
            let up_dst = (cap - depth) * sxy; // hi's halo layers [cap-d, cap)
            let dn_src = cap * sxy; // hi's bottom d owned layers
            let dn_dst = (cap + nz_lo) * sxy; // lo's halo above owned
            let len = depth * sxy;
            match layout {
                MemLayout::SoA => {
                    let stride_lo = self.alloc_len(lo);
                    let stride_hi = self.alloc_len(hi);
                    for c in 0..card {
                        segs.push(HaloSegment {
                            src: lo,
                            dst: hi,
                            src_off: c * stride_lo + up_src,
                            dst_off: c * stride_hi + up_dst,
                            len,
                        });
                        segs.push(HaloSegment {
                            src: hi,
                            dst: lo,
                            src_off: c * stride_hi + dn_src,
                            dst_off: c * stride_lo + dn_dst,
                            len,
                        });
                    }
                    let _ = nz_hi;
                }
                MemLayout::AoS => {
                    segs.push(HaloSegment {
                        src: lo,
                        dst: hi,
                        src_off: up_src * card,
                        dst_off: up_dst * card,
                        len: len * card,
                    });
                    segs.push(HaloSegment {
                        src: hi,
                        dst: lo,
                        src_off: dn_src * card,
                        dst_off: dn_dst * card,
                        len: len * card,
                    });
                }
            }
        }
        segs
    }

    fn locate(&self, x: i32, y: i32, z: i32) -> Option<(DeviceId, u32)> {
        if !self.inner.dim.contains(x, y, z) {
            return None;
        }
        let (x, y, z) = (x as usize, y as usize, z as usize);
        let dev = self
            .inner
            .parts
            .iter()
            .position(|p| z >= p.z0 && z < p.z1)
            .map(DeviceId)?;
        Some((dev, self.local_lin(dev, x, y, z)))
    }

    fn for_each_owned(&self, dev: DeviceId, f: &mut dyn FnMut(Cell)) {
        self.for_each_cell(dev, DataView::Standard, f);
    }

    fn for_each_ghost_ring(&self, dev: DeviceId, level: usize, f: &mut dyn FnMut(Cell)) {
        assert!(level >= 1, "ghost rings start at level 1");
        if level > self.inner.halo_cap {
            return;
        }
        let dim = self.inner.dim;
        let p = self.part(dev);
        let mut ring = |z: usize| {
            for y in 0..dim.y {
                let row = self.local_lin(dev, 0, y, z);
                for x in 0..dim.x {
                    f(Cell::new(row + x as u32, x as i32, y as i32, z as i32));
                }
            }
        };
        if p.has_lo {
            ring(p.z0 - level);
        }
        if p.has_hi {
            ring(p.z1 - 1 + level);
        }
    }

    fn make_read_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> DenseRead<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        DenseRead {
            raw: if null {
                parts.mem.null_read()
            } else {
                parts.mem.read(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
        }
    }

    fn make_stencil_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> DenseStencil<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        DenseStencil {
            raw: if null {
                parts.mem.null_read()
            } else {
                parts.mem.read(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
            outside: parts.outside,
            offsets: self.inner.offsets.clone(),
            dim: self.inner.dim,
            row: self.inner.dim.x as i64,
            plane: self.sxy() as i64,
        }
    }

    fn make_write_view<T: Elem>(
        &self,
        parts: &FieldParts<T>,
        dev: DeviceId,
        null: bool,
    ) -> DenseWrite<T> {
        let null = null || self.inner.mode == StorageMode::Virtual;
        DenseWrite {
            raw: if null {
                parts.mem.null_write()
            } else {
                parts.mem.write(dev)
            },
            card: parts.card,
            layout: parts.layout,
            stride: self.alloc_len(dev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n_dev: usize, dim: Dim3) -> DenseGrid {
        let b = Backend::dgx_a100(n_dev);
        let s = Stencil::seven_point();
        DenseGrid::new(&b, dim, &[&s], StorageMode::Real).unwrap()
    }

    #[test]
    fn partition_geometry() {
        let g = grid(4, Dim3::new(8, 8, 16));
        assert_eq!(GridLike::num_partitions(&g), 4);
        assert_eq!(g.radius(), 1);
        assert_eq!(g.owned_z_range(DeviceId(0)), (0, 4));
        assert_eq!(g.owned_z_range(DeviceId(3)), (12, 16));
        // 4 owned layers + 2 halo layers of 64 cells each.
        assert_eq!(g.alloc_len(DeviceId(1)), 8 * 8 * 6);
    }

    #[test]
    fn view_counts_partition_standard() {
        let g = grid(4, Dim3::new(8, 8, 16));
        for d in 0..4 {
            let d = DeviceId(d);
            assert_eq!(
                g.cell_count(d, DataView::Internal) + g.cell_count(d, DataView::Boundary),
                g.cell_count(d, DataView::Standard)
            );
        }
        // Middle partitions have boundary layers on both sides.
        assert_eq!(g.cell_count(DeviceId(1), DataView::Boundary), 2 * 64);
        // Edge partitions only on the interior side.
        assert_eq!(g.cell_count(DeviceId(0), DataView::Boundary), 64);
        assert_eq!(g.cell_count(DeviceId(3), DataView::Boundary), 64);
    }

    #[test]
    fn single_device_has_no_boundary() {
        let g = grid(1, Dim3::cube(8));
        assert_eq!(g.cell_count(DeviceId(0), DataView::Boundary), 0);
        assert_eq!(g.cell_count(DeviceId(0), DataView::Internal), 512);
        assert!(g.halo_segments(1, MemLayout::SoA).is_empty());
    }

    #[test]
    fn iteration_covers_every_cell_once() {
        let g = grid(3, Dim3::new(4, 4, 9));
        let mut seen = std::collections::HashSet::new();
        for d in 0..3 {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                assert!(seen.insert((c.x, c.y, c.z)), "duplicate cell");
            });
        }
        assert_eq!(seen.len(), 4 * 4 * 9);
    }

    #[test]
    fn internal_and_boundary_disjoint_cover() {
        let g = grid(2, Dim3::new(4, 4, 8));
        for d in 0..2 {
            let mut cells = Vec::new();
            g.for_each_cell(DeviceId(d), DataView::Internal, &mut |c| {
                cells.push((c.z, false))
            });
            g.for_each_cell(DeviceId(d), DataView::Boundary, &mut |c| {
                cells.push((c.z, true))
            });
            assert_eq!(cells.len(), 4 * 4 * 4);
        }
        // Device 0 owns z in [0,4); boundary is z=3 only (no lower neighbour).
        let mut bnd_z = std::collections::HashSet::new();
        g.for_each_cell(DeviceId(0), DataView::Boundary, &mut |c| {
            bnd_z.insert(c.z);
        });
        assert_eq!(bnd_z, [3].into_iter().collect());
    }

    #[test]
    fn locate_round_trips_with_iteration() {
        let g = grid(2, Dim3::new(3, 5, 8));
        for d in 0..2 {
            g.for_each_cell(DeviceId(d), DataView::Standard, &mut |c| {
                let (dev, lin) = g.locate(c.x, c.y, c.z).unwrap();
                assert_eq!(dev, DeviceId(d));
                assert_eq!(lin, c.lin);
            });
        }
        assert!(g.locate(-1, 0, 0).is_none());
        assert!(g.locate(0, 0, 8).is_none());
    }

    #[test]
    fn halo_segment_counts_match_paper() {
        let g = grid(4, Dim3::new(8, 8, 16));
        // Scalar (or AoS): 2 transfers per partition pair.
        assert_eq!(g.halo_segments(1, MemLayout::SoA).len(), 2 * 3);
        assert_eq!(g.halo_segments(3, MemLayout::AoS).len(), 2 * 3);
        // SoA with n components: 2n per pair.
        assert_eq!(g.halo_segments(3, MemLayout::SoA).len(), 2 * 3 * 3);
    }

    #[test]
    fn halo_segments_have_correct_sizes() {
        let g = grid(2, Dim3::new(4, 4, 8));
        let segs = g.halo_segments(1, MemLayout::SoA);
        assert_eq!(segs.len(), 2);
        for s in &segs {
            assert_eq!(s.len, 16); // one z-layer of 4x4
        }
        let up = segs.iter().find(|s| s.src == DeviceId(0)).unwrap();
        // dev0 owns z [0,4): top owned layer is local z-layer 4 (offset 4*16).
        assert_eq!(up.src_off, 4 * 16);
        assert_eq!(up.dst_off, 0);
        let down = segs.iter().find(|s| s.src == DeviceId(1)).unwrap();
        assert_eq!(down.src_off, 16); // owned layer r=1
        assert_eq!(down.dst_off, (1 + 4) * 16); // above dev0's owned layers
    }

    #[test]
    fn thin_partition_rejected() {
        let b = Backend::dgx_a100(8);
        let s = Stencil::seven_point();
        // 8 layers over 8 devices = 1 layer each, but middle partitions
        // need ≥2 for radius-1 boundaries on both sides.
        let err = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real);
        assert!(err.is_err());
    }

    #[test]
    fn wide_stencil_offset_rejected() {
        let b = Backend::dgx_a100(1);
        let s = Stencil::new("wide", vec![Offset3::new(5, 0, 0)]);
        let err = DenseGrid::new(&b, Dim3::new(4, 4, 4), &[&s], StorageMode::Real);
        assert!(err.is_err());
    }

    #[test]
    fn halo_capacity_expands_allocation_and_segments() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::with_halo_capacity(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real, 3)
            .unwrap();
        assert_eq!(g.halo_capacity(), 3);
        assert_eq!(g.radius(), 1);
        assert_eq!(g.alloc_len(DeviceId(0)), 16 * (4 + 6));
        // A depth-3 exchange copies each side's 3 owned layers nearest
        // the cut.
        let segs = g.halo_segments_depth(1, MemLayout::SoA, 3);
        assert_eq!(segs.len(), 2);
        for s in &segs {
            assert_eq!(s.len, 3 * 16);
        }
        let up = segs.iter().find(|s| s.src == DeviceId(0)).unwrap();
        assert_eq!(up.src_off, (3 + 4 - 3) * 16);
        assert_eq!(up.dst_off, 0);
        let down = segs.iter().find(|s| s.src == DeviceId(1)).unwrap();
        assert_eq!(down.src_off, 3 * 16);
        assert_eq!(down.dst_off, (3 + 4) * 16);
        // The default radius-deep exchange copies the layers *nearest*
        // the owned region, nesting inside the capacity.
        let r1 = g.halo_segments(1, MemLayout::SoA);
        let up1 = r1.iter().find(|s| s.src == DeviceId(0)).unwrap();
        assert_eq!(up1.src_off, (3 + 4 - 1) * 16);
        assert_eq!(up1.dst_off, (3 - 1) * 16);
    }

    #[test]
    fn expanded_iteration_covers_ghost_layers() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::with_halo_capacity(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real, 3)
            .unwrap();
        assert_eq!(IterationSpace::ghost_capacity(&g), 2);
        // Edge partitions only expand toward their one neighbour.
        assert_eq!(g.cell_count_expanded(DeviceId(0), 2), 16 * 6);
        assert_eq!(g.cell_count_expanded(DeviceId(1), 2), 16 * 6);
        let mut zs = std::collections::BTreeSet::new();
        let mut n = 0usize;
        g.for_each_cell_chunked_expanded(DeviceId(0), 2, &mut |cells| {
            for c in cells {
                zs.insert(c.z);
                // Ghost cells carry valid local indices: round-trip via
                // the same indexing rule locate() uses.
                assert_eq!(
                    c.lin,
                    ((c.z as usize + 3) * 4 + c.y as usize) as u32 * 4 + c.x as u32
                );
                n += 1;
            }
        });
        assert_eq!(n, 16 * 6);
        assert_eq!(zs, (0..6).collect());
        let mut zs1 = std::collections::BTreeSet::new();
        g.for_each_cell_chunked_expanded(DeviceId(1), 2, &mut |cells| {
            for c in cells {
                zs1.insert(c.z);
            }
        });
        assert_eq!(zs1, (2..8).collect());
        // Depth 0 is exactly the standard view.
        let mut std_cells = Vec::new();
        g.for_each_cell_chunked(DeviceId(0), DataView::Standard, &mut |cs| {
            std_cells.extend_from_slice(cs)
        });
        let mut exp_cells = Vec::new();
        g.for_each_cell_chunked_expanded(DeviceId(0), 0, &mut |cs| exp_cells.extend_from_slice(cs));
        assert_eq!(std_cells, exp_cells);
    }

    #[test]
    fn ghost_rings_enumerate_layer_by_layer() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::with_halo_capacity(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real, 3)
            .unwrap();
        let collect = |dev: usize, level: usize| {
            let mut zs = Vec::new();
            GridLike::for_each_ghost_ring(&g, DeviceId(dev), level, &mut |c| zs.push(c.z));
            zs
        };
        // Device 0 owns z [0,4): rings grow upward only (no lower
        // neighbour).
        assert_eq!(collect(0, 1), vec![4; 16]);
        assert_eq!(collect(0, 2), vec![5; 16]);
        assert_eq!(collect(1, 1), vec![3; 16]);
        assert_eq!(collect(1, 2), vec![2; 16]);
        // Beyond capacity: nothing.
        assert!(collect(0, 4).is_empty());
    }

    #[test]
    fn virtual_grid_reports_counts_but_not_iteration() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::cube(64), &[&s], StorageMode::Virtual).unwrap();
        assert!(!g.supports_functional());
        assert_eq!(g.cell_count(DeviceId(0), DataView::Standard), 64 * 64 * 32);
    }
}
