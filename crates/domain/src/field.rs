//! `Field<T, G>` — physical quantities on a grid.
//!
//! A field stores `card` components of type `T` per active cell of its
//! grid (paper §III, Listing 1). It is created *from* a grid and inherits
//! its partitioning, data views and halo structure. The component layout
//! (SoA / AoS) and the outside-domain value are field properties; neither
//! affects user computation code.
//!
//! `Field` implements [`Loadable`], so loading it through a container's
//! [`neon_set::Loader`] records the access for dependency analysis, and
//! its [`HaloExchange`] implementation gives the Skeleton everything
//! needed to insert halo-update nodes before stencil launches.

use std::sync::Arc;

use neon_set::{DataUid, Elem, HaloDescriptor, HaloExchange, Loadable, MemSet};
use neon_sys::{DeviceId, Result};

use crate::grid::{FieldParts, GridLike};
use crate::layout::MemLayout;
use crate::view::HaloSegment;

/// A scalar or vector quantity over a grid's active cells.
pub struct Field<T: Elem, G: GridLike> {
    grid: G,
    parts: Arc<FieldParts<T>>,
    halo: Option<Arc<FieldHalo<T>>>,
}

impl<T: Elem, G: GridLike> Clone for Field<T, G> {
    fn clone(&self) -> Self {
        Field {
            grid: self.grid.clone(),
            parts: self.parts.clone(),
            halo: self.halo.clone(),
        }
    }
}

impl<T: Elem, G: GridLike> std::fmt::Debug for Field<T, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Field")
            .field("name", &self.parts.mem.name())
            .field("card", &self.parts.card)
            .field("layout", &self.parts.layout)
            .finish()
    }
}

impl<T: Elem, G: GridLike> Field<T, G> {
    /// Allocate a field of `card` components on `grid`.
    ///
    /// `outside` is the value stencil reads return beyond the active
    /// domain (paper Listing 1's `outsideDomainValue`).
    pub fn new(grid: &G, name: &str, card: usize, outside: T, layout: MemLayout) -> Result<Self> {
        assert!(card > 0, "cardinality must be positive");
        let sizes: Vec<usize> = (0..grid.num_partitions())
            .map(|d| grid.alloc_len(DeviceId(d)) * card)
            .collect();
        let mem = MemSet::new(grid.backend(), name, &sizes, grid.storage_mode())?;
        let segs = grid.halo_segments(card, layout);
        let parts = Arc::new(FieldParts {
            mem: mem.clone(),
            card,
            layout,
            outside,
        });
        let halo = if segs.is_empty() {
            None
        } else {
            let g = grid.clone();
            let capacity = grid.halo_capacity();
            let segs_at: SegsAtDepth =
                Arc::new(move |d: usize| g.halo_segments_depth(card, layout, d));
            Some(Arc::new(FieldHalo {
                mem,
                segs,
                depth: grid.radius(),
                capacity,
                segs_at,
            }))
        };
        Ok(Field {
            grid: grid.clone(),
            parts,
            halo,
        })
    }

    /// The grid this field lives on.
    pub fn grid(&self) -> &G {
        &self.grid
    }

    /// Field name.
    pub fn name(&self) -> &str {
        self.parts.mem.name()
    }

    /// Number of components per cell.
    pub fn card(&self) -> usize {
        self.parts.card
    }

    /// Component layout.
    pub fn layout(&self) -> MemLayout {
        self.parts.layout
    }

    /// The outside-domain value.
    pub fn outside_value(&self) -> T {
        self.parts.outside
    }

    /// Unique id (for dependency analysis and tests).
    pub fn uid(&self) -> DataUid {
        self.parts.mem.uid()
    }

    /// The field's halo exchange, if the grid is partitioned.
    pub fn halo(&self) -> Option<Arc<FieldHalo<T>>> {
        self.halo.clone()
    }

    /// Total device memory this field occupies, in bytes.
    pub fn bytes_allocated(&self) -> u64 {
        self.parts.mem.total_len() as u64 * T::BYTES
    }

    fn locate_idx(&self, dev: DeviceId, lin: u32, comp: usize) -> usize {
        self.parts.layout.index(
            lin as usize,
            comp,
            self.grid.alloc_len(dev),
            self.parts.card,
        )
    }

    /// Host read of one component of one cell (None outside the active
    /// domain). Host-side only; requires real storage.
    pub fn get(&self, x: i32, y: i32, z: i32, comp: usize) -> Option<T> {
        let (dev, lin) = self.grid.locate(x, y, z)?;
        let idx = self.locate_idx(dev, lin, comp);
        Some(self.parts.mem.with_part(dev, |s| s[idx]))
    }

    /// Host write of one component of one cell. Returns false outside the
    /// active domain.
    pub fn set(&self, x: i32, y: i32, z: i32, comp: usize, v: T) -> bool {
        match self.grid.locate(x, y, z) {
            Some((dev, lin)) => {
                let idx = self.locate_idx(dev, lin, comp);
                self.parts.mem.with_part_mut(dev, |s| s[idx] = v);
                true
            }
            None => false,
        }
    }

    /// Fill every owned cell from `f(x, y, z, comp)`, then refresh halos.
    pub fn fill(&self, f: impl Fn(i32, i32, i32, usize) -> T) {
        let card = self.parts.card;
        for d in 0..self.grid.num_partitions() {
            let dev = DeviceId(d);
            let stride = self.grid.alloc_len(dev);
            self.parts.mem.with_part_mut(dev, |s| {
                self.grid.for_each_owned(dev, &mut |c| {
                    for comp in 0..card {
                        s[self.parts.layout.index(c.idx(), comp, stride, card)] =
                            f(c.x, c.y, c.z, comp);
                    }
                });
            });
        }
        self.update_halos();
    }

    /// Visit every owned cell: `f(x, y, z, comp, value)`.
    pub fn for_each(&self, mut f: impl FnMut(i32, i32, i32, usize, T)) {
        let card = self.parts.card;
        for d in 0..self.grid.num_partitions() {
            let dev = DeviceId(d);
            let stride = self.grid.alloc_len(dev);
            self.parts.mem.with_part(dev, |s| {
                self.grid.for_each_owned(dev, &mut |c| {
                    for comp in 0..card {
                        f(
                            c.x,
                            c.y,
                            c.z,
                            comp,
                            s[self.parts.layout.index(c.idx(), comp, stride, card)],
                        );
                    }
                });
            });
        }
    }

    /// Manually run this field's halo exchange (the Skeleton does this
    /// automatically before stencil launches; tests and hand-rolled
    /// harnesses call it directly). Refreshes the field's *full* allocated
    /// ghost capacity, so fields on deep-halo grids start temporal
    /// super-steps with every stored ghost layer coherent.
    pub fn update_halos(&self) {
        if let Some(h) = &self.halo {
            match h.at_depth(h.capacity) {
                Some(deep) => deep.execute(),
                None => h.execute(),
            }
        }
    }
}

/// Paper-style field construction sugar (Listing 1: `grid.newField(...)`).
pub trait GridExt: GridLike {
    /// Allocate a `card`-component field of `T` on this grid.
    fn new_field<T: Elem>(
        &self,
        name: &str,
        card: usize,
        outside: T,
        layout: MemLayout,
    ) -> Result<Field<T, Self>> {
        Field::new(self, name, card, outside, layout)
    }
}

impl<G: GridLike> GridExt for G {}

/// Computes the transfer segments refreshing a given ghost depth —
/// captures the grid so [`FieldHalo`] stays generic over `T` only.
type SegsAtDepth = Arc<dyn Fn(usize) -> Vec<HaloSegment> + Send + Sync>;

/// The explicit-transfer halo coherency implementation (paper §IV-C2).
pub struct FieldHalo<T: Elem> {
    mem: MemSet<T>,
    segs: Vec<HaloSegment>,
    /// Ghost layers one round of *this* exchange refreshes.
    depth: usize,
    /// Ghost layers the field's allocation can hold per side.
    capacity: usize,
    segs_at: SegsAtDepth,
}

impl<T: Elem> FieldHalo<T> {
    /// The transfer segments (element granularity).
    pub fn segments(&self) -> &[HaloSegment] {
        &self.segs
    }

    /// Ghost layers the field's allocation can hold per side.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T: Elem> HaloExchange for FieldHalo<T> {
    fn data_uid(&self) -> DataUid {
        self.mem.uid()
    }

    fn data_name(&self) -> String {
        self.mem.name().to_string()
    }

    fn descriptors(&self) -> Vec<HaloDescriptor> {
        self.segs
            .iter()
            .map(|s| HaloDescriptor {
                src: s.src,
                dst: s.dst,
                bytes: s.len as u64 * T::BYTES,
            })
            .collect()
    }

    fn execute(&self) {
        for s in &self.segs {
            self.mem
                .copy_between(s.src, s.src_off, s.dst, s.dst_off, s.len);
        }
    }

    fn supports_per_device(&self) -> bool {
        true
    }

    fn execute_for_dst(&self, dst: DeviceId) {
        // Lease-free: the parallel executor's event table orders this
        // against every conflicting access, and taking whole-partition
        // leases here would falsely reject the internal-kernel ∥ halo
        // overlap the schedule legitimately allows.
        for s in self.segs.iter().filter(|s| s.dst == dst) {
            self.mem
                .copy_between_untracked(s.src, s.src_off, s.dst, s.dst_off, s.len);
        }
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn at_depth(&self, depth: usize) -> Option<Arc<dyn HaloExchange>> {
        if depth == 0 || depth > self.capacity {
            return None;
        }
        if depth == self.depth {
            // Avoid recomputing segments for the common identity case.
            return Some(Arc::new(FieldHalo {
                mem: self.mem.clone(),
                segs: self.segs.clone(),
                depth,
                capacity: self.capacity,
                segs_at: self.segs_at.clone(),
            }));
        }
        Some(Arc::new(FieldHalo {
            mem: self.mem.clone(),
            segs: (self.segs_at)(depth),
            depth,
            capacity: self.capacity,
            segs_at: self.segs_at.clone(),
        }))
    }
}

impl<T: Elem, G: GridLike> Loadable for Field<T, G> {
    type ReadView = G::ReadView<T>;
    type StencilView = G::StencilView<T>;
    type WriteView = G::WriteView<T>;

    fn data_uid(&self) -> DataUid {
        self.uid()
    }

    fn data_name(&self) -> String {
        self.name().to_string()
    }

    fn bytes_per_cell(&self) -> u64 {
        self.parts.card as u64 * T::BYTES
    }

    fn stencil_bytes_per_cell(&self) -> u64 {
        self.bytes_per_cell() + self.grid.stencil_extra_bytes_per_cell()
    }

    fn halo_exchange(&self) -> Option<Arc<dyn HaloExchange>> {
        self.halo.clone().map(|h| h as Arc<dyn HaloExchange>)
    }

    fn state_handle(&self) -> Option<Arc<dyn neon_set::StateHandle>> {
        // Checkpoint the backing MemSet: halo layers are captured along
        // with owned cells, so a restore needs no halo refresh.
        Some(Arc::new(self.parts.mem.clone()))
    }

    fn make_read_view(&self, dev: DeviceId, null: bool) -> Self::ReadView {
        self.grid.make_read_view(&self.parts, dev, null)
    }

    fn make_stencil_view(&self, dev: DeviceId, null: bool) -> Self::StencilView {
        self.grid.make_stencil_view(&self.parts, dev, null)
    }

    fn make_write_view(&self, dev: DeviceId, null: bool) -> Self::WriteView {
        self.grid.make_write_view(&self.parts, dev, null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseGrid;
    use crate::grid::Dim3;
    use crate::sparse::SparseGrid;
    use crate::stencil::Stencil;
    use crate::view::{FieldStencil as _, FieldWrite as _};
    use neon_set::{DataView, IterationSpace, Loader, StorageMode};
    use neon_sys::Backend;

    fn dense(n: usize) -> DenseGrid {
        let b = Backend::dgx_a100(n);
        let s = Stencil::seven_point();
        DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap()
    }

    #[test]
    fn fill_and_get_round_trip() {
        let g = dense(2);
        let f = Field::<f64, _>::new(&g, "f", 2, 0.0, MemLayout::SoA).unwrap();
        f.fill(|x, y, z, c| (x + 10 * y + 100 * z) as f64 + c as f64 * 0.5);
        assert_eq!(f.get(1, 2, 3, 0), Some(321.0));
        assert_eq!(f.get(1, 2, 3, 1), Some(321.5));
        assert_eq!(f.get(1, 2, 7, 0), Some(721.0)); // second partition
        assert_eq!(f.get(4, 0, 0, 0), None); // outside
    }

    #[test]
    fn set_updates_single_cell() {
        let g = dense(2);
        let f = Field::<f64, _>::new(&g, "f", 1, 0.0, MemLayout::AoS).unwrap();
        assert!(f.set(2, 3, 5, 0, 9.0));
        assert_eq!(f.get(2, 3, 5, 0), Some(9.0));
        assert!(!f.set(0, 0, 99, 0, 1.0));
    }

    #[test]
    fn halo_update_makes_neighbour_data_visible() {
        let g = dense(2);
        let f = Field::<f64, _>::new(&g, "f", 1, -1.0, MemLayout::SoA).unwrap();
        f.fill(|_, _, z, _| z as f64);
        // Read across the partition edge (z=3 on dev0 reading z=4 on dev1)
        // via a stencil view; halo was refreshed by fill().
        let mut ldr = Loader::for_execution(DeviceId(0), 2, DataView::Standard);
        let sv = ldr.read_stencil(&f);
        let up = g.slot_of(crate::stencil::Offset3::new(0, 0, 1)).unwrap();
        let mut checked = 0;
        g.for_each_cell(DeviceId(0), DataView::Boundary, &mut |c| {
            assert_eq!(sv.ngh(c, up, 0), (c.z + 1) as f64);
            checked += 1;
        });
        assert_eq!(checked, 16);
    }

    #[test]
    fn stencil_outside_returns_default() {
        let g = dense(1);
        let f = Field::<f64, _>::new(&g, "f", 1, -7.5, MemLayout::SoA).unwrap();
        f.fill(|_, _, _, _| 1.0);
        let mut ldr = Loader::for_execution(DeviceId(0), 1, DataView::Standard);
        let sv = ldr.read_stencil(&f);
        let left = g.slot_of(crate::stencil::Offset3::new(-1, 0, 0)).unwrap();
        g.for_each_cell(DeviceId(0), DataView::Standard, &mut |c| {
            if c.x == 0 {
                assert_eq!(sv.ngh(c, left, 0), -7.5);
                assert!(!sv.ngh_active(c, left));
            } else {
                assert_eq!(sv.ngh(c, left, 0), 1.0);
            }
        });
    }

    #[test]
    fn halo_descriptor_bytes() {
        let g = dense(2);
        let f = Field::<f64, _>::new(&g, "f", 3, 0.0, MemLayout::SoA).unwrap();
        let h = f.halo().unwrap();
        let descs = h.descriptors();
        assert_eq!(descs.len(), 6); // 2 directions x 3 components
        for d in &descs {
            assert_eq!(d.bytes, 16 * 8); // one 4x4 layer of f64
        }
    }

    #[test]
    fn aos_and_soa_agree_through_host_api() {
        let g = dense(2);
        let a = Field::<f64, _>::new(&g, "a", 3, 0.0, MemLayout::SoA).unwrap();
        let b = Field::<f64, _>::new(&g, "b", 3, 0.0, MemLayout::AoS).unwrap();
        let f = |x: i32, y: i32, z: i32, c: usize| (x * 7 + y * 3 + z + c as i32) as f64;
        a.fill(f);
        b.fill(f);
        a.for_each(|x, y, z, c, v| {
            assert_eq!(b.get(x, y, z, c), Some(v));
        });
    }

    #[test]
    fn sparse_field_works_like_dense_on_full_mask() {
        let bk = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let dim = Dim3::new(4, 4, 8);
        let g = SparseGrid::new(&bk, dim, &[&s], |_, _, _| true, StorageMode::Real).unwrap();
        let f = Field::<f64, _>::new(&g, "f", 1, 0.0, MemLayout::SoA).unwrap();
        f.fill(|x, y, z, _| (x + y + z) as f64);
        assert_eq!(f.get(1, 1, 1, 0), Some(3.0));
        // Stencil read across partitions after fill's halo refresh.
        let mut ldr = Loader::for_execution(DeviceId(0), 2, DataView::Standard);
        let sv = ldr.read_stencil(&f);
        let up = g.slot_of(crate::stencil::Offset3::new(0, 0, 1)).unwrap();
        g.for_each_cell(DeviceId(0), DataView::Boundary, &mut |c| {
            assert_eq!(sv.ngh(c, up, 0), (c.x + c.y + c.z + 1) as f64);
        });
    }

    #[test]
    fn write_view_respects_layout() {
        let g = dense(1);
        let f = Field::<f64, _>::new(&g, "f", 2, 0.0, MemLayout::AoS).unwrap();
        {
            let mut ldr = Loader::for_execution(DeviceId(0), 1, DataView::Standard);
            let wv = ldr.write(&f);
            g.for_each_cell(DeviceId(0), DataView::Standard, &mut |c| {
                wv.set(c, 0, c.x as f64);
                wv.set(c, 1, c.y as f64);
            });
        }
        assert_eq!(f.get(3, 2, 1, 0), Some(3.0));
        assert_eq!(f.get(3, 2, 1, 1), Some(2.0));
    }

    #[test]
    fn stencil_bytes_include_sparse_connectivity() {
        let bk = Backend::dgx_a100(1);
        let s = Stencil::seven_point();
        let dim = Dim3::cube(4);
        let dense_g = DenseGrid::new(&bk, dim, &[&s], StorageMode::Real).unwrap();
        let sparse_g = SparseGrid::new(&bk, dim, &[&s], |_, _, _| true, StorageMode::Real).unwrap();
        let fd = Field::<f64, _>::new(&dense_g, "fd", 1, 0.0, MemLayout::SoA).unwrap();
        let fs = Field::<f64, _>::new(&sparse_g, "fs", 1, 0.0, MemLayout::SoA).unwrap();
        assert_eq!(fd.stencil_bytes_per_cell(), 8);
        assert_eq!(fs.stencil_bytes_per_cell(), 8 + 6 * 4);
    }

    #[test]
    fn deep_halo_exchange_fills_capacity() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g = DenseGrid::with_halo_capacity(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real, 3)
            .unwrap();
        let f = Field::<f64, _>::new(&g, "f", 1, -1.0, MemLayout::SoA).unwrap();
        // fill() refreshes the *full* ghost capacity, so cell-local reads
        // of ghost cells 2 layers deep see the owner's values — the read
        // path a temporal super-step's rep 0 exercises.
        f.fill(|_, _, z, _| 10.0 * z as f64);
        let h = f.halo().unwrap();
        assert_eq!(h.capacity(), 3);
        assert_eq!(HaloExchange::depth(h.as_ref()), 1);
        let deep = h.at_depth(3).expect("capacity allows depth 3");
        assert_eq!(HaloExchange::depth(deep.as_ref()), 3);
        assert!(h.at_depth(4).is_none(), "beyond capacity");
        for dev in 0..2 {
            let mut ldr = Loader::for_execution(DeviceId(dev), 2, DataView::Standard);
            let rv = ldr.read(&f);
            g.for_each_cell_chunked_expanded(DeviceId(dev), 2, &mut |cells| {
                for c in cells {
                    assert_eq!(
                        crate::view::FieldRead::at(&rv, *c, 0),
                        10.0 * c.z as f64,
                        "dev {dev} cell ({}, {}, {})",
                        c.x,
                        c.y,
                        c.z
                    );
                }
            });
        }
    }

    #[test]
    fn bytes_allocated_counts_all_partitions() {
        let g = dense(2);
        let f = Field::<f64, _>::new(&g, "f", 1, 0.0, MemLayout::SoA).unwrap();
        // Each device: 4x4 x (4 owned + 2 halo) layers = 96 cells x 8 B.
        assert_eq!(f.bytes_allocated(), 2 * 96 * 8);
    }
}
