//! Unique identifiers for multi-GPU data objects.
//!
//! Every data object that can appear in a [`crate::Loader`] access record —
//! fields, mem-sets, scalar reduction targets — carries a process-unique
//! [`DataUid`]. The Skeleton layer keys its dependency analysis (RaW / WaR /
//! WaW edges) on these ids.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Process-unique identity of a multi-GPU data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataUid(u64);

impl DataUid {
    /// Allocate a fresh uid.
    pub fn fresh() -> Self {
        DataUid(NEXT_UID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw value (stable within a process run).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DataUid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uids_are_unique_and_monotonic() {
        let a = DataUid::fresh();
        let b = DataUid::fresh();
        assert_ne!(a, b);
        assert!(b.raw() > a.raw());
    }

    #[test]
    fn uids_unique_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                (0..1000).map(|_| DataUid::fresh()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|u| u.raw())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
