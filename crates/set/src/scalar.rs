//! `ScalarSet<T>` — multi-GPU reduction targets.
//!
//! A reduce operation (paper §III) folds fields into a single value (dot
//! product, norms, …). On a multi-GPU back end this is realized as one
//! *partial* accumulator per device plus a *host* value combined from the
//! partials with a user-supplied associative operator.
//!
//! `ScalarSet` participates in dependency analysis like any other
//! multi-GPU data object (it has a [`DataUid`]), which is how the Skeleton
//! discovers e.g. that the CG `alpha` host computation must wait for the
//! `dot` reduction.
//!
//! When the Two-way Extended OCC optimization splits a reduce node into an
//! internal and a boundary half, both halves accumulate into the same
//! partials; initialization happens on the first half and finalization on
//! the last (and the paper's extra internal→boundary data dependency keeps
//! them ordered).

use std::cell::UnsafeCell;
use std::sync::Arc;

use std::sync::Mutex;

use neon_sys::DeviceId;

use crate::access::{AccessTracker, TrackerGuard};
use crate::elem::Elem;
use crate::uid::DataUid;

type CombineFn<T> = dyn Fn(T, T) -> T + Send + Sync;

struct ScalarInner<T> {
    uid: DataUid,
    name: String,
    init: T,
    combine: Box<CombineFn<T>>,
    partials: Vec<UnsafeCell<T>>,
    trackers: Vec<AccessTracker>,
    host: Mutex<T>,
}

// SAFETY: partials are only touched through `ScalarView`s, whose creation
// takes an exclusive lease on the per-device tracker; the host value is
// behind a mutex.
unsafe impl<T: Elem> Send for ScalarInner<T> {}
unsafe impl<T: Elem> Sync for ScalarInner<T> {}

/// A reduction target: per-device partials + a combined host value.
pub struct ScalarSet<T: Elem> {
    inner: Arc<ScalarInner<T>>,
}

impl<T: Elem> Clone for ScalarSet<T> {
    fn clone(&self) -> Self {
        ScalarSet {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Elem> std::fmt::Debug for ScalarSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalarSet")
            .field("uid", &self.inner.uid)
            .field("name", &self.inner.name)
            .field("host", &self.host_value())
            .finish()
    }
}

impl<T: Elem> ScalarSet<T> {
    /// Create a scalar with `num_devices` partials.
    ///
    /// `init` is the identity of `combine` (0 for sums, -inf for max, …).
    pub fn new(
        num_devices: usize,
        name: &str,
        init: T,
        combine: impl Fn(T, T) -> T + Send + Sync + 'static,
    ) -> Self {
        assert!(num_devices > 0, "scalar needs at least one device");
        ScalarSet {
            inner: Arc::new(ScalarInner {
                uid: DataUid::fresh(),
                name: name.to_string(),
                init,
                combine: Box::new(combine),
                partials: (0..num_devices).map(|_| UnsafeCell::new(init)).collect(),
                trackers: (0..num_devices).map(|_| AccessTracker::new()).collect(),
                host: Mutex::new(init),
            }),
        }
    }

    /// Sum-reduction scalar (the common case for dot products and norms).
    pub fn sum(num_devices: usize, name: &str) -> ScalarSet<f64> {
        ScalarSet::<f64>::new(num_devices, name, 0.0, |a, b| a + b)
    }

    /// Unique id for dependency analysis.
    pub fn uid(&self) -> DataUid {
        self.inner.uid
    }

    /// The scalar's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of per-device partials.
    pub fn num_devices(&self) -> usize {
        self.inner.partials.len()
    }

    /// The combined host value.
    ///
    /// Before the first [`finalize`](Self::finalize) (or after a
    /// [`reset`](Self::reset)) this is the `init` identity the scalar was
    /// created with — *not* the sum of whatever has been accumulated into
    /// the per-device partials so far. The host value only ever changes
    /// through `finalize` or [`set_host`](Self::set_host).
    pub fn host_value(&self) -> T {
        *self.inner.host.lock().unwrap()
    }

    /// Overwrite the host value (used by host containers, e.g. CG `alpha`).
    pub fn set_host(&self, v: T) {
        *self.inner.host.lock().unwrap() = v;
    }

    /// Reset all partials to the identity (start of a reduction).
    pub fn init_partials(&self) {
        for (i, p) in self.inner.partials.iter().enumerate() {
            let _g = self.inner.trackers[i].write(&self.inner.name);
            unsafe { *p.get() = self.inner.init };
        }
    }

    /// Fold partials into the host value (end of a reduction).
    pub fn finalize(&self) {
        let mut acc = self.inner.init;
        for (i, p) in self.inner.partials.iter().enumerate() {
            let _g = self.inner.trackers[i].read(&self.inner.name);
            acc = (self.inner.combine)(acc, unsafe { *p.get() });
        }
        *self.inner.host.lock().unwrap() = acc;
    }

    /// Reset the scalar to its freshly-created state: every per-device
    /// partial *and* the host value go back to the `init` identity.
    ///
    /// Unlike [`init_partials`](Self::init_partials) (which a reduce
    /// container calls at the start of each reduction and which leaves the
    /// previously finalized host value readable), `reset` also discards
    /// the host value — use it when re-running a solver from scratch.
    pub fn reset(&self) {
        self.init_partials();
        *self.inner.host.lock().unwrap() = self.inner.init;
    }

    /// The current partial of device `d` (test/diagnostic helper).
    pub fn partial(&self, d: DeviceId) -> T {
        let _g = self.inner.trackers[d.0].read(&self.inner.name);
        unsafe { *self.inner.partials[d.0].get() }
    }

    /// Acquire the accumulation view for device `d`.
    pub fn view(&self, d: DeviceId) -> ScalarView<T> {
        let guard = self.inner.trackers[d.0].write(&self.inner.name);
        ScalarView {
            ptr: self.inner.partials[d.0].get(),
            _guard: Some(guard),
            _keepalive: self.inner.clone(),
        }
    }

    /// Combine `a` and `b` with this scalar's operator (helper for tests).
    pub fn combine(&self, a: T, b: T) -> T {
        (self.inner.combine)(a, b)
    }
}

/// Per-device accumulation handle used inside compute lambdas.
pub struct ScalarView<T: Elem> {
    ptr: *mut T,
    _guard: Option<TrackerGuard>,
    _keepalive: Arc<ScalarInner<T>>,
}

// SAFETY: exclusive lease on the single partial; used by one device thread.
unsafe impl<T: Elem> Send for ScalarView<T> {}

impl<T: Elem> ScalarView<T> {
    /// Current partial value.
    #[inline]
    pub fn get(&self) -> T {
        unsafe { *self.ptr }
    }

    /// Overwrite the partial.
    #[inline]
    pub fn set(&self, v: T) {
        unsafe { *self.ptr = v }
    }

    /// Update the partial in place (e.g. `|a| a + x*y` for a dot product).
    #[inline]
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        unsafe { *self.ptr = f(*self.ptr) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_accumulate_finalize() {
        let s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        s.init_partials();
        {
            let v0 = s.view(DeviceId(0));
            v0.update(|a| a + 2.0);
            v0.update(|a| a + 3.0);
        }
        {
            let v1 = s.view(DeviceId(1));
            v1.update(|a| a + 10.0);
        }
        s.finalize();
        assert_eq!(s.host_value(), 15.0);
    }

    #[test]
    fn reinit_resets_partials() {
        let s = ScalarSet::<f64>::new(1, "r", 0.0, |a, b| a + b);
        s.view(DeviceId(0)).set(42.0);
        s.init_partials();
        assert_eq!(s.partial(DeviceId(0)), 0.0);
    }

    #[test]
    fn max_reduction() {
        let s = ScalarSet::<f64>::new(2, "max", f64::NEG_INFINITY, f64::max);
        s.init_partials();
        s.view(DeviceId(0)).update(|a| a.max(3.0));
        s.view(DeviceId(1)).update(|a| a.max(7.0));
        s.finalize();
        assert_eq!(s.host_value(), 7.0);
    }

    #[test]
    fn set_host_direct() {
        let s = ScalarSet::<f64>::new(1, "alpha", 0.0, |a, b| a + b);
        s.set_host(0.25);
        assert_eq!(s.host_value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "access conflict")]
    fn two_views_on_same_device_conflict() {
        let s = ScalarSet::<f64>::new(1, "dot", 0.0, |a, b| a + b);
        let _a = s.view(DeviceId(0));
        let _b = s.view(DeviceId(0));
    }

    #[test]
    fn split_accumulation_across_two_launches() {
        // Models the Two-way Extended OCC reduce split: internal half then
        // boundary half accumulate into the same partials.
        let s = ScalarSet::<f64>::new(1, "dot", 0.0, |a, b| a + b);
        s.init_partials();
        {
            let v = s.view(DeviceId(0));
            v.update(|a| a + 1.0); // internal half
        }
        {
            let v = s.view(DeviceId(0));
            v.update(|a| a + 2.0); // boundary half
        }
        s.finalize();
        assert_eq!(s.host_value(), 3.0);
    }

    #[test]
    fn host_value_before_finalize_is_init() {
        // Accumulating into partials does NOT update the host value; only
        // finalize folds them over. Documented behaviour.
        let s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        s.init_partials();
        s.view(DeviceId(0)).set(5.0);
        s.view(DeviceId(1)).set(7.0);
        assert_eq!(
            s.host_value(),
            0.0,
            "host value stays at init until finalize"
        );
        s.finalize();
        assert_eq!(s.host_value(), 12.0);

        let m = ScalarSet::<f64>::new(1, "max", f64::NEG_INFINITY, f64::max);
        assert_eq!(m.host_value(), f64::NEG_INFINITY);
    }

    #[test]
    fn reset_clears_partials_and_host() {
        let s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        s.init_partials();
        s.view(DeviceId(0)).set(1.0);
        s.view(DeviceId(1)).set(2.0);
        s.finalize();
        assert_eq!(s.host_value(), 3.0);

        s.reset();
        assert_eq!(s.partial(DeviceId(0)), 0.0);
        assert_eq!(s.partial(DeviceId(1)), 0.0);
        assert_eq!(s.host_value(), 0.0, "reset also discards the host value");
    }

    #[test]
    fn sum_helper() {
        let s: ScalarSet<f64> = ScalarSet::<f64>::sum(3, "s");
        assert_eq!(s.num_devices(), 3);
        assert_eq!(s.host_value(), 0.0);
    }
}
