//! Manual multi-GPU runtime — the Set level's parametric run-time model
//! (paper §IV-B4).
//!
//! The Set abstraction extends the System's queue-based model to multiple
//! devices: a *multi-GPU Stream* is a vector with one stream per device,
//! a *multi-GPU Event* one event per device. "At this abstraction level,
//! users can manually manage multi-GPU Streams and multi-GPU Events to
//! manage the execution of Containers; higher levels in Neon will manage
//! them automatically."
//!
//! [`ManualRuntime`] is that lower level: launch containers on chosen
//! stream sets, run halo exchanges, record/wait event sets, synchronize —
//! with the same virtual-clock timing model the Skeleton executor uses,
//! but every ordering decision in the user's hands. It exists both for
//! paper fidelity and as the ground truth the Skeleton's automation is
//! tested against.

use neon_sys::{Backend, DeviceId, EventId, QueueSim, Result, SimTime, SpanKind, StreamId, Trace};

use crate::cell::DataView;
use crate::container::{Container, HaloExchange};

/// Handle to a multi-GPU stream (one queue per device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSetId(usize);

/// Handle to a multi-GPU event (one event per device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSetId(usize);

/// A hand-driven multi-device queue runtime.
pub struct ManualRuntime {
    backend: Backend,
    queue: QueueSim,
    num_streams: usize,
    /// events[e] = one `EventId` per device.
    events: Vec<Vec<EventId>>,
    functional: bool,
}

impl ManualRuntime {
    /// Create a runtime with `num_streams` multi-GPU streams.
    pub fn new(backend: &Backend, num_streams: usize) -> Self {
        assert!(num_streams >= 1);
        let streams = if backend.concurrent_kernels() {
            num_streams
        } else {
            1
        };
        ManualRuntime {
            backend: backend.clone(),
            queue: QueueSim::new(backend.num_devices(), streams),
            num_streams: streams,
            events: Vec::new(),
            functional: true,
        }
    }

    /// Disable functional execution (timing-only).
    pub fn set_functional(&mut self, on: bool) {
        self.functional = on;
    }

    /// Enable trace recording.
    pub fn enable_trace(&mut self) {
        self.queue.enable_trace();
    }

    /// Take the recorded trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.queue.take_trace()
    }

    /// A multi-GPU stream handle (stream `i` on every device).
    pub fn stream_set(&self, i: usize) -> StreamSetId {
        assert!(i < self.num_streams, "stream {i} not allocated");
        StreamSetId(i)
    }

    /// Allocate a fresh multi-GPU event.
    pub fn event_set(&mut self) -> EventSetId {
        let per_dev = (0..self.backend.num_devices())
            .map(|_| self.queue.create_event())
            .collect();
        self.events.push(per_dev);
        EventSetId(self.events.len() - 1)
    }

    /// Launch `container` over `view` on stream set `s` — the manual
    /// version of what the Skeleton executor does per task.
    pub fn launch(&mut self, container: &Container, view: DataView, s: StreamSetId) {
        let space = container
            .space()
            .expect("manual launch requires a compute container")
            .clone();
        let bytes = container.bytes_per_cell();
        let flops = container.flops_per_cell();
        let eff = container.bw_efficiency();
        for d in 0..self.backend.num_devices() {
            let dev = DeviceId(d);
            let cells = space.cell_count(dev, view);
            if cells == 0 {
                continue;
            }
            let dur = self
                .backend
                .device(dev)
                .kernel_time(cells * bytes, cells * flops, eff);
            self.queue.enqueue(
                StreamId::new(dev, s.0),
                dur,
                container.name(),
                SpanKind::Kernel,
            );
        }
        if self.functional && space.supports_functional() {
            if container.is_reduce() {
                container.reduce_init();
            }
            for d in 0..self.backend.num_devices() {
                container.run_device(DeviceId(d), view);
            }
            if container.is_reduce() {
                container.reduce_finalize();
            }
        }
    }

    /// Run a halo exchange with its transfers enqueued on stream set `s`
    /// of each source device.
    pub fn halo_update(&mut self, exchange: &dyn HaloExchange, s: StreamSetId) {
        for desc in exchange.descriptors() {
            let dur = self
                .backend
                .topology()
                .transfer_time(desc.src, desc.dst, desc.bytes);
            // A peer copy must also wait until the destination stream has
            // drained (the data being overwritten may still be in use).
            let earliest = self.queue.now(StreamId::new(desc.dst, s.0));
            self.queue.enqueue_from(
                StreamId::new(desc.src, s.0),
                earliest,
                dur,
                &format!("halo({})", exchange.data_name()),
                SpanKind::Transfer,
            );
        }
        if self.functional {
            exchange.execute();
        }
    }

    /// Record event set `e` on stream set `s` (per device).
    pub fn record(&mut self, s: StreamSetId, e: EventSetId) {
        for d in 0..self.backend.num_devices() {
            let ev = self.events[e.0][d];
            self.queue.record_event(StreamId::new(DeviceId(d), s.0), ev);
        }
    }

    /// Make stream set `s` wait for event set `e` — on **all** devices
    /// (the conservative multi-GPU event semantics of the paper's
    /// Skeleton).
    pub fn wait(&mut self, s: StreamSetId, e: EventSetId) -> Result<()> {
        let ndev = self.backend.num_devices();
        for d in 0..ndev {
            for src in 0..ndev {
                let ev = self.events[e.0][src];
                self.queue.wait_event(StreamId::new(DeviceId(d), s.0), ev)?;
            }
        }
        Ok(())
    }

    /// Global barrier; returns the synchronized time.
    pub fn sync(&mut self) -> SimTime {
        self.queue.sync_all()
    }

    /// The virtual makespan so far.
    pub fn makespan(&self) -> SimTime {
        self.queue.makespan()
    }

    /// The backend this runtime drives.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, IterationSpace};
    use crate::memset::{MemSet, StorageMode};
    use std::sync::Arc;

    /// 1-D space, `len` cells per device.
    struct Line {
        len: u32,
        devs: usize,
    }
    impl IterationSpace for Line {
        fn num_partitions(&self) -> usize {
            self.devs
        }
        fn cell_count(&self, _d: DeviceId, view: DataView) -> u64 {
            match view {
                DataView::Standard => self.len as u64,
                DataView::Internal => self.len as u64 - 2,
                DataView::Boundary => 2,
            }
        }
        fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
            let base = dev.0 as i32 * self.len as i32;
            let idx: Vec<u32> = match view {
                DataView::Standard => (0..self.len).collect(),
                DataView::Internal => (1..self.len - 1).collect(),
                DataView::Boundary => vec![0, self.len - 1],
            };
            for i in idx {
                f(Cell::new(i, base + i as i32, 0, 0));
            }
        }
    }

    fn setup() -> (Backend, Arc<dyn IterationSpace>, MemSet<f64>) {
        let b = Backend::dgx_a100(2);
        let space = Arc::new(Line { len: 8, devs: 2 }) as Arc<dyn IterationSpace>;
        let m = MemSet::<f64>::new(&b, "m", &[8, 8], StorageMode::Real).unwrap();
        (b, space, m)
    }

    #[test]
    fn manual_launch_runs_functionally_and_advances_clock() {
        let (b, space, m) = setup();
        let mc = m.clone();
        let c = Container::compute("fill", space, move |ldr| {
            let w = ldr.write(&mc);
            Box::new(move |cell: Cell| w.set(cell.idx(), 3.0))
        });
        let mut rt = ManualRuntime::new(&b, 2);
        let s0 = rt.stream_set(0);
        rt.launch(&c, DataView::Standard, s0);
        assert!(rt.makespan().as_us() > 0.0);
        assert_eq!(m.to_host(), vec![3.0; 16]);
    }

    #[test]
    fn different_streams_overlap_same_stream_serializes() {
        let (b, space, m) = setup();
        let mk = |name: &str| {
            let mc = m.clone();
            Container::compute(name, space.clone(), move |ldr| {
                let w = ldr.read(&mc);
                Box::new(move |cell: Cell| {
                    let _ = w.get(cell.idx());
                })
            })
        };
        let (c1, c2) = (mk("a"), mk("b"));
        let mut serial = ManualRuntime::new(&b, 2);
        serial.set_functional(false);
        let s0 = serial.stream_set(0);
        serial.launch(&c1, DataView::Standard, s0);
        serial.launch(&c2, DataView::Standard, s0);
        let t_serial = serial.makespan();

        let mut parallel = ManualRuntime::new(&b, 2);
        parallel.set_functional(false);
        let (p0, p1) = (parallel.stream_set(0), parallel.stream_set(1));
        parallel.launch(&c1, DataView::Standard, p0);
        parallel.launch(&c2, DataView::Standard, p1);
        let t_parallel = parallel.makespan();
        assert!(
            t_parallel < t_serial,
            "independent streams should overlap: {t_parallel} vs {t_serial}"
        );
    }

    #[test]
    fn events_order_cross_stream_work() {
        let (b, space, m) = setup();
        let mc = m.clone();
        let c = Container::compute("k", space, move |ldr| {
            let w = ldr.read(&mc);
            Box::new(move |cell: Cell| {
                let _ = w.get(cell.idx());
            })
        });
        let mut rt = ManualRuntime::new(&b, 2);
        rt.set_functional(false);
        let (s0, s1) = (rt.stream_set(0), rt.stream_set(1));
        let e = rt.event_set();
        rt.launch(&c, DataView::Standard, s0);
        rt.record(s0, e);
        rt.wait(s1, e).unwrap();
        let before = rt.makespan();
        rt.launch(&c, DataView::Standard, s1);
        // The second launch starts only after the first finished.
        assert!(rt.makespan().as_us() >= before.as_us() + 1.0);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn invalid_stream_rejected() {
        let b = Backend::dgx_a100(1);
        let rt = ManualRuntime::new(&b, 2);
        rt.stream_set(5);
    }

    #[test]
    fn cpu_backend_collapses_to_one_stream() {
        let b = Backend::cpu();
        let rt = ManualRuntime::new(&b, 4);
        // Only stream 0 exists on the CPU back end.
        rt.stream_set(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.stream_set(1)));
        assert!(caught.is_err());
    }
}
