//! The `Loader` — explicit access declaration, Neon's answer to the
//! dependency-graph challenge.
//!
//! As a library (not a compiler), Neon cannot parse a kernel to discover
//! which data it touches. Instead, the *loading lambda* of every container
//! receives a [`Loader`] and explicitly extracts partition-local views from
//! each multi-GPU data object, declaring the access mode (read / write /
//! read-write) and compute pattern (map / stencil / reduce) in the process
//! (paper §IV-B2/3). The loader records these [`AccessRecord`]s; the
//! Skeleton layer turns them into a data dependency graph.
//!
//! A loader runs in one of two modes:
//!
//! * **recording** (dry-run) — at container construction: records accesses
//!   and hands out *null* views that must not be dereferenced; the returned
//!   compute lambda is dropped immediately.
//! * **execution** — at launch time, once per device: hands out real views
//!   for that device's partition.

use std::sync::Arc;

use neon_sys::DeviceId;

use crate::cell::DataView;
use crate::checkpoint::StateHandle;
use crate::container::HaloExchange;
use crate::elem::Elem;
use crate::scalar::{ScalarSet, ScalarView};
use crate::uid::DataUid;

/// Declared access mode for a data object within a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read only.
    Read,
    /// Write only (previous contents may be fully overwritten).
    Write,
    /// Read and write (e.g. `y ← a·x + y`).
    ReadWrite,
}

impl AccessMode {
    /// Whether the mode reads the previous contents.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }

    /// Whether the mode writes.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }
}

/// Declared compute pattern for a data object within a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ComputePattern {
    /// Cell-local access.
    Map,
    /// Neighbourhood access — requires coherent halos.
    Stencil,
    /// Reduction into a scalar.
    Reduce,
}

/// Reduce lifecycle hooks carried by reduce access records.
#[derive(Clone)]
pub struct ReduceHooks {
    /// Reset partials to the identity (run before the first sub-launch).
    pub init: Arc<dyn Fn() + Send + Sync>,
    /// Fold partials into the host value (run after the last sub-launch).
    pub finalize: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for ReduceHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReduceHooks")
    }
}

/// One declared access of a container.
#[derive(Clone)]
pub struct AccessRecord {
    /// Identity of the multi-GPU data object.
    pub uid: DataUid,
    /// Its name (diagnostics).
    pub name: String,
    /// Declared access mode.
    pub mode: AccessMode,
    /// Declared compute pattern.
    pub pattern: ComputePattern,
    /// Bytes this access reads per iterated cell (performance model).
    pub read_bytes_per_cell: u64,
    /// Bytes this access writes per iterated cell.
    pub write_bytes_per_cell: u64,
    /// Halo-exchange implementation, present for stencil reads of fields.
    pub halo: Option<Arc<dyn HaloExchange>>,
    /// The field's halo-exchange implementation regardless of pattern —
    /// recorded for *every* access of a field that has one, unlike `halo`
    /// which only stencil reads carry. The temporal-fuse pass uses this to
    /// refresh ghost copies of fields a super-step reads cell-locally
    /// (e.g. a Jacobi right-hand side): ghost-zone recompute evaluates map
    /// reads at ghost cells too, so their halo copies must be coherent.
    /// Downstream passes that key on `halo` are unaffected.
    pub field_exchange: Option<Arc<dyn HaloExchange>>,
    /// Reduce lifecycle hooks, present for reduce accesses.
    pub reduce_hooks: Option<ReduceHooks>,
    /// Checkpoint capture handle, present for written objects (the
    /// self-healing executor snapshots these for rollback).
    pub state: Option<Arc<dyn StateHandle>>,
}

impl std::fmt::Debug for AccessRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessRecord")
            .field("uid", &self.uid)
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("pattern", &self.pattern)
            .field("read_bytes_per_cell", &self.read_bytes_per_cell)
            .field("write_bytes_per_cell", &self.write_bytes_per_cell)
            .field("has_halo", &self.halo.is_some())
            .field("has_field_exchange", &self.field_exchange.is_some())
            .field("has_state", &self.state.is_some())
            .finish()
    }
}

/// A data object that can be loaded into a container through a [`Loader`].
///
/// Implemented by `MemSet`, fields (in `neon-domain`) and any user data
/// structure that wants to participate in dependency analysis.
pub trait Loadable {
    /// Read view type handed to compute lambdas.
    type ReadView: Send + 'static;
    /// Stencil (neighbourhood read) view type.
    type StencilView: Send + 'static;
    /// Write view type.
    type WriteView: Send + 'static;

    /// Identity for dependency analysis.
    fn data_uid(&self) -> DataUid;
    /// Name for diagnostics.
    fn data_name(&self) -> String;
    /// Bytes one cell-iteration of this data object moves (per access).
    fn bytes_per_cell(&self) -> u64;
    /// Bytes a *stencil* access moves per cell (may exceed
    /// [`Loadable::bytes_per_cell`], e.g. sparse connectivity traffic).
    fn stencil_bytes_per_cell(&self) -> u64 {
        self.bytes_per_cell()
    }
    /// The halo-exchange implementation (only fields on partitioned grids
    /// have one).
    fn halo_exchange(&self) -> Option<Arc<dyn HaloExchange>>;
    /// A checkpoint capture handle for this object's state (attached to
    /// write accesses so the self-healing executor can snapshot the write
    /// set). `None` opts the object out of checkpointing.
    fn state_handle(&self) -> Option<Arc<dyn StateHandle>> {
        None
    }

    /// Create the read view for `dev` (`null` for dry runs).
    fn make_read_view(&self, dev: DeviceId, null: bool) -> Self::ReadView;
    /// Create the stencil view for `dev` (`null` for dry runs).
    fn make_stencil_view(&self, dev: DeviceId, null: bool) -> Self::StencilView;
    /// Create the write view for `dev` (`null` for dry runs).
    fn make_write_view(&self, dev: DeviceId, null: bool) -> Self::WriteView;
}

enum LoaderState<'a> {
    Recording { records: &'a mut Vec<AccessRecord> },
    Executing { dev: DeviceId },
}

/// Hands partition-local views to loading lambdas and records accesses.
pub struct Loader<'a> {
    state: LoaderState<'a>,
    n_devices: usize,
    view: DataView,
}

impl<'a> Loader<'a> {
    /// A dry-run loader that appends into `records`.
    pub fn for_recording(records: &'a mut Vec<AccessRecord>, n_devices: usize) -> Self {
        Loader {
            state: LoaderState::Recording { records },
            n_devices,
            view: DataView::Standard,
        }
    }

    /// An execution loader for device `dev` launching `view`.
    pub fn for_execution(dev: DeviceId, n_devices: usize, view: DataView) -> Self {
        Loader {
            state: LoaderState::Executing { dev },
            n_devices,
            view,
        }
    }

    /// Whether this is a dry run.
    pub fn is_recording(&self) -> bool {
        matches!(self.state, LoaderState::Recording { .. })
    }

    /// The device this loader serves (device 0 during dry runs — the
    /// loader hides the SPMD nature of the container, like an MPI rank).
    pub fn device(&self) -> DeviceId {
        match &self.state {
            LoaderState::Recording { .. } => DeviceId(0),
            LoaderState::Executing { dev } => *dev,
        }
    }

    /// Number of devices in the launch.
    pub fn num_devices(&self) -> usize {
        self.n_devices
    }

    /// The data view of the current launch.
    pub fn view(&self) -> DataView {
        self.view
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        uid: DataUid,
        name: String,
        mode: AccessMode,
        pattern: ComputePattern,
        read_bytes_per_cell: u64,
        write_bytes_per_cell: u64,
        halo: Option<Arc<dyn HaloExchange>>,
        field_exchange: Option<Arc<dyn HaloExchange>>,
        reduce_hooks: Option<ReduceHooks>,
        state: Option<Arc<dyn StateHandle>>,
    ) {
        if let LoaderState::Recording { records } = &mut self.state {
            records.push(AccessRecord {
                uid,
                name,
                mode,
                pattern,
                read_bytes_per_cell,
                write_bytes_per_cell,
                halo,
                field_exchange,
                reduce_hooks,
                state,
            });
        }
    }

    /// Load a cell-local read view (map pattern).
    pub fn read<L: Loadable>(&mut self, d: &L) -> L::ReadView {
        let fx = if self.is_recording() {
            d.halo_exchange()
        } else {
            None
        };
        self.record(
            d.data_uid(),
            d.data_name(),
            AccessMode::Read,
            ComputePattern::Map,
            d.bytes_per_cell(),
            0,
            None,
            fx,
            None,
            None,
        );
        d.make_read_view(self.device(), self.is_recording())
    }

    /// Load a neighbourhood read view (stencil pattern).
    ///
    /// Declaring a stencil read is what makes the Skeleton insert a halo
    /// update (and flags the container node as *incoherent*, paper §V-A).
    pub fn read_stencil<L: Loadable>(&mut self, d: &L) -> L::StencilView {
        let fx = if self.is_recording() {
            d.halo_exchange()
        } else {
            None
        };
        self.record(
            d.data_uid(),
            d.data_name(),
            AccessMode::Read,
            ComputePattern::Stencil,
            d.stencil_bytes_per_cell(),
            0,
            fx.clone(),
            fx,
            None,
            None,
        );
        d.make_stencil_view(self.device(), self.is_recording())
    }

    /// Load a cell-local write view.
    pub fn write<L: Loadable>(&mut self, d: &L) -> L::WriteView {
        let state = if self.is_recording() {
            d.state_handle()
        } else {
            None
        };
        let fx = if self.is_recording() {
            d.halo_exchange()
        } else {
            None
        };
        self.record(
            d.data_uid(),
            d.data_name(),
            AccessMode::Write,
            ComputePattern::Map,
            0,
            d.bytes_per_cell(),
            None,
            fx,
            None,
            state,
        );
        d.make_write_view(self.device(), self.is_recording())
    }

    /// Load a cell-local read-write view (e.g. AXPY's `y`).
    ///
    /// Costs two accesses' worth of bytes (a load and a store per cell).
    pub fn read_write<L: Loadable>(&mut self, d: &L) -> L::WriteView {
        let state = if self.is_recording() {
            d.state_handle()
        } else {
            None
        };
        let fx = if self.is_recording() {
            d.halo_exchange()
        } else {
            None
        };
        self.record(
            d.data_uid(),
            d.data_name(),
            AccessMode::ReadWrite,
            ComputePattern::Map,
            d.bytes_per_cell(),
            d.bytes_per_cell(),
            None,
            fx,
            None,
            state,
        );
        d.make_write_view(self.device(), self.is_recording())
    }

    /// Load a reduction accumulator view for this device.
    pub fn reduce<T: Elem>(&mut self, s: &ScalarSet<T>) -> ScalarView<T> {
        let s_init = s.clone();
        let s_fin = s.clone();
        self.record(
            s.uid(),
            s.name().to_string(),
            AccessMode::Write,
            ComputePattern::Reduce,
            0,
            0,
            None,
            None,
            Some(ReduceHooks {
                init: Arc::new(move || s_init.init_partials()),
                finalize: Arc::new(move || s_fin.finalize()),
            }),
            Some(Arc::new(s.clone()) as Arc<dyn StateHandle>),
        );
        s.view(self.device())
    }

    /// Read the current host value of a scalar (e.g. CG's `alpha` inside a
    /// map container). Recorded as a read dependency on the scalar.
    pub fn scalar<T: Elem>(&mut self, s: &ScalarSet<T>) -> T {
        self.record(
            s.uid(),
            s.name().to_string(),
            AccessMode::Read,
            ComputePattern::Map,
            0,
            0,
            None,
            None,
            None,
            None,
        );
        s.host_value()
    }

    /// A deferred host-side reader of a scalar (host containers).
    pub fn scalar_reader<T: Elem>(&mut self, s: &ScalarSet<T>) -> ScalarReader<T> {
        self.record(
            s.uid(),
            s.name().to_string(),
            AccessMode::Read,
            ComputePattern::Map,
            0,
            0,
            None,
            None,
            None,
            None,
        );
        ScalarReader { set: s.clone() }
    }

    /// A deferred host-side writer of a scalar (host containers).
    pub fn scalar_writer<T: Elem>(&mut self, s: &ScalarSet<T>) -> ScalarWriter<T> {
        self.record(
            s.uid(),
            s.name().to_string(),
            AccessMode::Write,
            ComputePattern::Map,
            0,
            0,
            None,
            None,
            None,
            Some(Arc::new(s.clone()) as Arc<dyn StateHandle>),
        );
        ScalarWriter { set: s.clone() }
    }
}

/// Deferred host read of a [`ScalarSet`].
pub struct ScalarReader<T: Elem> {
    set: ScalarSet<T>,
}

impl<T: Elem> ScalarReader<T> {
    /// The scalar's current host value.
    pub fn get(&self) -> T {
        self.set.host_value()
    }
}

/// Deferred host write of a [`ScalarSet`].
pub struct ScalarWriter<T: Elem> {
    set: ScalarSet<T>,
}

impl<T: Elem> ScalarWriter<T> {
    /// Overwrite the scalar's host value.
    pub fn set(&self, v: T) {
        self.set.set_host(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memset::{MemSet, StorageMode};
    use neon_sys::Backend;

    #[test]
    fn recording_collects_access_records() {
        let b = Backend::dgx_a100(2);
        let x = MemSet::<f64>::new(&b, "x", &[4, 4], StorageMode::Real).unwrap();
        let y = MemSet::<f64>::new(&b, "y", &[4, 4], StorageMode::Real).unwrap();
        let mut recs = Vec::new();
        {
            let mut ldr = Loader::for_recording(&mut recs, 2);
            assert!(ldr.is_recording());
            let _xr = ldr.read(&x);
            let _yw = ldr.read_write(&y);
        }
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].uid, x.uid());
        assert_eq!(recs[0].mode, AccessMode::Read);
        assert_eq!(recs[1].mode, AccessMode::ReadWrite);
        assert_eq!(recs[1].read_bytes_per_cell, 8);
        assert_eq!(recs[1].write_bytes_per_cell, 8);
    }

    #[test]
    fn recording_views_are_null_and_take_no_lease() {
        let b = Backend::dgx_a100(1);
        let x = MemSet::<f64>::new(&b, "x", &[4], StorageMode::Real).unwrap();
        let mut recs = Vec::new();
        let mut ldr = Loader::for_recording(&mut recs, 1);
        let v = ldr.read(&x);
        assert!(v.is_empty());
        assert!(x.tracker(DeviceId(0)).is_free());
    }

    #[test]
    fn execution_views_are_real() {
        let b = Backend::dgx_a100(2);
        let x = MemSet::<f64>::new(&b, "x", &[4, 4], StorageMode::Real).unwrap();
        x.from_host(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut ldr = Loader::for_execution(DeviceId(1), 2, DataView::Standard);
        assert!(!ldr.is_recording());
        assert_eq!(ldr.device(), DeviceId(1));
        let v = ldr.read(&x);
        assert_eq!(v.get(0), 5.0);
    }

    #[test]
    fn stencil_read_recorded_as_stencil() {
        let b = Backend::dgx_a100(1);
        let x = MemSet::<f64>::new(&b, "x", &[4], StorageMode::Real).unwrap();
        let mut recs = Vec::new();
        let mut ldr = Loader::for_recording(&mut recs, 1);
        let _ = ldr.read_stencil(&x);
        assert_eq!(recs[0].pattern, ComputePattern::Stencil);
    }

    #[test]
    fn reduce_records_hooks() {
        let s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        let mut recs = Vec::new();
        {
            let mut ldr = Loader::for_recording(&mut recs, 2);
            let _v = ldr.reduce(&s);
        }
        assert_eq!(recs[0].pattern, ComputePattern::Reduce);
        let hooks = recs[0].reduce_hooks.clone().unwrap();
        s.view(DeviceId(0)).set(5.0);
        (hooks.init)();
        assert_eq!(s.partial(DeviceId(0)), 0.0);
        s.view(DeviceId(0)).set(2.0);
        s.view(DeviceId(1)).set(3.0);
        (hooks.finalize)();
        assert_eq!(s.host_value(), 5.0);
    }

    #[test]
    fn scalar_read_returns_host_value() {
        let s = ScalarSet::<f64>::new(1, "alpha", 0.0, |a, b| a + b);
        s.set_host(2.5);
        let mut recs = Vec::new();
        let mut ldr = Loader::for_recording(&mut recs, 1);
        let v = ldr.scalar(&s);
        assert_eq!(v, 2.5);
        assert_eq!(recs[0].mode, AccessMode::Read);
    }

    #[test]
    fn scalar_reader_writer_defer() {
        let a = ScalarSet::<f64>::new(1, "a", 0.0, |x, y| x + y);
        let bscalar = ScalarSet::<f64>::new(1, "b", 0.0, |x, y| x + y);
        let mut recs = Vec::new();
        let mut ldr = Loader::for_recording(&mut recs, 1);
        let r = ldr.scalar_reader(&a);
        let w = ldr.scalar_writer(&bscalar);
        a.set_host(4.0);
        w.set(r.get() * 2.0);
        assert_eq!(bscalar.host_value(), 8.0);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn access_mode_predicates() {
        assert!(AccessMode::Read.reads());
        assert!(!AccessMode::Read.writes());
        assert!(AccessMode::Write.writes());
        assert!(!AccessMode::Write.reads());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
    }
}
