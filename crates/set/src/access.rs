//! Runtime read/write access tracking per partition.
//!
//! Neon's C++ implementation trusts the user's `Loader` declarations; in
//! Rust we *check* them. Every partition of a multi-GPU data object carries
//! an [`AccessTracker`]; creating a read view acquires a shared lease,
//! creating a write view acquires an exclusive lease, and conflicting
//! leases panic with a diagnostic instead of racing. Leases are RAII
//! ([`TrackerGuard`]) and are released when the compute lambda that owns
//! the views is dropped.
//!
//! **Fused launches.** A fused container (see `Container::fused`) runs
//! every member's loading lambda back to back for one launch, so two
//! members may legitimately hold views of the same partition — e.g. one
//! member read-writes `r` and the next reduces over `r`. Member order is
//! applied per cell within a single traversal, which is exactly the hazard
//! discipline of a single `read_write` view, so these leases must
//! *coalesce* rather than conflict. The member lambdas run inside a
//! [`FusedScope`]; leases taken by the same scope on one partition stack
//! (read under its own write, write under write, and a read→write upgrade
//! when no outside reader is live) and release only when the scope's last
//! guard drops. Leases from *different* launches still conflict exactly as
//! before.
//!
//! Acquisition happens a handful of times per container launch per device,
//! so a mutex per partition is negligible.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Describes a detected access conflict (used in panic messages and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessConflict {
    /// Name of the data object.
    pub data: String,
    /// What was being acquired ("read" / "write").
    pub requested: &'static str,
    /// State that blocked it.
    pub held: String,
}

impl std::fmt::Display for AccessConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "access conflict on {}: requested {} while {}",
            self.data, self.requested, self.held
        )
    }
}

thread_local! {
    static CURRENT_SCOPE: Cell<u64> = const { Cell::new(0) };
}

static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);

fn current_scope() -> u64 {
    CURRENT_SCOPE.with(|c| c.get())
}

/// RAII marker that the current thread is building views for one fused
/// launch: every lease acquired while the scope is live coalesces with the
/// other leases of the same scope instead of conflicting. Entered by the
/// fused container's loading lambda; scopes nest (the previous scope is
/// restored on drop).
#[derive(Debug)]
pub struct FusedScope {
    prev: u64,
}

impl FusedScope {
    /// Enter a fresh fused-launch scope on this thread.
    pub fn enter() -> FusedScope {
        let id = NEXT_SCOPE.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_SCOPE.with(|c| c.replace(id));
        FusedScope { prev }
    }

    /// Whether the calling thread is currently inside a fused scope.
    #[inline]
    pub fn is_active() -> bool {
        current_scope() != 0
    }
}

impl Drop for FusedScope {
    fn drop(&mut self) {
        CURRENT_SCOPE.with(|c| c.set(self.prev));
    }
}

#[derive(Debug, Default)]
struct State {
    /// Shared leases held outside any fused scope.
    readers: u32,
    /// Exclusive lease held outside any fused scope.
    writer: bool,
    /// Fused scope currently holding leases here (0 = none). A partition
    /// tracks one scope at a time; reads from a second scope are simply
    /// counted as plain readers (they never need to coalesce upward).
    scope: u64,
    /// Number of live guards held by that scope.
    scope_leases: u32,
    /// Whether the scope's effective lease is exclusive.
    scope_exclusive: bool,
}

#[derive(Debug, Default)]
struct TrackerInner {
    state: Mutex<State>,
}

/// Shared/exclusive lease bookkeeping for one partition.
#[derive(Debug, Clone, Default)]
pub struct AccessTracker {
    inner: Arc<TrackerInner>,
}

impl AccessTracker {
    /// Fresh, free tracker.
    pub fn new() -> Self {
        AccessTracker::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a shared (read) lease.
    pub fn try_read(&self, data_name: &str) -> Result<TrackerGuard, AccessConflict> {
        let scope = current_scope();
        let mut st = self.lock();
        if scope != 0 && st.scope == scope {
            // Same fused launch: stack on whatever we already hold
            // (reading under our own write lease is the fused read-elision
            // case and is safe — member order is applied per cell).
            st.scope_leases += 1;
            return Ok(self.guard(scope, false));
        }
        if st.writer || (st.scope != 0 && st.scope_exclusive) {
            return Err(AccessConflict {
                data: data_name.to_string(),
                requested: "read",
                held: "a write view is live".to_string(),
            });
        }
        if scope != 0 && st.scope == 0 {
            st.scope = scope;
            st.scope_leases = 1;
            st.scope_exclusive = false;
            Ok(self.guard(scope, false))
        } else {
            // No scope, or the scope slot is taken by a different launch's
            // shared leases — a plain reader coexists with either.
            st.readers += 1;
            Ok(self.guard(0, false))
        }
    }

    /// Try to acquire an exclusive (write) lease.
    pub fn try_write(&self, data_name: &str) -> Result<TrackerGuard, AccessConflict> {
        let scope = current_scope();
        let mut st = self.lock();
        // Same-scope fast path first, mirroring `try_read`: this is the
        // per-member hot path of every fused launch, and a partition
        // claimed by our scope can never also hold a plain writer (plain
        // writes are rejected while a scope is live, and the scope's
        // first lease required the partition to be writer-free), so the
        // coalescing check needs no preceding `st.writer` test.
        if scope != 0 && st.scope == scope {
            if !st.scope_exclusive {
                // Upgrade our shared leases — legal only while no reader
                // from outside the scope is live.
                if st.readers > 0 {
                    return Err(AccessConflict {
                        data: data_name.to_string(),
                        requested: "write",
                        held: format!("{} read view(s) are live", st.readers),
                    });
                }
                st.scope_exclusive = true;
            }
            st.scope_leases += 1;
            return Ok(self.guard(scope, true));
        }
        if st.writer {
            return Err(AccessConflict {
                data: data_name.to_string(),
                requested: "write",
                held: "another write view is live".to_string(),
            });
        }
        if st.scope != 0 {
            return Err(AccessConflict {
                data: data_name.to_string(),
                requested: "write",
                held: if st.scope_exclusive {
                    "another write view is live".to_string()
                } else {
                    format!("{} read view(s) are live", st.readers + st.scope_leases)
                },
            });
        }
        if st.readers > 0 {
            return Err(AccessConflict {
                data: data_name.to_string(),
                requested: "write",
                held: format!("{} read view(s) are live", st.readers),
            });
        }
        if scope != 0 {
            st.scope = scope;
            st.scope_leases = 1;
            st.scope_exclusive = true;
            Ok(self.guard(scope, true))
        } else {
            st.writer = true;
            Ok(self.guard(0, true))
        }
    }

    fn guard(&self, scope: u64, exclusive: bool) -> TrackerGuard {
        TrackerGuard {
            tracker: self.clone(),
            scope,
            exclusive,
        }
    }

    /// Acquire a read lease or panic with a diagnostic.
    pub fn read(&self, data_name: &str) -> TrackerGuard {
        match self.try_read(data_name) {
            Ok(g) => g,
            Err(c) => panic!("{c} (declare the access as read_write in the loader?)"),
        }
    }

    /// Acquire a write lease or panic with a diagnostic.
    pub fn write(&self, data_name: &str) -> TrackerGuard {
        match self.try_write(data_name) {
            Ok(g) => g,
            Err(c) => panic!("{c} (declare the access as read_write in the loader?)"),
        }
    }

    /// Whether the partition is currently free.
    pub fn is_free(&self) -> bool {
        let st = self.lock();
        st.readers == 0 && !st.writer && st.scope == 0
    }
}

/// RAII lease on a partition; releases on drop.
#[derive(Debug)]
pub struct TrackerGuard {
    tracker: AccessTracker,
    /// Fused scope this guard belongs to (0 = a plain lease).
    scope: u64,
    exclusive: bool,
}

impl TrackerGuard {
    /// Whether this lease was acquired for writing.
    pub fn is_exclusive(&self) -> bool {
        self.exclusive
    }
}

impl Drop for TrackerGuard {
    fn drop(&mut self) {
        let mut st = self.tracker.lock();
        if self.scope != 0 {
            debug_assert_eq!(st.scope, self.scope, "tracker scope corrupted");
            st.scope_leases -= 1;
            if st.scope_leases == 0 {
                st.scope = 0;
                st.scope_exclusive = false;
            }
        } else if self.exclusive {
            debug_assert!(st.writer, "tracker state corrupted");
            st.writer = false;
        } else {
            debug_assert!(st.readers > 0, "tracker state corrupted");
            st.readers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_readers_allowed() {
        let t = AccessTracker::new();
        let a = t.read("x");
        let b = t.read("x");
        assert!(!a.is_exclusive());
        drop(a);
        drop(b);
        assert!(t.is_free());
    }

    #[test]
    fn writer_excludes_readers() {
        let t = AccessTracker::new();
        let w = t.write("x");
        assert!(w.is_exclusive());
        assert!(t.try_read("x").is_err());
        assert!(t.try_write("x").is_err());
        drop(w);
        assert!(t.try_read("x").is_ok());
    }

    #[test]
    fn reader_excludes_writer() {
        let t = AccessTracker::new();
        let _r = t.read("x");
        let err = t.try_write("x").unwrap_err();
        assert!(err.to_string().contains("1 read view"));
    }

    #[test]
    #[should_panic(expected = "access conflict on field-y")]
    fn write_write_panics() {
        let t = AccessTracker::new();
        let _a = t.write("field-y");
        let _b = t.write("field-y");
    }

    #[test]
    fn release_restores_freedom() {
        let t = AccessTracker::new();
        drop(t.write("x"));
        drop(t.read("x"));
        assert!(t.is_free());
    }

    #[test]
    fn fused_scope_coalesces_read_under_write() {
        let t = AccessTracker::new();
        let scope = FusedScope::enter();
        let w = t.write("r");
        let r = t.read("r"); // a later fused member reading what we wrote
        let w2 = t.write("r"); // and another member rewriting it
        drop(scope); // guards outlive the scope marker
                     // Outside launches still see the exclusive lease.
        assert!(t.try_read("r").is_err());
        drop(w);
        drop(r);
        assert!(t.try_read("r").is_err()); // w2 still holds it
        drop(w2);
        assert!(t.is_free());
    }

    #[test]
    fn fused_scope_upgrades_read_to_write() {
        let t = AccessTracker::new();
        let scope = FusedScope::enter();
        let r = t.read("x"); // member A reads x…
        let w = t.write("x"); // …member B overwrites it, same sweep
        drop(scope);
        assert!(t.try_read("x").is_err());
        drop((r, w));
        assert!(t.is_free());
    }

    #[test]
    fn fused_scope_upgrade_blocked_by_outside_reader() {
        let t = AccessTracker::new();
        let _outside = t.read("x");
        let _scope = FusedScope::enter();
        let _r = t.read("x");
        assert!(t.try_write("x").is_err());
    }

    #[test]
    fn distinct_scopes_still_conflict() {
        let t = AccessTracker::new();
        let w = {
            let _scope = FusedScope::enter();
            t.write("x")
        };
        let _scope = FusedScope::enter();
        assert!(t.try_read("x").is_err());
        assert!(t.try_write("x").is_err());
        drop(w);
        assert!(t.is_free());
    }

    #[test]
    fn concurrent_readers_stress() {
        let t = AccessTracker::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let g = t.read("x");
                        drop(g);
                    }
                });
            }
        });
        assert!(t.is_free());
    }
}
