//! Runtime read/write access tracking per partition.
//!
//! Neon's C++ implementation trusts the user's `Loader` declarations; in
//! Rust we *check* them. Every partition of a multi-GPU data object carries
//! an [`AccessTracker`]; creating a read view acquires a shared lease,
//! creating a write view acquires an exclusive lease, and conflicting
//! leases panic with a diagnostic instead of racing. Leases are RAII
//! ([`TrackerGuard`]) and are released when the compute lambda that owns
//! the views is dropped.
//!
//! The tracker is a single atomic per partition: `0` = free, `n > 0` =
//! `n` readers, `-1` = one writer. Acquisition happens once per container
//! launch per device, so the cost is negligible.

use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

/// Describes a detected access conflict (used in panic messages and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessConflict {
    /// Name of the data object.
    pub data: String,
    /// What was being acquired ("read" / "write").
    pub requested: &'static str,
    /// State that blocked it.
    pub held: String,
}

impl std::fmt::Display for AccessConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "access conflict on {}: requested {} while {}",
            self.data, self.requested, self.held
        )
    }
}

#[derive(Debug, Default)]
struct TrackerInner {
    /// 0 free; >0 reader count; -1 exclusive writer.
    state: AtomicI32,
}

/// Shared/exclusive lease bookkeeping for one partition.
#[derive(Debug, Clone, Default)]
pub struct AccessTracker {
    inner: Arc<TrackerInner>,
}

impl AccessTracker {
    /// Fresh, free tracker.
    pub fn new() -> Self {
        AccessTracker::default()
    }

    /// Try to acquire a shared (read) lease.
    pub fn try_read(&self, data_name: &str) -> Result<TrackerGuard, AccessConflict> {
        let mut cur = self.inner.state.load(Ordering::Relaxed);
        loop {
            if cur < 0 {
                return Err(AccessConflict {
                    data: data_name.to_string(),
                    requested: "read",
                    held: "a write view is live".to_string(),
                });
            }
            match self.inner.state.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(TrackerGuard {
                        tracker: self.clone(),
                        exclusive: false,
                    })
                }
                Err(a) => cur = a,
            }
        }
    }

    /// Try to acquire an exclusive (write) lease.
    pub fn try_write(&self, data_name: &str) -> Result<TrackerGuard, AccessConflict> {
        match self
            .inner
            .state
            .compare_exchange(0, -1, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => Ok(TrackerGuard {
                tracker: self.clone(),
                exclusive: true,
            }),
            Err(held) => Err(AccessConflict {
                data: data_name.to_string(),
                requested: "write",
                held: if held < 0 {
                    "another write view is live".to_string()
                } else {
                    format!("{held} read view(s) are live")
                },
            }),
        }
    }

    /// Acquire a read lease or panic with a diagnostic.
    pub fn read(&self, data_name: &str) -> TrackerGuard {
        match self.try_read(data_name) {
            Ok(g) => g,
            Err(c) => panic!("{c} (declare the access as read_write in the loader?)"),
        }
    }

    /// Acquire a write lease or panic with a diagnostic.
    pub fn write(&self, data_name: &str) -> TrackerGuard {
        match self.try_write(data_name) {
            Ok(g) => g,
            Err(c) => panic!("{c} (declare the access as read_write in the loader?)"),
        }
    }

    /// Whether the partition is currently free.
    pub fn is_free(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) == 0
    }
}

/// RAII lease on a partition; releases on drop.
#[derive(Debug)]
pub struct TrackerGuard {
    tracker: AccessTracker,
    exclusive: bool,
}

impl TrackerGuard {
    /// Whether this is an exclusive (write) lease.
    pub fn is_exclusive(&self) -> bool {
        self.exclusive
    }
}

impl Drop for TrackerGuard {
    fn drop(&mut self) {
        if self.exclusive {
            let prev = self.tracker.inner.state.swap(0, Ordering::AcqRel);
            debug_assert_eq!(prev, -1, "tracker state corrupted");
        } else {
            let prev = self.tracker.inner.state.fetch_sub(1, Ordering::AcqRel);
            debug_assert!(prev > 0, "tracker state corrupted");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_readers_allowed() {
        let t = AccessTracker::new();
        let a = t.read("x");
        let b = t.read("x");
        assert!(!a.is_exclusive());
        drop(a);
        drop(b);
        assert!(t.is_free());
    }

    #[test]
    fn writer_excludes_readers() {
        let t = AccessTracker::new();
        let w = t.write("x");
        assert!(w.is_exclusive());
        assert!(t.try_read("x").is_err());
        assert!(t.try_write("x").is_err());
        drop(w);
        assert!(t.try_read("x").is_ok());
    }

    #[test]
    fn reader_excludes_writer() {
        let t = AccessTracker::new();
        let _r = t.read("x");
        let err = t.try_write("x").unwrap_err();
        assert!(err.to_string().contains("1 read view"));
    }

    #[test]
    #[should_panic(expected = "access conflict on field-y")]
    fn write_write_panics() {
        let t = AccessTracker::new();
        let _a = t.write("field-y");
        let _b = t.write("field-y");
    }

    #[test]
    fn release_restores_freedom() {
        let t = AccessTracker::new();
        drop(t.write("x"));
        drop(t.read("x"));
        assert!(t.is_free());
    }

    #[test]
    fn concurrent_readers_stress() {
        let t = AccessTracker::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let g = t.read("x");
                        drop(g);
                    }
                });
            }
        });
        assert!(t.is_free());
    }
}
