//! `MemSet<T>` — the simplest multi-GPU data object.
//!
//! A `MemSet` owns one buffer per device (paper §IV-B1). It registers its
//! footprint with each device's memory ledger, offers a contiguous *host
//! logical view* (`to_host` / `from_host`) and per-partition *local views*
//! ([`RawRead`] / [`RawWrite`]) guarded by access trackers.
//!
//! ## Storage modes
//!
//! * [`StorageMode::Real`] — buffers are actual `Vec<T>`s; kernels can run
//!   functionally.
//! * [`StorageMode::Virtual`] — only the ledger accounting exists. Used by
//!   large benchmark sweeps that exercise the scheduler and performance
//!   model without paying host RAM for 512³ fields. Any attempt to touch
//!   the data panics.
//!
//! ## Safety
//!
//! Partition buffers sit behind `UnsafeCell` so that a compute lambda can
//! hold a writable view as a plain value. Soundness is enforced at runtime:
//! every view creation takes a lease on the partition's
//! [`AccessTracker`], so a second conflicting view panics instead of
//! aliasing. Views bounds-check every access.

use std::cell::UnsafeCell;
use std::sync::Arc;

use neon_sys::{AllocationTicket, Backend, DeviceId, Result};

use crate::access::{AccessTracker, TrackerGuard};
use crate::elem::Elem;
use crate::uid::DataUid;

/// Whether buffers are materialized or accounting-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Materialized buffers; functional execution possible.
    #[default]
    Real,
    /// Ledger accounting only; timing-only execution.
    Virtual,
}

struct PartitionStorage<T> {
    data: UnsafeCell<Vec<T>>,
    len: usize,
    tracker: AccessTracker,
    _ticket: AllocationTicket,
}

// SAFETY: access to `data` is mediated by the partition's `AccessTracker`
// (shared/exclusive leases acquired at view creation); views never outlive
// the `Arc`ed storage they point into.
unsafe impl<T: Elem> Send for PartitionStorage<T> {}
unsafe impl<T: Elem> Sync for PartitionStorage<T> {}

struct MemSetInner<T> {
    uid: DataUid,
    name: String,
    mode: StorageMode,
    parts: Vec<PartitionStorage<T>>,
}

/// One buffer per device, with host and partition views.
pub struct MemSet<T: Elem> {
    inner: Arc<MemSetInner<T>>,
}

impl<T: Elem> Clone for MemSet<T> {
    fn clone(&self) -> Self {
        MemSet {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Elem> std::fmt::Debug for MemSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSet")
            .field("uid", &self.inner.uid)
            .field("name", &self.inner.name)
            .field("mode", &self.inner.mode)
            .field(
                "part_lens",
                &self.inner.parts.iter().map(|p| p.len).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<T: Elem> MemSet<T> {
    /// Allocate a buffer of `sizes[d]` elements on each device `d`.
    ///
    /// Fails with a simulated OOM if a device's ledger capacity would be
    /// exceeded.
    pub fn new(backend: &Backend, name: &str, sizes: &[usize], mode: StorageMode) -> Result<Self> {
        assert_eq!(
            sizes.len(),
            backend.num_devices(),
            "one size per device required"
        );
        let mut parts = Vec::with_capacity(sizes.len());
        for (i, &len) in sizes.iter().enumerate() {
            let dev = DeviceId(i);
            let bytes = (len as u64) * T::BYTES;
            let ticket = backend.ledger(dev).alloc(bytes)?;
            let data = match mode {
                StorageMode::Real => vec![T::default(); len],
                StorageMode::Virtual => Vec::new(),
            };
            parts.push(PartitionStorage {
                data: UnsafeCell::new(data),
                len,
                tracker: AccessTracker::new(),
                _ticket: ticket,
            });
        }
        Ok(MemSet {
            inner: Arc::new(MemSetInner {
                uid: DataUid::fresh(),
                name: name.to_string(),
                mode,
                parts,
            }),
        })
    }

    /// The data object's unique id.
    pub fn uid(&self) -> DataUid {
        self.inner.uid
    }

    /// The data object's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Storage mode.
    pub fn mode(&self) -> StorageMode {
        self.inner.mode
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.inner.parts.len()
    }

    /// Element count of device `d`'s partition.
    pub fn part_len(&self, d: DeviceId) -> usize {
        self.inner.parts[d.0].len
    }

    /// Total element count across partitions.
    pub fn total_len(&self) -> usize {
        self.inner.parts.iter().map(|p| p.len).sum()
    }

    /// The access tracker of device `d`'s partition.
    pub fn tracker(&self, d: DeviceId) -> &AccessTracker {
        &self.inner.parts[d.0].tracker
    }

    fn part(&self, d: DeviceId) -> &PartitionStorage<T> {
        &self.inner.parts[d.0]
    }

    fn assert_real(&self) {
        assert!(
            self.inner.mode == StorageMode::Real,
            "MemSet '{}' has virtual storage; functional access is not available",
            self.inner.name
        );
    }

    /// Acquire a read view of device `d`'s partition.
    pub fn read(&self, d: DeviceId) -> RawRead<T> {
        self.assert_real();
        let p = self.part(d);
        let guard = p.tracker.read(&self.inner.name);
        RawRead {
            ptr: unsafe { (*p.data.get()).as_ptr() },
            len: p.len,
            _guard: Some(guard),
            _keepalive: Some(self.inner.clone()),
        }
    }

    /// Acquire a write view of device `d`'s partition.
    pub fn write(&self, d: DeviceId) -> RawWrite<T> {
        self.assert_real();
        let p = self.part(d);
        let guard = p.tracker.write(&self.inner.name);
        RawWrite {
            ptr: unsafe { (*p.data.get()).as_mut_ptr() },
            len: p.len,
            _guard: Some(guard),
            _keepalive: Some(self.inner.clone()),
        }
    }

    /// A null read view (used during loader dry-runs and virtual storage).
    pub fn null_read(&self) -> RawRead<T> {
        RawRead {
            ptr: std::ptr::null(),
            len: 0,
            _guard: None,
            _keepalive: None,
        }
    }

    /// A null write view (used during loader dry-runs and virtual storage).
    pub fn null_write(&self) -> RawWrite<T> {
        RawWrite {
            ptr: std::ptr::null_mut(),
            len: 0,
            _guard: None,
            _keepalive: None,
        }
    }

    /// Run `f` on an immutable slice of device `d`'s partition.
    pub fn with_part<R>(&self, d: DeviceId, f: impl FnOnce(&[T]) -> R) -> R {
        self.assert_real();
        let p = self.part(d);
        let _guard = p.tracker.read(&self.inner.name);
        f(unsafe { (*p.data.get()).as_slice() })
    }

    /// Run `f` on a mutable slice of device `d`'s partition.
    pub fn with_part_mut<R>(&self, d: DeviceId, f: impl FnOnce(&mut [T]) -> R) -> R {
        self.assert_real();
        let p = self.part(d);
        let _guard = p.tracker.write(&self.inner.name);
        f(unsafe { (*p.data.get()).as_mut_slice() })
    }

    /// Host logical view: all partitions concatenated in device order.
    pub fn to_host(&self) -> Vec<T> {
        self.assert_real();
        let mut out = Vec::with_capacity(self.total_len());
        for d in 0..self.num_partitions() {
            self.with_part(DeviceId(d), |s| out.extend_from_slice(s));
        }
        out
    }

    /// Scatter a contiguous host buffer back into the partitions.
    pub fn from_host(&self, host: &[T]) {
        self.assert_real();
        assert_eq!(host.len(), self.total_len(), "host buffer length mismatch");
        let mut off = 0;
        for d in 0..self.num_partitions() {
            let len = self.part_len(DeviceId(d));
            self.with_part_mut(DeviceId(d), |s| {
                s.copy_from_slice(&host[off..off + len]);
            });
            off += len;
        }
    }

    /// Copy `len` elements from one partition into another (the functional
    /// side of a halo exchange). No-op for virtual storage.
    pub fn copy_between(
        &self,
        src: DeviceId,
        src_off: usize,
        dst: DeviceId,
        dst_off: usize,
        len: usize,
    ) {
        if self.inner.mode == StorageMode::Virtual {
            return;
        }
        let sp = self.part(src);
        let dp = self.part(dst);
        assert!(src_off + len <= sp.len, "copy_between: source out of range");
        assert!(
            dst_off + len <= dp.len,
            "copy_between: destination out of range"
        );
        let _rg = sp.tracker.read(&self.inner.name);
        // Same-partition copies take a single exclusive lease instead.
        if src == dst {
            drop(_rg);
            let _wg = dp.tracker.write(&self.inner.name);
            unsafe {
                let base = (*dp.data.get()).as_mut_ptr();
                std::ptr::copy(base.add(src_off), base.add(dst_off), len);
            }
        } else {
            let _wg = dp.tracker.write(&self.inner.name);
            unsafe {
                let s = (*sp.data.get()).as_ptr().add(src_off);
                let d = (*dp.data.get()).as_mut_ptr().add(dst_off);
                std::ptr::copy_nonoverlapping(s, d, len);
            }
        }
    }

    /// [`MemSet::copy_between`] without acquiring tracker leases.
    ///
    /// The access tracker leases whole partitions, but a halo copy only
    /// reads the source's owned boundary cells and only writes the
    /// destination's halo layers — ranges that are disjoint from what an
    /// overlapping *internal*-view kernel touches. The event-driven
    /// executor's dependency table orders every genuinely conflicting
    /// access, so it uses this lease-free path to allow the overlap the
    /// whole-partition lease would falsely reject. The serial reference
    /// path keeps the fully tracked [`MemSet::copy_between`]; parity tests
    /// compare the two bit for bit.
    ///
    /// Callers must guarantee (e.g. via an event table) that no concurrent
    /// access overlaps the copied ranges. Distinct partitions required.
    pub fn copy_between_untracked(
        &self,
        src: DeviceId,
        src_off: usize,
        dst: DeviceId,
        dst_off: usize,
        len: usize,
    ) {
        if self.inner.mode == StorageMode::Virtual {
            return;
        }
        assert_ne!(src, dst, "copy_between_untracked: partitions must differ");
        let sp = self.part(src);
        let dp = self.part(dst);
        assert!(src_off + len <= sp.len, "copy_between: source out of range");
        assert!(
            dst_off + len <= dp.len,
            "copy_between: destination out of range"
        );
        unsafe {
            let s = (*sp.data.get()).as_ptr().add(src_off);
            let d = (*dp.data.get()).as_mut_ptr().add(dst_off);
            std::ptr::copy_nonoverlapping(s, d, len);
        }
    }
}

/// Immutable, bounds-checked view of one partition.
pub struct RawRead<T> {
    ptr: *const T,
    len: usize,
    _guard: Option<TrackerGuard>,
    _keepalive: Option<Arc<MemSetInner<T>>>,
}

// SAFETY: the view's partition is leased via the tracker; `T: Elem` is
// `Send + Sync`, and the pointee is kept alive by `_keepalive`.
unsafe impl<T: Elem> Send for RawRead<T> {}

impl<T: Elem> RawRead<T> {
    /// Element `i` of the partition.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        assert!(
            i < self.len,
            "read index {i} out of bounds (len {})",
            self.len
        );
        unsafe { *self.ptr.add(i) }
    }

    /// Number of elements visible.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty (true for null views).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole partition as a slice (empty for null views).
    ///
    /// This is the monomorphized fast path: shaped kernels hoist one
    /// `as_slice` per chunk and index it with plain `[]`, paying the
    /// bounds check once per element with no per-call assert formatting,
    /// and giving the optimizer a contiguous slice to vectorize over.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.ptr.is_null() {
            &[]
        } else {
            // SAFETY: ptr/len describe the leased partition buffer, kept
            // alive by `_keepalive`; the tracker lease guarantees no
            // aliasing writer while `self` is live.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

/// Mutable, bounds-checked view of one partition.
///
/// `set` takes `&self`: the exclusive tracker lease guarantees this view is
/// the only live access to the partition, and each view is used by a single
/// device thread.
pub struct RawWrite<T> {
    ptr: *mut T,
    len: usize,
    _guard: Option<TrackerGuard>,
    _keepalive: Option<Arc<MemSetInner<T>>>,
}

// SAFETY: see `RawRead`; exclusivity is enforced by the tracker lease.
unsafe impl<T: Elem> Send for RawWrite<T> {}

impl<T: Elem> RawWrite<T> {
    /// Element `i` of the partition.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        assert!(
            i < self.len,
            "read index {i} out of bounds (len {})",
            self.len
        );
        unsafe { *self.ptr.add(i) }
    }

    /// Store `v` at element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        assert!(
            i < self.len,
            "write index {i} out of bounds (len {})",
            self.len
        );
        unsafe { *self.ptr.add(i) = v }
    }

    /// Number of elements visible.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty (true for null views).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole partition as a mutable slice (empty for null views).
    ///
    /// Counterpart of [`RawRead::as_slice`] for shaped kernels. Takes
    /// `&mut self` even though `set` takes `&self`: a slice borrow must
    /// be unique for its lifetime, and the exclusive tracker lease only
    /// guarantees exclusivity *between* views, not within one.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.ptr.is_null() {
            &mut []
        } else {
            // SAFETY: ptr/len describe the exclusively leased partition
            // buffer (kept alive by `_keepalive`); `&mut self` makes this
            // the only live borrow through the view.
            unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
        }
    }
}

impl<T: Elem> crate::loader::Loadable for MemSet<T> {
    type ReadView = RawRead<T>;
    type StencilView = RawRead<T>;
    type WriteView = RawWrite<T>;

    fn data_uid(&self) -> DataUid {
        self.uid()
    }
    fn data_name(&self) -> String {
        self.name().to_string()
    }
    fn bytes_per_cell(&self) -> u64 {
        T::BYTES
    }
    fn halo_exchange(&self) -> Option<Arc<dyn crate::container::HaloExchange>> {
        None
    }
    fn state_handle(&self) -> Option<Arc<dyn crate::checkpoint::StateHandle>> {
        Some(Arc::new(self.clone()))
    }
    fn make_read_view(&self, dev: DeviceId, null: bool) -> Self::ReadView {
        if null || self.mode() == StorageMode::Virtual {
            self.null_read()
        } else {
            self.read(dev)
        }
    }
    fn make_stencil_view(&self, dev: DeviceId, null: bool) -> Self::StencilView {
        self.make_read_view(dev, null)
    }
    fn make_write_view(&self, dev: DeviceId, null: bool) -> Self::WriteView {
        if null || self.mode() == StorageMode::Virtual {
            self.null_write()
        } else {
            self.write(dev)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> Backend {
        Backend::dgx_a100(2)
    }

    #[test]
    fn alloc_and_host_round_trip() {
        let b = backend();
        let m = MemSet::<f64>::new(&b, "m", &[3, 2], StorageMode::Real).unwrap();
        assert_eq!(m.total_len(), 5);
        m.from_host(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(m.to_host(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        m.with_part(DeviceId(1), |s| assert_eq!(s, &[4.0, 5.0]));
    }

    #[test]
    fn ledger_accounts_bytes() {
        let b = backend();
        let before = b.ledger(DeviceId(0)).in_use();
        {
            let _m = MemSet::<f64>::new(&b, "m", &[100, 100], StorageMode::Real).unwrap();
            assert_eq!(b.ledger(DeviceId(0)).in_use(), before + 800);
        }
        assert_eq!(b.ledger(DeviceId(0)).in_use(), before);
    }

    #[test]
    fn virtual_storage_accounts_but_rejects_access() {
        let b = backend();
        let m = MemSet::<f64>::new(&b, "m", &[1000, 1000], StorageMode::Virtual).unwrap();
        assert_eq!(b.ledger(DeviceId(0)).in_use(), 8000);
        assert_eq!(m.part_len(DeviceId(0)), 1000);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.to_host()));
        assert!(r.is_err(), "virtual access should panic");
    }

    #[test]
    fn oom_on_overcommit() {
        let b = backend();
        // 40 GB capacity per device; ask for 6G f64 elements = 48 GB.
        let err = MemSet::<f64>::new(&b, "big", &[6_000_000_000, 1], StorageMode::Virtual);
        assert!(err.is_err());
    }

    #[test]
    fn raw_views_read_write() {
        let b = backend();
        let m = MemSet::<i32>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        {
            let w = m.write(DeviceId(0));
            w.set(0, 7);
            w.set(3, 9);
            assert_eq!(w.get(0), 7);
        }
        let r = m.read(DeviceId(0));
        assert_eq!(r.get(0), 7);
        assert_eq!(r.get(3), 9);
        assert_eq!(r.get(1), 0);
    }

    #[test]
    #[should_panic(expected = "access conflict")]
    fn conflicting_views_panic() {
        let b = backend();
        let m = MemSet::<i32>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        let _w = m.write(DeviceId(0));
        let _r = m.read(DeviceId(0));
    }

    #[test]
    fn views_on_distinct_devices_coexist() {
        let b = backend();
        let m = MemSet::<i32>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        let _w0 = m.write(DeviceId(0));
        let _w1 = m.write(DeviceId(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_bounds_checked() {
        let b = backend();
        let m = MemSet::<i32>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        let r = m.read(DeviceId(0));
        r.get(4);
    }

    #[test]
    fn copy_between_moves_halo_data() {
        let b = backend();
        let m = MemSet::<f64>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        m.with_part_mut(DeviceId(0), |s| s.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]));
        // Send dev0's last two elements into dev1's first two slots.
        m.copy_between(DeviceId(0), 2, DeviceId(1), 0, 2);
        m.with_part(DeviceId(1), |s| assert_eq!(s, &[3.0, 4.0, 0.0, 0.0]));
    }

    #[test]
    fn copy_between_same_device_overlapping() {
        let b = backend();
        let m = MemSet::<i32>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        m.with_part_mut(DeviceId(0), |s| s.copy_from_slice(&[1, 2, 3, 4]));
        m.copy_between(DeviceId(0), 0, DeviceId(0), 1, 3);
        m.with_part(DeviceId(0), |s| assert_eq!(s, &[1, 1, 2, 3]));
    }

    #[test]
    fn null_views_are_empty() {
        let b = backend();
        let m = MemSet::<f64>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        let r = m.null_read();
        assert!(r.is_empty());
        let w = m.null_write();
        assert!(w.is_empty());
        // Null views take no lease:
        let _w2 = m.write(DeviceId(0));
    }

    #[test]
    fn guards_release_on_view_drop() {
        let b = backend();
        let m = MemSet::<f64>::new(&b, "m", &[4, 4], StorageMode::Real).unwrap();
        drop(m.write(DeviceId(0)));
        drop(m.read(DeviceId(0)));
        assert!(m.tracker(DeviceId(0)).is_free());
    }
}
