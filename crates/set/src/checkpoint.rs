//! Checkpoint/rollback state capture for multi-GPU data objects.
//!
//! The self-healing executor (neon-core) recovers from faults that escape
//! retry by rolling the solver back to the last good iteration. That
//! requires snapshotting every data object a skeleton *writes* — fields and
//! reduction scalars alike — without the core layer knowing their concrete
//! types. [`StateHandle`] is that type-erased capture interface: `MemSet`
//! and `ScalarSet` implement it here, `neon-domain` fields forward to their
//! backing `MemSet`, and the loader attaches a handle to every
//! [`AccessRecord`](crate::loader::AccessRecord) so the core can collect
//! the write set straight from a compiled plan.
//!
//! A [`Checkpoint`] is a host-side snapshot: partition buffers are cloned
//! into plain `Vec`s (virtual storage captures nothing — there is no data
//! to protect), scalars capture host value plus per-device partials.
//! Restore writes the blobs back through the same handles. Capture and
//! restore both run at iteration boundaries, where no views are live, so
//! the access trackers are free.

use std::any::Any;
use std::sync::Arc;

use neon_sys::DeviceId;

use crate::elem::Elem;
use crate::memset::{MemSet, StorageMode};
use crate::scalar::ScalarSet;
use crate::uid::DataUid;

/// Type-erased snapshot of one data object's state.
pub type StateBlob = Box<dyn Any + Send + Sync>;

/// A data object whose state can be captured into and restored from a
/// host-side blob. Object-safe so the core layer can hold heterogeneous
/// write sets as `Arc<dyn StateHandle>`.
pub trait StateHandle: Send + Sync {
    /// Identity of the underlying data object (used to deduplicate the
    /// write set across containers).
    fn state_uid(&self) -> DataUid;
    /// Name for diagnostics.
    fn state_name(&self) -> String;
    /// Capture the current state. `None` when there is nothing to capture
    /// (virtual storage).
    fn save_state(&self) -> Option<StateBlob>;
    /// Bytes a `save_state` snapshot occupies on the host (0 for virtual
    /// storage). A checkpoint is a device→host copy of this payload, so
    /// schedulers price capture time as `state bytes / host-link bandwidth`.
    fn state_bytes(&self) -> u64;
    /// Restore a previously captured state.
    ///
    /// # Panics
    /// Panics if `blob` did not come from this handle's `save_state` (or a
    /// handle of the same object) — a blob/object mismatch is a logic error.
    fn restore_state(&self, blob: &StateBlob);
}

impl<T: Elem> StateHandle for MemSet<T> {
    fn state_uid(&self) -> DataUid {
        self.uid()
    }
    fn state_name(&self) -> String {
        self.name().to_string()
    }
    fn save_state(&self) -> Option<StateBlob> {
        if self.mode() == StorageMode::Virtual {
            return None;
        }
        let parts: Vec<Vec<T>> = (0..self.num_partitions())
            .map(|d| self.with_part(DeviceId(d), |s| s.to_vec()))
            .collect();
        Some(Box::new(parts))
    }
    fn state_bytes(&self) -> u64 {
        if self.mode() == StorageMode::Virtual {
            return 0;
        }
        (0..self.num_partitions())
            .map(|d| self.with_part(DeviceId(d), |s| s.len() as u64))
            .sum::<u64>()
            * std::mem::size_of::<T>() as u64
    }
    fn restore_state(&self, blob: &StateBlob) {
        let parts = blob
            .downcast_ref::<Vec<Vec<T>>>()
            .expect("state blob type mismatch for MemSet");
        assert_eq!(
            parts.len(),
            self.num_partitions(),
            "state blob partition count mismatch for '{}'",
            self.name()
        );
        for (d, saved) in parts.iter().enumerate() {
            self.with_part_mut(DeviceId(d), |s| s.copy_from_slice(saved));
        }
    }
}

/// Snapshot payload of a [`ScalarSet`]: host value + per-device partials.
struct ScalarState<T> {
    host: T,
    partials: Vec<T>,
}

impl<T: Elem> StateHandle for ScalarSet<T> {
    fn state_uid(&self) -> DataUid {
        self.uid()
    }
    fn state_name(&self) -> String {
        self.name().to_string()
    }
    fn save_state(&self) -> Option<StateBlob> {
        let partials = (0..self.num_devices())
            .map(|d| self.partial(DeviceId(d)))
            .collect();
        Some(Box::new(ScalarState {
            host: self.host_value(),
            partials,
        }))
    }
    fn state_bytes(&self) -> u64 {
        (self.num_devices() as u64 + 1) * std::mem::size_of::<T>() as u64
    }
    fn restore_state(&self, blob: &StateBlob) {
        let state = blob
            .downcast_ref::<ScalarState<T>>()
            .expect("state blob type mismatch for ScalarSet");
        assert_eq!(
            state.partials.len(),
            self.num_devices(),
            "state blob partial count mismatch for '{}'",
            self.name()
        );
        for (d, &p) in state.partials.iter().enumerate() {
            self.view(DeviceId(d)).set(p);
        }
        self.set_host(state.host);
    }
}

/// A host-side snapshot of a set of data objects at one iteration boundary.
pub struct Checkpoint {
    iteration: u64,
    entries: Vec<(Arc<dyn StateHandle>, StateBlob)>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("iteration", &self.iteration)
            .field(
                "objects",
                &self
                    .entries
                    .iter()
                    .map(|(h, _)| h.state_name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Checkpoint {
    /// Capture the current state of every handle (handles whose
    /// `save_state` returns `None` — virtual storage — are skipped; restore
    /// leaves them untouched, which is correct because they hold no data).
    pub fn capture(iteration: u64, handles: &[Arc<dyn StateHandle>]) -> Self {
        let entries = handles
            .iter()
            .filter_map(|h| h.save_state().map(|b| (h.clone(), b)))
            .collect();
        Checkpoint { iteration, entries }
    }

    /// The iteration at whose *end* this snapshot was taken (resuming means
    /// re-entering the loop at `iteration + 1`).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Number of captured objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Host-side bytes this snapshot holds (what a capture staged over the
    /// device↔host link). This is the payload schedulers charge for when
    /// they price checkpoint capture on the virtual clock.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|(h, _)| h.state_bytes()).sum()
    }

    /// Write every captured blob back into its object.
    pub fn restore(&self) {
        for (h, blob) in &self.entries {
            h.restore_state(blob);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_sys::Backend;

    #[test]
    fn memset_round_trip() {
        let b = Backend::dgx_a100(2);
        let m = MemSet::<f64>::new(&b, "m", &[2, 2], StorageMode::Real).unwrap();
        m.from_host(&[1.0, 2.0, 3.0, 4.0]);
        let handle: Arc<dyn StateHandle> = Arc::new(m.clone());
        let cp = Checkpoint::capture(7, &[handle]);
        assert_eq!(cp.iteration(), 7);
        assert_eq!(cp.len(), 1);
        assert_eq!(cp.bytes(), 4 * 8, "4 f64 cells staged to the host");
        m.from_host(&[9.0, 9.0, 9.0, 9.0]);
        cp.restore();
        assert_eq!(m.to_host(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn scalar_round_trip_includes_partials() {
        let s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
        s.view(DeviceId(0)).set(1.5);
        s.view(DeviceId(1)).set(2.5);
        s.set_host(4.0);
        let cp = Checkpoint::capture(0, &[Arc::new(s.clone()) as Arc<dyn StateHandle>]);
        s.reset();
        assert_eq!(s.host_value(), 0.0);
        cp.restore();
        assert_eq!(s.host_value(), 4.0);
        assert_eq!(s.partial(DeviceId(0)), 1.5);
        assert_eq!(s.partial(DeviceId(1)), 2.5);
    }

    #[test]
    fn virtual_storage_captures_nothing() {
        let b = Backend::dgx_a100(1);
        let m = MemSet::<f64>::new(&b, "v", &[64], StorageMode::Virtual).unwrap();
        let cp = Checkpoint::capture(0, &[Arc::new(m) as Arc<dyn StateHandle>]);
        assert!(cp.is_empty());
        cp.restore(); // must not panic
    }

    #[test]
    #[should_panic(expected = "state blob type mismatch")]
    fn mismatched_blob_panics() {
        let b = Backend::dgx_a100(1);
        let m = MemSet::<f64>::new(&b, "m", &[2], StorageMode::Real).unwrap();
        let n = MemSet::<i32>::new(&b, "n", &[2], StorageMode::Real).unwrap();
        let blob = StateHandle::save_state(&m).unwrap();
        n.restore_state(&blob);
    }
}
