//! Typed kernel shapes — the monomorphization contract between the
//! Domain layer and the executor.
//!
//! Every container carries an opaque compute lambda; that alone forces
//! the executor through a `dyn Fn` boundary whose per-cell cost dwarfs
//! the arithmetic of BLAS-grade kernels. A [`KernelShape`] names the
//! *algorithmic shape* of the kernel so that:
//!
//! * the Domain layer can register a **chunk-level** compute lambda
//!   (see `Container::compute_shaped`) whose inner loop is fully
//!   monomorphized over the grid's concrete view types — the virtual
//!   dispatch happens once per `CELL_CHUNK`, and the per-cell body
//!   inlines down to `MemLayout::index` arithmetic;
//! * the compile pipeline can distinguish shaped programs from generic
//!   ones in the plan cache (the shape is folded into the sequence
//!   signature) and reason about access locality per shape;
//! * diagnostics (IR dumps, traces) can label launches by shape.
//!
//! A shape is a *claim about structure*, never about values: a shaped
//! kernel must be bit-identical to the equivalent per-cell `Generic`
//! kernel, which the proptests in `neon-core` enforce across layouts,
//! device counts, OCC levels and fusion settings.

/// The algorithmic shape of a container's compute kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelShape {
    /// Opaque per-cell lambda — the always-correct fallback.
    #[default]
    Generic,
    /// `dst[i] ← v`: pure fill, no reads.
    Fill,
    /// `dst[i] ← src[i]`: element copy.
    Copy,
    /// `y[i] ← a·x[i] + y[i]` (constant or launch-time scalar `a`).
    Axpy,
    /// `w[i] ← a·x[i] + b·y[i]`.
    Waxpby,
    /// `dst[i] ← a·dst[i]`.
    Scale,
    /// Dot-product partials accumulated chunk-wise in cell order.
    DotChunk,
    /// 7-point (face-neighbour) stencil application.
    MapStencil7,
}

impl KernelShape {
    /// Short label used in IR dumps and traces.
    pub fn label(self) -> &'static str {
        match self {
            KernelShape::Generic => "generic",
            KernelShape::Fill => "fill",
            KernelShape::Copy => "copy",
            KernelShape::Axpy => "axpy",
            KernelShape::Waxpby => "waxpby",
            KernelShape::Scale => "scale",
            KernelShape::DotChunk => "dot-chunk",
            KernelShape::MapStencil7 => "map-stencil7",
        }
    }

    /// Stable byte for structural signatures (plan-cache keys must
    /// distinguish shaped from generic programs).
    pub fn signature_byte(self) -> u8 {
        match self {
            KernelShape::Generic => 0,
            KernelShape::Fill => 1,
            KernelShape::Copy => 2,
            KernelShape::Axpy => 3,
            KernelShape::Waxpby => 4,
            KernelShape::Scale => 5,
            KernelShape::DotChunk => 6,
            KernelShape::MapStencil7 => 7,
        }
    }
}

impl std::fmt::Display for KernelShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_bytes_are_distinct() {
        let all = [
            KernelShape::Generic,
            KernelShape::Fill,
            KernelShape::Copy,
            KernelShape::Axpy,
            KernelShape::Waxpby,
            KernelShape::Scale,
            KernelShape::DotChunk,
            KernelShape::MapStencil7,
        ];
        let mut labels = std::collections::HashSet::new();
        let mut bytes = std::collections::HashSet::new();
        for s in all {
            assert!(labels.insert(s.label()), "duplicate label {}", s);
            assert!(bytes.insert(s.signature_byte()), "duplicate byte {}", s);
        }
    }

    #[test]
    fn default_is_generic() {
        assert_eq!(KernelShape::default(), KernelShape::Generic);
    }
}
