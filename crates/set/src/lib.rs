//! # neon-set — the Set abstraction
//!
//! The second layer of the Neon programming model (paper §IV-B). A
//! multi-device system is modelled by *parameterizing every mechanism over
//! the available devices*: data and kernels are vectors whose i-th entry
//! belongs to the i-th device.
//!
//! This crate provides:
//!
//! * [`MemSet`] — the simplest multi-GPU data object: one buffer per device
//!   with a contiguous host logical view and per-partition local views.
//! * [`Container`] — the multi-GPU kernel concept: a *loading lambda* runs
//!   once per device, declares its data accesses through a [`Loader`]
//!   (solving the paper's *dependency-graph challenge* without a compiler),
//!   and returns the per-device *compute lambda*.
//! * [`ScalarSet`] — a reduction target: one partial accumulator per device
//!   plus a host value, with a user-supplied associative combine operator.
//! * [`access`] — runtime read/write tracking per partition, the safety net
//!   that replaces C++'s "trust the user" with a checked own-compute rule.
//! * [`cell`] — the index space vocabulary shared with the Domain layer:
//!   [`Cell`], [`DataView`] and the [`IterationSpace`] trait.
//! * [`manual`] — the Set level's parametric run-time model: hand-driven
//!   multi-GPU streams and events for launching containers without the
//!   Skeleton's automation (paper §IV-B4).

pub mod access;
pub mod cell;
pub mod checkpoint;
pub mod container;
pub mod dataset;
pub mod elem;
pub mod layout;
pub mod loader;
pub mod manual;
pub mod memset;
pub mod scalar;
pub mod shape;
pub mod signature;
pub mod uid;

pub use access::{AccessConflict, AccessTracker, TrackerGuard};
pub use cell::{Cell, ChunkBuffer, DataView, IterationSpace, CELL_CHUNK};
pub use checkpoint::{Checkpoint, StateBlob, StateHandle};
pub use container::{ChunkFn, ComputeFn, HostFn, KernelFn};
pub use container::{Container, ContainerKind, HaloDescriptor, HaloExchange};
pub use dataset::DataSet;
pub use elem::Elem;
pub use layout::MemLayout;
pub use loader::{
    AccessMode, AccessRecord, ComputePattern, Loadable, Loader, ReduceHooks, ScalarReader,
    ScalarWriter,
};
pub use manual::{EventSetId, ManualRuntime, StreamSetId};
pub use memset::{MemSet, RawRead, RawWrite, StorageMode};
pub use scalar::{ScalarSet, ScalarView};
pub use shape::KernelShape;
pub use signature::{sequence_signature, uid_roles};
pub use uid::DataUid;
