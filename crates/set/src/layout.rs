//! Memory layouts for vector fields.
//!
//! The layout lives at the Set layer (rather than in `neon-domain`)
//! because it is a *policy*, not a grid property: the compile pipeline's
//! `layout-select` pass recommends a layout per data object from its
//! recorded access pattern, and every monomorphized kernel fast path
//! indexes partition storage through [`MemLayout::index`] directly.

/// How a cardinality-`n` field organizes its components in memory.
///
/// The choice is transparent to user code (paper §IV-C2) but changes the
/// halo-exchange structure: SoA needs `2n` transfers per partition pair,
/// AoS needs 2 — asserted in the dense, element-sparse and block-sparse
/// grid tests of `neon-domain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemLayout {
    /// Structure-of-Arrays: all cells of component 0, then component 1, …
    #[default]
    SoA,
    /// Array-of-Structures: all components of cell 0, then cell 1, …
    AoS,
}

impl MemLayout {
    /// Element index of `(cell, comp)` given the per-component stride
    /// (total cells in the partition's storage) and cardinality.
    #[inline]
    pub fn index(self, cell: usize, comp: usize, stride: usize, card: usize) -> usize {
        match self {
            MemLayout::SoA => comp * stride + cell,
            MemLayout::AoS => cell * card + comp,
        }
    }

    /// Short label used in IR dumps and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            MemLayout::SoA => "soa",
            MemLayout::AoS => "aos",
        }
    }

    /// Halo transfers one partition pair needs for a cardinality-`card`
    /// field in this layout: component planes are contiguous under AoS
    /// (2 copies) but strided under SoA (2 per component).
    pub fn halo_transfers_per_pair(self, card: usize) -> usize {
        match self {
            MemLayout::SoA => 2 * card,
            MemLayout::AoS => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_strides_by_component() {
        assert_eq!(MemLayout::SoA.index(5, 0, 100, 3), 5);
        assert_eq!(MemLayout::SoA.index(5, 2, 100, 3), 205);
    }

    #[test]
    fn aos_interleaves() {
        assert_eq!(MemLayout::AoS.index(5, 0, 100, 3), 15);
        assert_eq!(MemLayout::AoS.index(5, 2, 100, 3), 17);
    }

    #[test]
    fn scalar_fields_agree() {
        for cell in 0..10 {
            assert_eq!(
                MemLayout::SoA.index(cell, 0, 64, 1),
                MemLayout::AoS.index(cell, 0, 64, 1)
            );
        }
    }

    #[test]
    fn halo_transfer_counts() {
        assert_eq!(MemLayout::SoA.halo_transfers_per_pair(1), 2);
        assert_eq!(MemLayout::SoA.halo_transfers_per_pair(3), 6);
        assert_eq!(MemLayout::AoS.halo_transfers_per_pair(3), 2);
    }
}
