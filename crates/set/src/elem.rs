//! Element types storable in multi-GPU data objects.

/// Marker trait for plain-old-data element types.
///
/// Everything a field or mem-set stores must be `Copy`, thread-portable and
/// have a default "zero" used for fresh allocations and outside-domain
/// values.
pub trait Elem: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// Size of one element in bytes (the value the performance model uses).
    const BYTES: u64 = std::mem::size_of::<Self>() as u64;
}

impl Elem for f32 {}
impl Elem for f64 {}
impl Elem for i32 {}
impl Elem for i64 {}
impl Elem for u8 {}
impl Elem for u32 {}
impl Elem for u64 {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(<f64 as Elem>::BYTES, 8);
        assert_eq!(<f32 as Elem>::BYTES, 4);
        assert_eq!(<u8 as Elem>::BYTES, 1);
        assert_eq!(<u32 as Elem>::BYTES, 4);
    }
}
