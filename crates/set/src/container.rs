//! `Container` — the multi-GPU kernel concept.
//!
//! A container generalizes a kernel to a multi-device launch (paper
//! §IV-B2). It is built from an iteration space (a grid) and a *loading
//! lambda*: a closure that receives a [`Loader`], extracts partition-local
//! views from the multi-GPU data it uses, and returns the *compute lambda*
//! that runs per cell.
//!
//! At construction the loading lambda is dry-run once with a recording
//! loader; the collected [`AccessRecord`]s give the Skeleton everything it
//! needs for dependency analysis — which data is used, the access mode and
//! the compute pattern — without a compiler (the paper's
//! dependency-graph-challenge solution).
//!
//! At execution the loading lambda runs once per device per launch, so
//! captured host state (e.g. CG's `alpha` scalar) is re-read at each
//! iteration.

use std::sync::Arc;

use neon_sys::DeviceId;

use crate::cell::{Cell, DataView, IterationSpace};
use crate::loader::{AccessRecord, ComputePattern, Loader, ReduceHooks};
use crate::shape::KernelShape;
use crate::uid::DataUid;

/// What kind of node a container contributes to the execution graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerKind {
    /// Cell-local computation.
    Map,
    /// Neighbourhood computation — needs coherent halos.
    Stencil,
    /// Reduction into a scalar.
    Reduce,
    /// Host-side computation (scalar algebra between device phases).
    Host,
}

/// The per-device kernel produced by a loading lambda (per-cell form).
pub type ComputeFn = Box<dyn Fn(Cell) + Send>;

/// The per-device kernel produced by a *shaped* loading lambda: invoked
/// once per [`crate::cell::CELL_CHUNK`]-sized block of cells, so the
/// `dyn Fn` boundary is crossed per chunk and the per-cell inner loop
/// stays monomorphized in the caller.
pub type ChunkFn = Box<dyn Fn(&[Cell]) + Send>;

/// The host action produced by a host container's loading lambda.
pub type HostFn = Box<dyn FnOnce() + Send>;

/// A compute lambda in either dispatch granularity.
///
/// `PerCell` is the paper-faithful form every user kernel starts with;
/// `Chunked` is the monomorphized fast path registered by shaped
/// containers ([`Container::compute_shaped`]). The executor iterates
/// both through the grid's chunked path — for `PerCell` it unrolls the
/// chunk itself, so the two forms visit cells in the identical order.
pub enum KernelFn {
    /// One virtual call per cell.
    PerCell(ComputeFn),
    /// One virtual call per chunk of cells.
    Chunked(ChunkFn),
}

impl KernelFn {
    /// Wrap a per-cell closure.
    pub fn per_cell(f: impl Fn(Cell) + Send + 'static) -> Self {
        KernelFn::PerCell(Box::new(f))
    }

    /// Wrap a chunk-level closure.
    pub fn chunked(f: impl Fn(&[Cell]) + Send + 'static) -> Self {
        KernelFn::Chunked(Box::new(f))
    }

    /// Apply the kernel to one chunk of cells, in slice order.
    #[inline]
    pub fn run_chunk(&self, cells: &[Cell]) {
        match self {
            KernelFn::PerCell(f) => {
                for &c in cells {
                    f(c);
                }
            }
            KernelFn::Chunked(f) => f(cells),
        }
    }
}

type GenFn = dyn Fn(&mut Loader) -> KernelFn + Send + Sync;
type HostGenFn = dyn Fn(&mut Loader) -> HostFn + Send + Sync;

/// One directed inter-device transfer of a halo exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloDescriptor {
    /// Source device.
    pub src: DeviceId,
    /// Destination device.
    pub dst: DeviceId,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Halo-coherency implementation exposed by fields (paper §IV-C2).
///
/// `descriptors` drive the performance model (one timed transfer each);
/// `execute` performs the actual copies for functional execution.
pub trait HaloExchange: Send + Sync {
    /// Uid of the field this exchange belongs to.
    fn data_uid(&self) -> DataUid;
    /// Field name (diagnostics / trace labels).
    fn data_name(&self) -> String;
    /// The transfers one halo update performs.
    fn descriptors(&self) -> Vec<HaloDescriptor>;
    /// Perform the copies (no-op on virtual storage).
    fn execute(&self);
    /// Whether [`HaloExchange::execute_for_dst`] is implemented, allowing
    /// the parallel executor to run each destination device's incoming
    /// copies on that device's worker instead of serializing the whole
    /// exchange on one thread.
    fn supports_per_device(&self) -> bool {
        false
    }
    /// Perform only the copies whose destination is `dst`.
    ///
    /// Must only be called when [`HaloExchange::supports_per_device`]
    /// returns true; calling every destination exactly once must be
    /// equivalent to one [`HaloExchange::execute`] call.
    fn execute_for_dst(&self, dst: DeviceId) {
        let _ = dst;
        unimplemented!("HaloExchange::execute_for_dst without supports_per_device");
    }
    /// How many ghost layers one round of this exchange refreshes.
    /// Defaults to 1 — the classic exchange-per-iteration depth.
    fn depth(&self) -> usize {
        1
    }
    /// A variant of this exchange refreshing `depth` ghost layers per
    /// round, or `None` if the field's allocation cannot hold that many.
    /// Temporal blocking trades one depth-`k·r` exchange for `k`
    /// depth-`r` rounds; a `None` here makes the temporal-fuse pass fall
    /// back to per-iteration exchanges for the whole graph.
    fn at_depth(&self, depth: usize) -> Option<Arc<dyn HaloExchange>> {
        let _ = depth;
        None
    }
}

/// Temporal-blocking execution parameters of a super-step container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalSpec {
    /// Iterations executed per launch of the super-step.
    pub k: u8,
    /// Maximum stencil radius among the member sweeps: the ghost zone
    /// shrinks by this much per rep.
    pub radius: usize,
}

struct ContainerInner {
    name: String,
    kind: ContainerKind,
    shape: KernelShape,
    space: Option<Arc<dyn IterationSpace>>,
    gen: Option<Arc<GenFn>>,
    host_gen: Option<Arc<HostGenFn>>,
    accesses: Vec<AccessRecord>,
    bytes_per_cell: u64,
    flops_per_cell: u64,
    bw_efficiency: f64,
    reduce_hooks: Vec<ReduceHooks>,
    /// Member containers of a fused container (empty for ordinary ones).
    members: Vec<Container>,
    /// Present for temporal super-steps built by [`Container::temporal`]:
    /// one launch executes `k` whole iterations of the member sweeps over
    /// a ghost zone that shrinks by `radius` layers per rep.
    temporal: Option<TemporalSpec>,
}

/// `Σ_uid max(read bytes) + Σ_uid max(write bytes)` over the recorded
/// accesses: reads of the same data object by several accesses count
/// once (on a real device the second read hits cache), writes likewise.
/// Computed once at construction — the executor reads it per launch.
fn bytes_per_cell_of(accesses: &[AccessRecord]) -> u64 {
    use std::collections::HashMap;
    let mut reads: HashMap<crate::uid::DataUid, u64> = HashMap::new();
    let mut writes: HashMap<crate::uid::DataUid, u64> = HashMap::new();
    for a in accesses {
        let r = reads.entry(a.uid).or_default();
        *r = (*r).max(a.read_bytes_per_cell);
        let w = writes.entry(a.uid).or_default();
        *w = (*w).max(a.write_bytes_per_cell);
    }
    reads.values().sum::<u64>() + writes.values().sum::<u64>()
}

/// A multi-device kernel (or host step) with declared data accesses.
#[derive(Clone)]
pub struct Container {
    inner: Arc<ContainerInner>,
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Container")
            .field("name", &self.inner.name)
            .field("kind", &self.inner.kind)
            .field("accesses", &self.inner.accesses)
            .finish()
    }
}

impl Container {
    /// Build a compute container over `space` from a loading lambda.
    ///
    /// The kind (map / stencil / reduce) is inferred from the recorded
    /// access patterns, exactly as the paper's Loader-based design intends.
    pub fn compute(
        name: &str,
        space: Arc<dyn IterationSpace>,
        gen: impl Fn(&mut Loader) -> ComputeFn + Send + Sync + 'static,
    ) -> Self {
        Container::compute_opts(name, space, gen, 0, 1.0)
    }

    /// [`Container::compute`] with performance-model overrides:
    /// `flops_per_cell` for compute-bound kernels and `bw_efficiency`
    /// scaling the achieved bandwidth (Neon's bound-checks cost a few
    /// percent versus a hardwired kernel, paper §VI-B).
    pub fn compute_opts(
        name: &str,
        space: Arc<dyn IterationSpace>,
        gen: impl Fn(&mut Loader) -> ComputeFn + Send + Sync + 'static,
        flops_per_cell: u64,
        bw_efficiency: f64,
    ) -> Self {
        Container::build_compute(
            name,
            space,
            KernelShape::Generic,
            Arc::new(move |ldr: &mut Loader| KernelFn::PerCell(gen(ldr))),
            flops_per_cell,
            bw_efficiency,
        )
    }

    /// Build a compute container whose loading lambda declares a typed
    /// [`KernelShape`] and may return a chunk-level kernel
    /// ([`KernelFn::Chunked`]).
    ///
    /// The shape is a structural claim: the kernel must compute exactly
    /// what the equivalent per-cell `Generic` kernel would, bit for bit
    /// (the executor visits cells in the identical order either way).
    /// Shaped containers get their shape folded into the sequence
    /// signature, so plans compiled for shaped programs never alias
    /// plans for generic ones in the plan cache.
    pub fn compute_shaped(
        name: &str,
        space: Arc<dyn IterationSpace>,
        shape: KernelShape,
        gen: impl Fn(&mut Loader) -> KernelFn + Send + Sync + 'static,
    ) -> Self {
        Container::compute_shaped_opts(name, space, shape, gen, 0, 1.0)
    }

    /// [`Container::compute_shaped`] with performance-model overrides
    /// (see [`Container::compute_opts`]).
    pub fn compute_shaped_opts(
        name: &str,
        space: Arc<dyn IterationSpace>,
        shape: KernelShape,
        gen: impl Fn(&mut Loader) -> KernelFn + Send + Sync + 'static,
        flops_per_cell: u64,
        bw_efficiency: f64,
    ) -> Self {
        Container::build_compute(
            name,
            space,
            shape,
            Arc::new(gen),
            flops_per_cell,
            bw_efficiency,
        )
    }

    fn build_compute(
        name: &str,
        space: Arc<dyn IterationSpace>,
        shape: KernelShape,
        gen: Arc<GenFn>,
        flops_per_cell: u64,
        bw_efficiency: f64,
    ) -> Self {
        let mut accesses = Vec::new();
        {
            let mut loader = Loader::for_recording(&mut accesses, space.num_partitions());
            // Dry run: records accesses; the produced kernel (over null
            // views) is dropped unused.
            let _ = gen(&mut loader);
        }
        let kind = infer_kind(&accesses);
        let reduce_hooks = accesses
            .iter()
            .filter_map(|a| a.reduce_hooks.clone())
            .collect();
        Container {
            inner: Arc::new(ContainerInner {
                name: name.to_string(),
                kind,
                shape,
                space: Some(space),
                gen: Some(gen),
                host_gen: None,
                bytes_per_cell: bytes_per_cell_of(&accesses),
                accesses,
                flops_per_cell,
                bw_efficiency,
                reduce_hooks,
                members: Vec::new(),
                temporal: None,
            }),
        }
    }

    /// Build a host container: a scalar-algebra step between device phases
    /// (e.g. CG's `alpha = rs / pAp`). The loading lambda declares scalar
    /// reads/writes and returns the deferred host action.
    pub fn host(
        name: &str,
        num_devices: usize,
        gen: impl Fn(&mut Loader) -> HostFn + Send + Sync + 'static,
    ) -> Self {
        let mut accesses = Vec::new();
        {
            let mut loader = Loader::for_recording(&mut accesses, num_devices);
            let _ = gen(&mut loader);
        }
        Container {
            inner: Arc::new(ContainerInner {
                name: name.to_string(),
                kind: ContainerKind::Host,
                shape: KernelShape::Generic,
                space: None,
                gen: None,
                host_gen: Some(Arc::new(gen)),
                bytes_per_cell: bytes_per_cell_of(&accesses),
                accesses,
                flops_per_cell: 0,
                bw_efficiency: 1.0,
                reduce_hooks: Vec::new(),
                members: Vec::new(),
                temporal: None,
            }),
        }
    }

    /// Compose several compute containers into one fused kernel (built by
    /// the fuse pass): a single traversal that applies every member's
    /// compute lambda per cell, in member order.
    ///
    /// The merged access list drives dependency inference exactly as if
    /// the members had been declared in one loading lambda. A read of a
    /// data object written by an *earlier* member costs zero bytes — the
    /// value is still in registers within the fused sweep — which is where
    /// fusion saves memory traffic; the write itself is kept, so later
    /// unfused consumers of the field stay correct.
    ///
    /// # Panics
    ///
    /// If fewer than two members are given, if any member is not a compute
    /// container, or if the members do not share one iteration space (as
    /// reported by [`IterationSpace::space_id`]).
    pub fn fused(name: &str, members: Vec<Container>) -> Self {
        assert!(members.len() >= 2, "fusing fewer than two containers");
        let space = members[0]
            .inner
            .space
            .clone()
            .expect("fused members must be compute containers");
        let sid = space.space_id();
        assert!(sid.is_some(), "fused members need a grid identity");
        let mut accesses = Vec::new();
        let mut written = std::collections::HashSet::new();
        let mut flops_per_cell = 0u64;
        let mut bw_efficiency = f64::INFINITY;
        for m in &members {
            let ms = m
                .inner
                .space
                .as_ref()
                .expect("fused members must be compute containers");
            assert!(
                ms.space_id() == sid,
                "fused members must share one iteration space"
            );
            assert!(
                m.inner.gen.is_some(),
                "fused members must be compute containers"
            );
            for a in &m.inner.accesses {
                let mut a = a.clone();
                if written.contains(&a.uid) {
                    a.read_bytes_per_cell = 0;
                }
                accesses.push(a);
            }
            for a in &m.inner.accesses {
                if a.mode.writes() {
                    written.insert(a.uid);
                }
            }
            flops_per_cell += m.inner.flops_per_cell;
            bw_efficiency = bw_efficiency.min(m.inner.bw_efficiency);
        }
        let kind = infer_kind(&accesses);
        let reduce_hooks = accesses
            .iter()
            .filter_map(|a| a.reduce_hooks.clone())
            .collect();
        let gens: Vec<Arc<GenFn>> = members
            .iter()
            .map(|m| m.inner.gen.clone().expect("checked above"))
            .collect();
        // One loading lambda running every member's: in execution mode the
        // loader's record() is a no-op, so sharing it is safe; each member
        // still builds its own device views. The members' views of one
        // partition belong to a single launch, so their leases coalesce
        // under a FusedScope instead of conflicting (see `access`).
        // Member kernels are chained per *chunk*, not per cell. This is
        // bit-identical to per-cell chaining because fusion legality
        // forbids a member stencil-reading data an earlier member wrote:
        // every member is cell-local over the chunk (maps, or reduces
        // accumulating in ascending cell order), so running member k over
        // cells [a..b] before member k+1 touches them computes the same
        // values as interleaving per cell.
        let gen = move |ldr: &mut Loader| -> KernelFn {
            let _scope = crate::access::FusedScope::enter();
            let kernels: Vec<KernelFn> = gens.iter().map(|g| g(ldr)).collect();
            KernelFn::Chunked(Box::new(move |cells: &[Cell]| {
                for k in &kernels {
                    k.run_chunk(cells);
                }
            }))
        };
        Container {
            inner: Arc::new(ContainerInner {
                name: name.to_string(),
                kind,
                shape: KernelShape::Generic,
                space: Some(space),
                gen: Some(Arc::new(gen)),
                host_gen: None,
                bytes_per_cell: bytes_per_cell_of(&accesses),
                accesses,
                flops_per_cell,
                bw_efficiency,
                reduce_hooks,
                members,
                temporal: None,
            }),
        }
    }

    /// Merge several finalizing reduce containers into one collective-only
    /// container (built by collective fusion): it is never launched — only
    /// its [`Container::reduce_finalize`] runs, folding every member's
    /// partials in a single multi-scalar all-reduce round. Members may
    /// live on different grids; only their access records and reduce hooks
    /// are combined.
    pub fn fused_reductions(name: &str, members: Vec<Container>) -> Self {
        let accesses: Vec<AccessRecord> = members
            .iter()
            .flat_map(|m| m.inner.accesses.iter().cloned())
            .collect();
        let reduce_hooks = accesses
            .iter()
            .filter_map(|a| a.reduce_hooks.clone())
            .collect();
        Container {
            inner: Arc::new(ContainerInner {
                name: name.to_string(),
                kind: ContainerKind::Reduce,
                shape: KernelShape::Generic,
                space: members.first().and_then(|m| m.inner.space.clone()),
                gen: None,
                host_gen: None,
                bytes_per_cell: bytes_per_cell_of(&accesses),
                accesses,
                flops_per_cell: 0,
                bw_efficiency: 1.0,
                reduce_hooks,
                members,
                temporal: None,
            }),
        }
    }

    /// Compose compute containers into one *temporal super-step*: a single
    /// launch that executes `k` whole iterations of the member sweeps, in
    /// member order, over an expanded interior whose ghost zone shrinks by
    /// the stencil radius each rep (overlapped tiling with ghost-zone
    /// recompute). Built by the temporal-fuse pass, which checks legality:
    /// compute-only members sharing one grid, no reductions, and no member
    /// stencil-reading data an *earlier* member of the step wrote.
    ///
    /// The merged access records promote every field read *before* its
    /// first write in the step to a stencil read carrying a depth-`k·r`
    /// halo exchange: rep 0 sweeps `(k-1)·r` ghost layers and stencil
    /// reads reach `k·r`, so one deep exchange up front replaces `k`
    /// per-iteration rounds. Each later rep's reads land on ghost cells
    /// the previous rep recomputed — deterministically identical to the
    /// values the owning device computes, so results match the unfused
    /// run bit for bit.
    ///
    /// # Panics
    ///
    /// If `k < 2`, members are empty or not compute containers, members
    /// do not share one iteration space, or a read-before-write field
    /// lacks a deep-halo-capable exchange (the pass checks all of these
    /// before constructing).
    pub fn temporal(name: &str, members: Vec<Container>, k: u8) -> Self {
        assert!(k >= 2, "temporal super-step needs k >= 2");
        assert!(!members.is_empty(), "temporal super-step needs members");
        let space = members[0]
            .inner
            .space
            .clone()
            .expect("temporal members must be compute containers");
        let sid = space.space_id();
        assert!(sid.is_some(), "temporal members need a grid identity");
        let mut radius = 1usize;
        for m in &members {
            let ms = m
                .inner
                .space
                .as_ref()
                .expect("temporal members must be compute containers");
            assert!(
                ms.space_id() == sid,
                "temporal members must share one iteration space"
            );
            assert!(
                m.inner.gen.is_some(),
                "temporal members must be compute containers"
            );
            assert!(
                m.inner.reduce_hooks.is_empty(),
                "reductions close super-steps; cannot cross iterations"
            );
            for a in &m.inner.accesses {
                if a.pattern == ComputePattern::Stencil && a.mode.reads() {
                    radius = radius.max(a.halo.as_ref().map_or(1, |h| h.depth()));
                }
            }
        }
        let deep = k as usize * radius;
        // Merge access records like `fused`, and promote reads that happen
        // before the step's first write of their field to deep stencil
        // reads: the multi-GPU pass then inserts one depth-`k·r` halo
        // node per such field in front of the super-step.
        let mut accesses: Vec<AccessRecord> = Vec::new();
        let mut written = std::collections::HashSet::new();
        let mut flops_per_cell = 0u64;
        let mut bw_efficiency = f64::INFINITY;
        for m in &members {
            // Walk accesses in recorded (program) order so a read landing
            // after the step's first write of its field — even inside one
            // fused member — reads recomputed values, not the pre-step
            // state, and therefore needs no deep exchange.
            for a in &m.inner.accesses {
                let mut a = a.clone();
                if written.contains(&a.uid) {
                    a.read_bytes_per_cell = 0;
                } else if a.mode.reads() {
                    if let Some(fx) = &a.field_exchange {
                        if !fx.descriptors().is_empty() {
                            let deep_ex = fx.at_depth(deep).unwrap_or_else(|| {
                                panic!("field '{}' cannot host a depth-{} halo", a.name, deep)
                            });
                            a.pattern = ComputePattern::Stencil;
                            a.halo = Some(deep_ex);
                        }
                    }
                }
                if a.mode.writes() {
                    written.insert(a.uid);
                }
                accesses.push(a);
            }
            flops_per_cell += m.inner.flops_per_cell;
            bw_efficiency = bw_efficiency.min(m.inner.bw_efficiency);
        }
        let kind = infer_kind(&accesses);
        Container {
            inner: Arc::new(ContainerInner {
                name: name.to_string(),
                kind,
                shape: KernelShape::Generic,
                space: Some(space),
                gen: None,
                host_gen: None,
                bytes_per_cell: bytes_per_cell_of(&accesses),
                accesses,
                flops_per_cell,
                bw_efficiency,
                reduce_hooks: Vec::new(),
                members,
                temporal: Some(TemporalSpec { k, radius }),
            }),
        }
    }

    /// Whether this container was composed by [`Container::fused`] or
    /// [`Container::fused_reductions`].
    pub fn is_fused(&self) -> bool {
        !self.inner.members.is_empty()
    }

    /// Member containers of a fused container (empty for ordinary ones).
    pub fn fused_members(&self) -> &[Container] {
        &self.inner.members
    }

    /// Temporal-blocking parameters, present for super-steps built by
    /// [`Container::temporal`].
    pub fn temporal_spec(&self) -> Option<TemporalSpec> {
        self.inner.temporal
    }

    /// Whether this container is a temporal super-step.
    pub fn is_temporal(&self) -> bool {
        self.inner.temporal.is_some()
    }

    /// Container name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Whether `self` and `other` are clones of the same container
    /// instance (pointer identity). OCC split halves share one instance;
    /// the pipeline validator uses this to tell "two halves of one launch"
    /// from "two launches racing on the same data".
    pub fn same_instance(&self, other: &Container) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Inferred kind.
    pub fn kind(&self) -> ContainerKind {
        self.inner.kind
    }

    /// Declared kernel shape (`Generic` unless built with
    /// [`Container::compute_shaped`]).
    pub fn shape(&self) -> KernelShape {
        self.inner.shape
    }

    /// Declared accesses (recorded at construction).
    pub fn accesses(&self) -> &[AccessRecord] {
        &self.inner.accesses
    }

    /// The iteration space (None for host containers).
    pub fn space(&self) -> Option<&Arc<dyn IterationSpace>> {
        self.inner.space.as_ref()
    }

    /// Number of devices the container launches over (1 for host).
    pub fn num_devices(&self) -> usize {
        self.inner
            .space
            .as_ref()
            .map(|s| s.num_partitions())
            .unwrap_or(1)
    }

    /// Total bytes moved per iterated cell.
    ///
    /// Reads of the same data object by several accesses are counted once
    /// (on a real device the second read hits cache), writes likewise:
    /// `Σ_uid max(read bytes) + Σ_uid max(write bytes)`. Precomputed at
    /// construction, free to call per launch.
    pub fn bytes_per_cell(&self) -> u64 {
        self.inner.bytes_per_cell
    }

    /// FLOPs per iterated cell (user hint; 0 = bandwidth-bound).
    pub fn flops_per_cell(&self) -> u64 {
        self.inner.flops_per_cell
    }

    /// Achieved-bandwidth fraction of this kernel (1.0 = model peak).
    pub fn bw_efficiency(&self) -> f64 {
        self.inner.bw_efficiency
    }

    /// Stencil-read accesses that require a halo update before launch.
    pub fn stencil_reads(&self) -> impl Iterator<Item = &AccessRecord> {
        self.inner
            .accesses
            .iter()
            .filter(|a| a.pattern == ComputePattern::Stencil && a.mode.reads())
    }

    /// Whether the container performs a reduction.
    pub fn is_reduce(&self) -> bool {
        self.inner.kind == ContainerKind::Reduce
    }

    /// Reset the partials of every reduction target (call before the first
    /// sub-launch of a reduce container).
    pub fn reduce_init(&self) {
        for h in &self.inner.reduce_hooks {
            (h.init)();
        }
    }

    /// Fold partials into host values (call after the last sub-launch).
    pub fn reduce_finalize(&self) {
        for h in &self.inner.reduce_hooks {
            (h.finalize)();
        }
    }

    /// Functionally execute this container's `view` on device `dev`.
    ///
    /// Runs the loading lambda (building real views for `dev`), then the
    /// compute lambda over every cell of the view.
    pub fn run_device(&self, dev: DeviceId, view: DataView) {
        let space = self
            .inner
            .space
            .as_ref()
            .expect("run_device on a host container");
        assert!(
            space.supports_functional(),
            "container '{}' runs on a virtual-storage grid; functional execution unavailable",
            self.inner.name
        );
        if let Some(spec) = self.inner.temporal {
            assert!(
                view == DataView::Standard,
                "temporal super-steps launch the standard view only"
            );
            return self.run_device_temporal(dev, spec);
        }
        let gen = self.inner.gen.as_ref().expect("compute container");
        let mut loader = Loader::for_execution(dev, space.num_partitions(), view);
        // Chunked iteration: one virtual call per block of cells instead of
        // one per cell, amortizing the `dyn FnMut` dispatch overhead. A
        // chunk-level kernel receives the whole slice; a per-cell kernel is
        // unrolled here, so both visit cells in the identical order.
        match gen(&mut loader) {
            KernelFn::PerCell(kernel) => {
                space.for_each_cell_chunked(dev, view, &mut |cells| {
                    for &c in cells {
                        kernel(c);
                    }
                });
            }
            KernelFn::Chunked(kernel) => {
                space.for_each_cell_chunked(dev, view, &mut |cells| kernel(cells));
            }
        }
    }

    /// One launch of a temporal super-step on `dev`: `k` reps of the
    /// member sweeps, rep `j` covering the owned cells plus `(k-1-j)·r`
    /// ghost layers. Rep 0's stencil reads reach depth `k·r` — valid
    /// because the deep halo exchange ran just before the launch — and
    /// every later rep reads ghost values the previous rep recomputed
    /// locally, so no cross-device traffic happens inside the step and
    /// the result is bit-identical to `k` separate exchanged sweeps.
    fn run_device_temporal(&self, dev: DeviceId, spec: TemporalSpec) {
        let space = self.inner.space.as_ref().expect("checked by caller");
        let k = spec.k as usize;
        // Build each member's kernel once; the views live for the whole
        // step. Like `fused`, the members' leases on one partition belong
        // to a single launch and coalesce under a FusedScope.
        let _scope = crate::access::FusedScope::enter();
        let kernels: Vec<KernelFn> = self
            .inner
            .members
            .iter()
            .map(|m| {
                let gen = m
                    .inner
                    .gen
                    .as_ref()
                    .expect("temporal members are compute containers");
                let mut loader =
                    Loader::for_execution(dev, space.num_partitions(), DataView::Standard);
                gen(&mut loader)
            })
            .collect();
        for j in 0..k {
            let depth = (k - 1 - j) * spec.radius;
            for kern in &kernels {
                space
                    .for_each_cell_chunked_expanded(dev, depth, &mut |cells| kern.run_chunk(cells));
            }
        }
    }

    /// Functionally execute a host container.
    pub fn run_host(&self) {
        let gen = self
            .inner
            .host_gen
            .as_ref()
            .expect("run_host on a compute container");
        let mut loader = Loader::for_execution(DeviceId(0), 1, DataView::Standard);
        let action = gen(&mut loader);
        action();
    }
}

fn infer_kind(accesses: &[AccessRecord]) -> ContainerKind {
    let mut kind = ContainerKind::Map;
    for a in accesses {
        match a.pattern {
            ComputePattern::Reduce => return ContainerKind::Reduce,
            ComputePattern::Stencil => kind = ContainerKind::Stencil,
            ComputePattern::Map => {}
        }
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memset::{MemSet, StorageMode};
    use crate::scalar::ScalarSet;
    use neon_sys::Backend;

    /// Simple 1-D space: `len` cells per device, first/last cell boundary.
    struct Line {
        len: u32,
        devs: usize,
    }

    impl IterationSpace for Line {
        fn num_partitions(&self) -> usize {
            self.devs
        }
        fn cell_count(&self, _d: DeviceId, view: DataView) -> u64 {
            match view {
                DataView::Standard => self.len as u64,
                DataView::Internal => self.len as u64 - 2,
                DataView::Boundary => 2,
            }
        }
        fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
            let base = dev.0 as i32 * self.len as i32;
            let idxs: Vec<u32> = match view {
                DataView::Standard => (0..self.len).collect(),
                DataView::Internal => (1..self.len - 1).collect(),
                DataView::Boundary => vec![0, self.len - 1],
            };
            for i in idxs {
                f(Cell::new(i, base + i as i32, 0, 0));
            }
        }
    }

    fn setup() -> (Backend, Arc<dyn IterationSpace>) {
        (
            Backend::dgx_a100(2),
            Arc::new(Line { len: 8, devs: 2 }) as Arc<dyn IterationSpace>,
        )
    }

    #[test]
    fn map_container_runs_per_device() {
        let (b, space) = setup();
        let x = MemSet::<f64>::new(&b, "x", &[8, 8], StorageMode::Real).unwrap();
        let y = MemSet::<f64>::new(&b, "y", &[8, 8], StorageMode::Real).unwrap();
        x.from_host(&[1.0; 16]);
        let xc = x.clone();
        let yc = y.clone();
        let c = Container::compute("axpy", space, move |ldr| {
            let xv = ldr.read(&xc);
            let yv = ldr.read_write(&yc);
            Box::new(move |cell: Cell| {
                yv.set(cell.idx(), yv.get(cell.idx()) + 2.0 * xv.get(cell.idx()));
            })
        });
        assert_eq!(c.kind(), ContainerKind::Map);
        assert_eq!(c.accesses().len(), 2);
        c.run_device(DeviceId(0), DataView::Standard);
        c.run_device(DeviceId(1), DataView::Standard);
        assert_eq!(y.to_host(), vec![2.0; 16]);
    }

    #[test]
    fn stencil_kind_inferred() {
        let (b, space) = setup();
        let x = MemSet::<f64>::new(&b, "x", &[8, 8], StorageMode::Real).unwrap();
        let y = MemSet::<f64>::new(&b, "y", &[8, 8], StorageMode::Real).unwrap();
        let xc = x.clone();
        let yc = y.clone();
        let c = Container::compute("lap", space, move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |cell: Cell| {
                // 1-D "stencil" clamped to the partition: just exercise
                // reads; real stencils live in neon-domain.
                let i = cell.idx();
                let left = if i > 0 { xv.get(i - 1) } else { 0.0 };
                yv.set(i, left + xv.get(i));
            })
        });
        assert_eq!(c.kind(), ContainerKind::Stencil);
        assert_eq!(c.stencil_reads().count(), 1);
    }

    #[test]
    fn reduce_container_lifecycle() {
        let (b, space) = setup();
        let x = MemSet::<f64>::new(&b, "x", &[8, 8], StorageMode::Real).unwrap();
        x.from_host(&(1..=16).map(f64::from).collect::<Vec<_>>());
        let s = ScalarSet::<f64>::new(2, "sum", 0.0, |a, b| a + b);
        let xc = x.clone();
        let sc = s.clone();
        let c = Container::compute("sum", space, move |ldr| {
            let xv = ldr.read(&xc);
            let acc = ldr.reduce(&sc);
            Box::new(move |cell: Cell| acc.update(|a| a + xv.get(cell.idx())))
        });
        assert_eq!(c.kind(), ContainerKind::Reduce);
        assert!(c.is_reduce());
        c.reduce_init();
        c.run_device(DeviceId(0), DataView::Standard);
        c.run_device(DeviceId(1), DataView::Standard);
        c.reduce_finalize();
        assert_eq!(s.host_value(), 136.0); // 1+2+...+16
    }

    #[test]
    fn reduce_split_views_accumulate() {
        let (b, space) = setup();
        let x = MemSet::<f64>::new(&b, "x", &[8, 8], StorageMode::Real).unwrap();
        x.from_host(&[1.0; 16]);
        let s = ScalarSet::<f64>::new(2, "sum", 0.0, |a, b| a + b);
        let xc = x.clone();
        let sc = s.clone();
        let c = Container::compute("sum", space, move |ldr| {
            let xv = ldr.read(&xc);
            let acc = ldr.reduce(&sc);
            Box::new(move |cell: Cell| acc.update(|a| a + xv.get(cell.idx())))
        });
        // Two-way OCC style: internal then boundary, one init, one finalize.
        c.reduce_init();
        for d in 0..2 {
            c.run_device(DeviceId(d), DataView::Internal);
        }
        for d in 0..2 {
            c.run_device(DeviceId(d), DataView::Boundary);
        }
        c.reduce_finalize();
        assert_eq!(s.host_value(), 16.0);
    }

    #[test]
    fn host_container_runs_scalar_algebra() {
        let rs = ScalarSet::<f64>::new(1, "rs", 0.0, |a, b| a + b);
        let pap = ScalarSet::<f64>::new(1, "pap", 0.0, |a, b| a + b);
        let alpha = ScalarSet::<f64>::new(1, "alpha", 0.0, |a, b| a + b);
        rs.set_host(6.0);
        pap.set_host(2.0);
        let (rsc, papc, alphac) = (rs.clone(), pap.clone(), alpha.clone());
        let c = Container::host("alpha", 1, move |ldr| {
            let r = ldr.scalar_reader(&rsc);
            let p = ldr.scalar_reader(&papc);
            let a = ldr.scalar_writer(&alphac);
            Box::new(move || a.set(r.get() / p.get()))
        });
        assert_eq!(c.kind(), ContainerKind::Host);
        assert_eq!(c.accesses().len(), 3);
        c.run_host();
        assert_eq!(alpha.host_value(), 3.0);
    }

    #[test]
    fn bytes_per_cell_sums_accesses() {
        let (b, space) = setup();
        let x = MemSet::<f64>::new(&b, "x", &[8, 8], StorageMode::Real).unwrap();
        let y = MemSet::<f64>::new(&b, "y", &[8, 8], StorageMode::Real).unwrap();
        let (xc, yc) = (x.clone(), y.clone());
        let c = Container::compute("axpy", space, move |ldr| {
            let xv = ldr.read(&xc);
            let yv = ldr.read_write(&yc);
            Box::new(move |cell: Cell| yv.set(cell.idx(), xv.get(cell.idx())))
        });
        // read x (8) + read-write y (16)
        assert_eq!(c.bytes_per_cell(), 24);
    }

    #[test]
    fn gen_reruns_pick_up_fresh_scalars() {
        let (b, space) = setup();
        let y = MemSet::<f64>::new(&b, "y", &[8, 8], StorageMode::Real).unwrap();
        let alpha = ScalarSet::<f64>::new(2, "alpha", 0.0, |a, b| a + b);
        let (yc, ac) = (y.clone(), alpha.clone());
        let c = Container::compute("scale", space, move |ldr| {
            let a = ldr.scalar(&ac);
            let yv = ldr.write(&yc);
            Box::new(move |cell: Cell| yv.set(cell.idx(), a))
        });
        alpha.set_host(1.5);
        c.run_device(DeviceId(0), DataView::Standard);
        alpha.set_host(2.5);
        c.run_device(DeviceId(1), DataView::Standard);
        let host = y.to_host();
        assert_eq!(host[0], 1.5);
        assert_eq!(host[8], 2.5);
    }
}
