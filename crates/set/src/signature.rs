//! Stable structural signatures of container sequences.
//!
//! [`DataUid`]s come from a process-global counter: rebuilding the same
//! solver twice yields different raw uids, and no uid survives a process
//! restart. To let a plan cache recognise "the same program", the signature
//! replaces every uid with its **role**: the first-occurrence index of that
//! uid across the sequence's access records. Two sequences get the same
//! signature exactly when they have the same shape — same container names,
//! kinds and access structure (role / mode / pattern / halo presence) — no
//! matter which concrete data objects they were built over.
//!
//! Per-cell byte counts, FLOP hints and bandwidth efficiencies are
//! deliberately **excluded**: they parameterize the performance model at
//! execution time (read from the rebound containers), not the shape of the
//! compiled graph. A CG solver on a 1e6-cell grid therefore shares a plan
//! with the same solver on a 1e7-cell grid.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use neon_sys::hash::StableHasher;

use crate::container::{Container, ContainerKind};
use crate::loader::{AccessMode, ComputePattern};
use crate::uid::DataUid;

/// Map every uid accessed by the sequence to its role: the index of its
/// first occurrence in declaration order (container order, then access
/// order within a container).
pub fn uid_roles(containers: &[Container]) -> HashMap<DataUid, usize> {
    let mut roles = HashMap::new();
    for c in containers {
        for a in c.accesses() {
            let next = roles.len();
            roles.entry(a.uid).or_insert(next);
        }
    }
    roles
}

/// Stable structural signature of a container sequence.
///
/// Covers, per container: name, inferred kind, and per access the uid
/// *role* (see [`uid_roles`]), whether the mode reads/writes, the compute
/// pattern, and whether a halo exchange with at least one transfer is
/// attached. Everything identifying concrete data instances or grid sizes
/// stays out.
pub fn sequence_signature(containers: &[Container]) -> u64 {
    let roles = uid_roles(containers);
    let mut h = StableHasher::new();
    h.write_u64(containers.len() as u64);
    for c in containers {
        c.name().hash(&mut h);
        h.write_u8(match c.kind() {
            ContainerKind::Map => 0,
            ContainerKind::Stencil => 1,
            ContainerKind::Reduce => 2,
            ContainerKind::Host => 3,
        });
        // Shaped and generic builds of the same program must never share
        // a cached plan: the shape drives layout-select recommendations.
        h.write_u8(c.shape().signature_byte());
        h.write_u64(c.accesses().len() as u64);
        for a in c.accesses() {
            h.write_u64(roles[&a.uid] as u64);
            h.write_u8(u8::from(a.mode.reads()) | (u8::from(a.mode.writes()) << 1));
            h.write_u8(match a.pattern {
                ComputePattern::Map => 0,
                ComputePattern::Stencil => 1,
                ComputePattern::Reduce => 2,
            });
            let live_halo = a
                .halo
                .as_ref()
                .map(|x| !x.descriptors().is_empty())
                .unwrap_or(false);
            h.write_u8(u8::from(live_halo));
        }
    }
    h.finish()
}

/// `AccessMode` encoded for signatures — kept here so the encoding has one
/// home if more modes appear.
pub fn mode_bits(mode: AccessMode) -> u8 {
    u8::from(mode.reads()) | (u8::from(mode.writes()) << 1)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::cell::{Cell, DataView, IterationSpace};
    use crate::memset::{MemSet, StorageMode};
    use neon_sys::{Backend, DeviceId};

    struct Line {
        len: u32,
        devs: usize,
    }

    impl IterationSpace for Line {
        fn num_partitions(&self) -> usize {
            self.devs
        }
        fn cell_count(&self, _d: DeviceId, view: DataView) -> u64 {
            match view {
                DataView::Standard => self.len as u64,
                DataView::Internal => self.len as u64 - 2,
                DataView::Boundary => 2,
            }
        }
        fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
            let base = dev.0 as i32 * self.len as i32;
            let idxs: Vec<u32> = match view {
                DataView::Standard => (0..self.len).collect(),
                DataView::Internal => (1..self.len - 1).collect(),
                DataView::Boundary => vec![0, self.len - 1],
            };
            for i in idxs {
                f(Cell::new(i, base + i as i32, 0, 0));
            }
        }
    }

    fn axpy_like(b: &Backend, len: usize) -> Vec<Container> {
        let space = Arc::new(Line {
            len: len as u32,
            devs: b.num_devices(),
        }) as Arc<dyn IterationSpace>;
        let x = MemSet::<f64>::new(b, "x", &[len, len], StorageMode::Real).unwrap();
        let y = MemSet::<f64>::new(b, "y", &[len, len], StorageMode::Real).unwrap();
        let (xc, yc) = (x.clone(), y.clone());
        vec![Container::compute("axpy", space, move |ldr| {
            let xv = ldr.read(&xc);
            let yv = ldr.read_write(&yc);
            Box::new(move |cell: Cell| yv.set(cell.idx(), xv.get(cell.idx())))
        })]
    }

    #[test]
    fn same_shape_same_signature_despite_fresh_uids() {
        let b = Backend::dgx_a100(2);
        let s1 = sequence_signature(&axpy_like(&b, 8));
        let s2 = sequence_signature(&axpy_like(&b, 8));
        assert_eq!(s1, s2, "fresh uids must not change the signature");
    }

    #[test]
    fn grid_size_does_not_change_signature() {
        let b = Backend::dgx_a100(2);
        assert_eq!(
            sequence_signature(&axpy_like(&b, 8)),
            sequence_signature(&axpy_like(&b, 64))
        );
    }

    #[test]
    fn name_and_structure_change_signature() {
        let b = Backend::dgx_a100(2);
        let base = sequence_signature(&axpy_like(&b, 8));

        let space = Arc::new(Line { len: 8, devs: 2 }) as Arc<dyn IterationSpace>;
        let x = MemSet::<f64>::new(&b, "x", &[8, 8], StorageMode::Real).unwrap();
        let y = MemSet::<f64>::new(&b, "y", &[8, 8], StorageMode::Real).unwrap();
        let (xc, yc) = (x.clone(), y.clone());
        let renamed = vec![Container::compute("copy", space.clone(), {
            let (xc, yc) = (xc.clone(), yc.clone());
            move |ldr| {
                let xv = ldr.read(&xc);
                let yv = ldr.read_write(&yc);
                Box::new(move |cell: Cell| yv.set(cell.idx(), xv.get(cell.idx())))
            }
        })];
        assert_ne!(base, sequence_signature(&renamed));

        // Same names, but y is now read-only and x written: different roles.
        let swapped = vec![Container::compute("axpy", space, move |ldr| {
            let yv = ldr.read(&yc);
            let xv = ldr.read_write(&xc);
            Box::new(move |cell: Cell| xv.set(cell.idx(), yv.get(cell.idx())))
        })];
        // Structurally identical (read first, read-write second) — roles are
        // positional, so this *should* collide with the base signature.
        assert_eq!(base, sequence_signature(&swapped));
    }

    #[test]
    fn uid_roles_are_first_occurrence_order() {
        let b = Backend::dgx_a100(2);
        let seq = axpy_like(&b, 8);
        let roles = uid_roles(&seq);
        let accs = seq[0].accesses();
        assert_eq!(roles[&accs[0].uid], 0);
        assert_eq!(roles[&accs[1].uid], 1);
    }
}
