//! `DataSet<T>` — one value per device.
//!
//! The Set abstraction models every multi-device mechanism as a vector
//! indexed by device (paper §IV-B: "data and kernels are described as
//! vectors where the i-th entry stores the information associated with the
//! i-th GPU"). `DataSet` is that vector, with a device-typed API.

use neon_sys::DeviceId;

/// A per-device collection: exactly one `T` per device of a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSet<T> {
    items: Vec<T>,
}

impl<T> DataSet<T> {
    /// Build with `n` entries produced by `f(device)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(DeviceId) -> T) -> Self {
        DataSet {
            items: (0..n).map(|i| f(DeviceId(i))).collect(),
        }
    }

    /// Wrap an existing vector (one entry per device).
    pub fn from_vec(items: Vec<T>) -> Self {
        assert!(!items.is_empty(), "DataSet needs at least one device");
        DataSet { items }
    }

    /// Number of devices covered.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty (never true for a valid set).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Entry of device `d`.
    pub fn get(&self, d: DeviceId) -> &T {
        &self.items[d.0]
    }

    /// Mutable entry of device `d`.
    pub fn get_mut(&mut self, d: DeviceId) -> &mut T {
        &mut self.items[d.0]
    }

    /// Iterate `(device, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &T)> {
        self.items.iter().enumerate().map(|(i, t)| (DeviceId(i), t))
    }

    /// Iterate `(device, entry)` pairs mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (DeviceId, &mut T)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| (DeviceId(i), t))
    }

    /// Map each entry, preserving device association.
    pub fn map<U>(&self, mut f: impl FnMut(DeviceId, &T) -> U) -> DataSet<U> {
        DataSet {
            items: self
                .items
                .iter()
                .enumerate()
                .map(|(i, t)| f(DeviceId(i), t))
                .collect(),
        }
    }

    /// Underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_indexes_devices() {
        let ds = DataSet::from_fn(4, |d| d.0 * 10);
        assert_eq!(ds.len(), 4);
        assert_eq!(*ds.get(DeviceId(3)), 30);
    }

    #[test]
    fn map_preserves_devices() {
        let ds = DataSet::from_fn(3, |d| d.0);
        let doubled = ds.map(|_, &v| v * 2);
        assert_eq!(doubled.as_slice(), &[0, 2, 4]);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut ds = DataSet::from_vec(vec![1, 2, 3]);
        for (_, v) in ds.iter_mut() {
            *v += 1;
        }
        assert_eq!(ds.as_slice(), &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_rejected() {
        DataSet::<i32>::from_vec(vec![]);
    }
}
