//! The index-space vocabulary: cells, data views and iteration spaces.
//!
//! A [`Cell`] is the per-partition index handed to a compute lambda; it
//! carries both the local linear index (for direct addressing into field
//! storage) and the global grid coordinates (for geometry-dependent code
//! such as boundary conditions).
//!
//! A [`DataView`] selects which part of a partition a container launch
//! iterates over (paper §IV-C1, Fig. 3): *internal* cells depend only on
//! local data; *boundary* cells additionally read halo data received from
//! neighbouring partitions; *standard* is their union. OCC optimizations
//! work by launching the internal view while halo transfers are in flight.

use neon_sys::DeviceId;

/// One grid cell as seen by a compute lambda.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Local linear index within the partition's storage.
    pub lin: u32,
    /// Global x coordinate.
    pub x: i32,
    /// Global y coordinate.
    pub y: i32,
    /// Global z coordinate.
    pub z: i32,
}

impl Cell {
    /// Construct a cell.
    #[inline]
    pub fn new(lin: u32, x: i32, y: i32, z: i32) -> Self {
        Cell { lin, x, y, z }
    }

    /// The local linear index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.lin as usize
    }
}

/// Which cells of a partition a launch covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataView {
    /// All owned cells (internal ∪ boundary).
    #[default]
    Standard,
    /// Cells whose stencil neighbourhood stays within the local partition.
    Internal,
    /// Cells whose stencil neighbourhood touches halo data.
    Boundary,
}

impl DataView {
    /// Short label used in node names and traces.
    pub fn label(self) -> &'static str {
        match self {
            DataView::Standard => "std",
            DataView::Internal => "int",
            DataView::Boundary => "bnd",
        }
    }
}

/// Number of cells handed to the kernel per call through the chunked
/// iteration path. Chosen so a chunk of [`Cell`]s stays within a cache
/// line budget while amortizing the `dyn FnMut` virtual dispatch.
pub const CELL_CHUNK: usize = 64;

/// Stack-allocated accumulator that turns per-cell emission into
/// [`CELL_CHUNK`]-sized chunk emission.
///
/// This is the one home of the chunk-buffering logic: the default
/// [`IterationSpace::for_each_cell_chunked`] uses it, and grids whose
/// native iteration order cannot produce whole slices directly (sparse
/// cell lists, block-sparse domain masks, dense x-rows shorter than a
/// chunk) push into it from their own loops — a direct, inlinable call
/// per cell, with the `dyn FnMut` boundary crossed once per chunk.
pub struct ChunkBuffer {
    buf: [Cell; CELL_CHUNK],
    n: usize,
}

impl ChunkBuffer {
    /// Fresh, empty buffer.
    #[inline]
    pub fn new() -> Self {
        ChunkBuffer {
            buf: [Cell::new(0, 0, 0, 0); CELL_CHUNK],
            n: 0,
        }
    }

    /// Append `c`; hands a full chunk to `f` when the buffer fills.
    #[inline]
    pub fn push(&mut self, c: Cell, f: &mut dyn FnMut(&[Cell])) {
        self.buf[self.n] = c;
        self.n += 1;
        if self.n == CELL_CHUNK {
            f(&self.buf[..]);
            self.n = 0;
        }
    }

    /// Hand any buffered tail chunk to `f` (call once, after the loop).
    #[inline]
    pub fn flush(&mut self, f: &mut dyn FnMut(&[Cell])) {
        if self.n > 0 {
            f(&self.buf[..self.n]);
            self.n = 0;
        }
    }
}

impl Default for ChunkBuffer {
    fn default() -> Self {
        ChunkBuffer::new()
    }
}

/// The iteration domain a container launches over — implemented by grids.
///
/// The paper creates a container *from* a multi-GPU data object which
/// provides the index space for each partition; this trait is that
/// interface, object-safe so containers can hold any grid.
pub trait IterationSpace: Send + Sync {
    /// Number of partitions (= devices).
    fn num_partitions(&self) -> usize;

    /// Number of cells device `dev` iterates for `view`.
    fn cell_count(&self, dev: DeviceId, view: DataView) -> u64;

    /// Invoke `f` for every cell of `view` on device `dev`.
    ///
    /// Only meaningful for grids with real (non-virtual) storage; grids in
    /// timing-only mode may panic here.
    fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell));

    /// Invoke `f` with blocks of up to [`CELL_CHUNK`] cells of `view` on
    /// device `dev`, in the same order `for_each_cell` would visit them.
    ///
    /// The per-cell path crosses the `dyn FnMut` boundary once *per cell*;
    /// this path crosses it once per chunk, amortizing the virtual dispatch
    /// over up to [`CELL_CHUNK`] cells. The default implementation buffers
    /// `for_each_cell` output through a stack array; grids override it to
    /// fill chunks directly from their native layout.
    fn for_each_cell_chunked(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(&[Cell])) {
        let mut chunks = ChunkBuffer::new();
        {
            let chunks = &mut chunks;
            let f = &mut *f;
            self.for_each_cell(dev, view, &mut |c| chunks.push(c, f));
        }
        chunks.flush(f);
    }

    /// Whether functional iteration is possible (false for virtual-storage
    /// grids used in timing-only benchmark sweeps).
    fn supports_functional(&self) -> bool {
        true
    }

    /// Stable identity of the underlying grid, if it has one.
    ///
    /// `as_space()` wraps the grid in a fresh `Arc` on every call, so
    /// pointer equality of spaces says nothing; grids instead expose the
    /// address of their shared interior here. Two spaces reporting the
    /// same id iterate the same cells in the same order on every device —
    /// the precondition for the fuse pass to merge their containers. The
    /// default `None` means "no identity": such containers never fuse.
    fn space_id(&self) -> Option<u64> {
        None
    }

    /// How many ghost layers beyond the owned region a partition can
    /// *iterate* while still reading a full stencil neighbourhood from
    /// allocated storage. Temporal blocking executes rep `j` of a `k`-rep
    /// super-step over the owned cells plus `(k-1-j)·r` ghost layers, so a
    /// grid must report at least `(k-1)·r` here to host a `Temporal(k)`
    /// super-step. The default `0` means "no ghost iteration support".
    fn ghost_capacity(&self) -> usize {
        0
    }

    /// Number of stored cells within `depth` ghost layers of the owned
    /// region on device `dev` (clamped to the allocated halo capacity).
    /// Used both to size expanded-interior launches and to price the
    /// memory footprint a temporally-blocked super-step sweeps.
    fn cell_count_expanded(&self, dev: DeviceId, depth: usize) -> u64 {
        let _ = depth;
        self.cell_count(dev, DataView::Standard)
    }

    /// Invoke `f` with chunks covering the owned cells *plus* `depth` ghost
    /// layers on device `dev` — the expanded interior a temporally-blocked
    /// rep sweeps. `depth` must not exceed [`IterationSpace::ghost_capacity`].
    /// The default (only valid for `depth == 0`) falls back to the standard
    /// view.
    fn for_each_cell_chunked_expanded(
        &self,
        dev: DeviceId,
        depth: usize,
        f: &mut dyn FnMut(&[Cell]),
    ) {
        assert!(
            depth == 0,
            "grid has no ghost-iteration support (depth {depth} requested)"
        );
        self.for_each_cell_chunked(dev, DataView::Standard, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 1-D iteration space used to test the trait contract.
    struct Line {
        len_per_dev: u32,
        devs: usize,
    }

    impl IterationSpace for Line {
        fn num_partitions(&self) -> usize {
            self.devs
        }
        fn cell_count(&self, _dev: DeviceId, view: DataView) -> u64 {
            match view {
                DataView::Standard => self.len_per_dev as u64,
                DataView::Internal => (self.len_per_dev - 2) as u64,
                DataView::Boundary => 2,
            }
        }
        fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
            let base = dev.0 as i32 * self.len_per_dev as i32;
            let range: Vec<u32> = match view {
                DataView::Standard => (0..self.len_per_dev).collect(),
                DataView::Internal => (1..self.len_per_dev - 1).collect(),
                DataView::Boundary => vec![0, self.len_per_dev - 1],
            };
            for i in range {
                f(Cell::new(i, base + i as i32, 0, 0));
            }
        }
    }

    #[test]
    fn views_partition_the_standard_view() {
        let l = Line {
            len_per_dev: 10,
            devs: 2,
        };
        let d = DeviceId(0);
        assert_eq!(
            l.cell_count(d, DataView::Internal) + l.cell_count(d, DataView::Boundary),
            l.cell_count(d, DataView::Standard)
        );
        let mut int_cells = Vec::new();
        let mut bnd_cells = Vec::new();
        l.for_each_cell(d, DataView::Internal, &mut |c| int_cells.push(c.lin));
        l.for_each_cell(d, DataView::Boundary, &mut |c| bnd_cells.push(c.lin));
        let mut all: Vec<u32> = int_cells.iter().chain(&bnd_cells).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cell_carries_global_coords() {
        let l = Line {
            len_per_dev: 4,
            devs: 2,
        };
        let mut xs = Vec::new();
        l.for_each_cell(DeviceId(1), DataView::Standard, &mut |c| xs.push(c.x));
        assert_eq!(xs, vec![4, 5, 6, 7]);
    }

    #[test]
    fn chunked_default_matches_per_cell_order() {
        let l = Line {
            len_per_dev: CELL_CHUNK as u32 + 7, // exercises a partial tail chunk
            devs: 1,
        };
        for view in [DataView::Standard, DataView::Internal, DataView::Boundary] {
            let mut per_cell = Vec::new();
            l.for_each_cell(DeviceId(0), view, &mut |c| per_cell.push(c));
            let mut chunked = Vec::new();
            l.for_each_cell_chunked(DeviceId(0), view, &mut |cs| chunked.extend_from_slice(cs));
            assert_eq!(per_cell, chunked, "{view:?}");
        }
    }

    #[test]
    fn view_labels() {
        assert_eq!(DataView::Standard.label(), "std");
        assert_eq!(DataView::Internal.label(), "int");
        assert_eq!(DataView::Boundary.label(), "bnd");
    }
}
