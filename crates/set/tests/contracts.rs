//! Failure-injection and contract tests for the Set layer: what happens
//! when user code breaks the rules — conflicting view declarations,
//! out-of-bounds access, panicking kernels, virtual-storage touches.
//! The API must fail loudly and leave no poisoned state behind.

use std::sync::Arc;

use neon_set::{
    Cell, Container, DataView, IterationSpace, ManualRuntime, MemSet, ScalarSet, StorageMode,
};
use neon_sys::{Backend, DeviceId};

struct Line {
    len: u32,
    devs: usize,
}
impl IterationSpace for Line {
    fn num_partitions(&self) -> usize {
        self.devs
    }
    fn cell_count(&self, _d: DeviceId, view: DataView) -> u64 {
        match view {
            DataView::Standard => self.len as u64,
            DataView::Internal => self.len as u64 - 2,
            DataView::Boundary => 2,
        }
    }
    fn for_each_cell(&self, dev: DeviceId, view: DataView, f: &mut dyn FnMut(Cell)) {
        let base = dev.0 as i32 * self.len as i32;
        let idx: Vec<u32> = match view {
            DataView::Standard => (0..self.len).collect(),
            DataView::Internal => (1..self.len - 1).collect(),
            DataView::Boundary => vec![0, self.len - 1],
        };
        for i in idx {
            f(Cell::new(i, base + i as i32, 0, 0));
        }
    }
}

fn setup() -> (Backend, Arc<dyn IterationSpace>, MemSet<f64>) {
    let b = Backend::dgx_a100(2);
    let space = Arc::new(Line { len: 8, devs: 2 }) as Arc<dyn IterationSpace>;
    let m = MemSet::<f64>::new(&b, "m", &[8, 8], StorageMode::Real).unwrap();
    (b, space, m)
}

#[test]
fn undeclared_write_read_conflict_panics_at_launch() {
    // Loading the same data as read AND write (instead of read_write)
    // must trip the access tracker when real views are created.
    let (_, space, m) = setup();
    let mc = m.clone();
    let c = Container::compute("bad", space, move |ldr| {
        let r = ldr.read(&mc);
        let w = ldr.write(&mc); // conflicts with the live read view
        Box::new(move |cell: Cell| w.set(cell.idx(), r.get(cell.idx())))
    });
    // Construction (dry run, null views) succeeds — the conflict is a
    // runtime property of real views.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run_device(DeviceId(0), DataView::Standard)
    }));
    assert!(err.is_err(), "conflicting views must panic");
    // The tracker recovered: the read guard was dropped during unwind.
    assert!(m.tracker(DeviceId(0)).is_free(), "tracker poisoned");
}

#[test]
fn out_of_bounds_kernel_access_panics_cleanly() {
    let (_, space, m) = setup();
    let mc = m.clone();
    let c = Container::compute("oob", space, move |ldr| {
        let w = ldr.write(&mc);
        Box::new(move |_cell: Cell| w.set(999, 1.0))
    });
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run_device(DeviceId(0), DataView::Standard)
    }));
    assert!(err.is_err());
    assert!(m.tracker(DeviceId(0)).is_free());
    // The data object remains usable afterwards.
    m.with_part_mut(DeviceId(0), |s| s[0] = 42.0);
    assert_eq!(m.to_host()[0], 42.0);
}

#[test]
fn panicking_kernel_releases_all_leases() {
    let (_, space, m) = setup();
    let s = ScalarSet::<f64>::new(2, "acc", 0.0, |a, b| a + b);
    let (mc, sc) = (m.clone(), s.clone());
    let c = Container::compute("boom", space, move |ldr| {
        let w = ldr.write(&mc);
        let acc = ldr.reduce(&sc);
        Box::new(move |cell: Cell| {
            acc.update(|a| a + 1.0);
            if cell.idx() == 3 {
                panic!("injected kernel failure");
            }
            w.set(cell.idx(), 0.0);
        })
    });
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run_device(DeviceId(0), DataView::Standard)
    }));
    assert!(err.is_err());
    // Both the field partition and the scalar partial are free again.
    assert!(m.tracker(DeviceId(0)).is_free());
    let v = s.view(DeviceId(0)); // would panic if the lease leaked
    drop(v);
}

#[test]
fn virtual_storage_launch_panics_with_message() {
    let b = Backend::dgx_a100(1);
    let space = Arc::new(Line { len: 8, devs: 1 }) as Arc<dyn IterationSpace>;
    let m = MemSet::<f64>::new(&b, "virt", &[8], StorageMode::Virtual).unwrap();
    let mc = m.clone();
    let c = Container::compute("k", space, move |ldr| {
        let w = ldr.write(&mc);
        Box::new(move |cell: Cell| w.set(cell.idx(), 1.0))
    });
    // Virtual MemSet hands out null views; the write is then out of
    // bounds — loud failure rather than silent no-op.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run_device(DeviceId(0), DataView::Standard)
    }));
    assert!(err.is_err());
}

#[test]
fn reduce_without_finalize_leaves_host_value_stale() {
    // Documented lifecycle: partials are only folded by reduce_finalize.
    let (_, space, m) = setup();
    m.from_host(&[1.0; 16]);
    let s = ScalarSet::<f64>::new(2, "sum", 0.0, |a, b| a + b);
    let (mc, sc) = (m.clone(), s.clone());
    let c = Container::compute("sum", space, move |ldr| {
        let r = ldr.read(&mc);
        let acc = ldr.reduce(&sc);
        Box::new(move |cell: Cell| acc.update(|a| a + r.get(cell.idx())))
    });
    s.set_host(-7.0);
    c.reduce_init();
    c.run_device(DeviceId(0), DataView::Standard);
    c.run_device(DeviceId(1), DataView::Standard);
    assert_eq!(s.host_value(), -7.0, "host value untouched before finalize");
    c.reduce_finalize();
    assert_eq!(s.host_value(), 16.0);
}

#[test]
fn manual_runtime_functional_matches_container_direct() {
    let (b, space, m) = setup();
    let mc = m.clone();
    let c = Container::compute("inc", space, move |ldr| {
        let w = ldr.read_write(&mc);
        Box::new(move |cell: Cell| w.set(cell.idx(), w.get(cell.idx()) + 1.0))
    });
    let mut rt = ManualRuntime::new(&b, 1);
    let s0 = rt.stream_set(0);
    rt.launch(&c, DataView::Standard, s0);
    rt.launch(&c, DataView::Standard, s0);
    assert_eq!(m.to_host(), vec![2.0; 16]);
}

#[test]
fn host_container_never_touches_devices() {
    let s = ScalarSet::<f64>::new(4, "x", 0.0, |a, b| a + b);
    let sc = s.clone();
    let c = Container::host("set-x", 4, move |ldr| {
        let w = ldr.scalar_writer(&sc);
        Box::new(move || w.set(9.0))
    });
    assert!(c.space().is_none());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run_device(DeviceId(0), DataView::Standard)
    }));
    assert!(err.is_err(), "run_device on a host container must panic");
    c.run_host();
    assert_eq!(s.host_value(), 9.0);
}

#[test]
fn zero_cell_views_launch_as_noops() {
    // A 1-device line has no boundary cells in our Line fixture? It does
    // (first/last), so use Internal on a minimal line instead: len 2 →
    // internal is empty.
    let b = Backend::dgx_a100(1);
    let space = Arc::new(Line { len: 2, devs: 1 }) as Arc<dyn IterationSpace>;
    let m = MemSet::<f64>::new(&b, "m", &[2], StorageMode::Real).unwrap();
    let mc = m.clone();
    let c = Container::compute("noop", space, move |ldr| {
        let w = ldr.write(&mc);
        Box::new(move |cell: Cell| w.set(cell.idx(), 5.0))
    });
    c.run_device(DeviceId(0), DataView::Internal);
    assert_eq!(m.to_host(), vec![0.0, 0.0], "internal view is empty");
    c.run_device(DeviceId(0), DataView::Boundary);
    assert_eq!(m.to_host(), vec![5.0, 5.0]);
}
