//! The plan cache seen from an application: constructing the same solver
//! twice compiles the pipeline once, and the second solver's skeletons
//! share the first one's schedule by pointer.

use std::sync::Arc;

use neon_apps::PoissonSolver;
use neon_core::{plan_cache_stats, OccLevel};
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_sys::Backend;

fn build(n: usize) -> PoissonSolver<DenseGrid> {
    // 5 devices: a backend shape no other test in this binary uses, so
    // the first build is a guaranteed cache miss.
    let b = Backend::dgx_a100(5);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::cube(n), &[&st], StorageMode::Virtual).unwrap();
    PoissonSolver::new(&g, OccLevel::TwoWayExtended).unwrap()
}

#[test]
fn same_solver_built_twice_compiles_once() {
    let before = plan_cache_stats();
    let mut first = build(40);
    let mid = plan_cache_stats();
    let mut second = build(40);
    let after = plan_cache_stats();

    // Build #1: both skeletons (init + iteration) compiled fresh.
    let s1 = first.cg.compile_stats();
    assert!(!s1.init_from_cache && !s1.iter_from_cache);
    assert_eq!(mid.misses - before.misses, 2);

    // Build #2: both rebound from the cache, zero compile work.
    let s2 = second.cg.compile_stats();
    assert!(s2.init_from_cache && s2.iter_from_cache);
    assert_eq!(after.hits - mid.hits, 2);
    assert_eq!(after.misses, mid.misses);
    assert_eq!(s2.compile_time.as_us(), 0.0);

    // The shared schedule is literally the same allocation.
    let sched1 = Arc::clone(first.cg.iteration_skeleton().plan().schedule_arc());
    let sched2 = Arc::clone(second.cg.iteration_skeleton().plan().schedule_arc());
    assert!(
        Arc::ptr_eq(&sched1, &sched2),
        "rebound plan must share the compiled schedule"
    );

    // A different grid size is the same structural key — still a hit.
    let mut third = build(56);
    assert!(third.cg.compile_stats().iter_from_cache);
    let sched3 = Arc::clone(third.cg.iteration_skeleton().plan().schedule_arc());
    assert!(Arc::ptr_eq(&sched1, &sched3));
}
