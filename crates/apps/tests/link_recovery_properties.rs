//! Property tests of the link fault domain's permanent tier: a link
//! loss or bandwidth degrade at a random iteration, between random
//! endpoints, on 2- or 4-device fleets, heals through the
//! abort → invalidate → recompile-on-degraded-topology → resume path
//! and leaves the *entire* residual history bit-identical to a
//! fault-free run. Unlike device eviction (which changes the partition
//! and therefore the floating-point association of the suffix), every
//! device survives a link fault — so full bit-transparency is the
//! contract, not just prefix equality.

use neon_apps::ResilientPoisson;
use neon_core::{FaultPlan, OccLevel, ResilienceOptions, SkeletonOptions};
use neon_domain::Dim3;
use neon_sys::{Backend, DeviceId};
use proptest::prelude::*;

fn options() -> SkeletonOptions {
    SkeletonOptions {
        resilience: ResilienceOptions {
            enabled: true,
            checkpoint_interval: 3,
            ..ResilienceOptions::default()
        },
        ..SkeletonOptions::with_occ(OccLevel::Standard)
    }
}

fn rhs(x: i32, y: i32, z: i32) -> f64 {
    ((x * 3 + y * 5 + z * 7) % 11) as f64 - 5.0
}

/// Residual trajectory of a run with `plan` installed, plus the repair
/// and eviction counters at the end.
fn history(ndev: usize, iters: usize, plan: Option<FaultPlan>) -> (Vec<u64>, u64, u64) {
    let mut s = ResilientPoisson::new(&Backend::dgx_a100(ndev), Dim3::new(8, 8, 12), options())
        .expect("solver builds on a healthy fleet");
    s.set_rhs(rhs);
    if let Some(p) = plan {
        s.install_fault_plan(p);
    }
    let mut hist = Vec::new();
    for _ in 0..iters {
        s.iterate(1).expect("link faults must heal");
        hist.push(s.residual().to_bits());
    }
    assert_eq!(s.backend().num_devices(), ndev, "no device may be evicted");
    (hist, s.link_repairs(), s.evictions())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random permanent link events × endpoints × fault iterations ×
    /// fleet sizes: recovery is fully bit-transparent.
    #[test]
    fn permanent_link_faults_heal_bit_identically(
        ndev_idx in 0usize..2,
        sever in any::<bool>(),
        src in any::<usize>(),
        dst in any::<usize>(),
        factor_i in 1u32..=3,
        at in 1u64..8,
    ) {
        let ndev = [2usize, 4][ndev_idx];
        let (a, b) = (src % ndev, dst % ndev);
        prop_assume!(a != b);
        let (a, b) = (DeviceId(a.min(b)), DeviceId(a.max(b)));
        let iters = 9usize;

        let plan = if sever {
            FaultPlan::none().with_link_loss(at, a, b)
        } else {
            FaultPlan::none().with_link_degrade(at, a, b, factor_i as f64 * 0.25)
        };
        let (clean, no_repairs, _) = history(ndev, iters, None);
        prop_assert_eq!(no_repairs, 0);
        let (faulted, repairs, evictions) = history(ndev, iters, Some(plan));
        prop_assert_eq!(repairs, 1, "exactly one repair for one event");
        prop_assert_eq!(evictions, 0, "link faults never evict devices");
        prop_assert_eq!(
            faulted, clean,
            "{} of {:?}↔{:?} at iteration {} on {} devices leaked into the numerics",
            if sever { "loss" } else { "degrade" }, a, b, at, ndev
        );
    }
}
