//! # neon-apps — the paper's evaluation applications
//!
//! Real-world workloads from the Neon paper's §VI, all written against the
//! public Neon programming model (containers + skeletons) and all
//! grid-generic where the paper exercises that freedom:
//!
//! * [`lbm`] — Lattice-Boltzmann fluid solvers: the D3Q19 *twoPop*
//!   lid-driven cavity (Table II, Fig. 7) and the 2-D Kármán vortex
//!   street on D2Q9 (Table I), plus the comparator baselines (cuboltz,
//!   stlbm variants, Taichi-style) as analytic models under the same
//!   device model, and a plain host reference implementation used to
//!   verify the numerics.
//! * [`poisson`] — finite-difference Poisson solver: 7-point stencil +
//!   matrix-free CG (Fig. 8), with a CUDA+cuBLAS-style baseline.
//! * [`fem`] — matrix-free finite-element linear elasticity: hexahedral
//!   H8 elements, 27-point stencil, CG, dense vs element-sparse grids
//!   (Fig. 9).
//! * [`cg`] — the shared conjugate-gradient skeleton builder
//!   (paper Listing 3).
//! * [`jacobi`] — a weighted-Jacobi Poisson solver exercising the
//!   ping-pong iteration pattern (and a convergence baseline for CG).
//! * [`heat`] — explicit heat diffusion with an analytic eigenmode-decay
//!   validation of the full stack.

// Numeric kernels index several arrays by one loop variable (lattice
// directions, stiffness rows); iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod fem;
pub mod heat;
pub mod jacobi;
pub mod job;
pub mod lbm;
pub mod poisson;
pub mod resilient;

pub use cg::{CgSolver, CgState, CompileStats};
pub use heat::HeatSolver;
pub use jacobi::JacobiSolver;
pub use job::{JobSpec, LbmJob, PoissonJob, SolverJob};
pub use poisson::PoissonSolver;
pub use resilient::{RecoveryReport, ResilientPoisson};
