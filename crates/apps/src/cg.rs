//! A matrix-free conjugate-gradient solver built from Neon containers
//! (paper Listing 3).
//!
//! The iteration is expressed as a *sequential* container list; the
//! Skeleton discovers the parallelism. Following the paper (§VI-B), the
//! direction update `p ← r + β·p` is placed at the *start* of the
//! iteration, immediately before the stencil, which is what enables the
//! Two-way Extended OCC optimization without changing the numerics.
//!
//! One iteration (given `rs_old = r·r` from initialization):
//!
//! ```text
//! p    ← β·p              (map)
//! p    ← r + p            (map)
//! Ap   ← A·p              (stencil, user-supplied operator)
//! pAp  ← p·Ap             (reduce)
//! α    ← rs_old / pAp     (host)
//! x    ← x + α·p          (map)
//! r    ← r − α·Ap         (map)
//! rs   ← r·r              (reduce)
//! β    ← rs / rs_old; rs_old ← rs   (host)
//! ```

use neon_core::{
    ExecError, ExecReport, FaultPlan, FaultStats, OccLevel, ResilientError, ResilientRun, Skeleton,
    SkeletonOptions,
};
use neon_domain::{ops, Container, Field, GridLike, MemLayout, ScalarSet};
use neon_sys::{Result, SimTime};

/// Compile statistics of a solver's skeletons (see
/// [`neon_core::plan`] for the plan cache these reflect).
#[derive(Debug, Clone, Copy)]
pub struct CompileStats {
    /// Whether the init skeleton's plan was rebound from the plan cache.
    pub init_from_cache: bool,
    /// Whether the iteration skeleton's plan was rebound from the cache.
    pub iter_from_cache: bool,
    /// Total compile wall-clock time across both skeletons (zero when
    /// both were cache hits).
    pub compile_time: SimTime,
}

/// The state of a CG solve: fields and scalars.
pub struct CgState<G: GridLike> {
    /// Solution iterate.
    pub x: Field<f64, G>,
    /// Right-hand side.
    pub b: Field<f64, G>,
    /// Residual.
    pub r: Field<f64, G>,
    /// Search direction.
    pub p: Field<f64, G>,
    /// Operator application `A·p`.
    pub ap: Field<f64, G>,
    /// `r·r` of the previous iteration.
    pub rs_old: ScalarSet<f64>,
    /// `r·r` of the current iteration.
    pub rs_new: ScalarSet<f64>,
    /// `p·Ap`.
    pub p_ap: ScalarSet<f64>,
    /// Step length.
    pub alpha: ScalarSet<f64>,
    /// Direction update coefficient.
    pub beta: ScalarSet<f64>,
}

impl<G: GridLike> CgState<G> {
    /// Allocate all CG fields (cardinality `card`) and scalars on `grid`.
    pub fn new(grid: &G, card: usize, layout: MemLayout) -> Result<Self> {
        let n = grid.num_partitions();
        Ok(CgState {
            x: Field::new(grid, "x", card, 0.0, layout)?,
            b: Field::new(grid, "b", card, 0.0, layout)?,
            r: Field::new(grid, "r", card, 0.0, layout)?,
            p: Field::new(grid, "p", card, 0.0, layout)?,
            ap: Field::new(grid, "Ap", card, 0.0, layout)?,
            rs_old: ScalarSet::<f64>::new(n, "rs_old", 0.0, |a, b| a + b),
            rs_new: ScalarSet::<f64>::new(n, "rs_new", 0.0, |a, b| a + b),
            p_ap: ScalarSet::<f64>::new(n, "pAp", 0.0, |a, b| a + b),
            alpha: ScalarSet::<f64>::new(n, "alpha", 0.0, |a, b| a + b),
            beta: ScalarSet::<f64>::new(n, "beta", 0.0, |a, b| a + b),
        })
    }

    /// Current residual norm ‖r‖₂ (valid after at least one iteration).
    pub fn residual_norm(&self) -> f64 {
        self.rs_old.host_value().max(0.0).sqrt()
    }
}

/// The containers of one CG iteration, given the operator container
/// `apply` (which must read `state.p` with a stencil and write `state.ap`).
pub fn cg_iteration<G: GridLike>(grid: &G, state: &CgState<G>, apply: Container) -> Vec<Container> {
    let n = grid.num_partitions();
    let host_alpha = {
        let (rs, pap, alpha) = (
            state.rs_old.clone(),
            state.p_ap.clone(),
            state.alpha.clone(),
        );
        Container::host("alpha", n, move |ldr| {
            let rsr = ldr.scalar_reader(&rs);
            let papr = ldr.scalar_reader(&pap);
            let aw = ldr.scalar_writer(&alpha);
            Box::new(move || {
                let denom = papr.get();
                aw.set(if denom != 0.0 { rsr.get() / denom } else { 0.0 });
            })
        })
    };
    let host_beta = {
        let (rs_new, rs_old, beta) = (
            state.rs_new.clone(),
            state.rs_old.clone(),
            state.beta.clone(),
        );
        Container::host("beta", n, move |ldr| {
            let newr = ldr.scalar_reader(&rs_new);
            let oldr = ldr.scalar_reader(&rs_old);
            let bw = ldr.scalar_writer(&beta);
            let ow = ldr.scalar_writer(&rs_old);
            Box::new(move || {
                let old = oldr.get();
                let new = newr.get();
                bw.set(if old != 0.0 { new / old } else { 0.0 });
                ow.set(new);
            })
        })
    };
    // `p ← r + β·p` is expressed as scale-then-add rather than one
    // three-operand map: `fl(1·r + fl(β·p))` is bitwise what the single
    // map computed, the two cell-local maps fuse back into one sweep under
    // the fuse pass, and keeping them separate lets the unfused baseline
    // meter the true per-container traffic.
    vec![
        ops::scale_scalar(grid, &state.beta, &state.p),
        ops::axpy_const(grid, 1.0, &state.r, &state.p),
        apply,
        ops::dot(grid, &state.p, &state.ap, &state.p_ap),
        host_alpha,
        ops::axpy_scalar(grid, &state.alpha, 1.0, &state.p, &state.x),
        ops::axpy_scalar(grid, &state.alpha, -1.0, &state.ap, &state.r),
        ops::dot(grid, &state.r, &state.r, &state.rs_new),
        host_beta,
    ]
}

/// Initialization containers: `x ← 0`, `r ← b`, `p ← 0`, `rs_old ← r·r`,
/// `β ← 0`.
pub fn cg_init<G: GridLike>(grid: &G, state: &CgState<G>) -> Vec<Container> {
    let n = grid.num_partitions();
    let host_zero_beta = {
        let beta = state.beta.clone();
        Container::host("beta=0", n, move |ldr| {
            let bw = ldr.scalar_writer(&beta);
            Box::new(move || bw.set(0.0))
        })
    };
    vec![
        ops::set_value(grid, &state.x, 0.0),
        ops::set_value(grid, &state.p, 0.0),
        ops::copy(grid, &state.b, &state.r),
        ops::dot(grid, &state.r, &state.r, &state.rs_old),
        host_zero_beta,
    ]
}

/// A complete CG solver: init + iteration skeletons with a chosen OCC
/// level.
pub struct CgSolver<G: GridLike> {
    /// The solver's state fields/scalars.
    pub state: CgState<G>,
    init: Skeleton,
    iter: Skeleton,
}

impl<G: GridLike> CgSolver<G> {
    /// The field layout a [`neon_core::LayoutPolicy`] recommends for this
    /// solver's access pattern: the direction field `p` is stencil-read
    /// (with live halos whenever the grid spans more than one partition),
    /// so the policy's vector-stencil rule applies at cardinality > 1.
    /// Callers that let the skeleton pick layouts pass the result to
    /// [`CgSolver::new`] / [`CgSolver::with_options`] — and must use the
    /// same policy in their [`SkeletonOptions`] so the plan-cache key
    /// matches the allocation decision.
    pub fn layout_for(policy: neon_core::LayoutPolicy, grid: &G, card: usize) -> MemLayout {
        neon_core::recommend_layout(
            policy,
            neon_core::AccessSummary {
                card,
                stencil: true,
                live_halo: grid.num_partitions() > 1,
            },
        )
        .0
    }

    /// Build a solver for operator `apply` (created from `state` by the
    /// caller via `make_apply(&state)`).
    pub fn new(
        grid: &G,
        card: usize,
        layout: MemLayout,
        occ: OccLevel,
        make_apply: impl FnOnce(&CgState<G>) -> Container,
    ) -> Result<Self> {
        Self::with_options(
            grid,
            card,
            layout,
            SkeletonOptions::with_occ(occ),
            make_apply,
        )
    }

    /// Build a solver with full skeleton options — in particular the
    /// collective mode, which decides how the two dot-product reductions
    /// per iteration (`p·Ap` and `r·r`) are combined across devices (ring
    /// / tree all-reduce vs the host-staged baseline).
    pub fn with_options(
        grid: &G,
        card: usize,
        layout: MemLayout,
        options: SkeletonOptions,
        make_apply: impl FnOnce(&CgState<G>) -> Container,
    ) -> Result<Self> {
        let state = CgState::new(grid, card, layout)?;
        let apply = make_apply(&state);
        let backend = grid.backend().clone();
        // Init runs once; it inherits the collective mode (its rs_old
        // reduction is also lowered) but needs no OCC.
        let init_options = SkeletonOptions {
            occ: OccLevel::None,
            ..options
        };
        let init = Skeleton::sequence(&backend, "cg-init", cg_init(grid, &state), init_options);
        let iter = Skeleton::sequence(
            &backend,
            "cg-iter",
            cg_iteration(grid, &state, apply),
            options,
        );
        Ok(CgSolver { state, init, iter })
    }

    /// Run initialization (after the caller filled `state.b`).
    pub fn init(&mut self) -> ExecReport {
        self.init.run()
    }

    /// Run `n` CG iterations, returning the aggregated timing report.
    pub fn iterate(&mut self, n: usize) -> ExecReport {
        self.iter.run_iters(n)
    }

    /// Fallible variant of [`CgSolver::iterate`]: stops at the first
    /// iteration that fails with a structured error instead of panicking.
    pub fn try_iterate(&mut self, n: usize) -> std::result::Result<ExecReport, ExecError> {
        let mut report = ExecReport::default();
        for _ in 0..n {
            report.accumulate(self.iter.try_run()?);
        }
        Ok(report)
    }

    /// Run iterations `start .. start + n` of the CG loop with periodic
    /// checkpoints and automatic rollback (see
    /// [`Skeleton::run_iters_resilient`]).
    pub fn iterate_resilient(
        &mut self,
        start: u64,
        n: usize,
    ) -> std::result::Result<ResilientRun, Box<ResilientError>> {
        self.iter.run_iters_resilient(start, n)
    }

    /// Install a fault plan on the iteration skeleton; the retry policy is
    /// derived from the skeleton's [`neon_core::ResilienceOptions`].
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.iter.install_fault_plan(plan);
    }

    /// Fault statistics of the iteration skeleton.
    pub fn fault_stats(&self) -> FaultStats {
        self.iter.fault_stats()
    }

    /// Reset the cumulative hardware counters of both skeletons (between
    /// benchmark sweep points). Global — prefer
    /// [`CgSolver::counters_snapshot`] when other jobs share the process.
    pub fn reset_counters(&mut self) {
        self.init.reset_counters();
        self.iter.reset_counters();
    }

    /// Snapshot the cumulative utilization counters of both skeletons
    /// (init + iteration), summed. Subtract two snapshots to attribute a
    /// window of work to its tenant without a global reset.
    pub fn counters_snapshot(&self) -> neon_sys::CounterSnapshot {
        let mut total = self.init.counters_snapshot();
        total.accumulate(&self.iter.counters_snapshot());
        total
    }

    /// Current residual norm.
    pub fn residual(&self) -> f64 {
        self.state.residual_norm()
    }

    /// The iteration skeleton (for graph introspection and traces).
    pub fn iteration_skeleton(&mut self) -> &mut Skeleton {
        &mut self.iter
    }

    /// The compiled plan of the iteration skeleton. The serving layer's
    /// tests compare `plan().schedule_arc()` pointers across tenants to
    /// prove plan-cache sharing.
    pub fn iteration_plan(&self) -> &std::sync::Arc<neon_core::CompiledPlan> {
        self.iter.plan()
    }

    /// Capture a checkpoint of the iteration skeleton's write set at
    /// logical iteration `iteration` (see [`Skeleton::capture_checkpoint`]).
    pub fn capture_checkpoint(&self, iteration: u64) -> neon_set::Checkpoint {
        self.iter.capture_checkpoint(iteration)
    }

    /// Compile statistics: cache hits and compile wall-clock time. A
    /// second structurally identical solver (same grid shape class,
    /// backend and options) reports `iter_from_cache == true` and zero
    /// compile time — the pipeline ran once, process-wide.
    pub fn compile_stats(&self) -> CompileStats {
        CompileStats {
            init_from_cache: self.init.compiled_from_cache(),
            iter_from_cache: self.iter.compiled_from_cache(),
            compile_time: self.init.compile_time() + self.iter.compile_time(),
        }
    }
}
