//! Comparator baselines for the LBM benchmarks (paper Tables I & II).
//!
//! The paper compares Neon against external systems we cannot run:
//! `cuboltz` (a native CUDA LBM benchmark), the three `stlbm` variants
//! built on C++17 parallel algorithms (Latt et al.), and Taichi's JIT
//! kernels. Per the reproduction's substitution rule these are modelled
//! *analytically under the same device model* Neon's own kernels are
//! timed with: each variant is characterized by its memory traffic per
//! lattice site, its achieved-bandwidth fraction and its per-iteration
//! dispatch overhead, taken from the implementations' published
//! descriptions and calibrated to the A100-class numbers the stlbm paper
//! reports. What the reproduction claims is the *ranking and relative
//! gaps*, not absolute MLUPS.

use neon_sys::{DeviceModel, SimTime};

/// An analytically-modelled single-GPU LBM implementation.
#[derive(Debug, Clone)]
pub struct AnalyticLbm {
    /// Implementation name as used in the paper's tables.
    pub name: &'static str,
    /// Bytes moved per lattice-site update (reads + writes).
    pub bytes_per_cell: u64,
    /// FLOPs per site update.
    pub flops_per_cell: u64,
    /// Achieved fraction of the device's effective bandwidth.
    pub bw_efficiency: f64,
    /// Kernel launches per iteration.
    pub launches_per_iter: u64,
    /// Fixed host-side dispatch overhead per iteration, in µs (JIT
    /// frameworks pay more here).
    pub dispatch_overhead_us: f64,
}

impl AnalyticLbm {
    /// Virtual time of one iteration over `cells` lattice sites.
    pub fn time_per_iter(&self, device: &DeviceModel, cells: u64) -> SimTime {
        let mut t = SimTime::from_us(self.dispatch_overhead_us);
        // One roofline kernel per launch; traffic is split across them.
        let bytes = cells * self.bytes_per_cell / self.launches_per_iter.max(1);
        let flops = cells * self.flops_per_cell / self.launches_per_iter.max(1);
        for _ in 0..self.launches_per_iter {
            t += device.kernel_time(bytes, flops, self.bw_efficiency);
        }
        t
    }

    /// Million lattice-site updates per second on `device`.
    pub fn mlups(&self, device: &DeviceModel, cells: u64) -> f64 {
        super::mlups(cells, 1, self.time_per_iter(device, cells).as_us())
    }

    /// `cuboltz` — the native CUDA D3Q19 benchmark the paper uses as the
    /// single-GPU reference (Table II). Hand-tuned: best-in-class
    /// achieved bandwidth, one fused kernel.
    pub fn cuboltz() -> Self {
        AnalyticLbm {
            name: "cuboltz (CUDA)",
            bytes_per_cell: 19 * 2 * 8,
            flops_per_cell: 350,
            bw_efficiency: 0.80,
            launches_per_iter: 1,
            dispatch_overhead_us: 4.0,
        }
    }

    /// `stlbm` twoPop — C++17 parallel algorithms, two populations.
    /// CPA's generic iteration machinery costs achieved bandwidth
    /// relative to the hand-tuned kernel (stlbm paper, §results).
    pub fn stlbm_two_pop() -> Self {
        AnalyticLbm {
            name: "stlbm twoPop (CPA)",
            bytes_per_cell: 19 * 2 * 8,
            flops_per_cell: 350,
            bw_efficiency: 0.70,
            launches_per_iter: 1,
            dispatch_overhead_us: 5.0,
        }
    }

    /// `stlbm` AA — the in-place AA access pattern: same traffic, half the
    /// memory footprint, slightly better locality than CPA twoPop but
    /// still below the hand-tuned kernel.
    pub fn stlbm_aa() -> Self {
        AnalyticLbm {
            name: "stlbm AA (CPA)",
            bytes_per_cell: 19 * 2 * 8,
            flops_per_cell: 350,
            bw_efficiency: 0.74,
            launches_per_iter: 2, // AA alternates even/odd kernels
            dispatch_overhead_us: 5.0,
        }
    }

    /// `stlbm` swap — neighbour-swap streaming: extra exchange traffic.
    pub fn stlbm_swap() -> Self {
        AnalyticLbm {
            name: "stlbm swap (CPA)",
            bytes_per_cell: 19 * 3 * 8, // swap touches populations twice
            flops_per_cell: 350,
            bw_efficiency: 0.66,
            launches_per_iter: 2,
            dispatch_overhead_us: 5.0,
        }
    }

    /// Taichi — JIT-compiled D2Q9 kernels (Table I). Kernel quality
    /// matches native code at scale, but the Python-driven dispatch adds
    /// a fixed per-iteration cost that dominates small domains — which is
    /// exactly the shape of the paper's Table I (Neon 1.14× at 4096×1024,
    /// parity at larger sizes).
    pub fn taichi_d2q9() -> Self {
        AnalyticLbm {
            name: "Taichi (JIT)",
            bytes_per_cell: 9 * 2 * 8,
            flops_per_cell: 160,
            bw_efficiency: 0.80,
            launches_per_iter: 1,
            dispatch_overhead_us: 80.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> DeviceModel {
        DeviceModel::a100_40gb()
    }

    #[test]
    fn cuboltz_mlups_in_a100_ballpark() {
        // ~0.8 × 1555 GB/s over 304 B/cell ≈ 4000 MLUPS.
        let m = AnalyticLbm::cuboltz().mlups(&a100(), 256 * 256 * 256);
        assert!(m > 3500.0 && m < 4500.0, "cuboltz model off: {m}");
    }

    #[test]
    fn table2_ranking_holds() {
        let cells = 256 * 256 * 256;
        let d = a100();
        let cuboltz = AnalyticLbm::cuboltz().mlups(&d, cells);
        let aa = AnalyticLbm::stlbm_aa().mlups(&d, cells);
        let two_pop = AnalyticLbm::stlbm_two_pop().mlups(&d, cells);
        let swap = AnalyticLbm::stlbm_swap().mlups(&d, cells);
        assert!(cuboltz > aa && aa > two_pop && two_pop > swap);
    }

    #[test]
    fn taichi_overhead_hurts_small_domains_only() {
        let d = a100();
        let t = AnalyticLbm::taichi_d2q9();
        let small = t.mlups(&d, 4096 * 1024);
        let large = t.mlups(&d, 32768 * 8192);
        // The fixed dispatch cost suppresses small-domain throughput.
        assert!(large > small * 1.05, "small {small}, large {large}");
    }

    #[test]
    fn launches_split_traffic_not_duplicate_it() {
        let d = a100();
        let one = AnalyticLbm {
            launches_per_iter: 1,
            ..AnalyticLbm::cuboltz()
        };
        let two = AnalyticLbm {
            launches_per_iter: 2,
            ..AnalyticLbm::cuboltz()
        };
        let cells = 1 << 24;
        let t1 = one.time_per_iter(&d, cells).as_us();
        let t2 = two.time_per_iter(&d, cells).as_us();
        // Two launches pay one extra launch overhead, nothing more.
        assert!((t2 - t1 - d.kernel_launch_us).abs() < 1e-9);
    }
}
