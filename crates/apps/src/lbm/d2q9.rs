//! 2-D Kármán vortex street on the D2Q9 lattice (paper Table I).
//!
//! Flow past a circular cylinder: equilibrium inflow on the left edge,
//! equilibrium outflow on the right, half-way bounce-back on the cylinder
//! and the top/bottom walls. The paper uses this benchmark to compare
//! Neon's single-GPU performance against Taichi's JIT-compiled kernels
//! over domain sizes 4096×1024 … 32768×8192.
//!
//! The domain is `nx × ny × 1`; since the z-extent is one layer, the app
//! requires a single-device backend (the paper's Table I is a single-GPU
//! comparison).

use neon_core::{ExecReport, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, Field, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike, KernelFn,
    KernelShape, MemLayout,
};
use neon_sys::Result;

use super::d3q19::NEON_LBM_EFFICIENCY;

/// D2Q9 weights in [`neon_domain::d2q9_offsets`] slot order.
pub const D2Q9_WEIGHTS: [f64; 9] = {
    const W0: f64 = 4.0 / 9.0;
    const WA: f64 = 1.0 / 9.0;
    const WD: f64 = 1.0 / 36.0;
    [W0, WA, WA, WA, WA, WD, WD, WD, WD]
};

/// Opposite-direction table for the D2Q9 slot order.
pub const D2Q9_OPPOSITE: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// FLOPs per site update of the fused D2Q9 kernel.
pub const D2Q9_FLOPS_PER_CELL: u64 = 160;

/// BGK equilibrium population for direction `q` (D2Q9).
#[inline]
pub fn equilibrium_d2q9(q: usize, rho: f64, ux: f64, uy: f64) -> f64 {
    let o = neon_domain::d2q9_offsets()[q];
    let cu = o.dx as f64 * ux + o.dy as f64 * uy;
    let usq = ux * ux + uy * uy;
    D2Q9_WEIGHTS[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq)
}

/// Geometry and physics of the Kármán benchmark.
#[derive(Debug, Clone, Copy)]
pub struct KarmanParams {
    /// BGK relaxation rate.
    pub omega: f64,
    /// Inflow velocity along +x.
    pub u_in: f64,
    /// Cylinder centre (x, y).
    pub centre: (f64, f64),
    /// Cylinder radius.
    pub radius: f64,
}

impl KarmanParams {
    /// The conventional setup for an `nx × ny` channel: cylinder at
    /// (nx/5, ny/2), radius ny/9.
    pub fn for_domain(nx: usize, ny: usize) -> Self {
        KarmanParams {
            omega: 1.6,
            u_in: 0.08,
            centre: (nx as f64 / 5.0, ny as f64 / 2.0),
            radius: ny as f64 / 9.0,
        }
    }

    /// Whether `(x, y)` lies inside the cylinder.
    #[inline]
    pub fn in_cylinder(&self, x: i32, y: i32) -> bool {
        let dx = x as f64 + 0.5 - self.centre.0;
        let dy = y as f64 + 0.5 - self.centre.1;
        dx * dx + dy * dy <= self.radius * self.radius
    }
}

/// Fused D2Q9 collide-and-stream with cylinder/channel boundaries.
pub fn karman_step<G: GridLike>(
    grid: &G,
    f_in: &Field<f64, G>,
    f_out: &Field<f64, G>,
    params: KarmanParams,
) -> Container {
    assert_eq!(f_in.card(), 9);
    let dim = grid.dim();
    let (fi, fo) = (f_in.clone(), f_out.clone());
    let name = format!("karman({}->{})", f_in.name(), f_out.name());
    // Chunked Generic kernel — see the D3Q19 twin for the rationale.
    Container::compute_shaped_opts(
        &name,
        grid.as_space(),
        KernelShape::Generic,
        move |ldr| {
            let fin = ldr.read_stencil(&fi);
            let fout = ldr.write(&fo);
            let per_cell = move |c: Cell| {
                // Solid cells relax to rest equilibrium (they are masked
                // out of the flow by bounce-back at their fluid faces).
                if params.in_cylinder(c.x, c.y) {
                    for q in 0..9 {
                        fout.set(c, q, D2Q9_WEIGHTS[q]);
                    }
                    return;
                }
                let mut f = [0.0f64; 9];
                for q in 0..9 {
                    let qb = D2Q9_OPPOSITE[q];
                    let o = neon_domain::d2q9_offsets()[qb];
                    let (sx, sy) = (c.x + o.dx, c.y + o.dy);
                    if sx < 0 || sx >= dim.x as i32 {
                        // Inflow/outflow: impose the free-stream
                        // equilibrium.
                        f[q] = equilibrium_d2q9(q, 1.0, params.u_in, 0.0);
                    } else if sy < 0 || sy >= dim.y as i32 || params.in_cylinder(sx, sy) {
                        // Wall or cylinder: half-way bounce-back.
                        f[q] = fin.at(c, qb);
                    } else {
                        f[q] = fin.ngh(c, qb, q);
                    }
                }
                let mut rho = 0.0;
                let (mut jx, mut jy) = (0.0, 0.0);
                for q in 0..9 {
                    rho += f[q];
                    let o = neon_domain::d2q9_offsets()[q];
                    jx += o.dx as f64 * f[q];
                    jy += o.dy as f64 * f[q];
                }
                let (ux, uy) = (jx / rho, jy / rho);
                for q in 0..9 {
                    let feq = equilibrium_d2q9(q, rho, ux, uy);
                    fout.set(c, q, f[q] + params.omega * (feq - f[q]));
                }
            };
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    per_cell(c);
                }
            })
        },
        D2Q9_FLOPS_PER_CELL,
        NEON_LBM_EFFICIENCY,
    )
}

/// The Kármán vortex street application (twoPop swap, single device).
pub struct KarmanVortex<G: GridLike> {
    grid: G,
    f: [Field<f64, G>; 2],
    params: KarmanParams,
    skeletons: [Skeleton; 2],
    step: usize,
}

impl<G: GridLike> KarmanVortex<G> {
    /// Build on a `nx × ny × 1` grid constructed with the D2Q9 stencil.
    pub fn new(grid: &G, params: KarmanParams, occ: OccLevel) -> Result<Self> {
        assert_eq!(grid.dim().z, 1, "Kármán benchmark is two-dimensional");
        assert_eq!(
            grid.num_partitions(),
            1,
            "Table I is a single-GPU comparison; use one device"
        );
        let f0 = Field::<f64, G>::new(grid, "g0", 9, 0.0, MemLayout::SoA)?;
        let f1 = Field::<f64, G>::new(grid, "g1", 9, 0.0, MemLayout::SoA)?;
        let backend = grid.backend().clone();
        let even = Skeleton::sequence(
            &backend,
            "karman-even",
            vec![karman_step(grid, &f0, &f1, params)],
            SkeletonOptions::with_occ(occ),
        );
        let odd = Skeleton::sequence(
            &backend,
            "karman-odd",
            vec![karman_step(grid, &f1, &f0, params)],
            SkeletonOptions::with_occ(occ),
        );
        Ok(KarmanVortex {
            grid: grid.clone(),
            f: [f0, f1],
            params,
            skeletons: [even, odd],
            step: 0,
        })
    }

    /// Initialize to the free-stream equilibrium.
    pub fn init(&mut self) {
        if self.grid.storage_mode() == neon_domain::StorageMode::Real {
            let u = self.params.u_in;
            self.f[0].fill(|_, _, _, q| equilibrium_d2q9(q, 1.0, u, 0.0));
            self.f[1].fill(|_, _, _, q| equilibrium_d2q9(q, 1.0, u, 0.0));
        }
        self.step = 0;
    }

    /// Advance `n` iterations.
    pub fn step(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        for _ in 0..n {
            let r = self.skeletons[self.step % 2].run();
            total.accumulate(r);
            self.step += 1;
        }
        total
    }

    /// Velocity at a cell.
    pub fn velocity(&self, x: i32, y: i32) -> Option<(f64, f64)> {
        let f = &self.f[self.step % 2];
        let mut rho = 0.0;
        let (mut jx, mut jy) = (0.0, 0.0);
        for q in 0..9 {
            let v = f.get(x, y, 0, q)?;
            rho += v;
            let o = neon_domain::d2q9_offsets()[q];
            jx += o.dx as f64 * v;
            jy += o.dy as f64 * v;
        }
        Some((jx / rho, jy / rho))
    }

    /// The benchmark parameters.
    pub fn params(&self) -> KarmanParams {
        self.params
    }

    /// Reset the cumulative hardware counters of both ping-pong skeletons
    /// (between benchmark warm-up and measurement, or between sweep
    /// points). Global — prefer [`KarmanVortex::counters_snapshot`]
    /// deltas when anything else shares the simulators.
    pub fn reset_counters(&mut self) {
        for s in &mut self.skeletons {
            s.reset_counters();
        }
    }

    /// Summed cumulative counters of both ping-pong skeletons. Subtract
    /// two snapshots to meter a window without resetting shared state.
    pub fn counters_snapshot(&self) -> neon_sys::CounterSnapshot {
        let mut total = self.skeletons[0].counters_snapshot();
        total.accumulate(&self.skeletons[1].counters_snapshot());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
    use neon_sys::Backend;

    #[test]
    fn d2q9_weights_and_opposites() {
        assert!((D2Q9_WEIGHTS.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        let offs = neon_domain::d2q9_offsets();
        for q in 0..9 {
            assert_eq!(offs[D2Q9_OPPOSITE[q]], offs[q].opposite());
        }
    }

    #[test]
    fn equilibrium_moments_2d() {
        let (rho, ux, uy) = (0.95, 0.06, -0.01);
        let mut s = 0.0;
        let (mut jx, mut jy) = (0.0, 0.0);
        for q in 0..9 {
            let f = equilibrium_d2q9(q, rho, ux, uy);
            s += f;
            let o = neon_domain::d2q9_offsets()[q];
            jx += o.dx as f64 * f;
            jy += o.dy as f64 * f;
        }
        assert!((s - rho).abs() < 1e-12);
        assert!((jx - rho * ux).abs() < 1e-12);
        assert!((jy - rho * uy).abs() < 1e-12);
    }

    #[test]
    fn flow_develops_around_cylinder() {
        let b = Backend::dgx_a100(1);
        let st = Stencil::d2q9();
        let (nx, ny) = (60, 24);
        let g = DenseGrid::new(&b, Dim3::new(nx, ny, 1), &[&st], StorageMode::Real).unwrap();
        let params = KarmanParams::for_domain(nx, ny);
        let mut app = KarmanVortex::new(&g, params, OccLevel::None).unwrap();
        app.init();
        app.step(60);
        // Upstream of the cylinder the flow still goes +x.
        let (ux, _) = app.velocity(3, ny as i32 / 2).unwrap();
        assert!(ux > 0.01, "inflow not sustained: {ux}");
        // Inside the cylinder there's no flow.
        let (cx, cy) = params.centre;
        let (ucx, ucy) = app.velocity(cx as i32, cy as i32).unwrap();
        assert!(ucx.abs() < 1e-9 && ucy.abs() < 1e-9);
        // The wake differs from the free stream (the cylinder disturbs it).
        let (uw, _) = app
            .velocity(cx as i32 + params.radius as i32 + 2, cy as i32)
            .unwrap();
        assert!(
            (uw - ux).abs() > 1e-4,
            "wake velocity {uw} identical to upstream {ux}"
        );
        // Fields stay finite.
        assert!(ux.is_finite() && uw.is_finite());
    }

    #[test]
    fn rejects_multi_device_backends() {
        let b = Backend::dgx_a100(2);
        let st = Stencil::d2q9();
        // dim.z = 1 < 2 devices: the grid itself refuses to partition.
        let g = DenseGrid::new(&b, Dim3::new(32, 16, 1), &[&st], StorageMode::Real);
        assert!(g.is_err());
    }
}
