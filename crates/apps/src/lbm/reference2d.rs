//! Plain-Rust host reference of the D2Q9 Kármán benchmark.
//!
//! An independent implementation (flat arrays, explicit loops) of the
//! same pull-form fused kernel with cylinder/channel boundaries, used to
//! validate the Neon D2Q9 kernel cell-by-cell.

use super::d2q9::{equilibrium_d2q9, KarmanParams, D2Q9_OPPOSITE, D2Q9_WEIGHTS};

/// Host D2Q9 channel-with-cylinder simulation.
pub struct ReferenceKarman {
    /// Channel extent.
    pub nx: usize,
    /// Channel extent.
    pub ny: usize,
    params: KarmanParams,
    f: [Vec<f64>; 2],
    cur: usize,
}

impl ReferenceKarman {
    /// Create and initialize to the free-stream equilibrium.
    pub fn new(nx: usize, ny: usize, params: KarmanParams) -> Self {
        let n = nx * ny;
        let mut f0 = vec![0.0; n * 9];
        for i in 0..n {
            for q in 0..9 {
                f0[i * 9 + q] = equilibrium_d2q9(q, 1.0, params.u_in, 0.0);
            }
        }
        let f1 = f0.clone();
        ReferenceKarman {
            nx,
            ny,
            params,
            f: [f0, f1],
            cur: 0,
        }
    }

    /// Advance one iteration.
    pub fn step(&mut self) {
        let (nx, ny) = (self.nx as i32, self.ny as i32);
        let offs = neon_domain::d2q9_offsets();
        let p = self.params;
        let (src, dst) = if self.cur == 0 {
            let (a, b) = self.f.split_at_mut(1);
            (&a[0], &mut b[0])
        } else {
            let (a, b) = self.f.split_at_mut(1);
            (&b[0], &mut a[0])
        };
        for y in 0..ny {
            for x in 0..nx {
                let i = (y * nx + x) as usize;
                if p.in_cylinder(x, y) {
                    for q in 0..9 {
                        dst[i * 9 + q] = D2Q9_WEIGHTS[q];
                    }
                    continue;
                }
                let mut f = [0.0f64; 9];
                for q in 0..9 {
                    let qb = D2Q9_OPPOSITE[q];
                    let o = offs[qb];
                    let (sx, sy) = (x + o.dx, y + o.dy);
                    if sx < 0 || sx >= nx {
                        f[q] = equilibrium_d2q9(q, 1.0, p.u_in, 0.0);
                    } else if sy < 0 || sy >= ny || p.in_cylinder(sx, sy) {
                        f[q] = src[i * 9 + qb];
                    } else {
                        let si = (sy * nx + sx) as usize;
                        f[q] = src[si * 9 + q];
                    }
                }
                let mut rho = 0.0;
                let (mut jx, mut jy) = (0.0, 0.0);
                for q in 0..9 {
                    rho += f[q];
                    jx += offs[q].dx as f64 * f[q];
                    jy += offs[q].dy as f64 * f[q];
                }
                let (ux, uy) = (jx / rho, jy / rho);
                for q in 0..9 {
                    let feq = equilibrium_d2q9(q, rho, ux, uy);
                    dst[i * 9 + q] = f[q] + p.omega * (feq - f[q]);
                }
            }
        }
        self.cur ^= 1;
    }

    /// Population `q` at a cell.
    pub fn get(&self, x: usize, y: usize, q: usize) -> f64 {
        self.f[self.cur][(y * self.nx + x) * 9 + q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbm::d2q9::KarmanVortex;
    use neon_core::OccLevel;
    use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
    use neon_sys::Backend;

    #[test]
    fn neon_d2q9_matches_reference() {
        let (nx, ny) = (40, 16);
        let params = KarmanParams::for_domain(nx, ny);
        let mut reference = ReferenceKarman::new(nx, ny, params);
        for _ in 0..12 {
            reference.step();
        }

        let b = Backend::dgx_a100(1);
        let st = Stencil::d2q9();
        let g = DenseGrid::new(&b, Dim3::new(nx, ny, 1), &[&st], StorageMode::Real).unwrap();
        let mut app = KarmanVortex::new(&g, params, OccLevel::None).unwrap();
        app.init();
        app.step(12);

        // Compare populations cell-by-cell through the host API: the two
        // independently written kernels must agree to round-off.
        let f = {
            // Access the current field via velocity()? We need raw f:
            // reconstruct via macroscopic quantities instead — compare
            // velocity fields, which determine the flow.
            app
        };
        for y in 0..ny as i32 {
            for x in 0..nx as i32 {
                let (un_x, un_y) = f.velocity(x, y).unwrap();
                // Reference macroscopic velocity.
                let mut rho = 0.0;
                let (mut jx, mut jy) = (0.0, 0.0);
                for q in 0..9 {
                    let v = reference.get(x as usize, y as usize, q);
                    rho += v;
                    let o = neon_domain::d2q9_offsets()[q];
                    jx += o.dx as f64 * v;
                    jy += o.dy as f64 * v;
                }
                let (ur_x, ur_y) = (jx / rho, jy / rho);
                assert!(
                    (un_x - ur_x).abs() < 1e-12 && (un_y - ur_y).abs() < 1e-12,
                    "velocity mismatch at ({x},{y}): ({un_x},{un_y}) vs ({ur_x},{ur_y})"
                );
            }
        }
    }

    #[test]
    fn reference_stays_finite_and_subsonic() {
        let (nx, ny) = (60, 20);
        let params = KarmanParams::for_domain(nx, ny);
        let mut r = ReferenceKarman::new(nx, ny, params);
        for _ in 0..100 {
            r.step();
        }
        for y in 0..ny {
            for x in 0..nx {
                for q in 0..9 {
                    let v = r.get(x, y, q);
                    assert!(v.is_finite() && v > -0.5 && v < 2.0, "f out of range: {v}");
                }
            }
        }
    }
}
