//! Plain-Rust host reference of the D3Q19 lid-driven cavity.
//!
//! Written independently of the Neon stack (flat arrays, explicit loops):
//! the same pull-form fused collide-and-stream with half-way bounce-back.
//! Used to validate the Neon implementation field-by-field.

use super::d3q19::{equilibrium_d3q19, LbmParams, D3Q19_OPPOSITE, D3Q19_WEIGHTS};

/// A minimal host LBM simulation on a dense `nx × ny × nz` box.
pub struct ReferenceCavity {
    /// Domain extent.
    pub nx: usize,
    /// Domain extent.
    pub ny: usize,
    /// Domain extent.
    pub nz: usize,
    params: LbmParams,
    f: [Vec<f64>; 2],
    cur: usize,
}

impl ReferenceCavity {
    /// Create and initialize to the rest equilibrium.
    pub fn new(nx: usize, ny: usize, nz: usize, params: LbmParams) -> Self {
        let n = nx * ny * nz;
        let mut f0 = vec![0.0; n * 19];
        for i in 0..n {
            for q in 0..19 {
                f0[i * 19 + q] = D3Q19_WEIGHTS[q];
            }
        }
        let f1 = f0.clone();
        ReferenceCavity {
            nx,
            ny,
            nz,
            params,
            f: [f0, f1],
            cur: 0,
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }

    /// Advance one iteration.
    pub fn step(&mut self) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let offs = neon_domain::d3q19_offsets();
        let (omega, u_lid) = (self.params.omega, self.params.u_lid);
        let (src, dst) = if self.cur == 0 {
            let (a, b) = self.f.split_at_mut(1);
            (&a[0], &mut b[0])
        } else {
            let (a, b) = self.f.split_at_mut(1);
            (&b[0], &mut a[0])
        };
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = (z * ny + y) * nx + x;
                    let mut f = [0.0f64; 19];
                    for q in 0..19 {
                        let qb = D3Q19_OPPOSITE[q];
                        let o = offs[qb];
                        let (sx, sy, sz) = (x as i32 + o.dx, y as i32 + o.dy, z as i32 + o.dz);
                        let inside = sx >= 0
                            && sy >= 0
                            && sz >= 0
                            && (sx as usize) < nx
                            && (sy as usize) < ny
                            && (sz as usize) < nz;
                        if inside {
                            let si = (sz as usize * ny + sy as usize) * nx + sx as usize;
                            f[q] = src[si * 19 + q];
                        } else {
                            let corr = if sy >= ny as i32 {
                                6.0 * D3Q19_WEIGHTS[q] * (offs[q].dx as f64 * u_lid)
                            } else {
                                0.0
                            };
                            f[q] = src[i * 19 + qb] + corr;
                        }
                    }
                    let mut rho = 0.0;
                    let (mut jx, mut jy, mut jz) = (0.0, 0.0, 0.0);
                    for q in 0..19 {
                        rho += f[q];
                        jx += offs[q].dx as f64 * f[q];
                        jy += offs[q].dy as f64 * f[q];
                        jz += offs[q].dz as f64 * f[q];
                    }
                    let (ux, uy, uz) = (jx / rho, jy / rho, jz / rho);
                    for q in 0..19 {
                        let feq = equilibrium_d3q19(q, rho, ux, uy, uz);
                        dst[i * 19 + q] = f[q] + omega * (feq - f[q]);
                    }
                }
            }
        }
        self.cur ^= 1;
    }

    /// Population `q` at a cell.
    pub fn get(&self, x: usize, y: usize, z: usize, q: usize) -> f64 {
        self.f[self.cur][self.idx(x, y, z) * 19 + q]
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.f[self.cur].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbm::d3q19::LidDrivenCavity;
    use neon_core::OccLevel;
    use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
    use neon_sys::Backend;

    #[test]
    fn reference_conserves_mass() {
        let mut r = ReferenceCavity::new(8, 8, 8, LbmParams::default());
        let m0 = r.total_mass();
        for _ in 0..10 {
            r.step();
        }
        assert!((r.total_mass() - m0).abs() < 1e-10 * m0);
    }

    #[test]
    fn neon_matches_reference() {
        let (nx, ny, nz) = (6, 6, 8);
        let params = LbmParams {
            omega: 0.9,
            u_lid: 0.08,
        };
        let mut reference = ReferenceCavity::new(nx, ny, nz, params);
        for _ in 0..8 {
            reference.step();
        }

        let b = Backend::dgx_a100(2);
        let st = Stencil::d3q19();
        let g = DenseGrid::new(&b, Dim3::new(nx, ny, nz), &[&st], StorageMode::Real).unwrap();
        let mut app = LidDrivenCavity::new(&g, params, OccLevel::TwoWayExtended).unwrap();
        app.init();
        app.step(8);

        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    for q in 0..19 {
                        let n = app.current().get(x as i32, y as i32, z as i32, q).unwrap();
                        let r = reference.get(x, y, z, q);
                        assert!(
                            (n - r).abs() < 1e-12,
                            "mismatch at ({x},{y},{z}) q{q}: {n} vs {r}"
                        );
                    }
                }
            }
        }
    }
}
