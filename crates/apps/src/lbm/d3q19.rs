//! D3Q19 twoPop lid-driven cavity (paper §VI-A, Table II, Fig. 7).
//!
//! The *twoPop* variant keeps two 19-component population fields and swaps
//! them every iteration; collide and streaming are fused into a single
//! pull-form kernel, so each iteration is exactly one stencil container —
//! which is why the paper notes only Standard OCC applies to this
//! application.
//!
//! Boundary conditions: half-way bounce-back on all six cavity walls, with
//! the moving-wall momentum correction `6·w_q·(c_q · u_w)` on the lid
//! plane `y = ny−1` (fluid density ρ₀ = 1).

use neon_core::{ExecReport, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, Field, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike, KernelFn,
    KernelShape,
};
use neon_sys::Result;

/// Achieved-bandwidth fraction of Neon's fused LBM kernel relative to the
/// device model's effective bandwidth. Calibrated so that single-GPU
/// MLUPS lands within 1 % of the native-CUDA `cuboltz` comparator, as the
/// paper reports (Table II).
pub const NEON_LBM_EFFICIENCY: f64 = 0.79;

/// FLOPs per lattice-site update of the fused D3Q19 BGK kernel
/// (macroscopic moments + 19 equilibrium evaluations).
pub const D3Q19_FLOPS_PER_CELL: u64 = 350;

/// D3Q19 quadrature weights, matching
/// [`neon_domain::d3q19_offsets`] slot order.
pub const D3Q19_WEIGHTS: [f64; 19] = {
    const W0: f64 = 1.0 / 3.0;
    const WF: f64 = 1.0 / 18.0;
    const WE: f64 = 1.0 / 36.0;
    [
        W0, WF, WF, WF, WF, WF, WF, WE, WE, WE, WE, WE, WE, WE, WE, WE, WE, WE, WE,
    ]
};

/// Opposite-direction table for the D3Q19 slot order.
pub const D3Q19_OPPOSITE: [usize; 19] = [
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
];

/// Physical parameters of the cavity benchmark.
#[derive(Debug, Clone, Copy)]
pub struct LbmParams {
    /// BGK relaxation rate ω = 1/τ.
    pub omega: f64,
    /// Lid velocity along +x.
    pub u_lid: f64,
}

impl Default for LbmParams {
    fn default() -> Self {
        LbmParams {
            omega: 1.0,
            u_lid: 0.1,
        }
    }
}

/// BGK equilibrium population for direction `q` (D3Q19).
#[inline]
pub fn equilibrium_d3q19(q: usize, rho: f64, ux: f64, uy: f64, uz: f64) -> f64 {
    let o = neon_domain::d3q19_offsets()[q];
    let cu = o.dx as f64 * ux + o.dy as f64 * uy + o.dz as f64 * uz;
    let usq = ux * ux + uy * uy + uz * uz;
    D3Q19_WEIGHTS[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq)
}

/// The fused collide-and-stream container `f_out ← C(S(f_in))`.
///
/// Grid-generic: works on dense and element-sparse grids. The grid must
/// have been constructed with [`neon_domain::Stencil::d3q19`] so the slot
/// order matches the velocity set.
pub fn stream_collide<G: GridLike>(
    grid: &G,
    f_in: &Field<f64, G>,
    f_out: &Field<f64, G>,
    params: LbmParams,
) -> Container {
    assert_eq!(f_in.card(), 19);
    assert_eq!(f_out.card(), 19);
    let dim = grid.dim();
    let (fi, fo) = (f_in.clone(), f_out.clone());
    let name = format!("lbm({}->{})", f_in.name(), f_out.name());
    // Chunked kernel: the `dyn` dispatch boundary is crossed once per
    // CELL_CHUNK cells. No named shape fits a 19-point pull kernel, so the
    // shape stays Generic — the chunking alone carries the dispatch win.
    Container::compute_shaped_opts(
        &name,
        grid.as_space(),
        KernelShape::Generic,
        move |ldr| {
            let fin = ldr.read_stencil(&fi);
            let fout = ldr.write(&fo);
            let omega = params.omega;
            let u_lid = params.u_lid;
            let per_cell = move |c: Cell| {
                let mut f = [0.0f64; 19];
                for q in 0..19 {
                    let qb = D3Q19_OPPOSITE[q];
                    // Pull from the upstream neighbour (direction -c_q).
                    if fin.ngh_active(c, qb) {
                        f[q] = fin.ngh(c, qb, q);
                    } else {
                        // Half-way bounce-back off the wall crossed in
                        // direction c_qb; the lid plane y = ny-1 moves.
                        let o = neon_domain::d3q19_offsets()[qb];
                        let wall_is_lid = c.y + o.dy >= dim.y as i32;
                        let corr = if wall_is_lid {
                            let oq = neon_domain::d3q19_offsets()[q];
                            6.0 * D3Q19_WEIGHTS[q] * (oq.dx as f64 * u_lid)
                        } else {
                            0.0
                        };
                        f[q] = fin.at(c, qb) + corr;
                    }
                }
                let mut rho = 0.0;
                let (mut jx, mut jy, mut jz) = (0.0, 0.0, 0.0);
                for q in 0..19 {
                    rho += f[q];
                    let o = neon_domain::d3q19_offsets()[q];
                    jx += o.dx as f64 * f[q];
                    jy += o.dy as f64 * f[q];
                    jz += o.dz as f64 * f[q];
                }
                let (ux, uy, uz) = (jx / rho, jy / rho, jz / rho);
                for q in 0..19 {
                    let feq = equilibrium_d3q19(q, rho, ux, uy, uz);
                    fout.set(c, q, f[q] + omega * (feq - f[q]));
                }
            };
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    per_cell(c);
                }
            })
        },
        D3Q19_FLOPS_PER_CELL,
        NEON_LBM_EFFICIENCY,
    )
}

/// The lid-driven cavity application: two population fields and two
/// skeletons (even and odd iterations of the twoPop swap).
pub struct LidDrivenCavity<G: GridLike> {
    grid: G,
    f: [Field<f64, G>; 2],
    params: LbmParams,
    skeletons: [Skeleton; 2],
    step: usize,
}

impl<G: GridLike> LidDrivenCavity<G> {
    /// Build the application on `grid` (constructed with the D3Q19
    /// stencil) with the chosen OCC level.
    pub fn new(grid: &G, params: LbmParams, occ: OccLevel) -> Result<Self> {
        // Layout as policy: let layout-select pick for a 19-component
        // stencil-read field — AoS when halos are live (2 transfers per
        // partition pair instead of 2·19), SoA on a single partition.
        // Numerics are layout-transparent, so either choice is exact.
        let layout = neon_core::recommend_layout(
            neon_core::LayoutPolicy::Auto,
            neon_core::AccessSummary {
                card: 19,
                stencil: true,
                live_halo: grid.num_partitions() > 1,
            },
        )
        .0;
        let f0 = Field::<f64, G>::new(grid, "f0", 19, 0.0, layout)?;
        let f1 = Field::<f64, G>::new(grid, "f1", 19, 0.0, layout)?;
        let backend = grid.backend().clone();
        let even = Skeleton::sequence(
            &backend,
            "lbm-even",
            vec![stream_collide(grid, &f0, &f1, params)],
            SkeletonOptions::with_occ(occ),
        );
        let odd = Skeleton::sequence(
            &backend,
            "lbm-odd",
            vec![stream_collide(grid, &f1, &f0, params)],
            SkeletonOptions::with_occ(occ),
        );
        Ok(LidDrivenCavity {
            grid: grid.clone(),
            f: [f0, f1],
            params,
            skeletons: [even, odd],
            step: 0,
        })
    }

    /// Initialize populations to the rest equilibrium (ρ = 1, u = 0).
    pub fn init(&mut self) {
        if self.grid.storage_mode() == neon_domain::StorageMode::Real {
            self.f[0].fill(|_, _, _, q| D3Q19_WEIGHTS[q]);
            self.f[1].fill(|_, _, _, q| D3Q19_WEIGHTS[q]);
        }
        self.step = 0;
    }

    /// Advance `n` iterations, returning the aggregated timing report.
    pub fn step(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        for _ in 0..n {
            let r = self.skeletons[self.step % 2].run();
            total.accumulate(r);
            self.step += 1;
        }
        total
    }

    /// The field currently holding the latest populations.
    pub fn current(&self) -> &Field<f64, G> {
        &self.f[self.step % 2]
    }

    /// Population field of one ping-pong parity (`0` or `1`) — migration
    /// copies both, since the next step reads the one the last step wrote.
    pub fn population(&self, parity: usize) -> &Field<f64, G> {
        &self.f[parity % 2]
    }

    /// The solver parameters.
    pub fn params(&self) -> LbmParams {
        self.params
    }

    /// Density and velocity at a cell (host-side diagnostic).
    pub fn macroscopic(&self, x: i32, y: i32, z: i32) -> Option<(f64, [f64; 3])> {
        let f = self.current();
        let mut rho = 0.0;
        let mut j = [0.0; 3];
        for q in 0..19 {
            let v = f.get(x, y, z, q)?;
            rho += v;
            let o = neon_domain::d3q19_offsets()[q];
            j[0] += o.dx as f64 * v;
            j[1] += o.dy as f64 * v;
            j[2] += o.dz as f64 * v;
        }
        Some((rho, [j[0] / rho, j[1] / rho, j[2] / rho]))
    }

    /// Total mass Σ f (conserved by bounce-back walls).
    pub fn total_mass(&self) -> f64 {
        let mut m = 0.0;
        self.current().for_each(|_, _, _, _, v| m += v);
        m
    }

    /// The even-iteration skeleton, for introspection.
    pub fn skeleton(&mut self) -> &mut Skeleton {
        &mut self.skeletons[0]
    }

    /// Reset the cumulative hardware counters of both ping-pong skeletons
    /// (between benchmark warm-up and measurement, or between sweep
    /// points). Global — prefer [`LidDrivenCavity::counters_snapshot`]
    /// when other jobs share the process.
    pub fn reset_counters(&mut self) {
        for s in &mut self.skeletons {
            s.reset_counters();
        }
    }

    /// Snapshot the cumulative utilization counters of both ping-pong
    /// skeletons, summed; subtract two snapshots to attribute a window of
    /// steps without a global reset.
    pub fn counters_snapshot(&self) -> neon_sys::CounterSnapshot {
        let mut total = self.skeletons[0].counters_snapshot();
        total.accumulate(&self.skeletons[1].counters_snapshot());
        total
    }

    /// Completed time steps (the ping-pong parity: even steps read `f0`,
    /// odd steps read `f1`).
    pub fn step_index(&self) -> usize {
        self.step
    }

    /// Restore the step counter to `step` — the companion of a state
    /// rollback or migration: parity decides which population field
    /// [`LidDrivenCavity::current`] reads and which skeleton runs next, so
    /// restoring populations without restoring parity would corrupt the
    /// ping-pong.
    pub fn set_step_index(&mut self, step: usize) {
        self.step = step;
    }

    /// Type-erased state handles of *both* population fields, deduplicated
    /// — the union of the two ping-pong skeletons' write sets. A checkpoint
    /// at an iteration boundary must capture both parities: the next step
    /// reads the field the previous step wrote.
    pub fn checkpoint_handles(&self) -> Vec<std::sync::Arc<dyn neon_set::StateHandle>> {
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<std::sync::Arc<dyn neon_set::StateHandle>> = Vec::new();
        for sk in &self.skeletons {
            for h in sk.state_handles() {
                if seen.insert(h.state_uid()) {
                    out.push(h);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
    use neon_sys::Backend;

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = D3Q19_WEIGHTS.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn opposite_table_is_consistent() {
        let offs = neon_domain::d3q19_offsets();
        for q in 0..19 {
            assert_eq!(offs[D3Q19_OPPOSITE[q]], offs[q].opposite());
            assert_eq!(D3Q19_OPPOSITE[D3Q19_OPPOSITE[q]], q);
        }
    }

    #[test]
    fn equilibrium_moments() {
        // Σ feq = ρ and Σ c·feq = ρ·u (exact for the D3Q19 quadrature).
        let (rho, u) = (1.3, [0.05, -0.02, 0.01]);
        let mut s = 0.0;
        let mut j = [0.0; 3];
        for q in 0..19 {
            let f = equilibrium_d3q19(q, rho, u[0], u[1], u[2]);
            s += f;
            let o = neon_domain::d3q19_offsets()[q];
            j[0] += o.dx as f64 * f;
            j[1] += o.dy as f64 * f;
            j[2] += o.dz as f64 * f;
        }
        assert!((s - rho).abs() < 1e-12);
        for k in 0..3 {
            assert!((j[k] - rho * u[k]).abs() < 1e-12, "component {k}");
        }
    }

    #[test]
    fn mass_conserved_over_iterations() {
        let b = Backend::dgx_a100(2);
        let st = Stencil::d3q19();
        let g = DenseGrid::new(&b, Dim3::cube(12), &[&st], StorageMode::Real).unwrap();
        let mut app = LidDrivenCavity::new(&g, LbmParams::default(), OccLevel::Standard).unwrap();
        app.init();
        let m0 = app.total_mass();
        app.step(20);
        let m = app.total_mass();
        assert!((m - m0).abs() < 1e-9 * m0, "mass drifted: {m0} → {m}");
    }

    #[test]
    fn lid_drives_flow() {
        let b = Backend::dgx_a100(1);
        let st = Stencil::d3q19();
        let g = DenseGrid::new(&b, Dim3::cube(12), &[&st], StorageMode::Real).unwrap();
        let mut app = LidDrivenCavity::new(&g, LbmParams::default(), OccLevel::None).unwrap();
        app.init();
        app.step(50);
        // Near the lid the fluid moves in +x.
        let (_, u) = app.macroscopic(6, 10, 6).unwrap();
        assert!(u[0] > 1e-4, "no flow near lid: {u:?}");
        // At the bottom it's (much) slower.
        let (_, ub) = app.macroscopic(6, 1, 6).unwrap();
        assert!(ub[0].abs() < u[0]);
    }

    #[test]
    fn multi_gpu_matches_single_gpu_exactly() {
        let run = |n_dev: usize| {
            let b = Backend::dgx_a100(n_dev);
            let st = Stencil::d3q19();
            let g = DenseGrid::new(&b, Dim3::new(8, 8, 12), &[&st], StorageMode::Real).unwrap();
            let mut app =
                LidDrivenCavity::new(&g, LbmParams::default(), OccLevel::Standard).unwrap();
            app.init();
            app.step(12);
            let mut out = Vec::new();
            app.current().for_each(|_, _, _, _, v| out.push(v));
            out
        };
        let a = run(1);
        let bb = run(3);
        assert_eq!(a.len(), bb.len());
        for (x, y) in a.iter().zip(&bb) {
            assert!((x - y).abs() < 1e-13, "{x} vs {y}");
        }
    }
}
