//! Lattice-Boltzmann solvers (paper §VI-A).
//!
//! The paper's headline fluid application: the *twoPop* variant (two
//! population buffers, swapped each iteration) with a fused
//! collide-and-stream kernel in pull form — each cell gathers the
//! post-collision populations of its upstream neighbours, computes the
//! macroscopic density/velocity, applies the BGK collision and writes the
//! result to the output buffer. Half-way bounce-back handles walls, with
//! the moving-lid momentum correction for the cavity benchmark.

pub mod baselines;
pub mod d2q9;
pub mod d3q19;
pub mod reference;
pub mod reference2d;

pub use baselines::AnalyticLbm;
pub use d2q9::KarmanVortex;
pub use d3q19::{LbmParams, LidDrivenCavity, NEON_LBM_EFFICIENCY};

/// Million lattice-site updates per second for `cells` cells advanced
/// `iters` times in `time_us` microseconds of (virtual) time.
pub fn mlups(cells: u64, iters: u64, time_us: f64) -> f64 {
    if time_us <= 0.0 {
        return 0.0;
    }
    (cells as f64 * iters as f64) / time_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlups_units() {
        // 1M cells, 1 iteration, 1 second → 1 MLUPS.
        assert!((mlups(1_000_000, 1, 1e6) - 1.0).abs() < 1e-12);
        // 2M cells, 10 iterations, 10 ms → 2000 MLUPS.
        assert!((mlups(2_000_000, 10, 1e4) - 2000.0).abs() < 1e-9);
        assert_eq!(mlups(1, 1, 0.0), 0.0);
    }
}
