//! Explicit heat diffusion — `∂u/∂t = α ∇²u` with forward-Euler time
//! stepping on the 7-point stencil.
//!
//! Not one of the paper's three benchmarks, but the canonical map-stencil
//! workload its introduction motivates, and the one with a clean analytic
//! solution: on a periodic-free box with Dirichlet-0 walls, the
//! eigenmode `u(x) = Π_d sin(π (x_d+1)/(N_d+1))` decays by a known factor
//! per step, which the tests verify against theory — end-to-end evidence
//! that partitioning, halos and scheduling compute the right numbers.

use neon_core::{ExecReport, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, Field, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike, MemLayout,
};
use neon_sys::Result;

/// Forward-Euler heat stepper with ping-pong buffers.
pub struct HeatSolver<G: GridLike> {
    grid: G,
    u: [Field<f64, G>; 2],
    /// Diffusion number `α·dt/h²` (stability requires ≤ 1/6 in 3-D).
    pub nu: f64,
    skeletons: [Skeleton; 2],
    step: usize,
}

fn heat_step<G: GridLike>(
    grid: &G,
    u_in: &Field<f64, G>,
    u_out: &Field<f64, G>,
    nu: f64,
) -> Container {
    let (ui, uo) = (u_in.clone(), u_out.clone());
    Container::compute(
        &format!("heat({}->{})", u_in.name(), u_out.name()),
        grid.as_space(),
        move |ldr| {
            let uv = ldr.read_stencil(&ui);
            let ov = ldr.write(&uo);
            Box::new(move |c: Cell| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += uv.ngh(c, slot, 0);
                }
                let lap = s - 6.0 * uv.at(c, 0);
                ov.set(c, 0, uv.at(c, 0) + nu * lap);
            })
        },
    )
}

impl<G: GridLike> HeatSolver<G> {
    /// Build the solver; `nu = α·dt/h²` must satisfy the 3-D stability
    /// bound `nu ≤ 1/6`.
    pub fn new(grid: &G, nu: f64, occ: OccLevel) -> Result<Self> {
        assert!(nu > 0.0 && nu <= 1.0 / 6.0 + 1e-12, "unstable nu = {nu}");
        let u0 = Field::<f64, G>::new(grid, "heat-u0", 1, 0.0, MemLayout::SoA)?;
        let u1 = Field::<f64, G>::new(grid, "heat-u1", 1, 0.0, MemLayout::SoA)?;
        let backend = grid.backend().clone();
        let skeletons = [
            Skeleton::sequence(
                &backend,
                "heat-even",
                vec![heat_step(grid, &u0, &u1, nu)],
                SkeletonOptions::with_occ(occ),
            ),
            Skeleton::sequence(
                &backend,
                "heat-odd",
                vec![heat_step(grid, &u1, &u0, nu)],
                SkeletonOptions::with_occ(occ),
            ),
        ];
        Ok(HeatSolver {
            grid: grid.clone(),
            u: [u0, u1],
            nu,
            skeletons,
            step: 0,
        })
    }

    /// Set the initial temperature.
    pub fn set_initial(&mut self, f: impl Fn(i32, i32, i32) -> f64) {
        self.u[0].fill(|x, y, z, _| f(x, y, z));
        self.step = 0;
    }

    /// Advance `n` steps.
    pub fn step(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        for _ in 0..n {
            let r = self.skeletons[self.step % 2].run();
            total.makespan += r.makespan;
            total.executions += 1;
            self.step += 1;
        }
        total
    }

    /// The current temperature field.
    pub fn temperature(&self) -> &Field<f64, G> {
        &self.u[self.step % 2]
    }

    /// Total heat Σu (decays through the Dirichlet walls).
    pub fn total_heat(&self) -> f64 {
        let mut s = 0.0;
        self.temperature().for_each(|_, _, _, _, v| s += v);
        s
    }

    /// The grid.
    pub fn grid(&self) -> &G {
        &self.grid
    }
}

/// The per-step decay factor of the fundamental Dirichlet eigenmode on an
/// `nx × ny × nz` box: `1 − 2ν Σ_d (1 − cos(π/(N_d+1)))`.
pub fn fundamental_decay(nu: f64, nx: usize, ny: usize, nz: usize) -> f64 {
    let lam = |n: usize| 2.0 * (1.0 - (std::f64::consts::PI / (n as f64 + 1.0)).cos());
    1.0 - nu * (lam(nx) + lam(ny) + lam(nz))
}

/// The fundamental eigenmode value at a cell of an `nx × ny × nz` box.
pub fn fundamental_mode(x: i32, y: i32, z: i32, nx: usize, ny: usize, nz: usize) -> f64 {
    use std::f64::consts::PI;
    let s = |v: i32, n: usize| (PI * (v as f64 + 1.0) / (n as f64 + 1.0)).sin();
    s(x, nx) * s(y, ny) * s(z, nz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_domain::{DenseGrid, Dim3, SparseGrid, Stencil, StorageMode};
    use neon_sys::Backend;

    fn grid(ndev: usize, dim: Dim3) -> DenseGrid {
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap()
    }

    #[test]
    fn eigenmode_decays_at_theoretical_rate() {
        let (nx, ny, nz) = (10, 8, 12);
        let g = grid(3, Dim3::new(nx, ny, nz));
        let nu = 0.15;
        let mut h = HeatSolver::new(&g, nu, OccLevel::Standard).unwrap();
        h.set_initial(|x, y, z| fundamental_mode(x, y, z, nx, ny, nz));
        let steps = 20;
        h.step(steps);
        let factor = fundamental_decay(nu, nx, ny, nz).powi(steps as i32);
        h.temperature().for_each(|x, y, z, _, v| {
            let expect = fundamental_mode(x, y, z, nx, ny, nz) * factor;
            assert!(
                (v - expect).abs() < 1e-12,
                "mode decay wrong at ({x},{y},{z}): {v} vs {expect}"
            );
        });
    }

    #[test]
    fn heat_decays_monotonically() {
        let g = grid(2, Dim3::cube(10));
        let mut h = HeatSolver::new(&g, 1.0 / 6.0, OccLevel::None).unwrap();
        h.set_initial(|x, y, z| if (x, y, z) == (5, 5, 5) { 100.0 } else { 0.0 });
        let mut last = h.total_heat();
        for _ in 0..10 {
            h.step(5);
            let now = h.total_heat();
            assert!(now <= last + 1e-9, "heat grew: {last} -> {now}");
            last = now;
        }
        // Everything stays non-negative (maximum principle at nu <= 1/6).
        h.temperature()
            .for_each(|_, _, _, _, v| assert!(v >= -1e-12));
    }

    #[test]
    fn dense_and_sparse_agree() {
        let dim = Dim3::new(6, 6, 10);
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dg = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
        let sg = SparseGrid::new(&b, dim, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
        let init = |x: i32, y: i32, z: i32| ((x * y + z) % 7) as f64;
        let mut hd = HeatSolver::new(&dg, 0.1, OccLevel::Standard).unwrap();
        let mut hs = HeatSolver::new(&sg, 0.1, OccLevel::Standard).unwrap();
        hd.set_initial(init);
        hs.set_initial(init);
        hd.step(9);
        hs.step(9);
        hd.temperature().for_each(|x, y, z, _, v| {
            let s = hs.temperature().get(x, y, z, 0).unwrap();
            assert!((v - s).abs() < 1e-12);
        });
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_nu_rejected() {
        let g = grid(1, Dim3::cube(8));
        let _ = HeatSolver::new(&g, 0.2, OccLevel::None);
    }

    #[test]
    fn decay_factor_sanity() {
        // Bigger boxes decay slower; factor in (0, 1).
        let small = fundamental_decay(0.1, 4, 4, 4);
        let big = fundamental_decay(0.1, 64, 64, 64);
        assert!(small > 0.0 && small < 1.0);
        assert!(big > small && big < 1.0);
    }
}

#[cfg(test)]
mod block_grid_tests {
    use super::*;
    use neon_domain::{BlockSparseGrid, DenseGrid, Dim3, Stencil, StorageMode};
    use neon_sys::Backend;

    /// The same heat solve on dense and block-sparse grids (full mask)
    /// must agree bit-for-bit — the third data structure drops into the
    /// same solver code.
    #[test]
    fn block_sparse_matches_dense() {
        let dim = Dim3::cube(12);
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dg = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
        let bg =
            BlockSparseGrid::new(&b, dim, 4, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
        let init = |x: i32, y: i32, z: i32| ((x * 3 + y * 5 + z * 7) % 11) as f64;
        let mut hd = HeatSolver::new(&dg, 0.12, neon_core::OccLevel::Standard).unwrap();
        let mut hb = HeatSolver::new(&bg, 0.12, neon_core::OccLevel::Standard).unwrap();
        hd.set_initial(init);
        hb.set_initial(init);
        hd.step(8);
        hb.step(8);
        hd.temperature().for_each(|x, y, z, _, v| {
            let w = hb.temperature().get(x, y, z, 0).unwrap();
            assert!(
                (v - w).abs() < 1e-13,
                "mismatch at ({x},{y},{z}): {v} vs {w}"
            );
        });
    }

    /// Block-sparse eigenmode decay also matches theory (the padding
    /// cells of edge blocks don't pollute in-domain results because the
    /// domain box here is block-aligned).
    #[test]
    fn block_sparse_eigenmode_decay() {
        let (nx, ny, nz) = (8, 8, 16);
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let g = BlockSparseGrid::new(
            &b,
            Dim3::new(nx, ny, nz),
            4,
            &[&st],
            |_, _, _| true,
            StorageMode::Real,
        )
        .unwrap();
        let nu = 0.1;
        let mut h = HeatSolver::new(&g, nu, neon_core::OccLevel::TwoWayExtended).unwrap();
        h.set_initial(|x, y, z| fundamental_mode(x, y, z, nx, ny, nz));
        let steps = 12;
        h.step(steps);
        let factor = fundamental_decay(nu, nx, ny, nz).powi(steps as i32);
        h.temperature().for_each(|x, y, z, _, v| {
            let expect = fundamental_mode(x, y, z, nx, ny, nz) * factor;
            assert!((v - expect).abs() < 1e-12);
        });
    }
}
