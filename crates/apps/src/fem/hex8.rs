//! Trilinear hexahedral (H8) element stiffness for isotropic linear
//! elasticity.
//!
//! Computes the 24×24 element stiffness matrix `KE` of a unit-cube
//! element by 2×2×2 Gauss quadrature of `Bᵀ·D·B`, with the standard
//! isoparametric formulation. The matrix-free grid operator
//! ([`crate::fem::solver`]) contracts `KE` blocks over the up-to-8
//! elements surrounding each node.
//!
//! Local node numbering: `l = lx + 2·ly + 4·lz` with `(lx,ly,lz) ∈ {0,1}³`.

/// Isotropic material parameters.
#[derive(Debug, Clone, Copy)]
pub struct Material {
    /// Young's modulus.
    pub e: f64,
    /// Poisson's ratio.
    pub nu: f64,
}

impl Default for Material {
    fn default() -> Self {
        Material { e: 1.0, nu: 0.3 }
    }
}

impl Material {
    /// Lamé parameters `(λ, μ)`.
    pub fn lame(&self) -> (f64, f64) {
        let lambda = self.e * self.nu / ((1.0 + self.nu) * (1.0 - 2.0 * self.nu));
        let mu = self.e / (2.0 * (1.0 + self.nu));
        (lambda, mu)
    }

    /// The 6×6 isotropic constitutive matrix (Voigt ordering
    /// xx, yy, zz, yz, xz, xy).
    pub fn d_matrix(&self) -> [[f64; 6]; 6] {
        let (l, m) = self.lame();
        let mut d = [[0.0; 6]; 6];
        for i in 0..3 {
            for j in 0..3 {
                d[i][j] = l;
            }
            d[i][i] = l + 2.0 * m;
            d[i + 3][i + 3] = m;
        }
        d
    }
}

/// Positions of the 8 local nodes, `l = lx + 2·ly + 4·lz`.
pub fn local_node(l: usize) -> (usize, usize, usize) {
    (l & 1, (l >> 1) & 1, (l >> 2) & 1)
}

/// The 24×24 element stiffness matrix of a unit-cube H8 element.
///
/// Row/column `3·l + k` is dof `k` (x/y/z) of local node `l`.
pub fn element_stiffness(mat: Material) -> [[f64; 24]; 24] {
    let d = mat.d_matrix();
    let g = 1.0 / 3.0_f64.sqrt();
    let gauss = [-g, g];
    let mut ke = [[0.0; 24]; 24];

    for &gx in &gauss {
        for &gy in &gauss {
            for &gz in &gauss {
                // Shape-function derivatives in natural coords ξ,η,ζ∈[-1,1].
                // N_l = 1/8 (1 + ξ_l ξ)(1 + η_l η)(1 + ζ_l ζ) with
                // (ξ_l, η_l, ζ_l) = 2·(lx,ly,lz) − 1.
                let mut dndx = [[0.0f64; 3]; 8];
                for (l, dn) in dndx.iter_mut().enumerate() {
                    let (lx, ly, lz) = local_node(l);
                    let sx = 2.0 * lx as f64 - 1.0;
                    let sy = 2.0 * ly as f64 - 1.0;
                    let sz = 2.0 * lz as f64 - 1.0;
                    // d/dξ, then chain rule: x = (ξ+1)/2 ⇒ d/dx = 2 d/dξ.
                    dn[0] = 2.0 * 0.125 * sx * (1.0 + sy * gy) * (1.0 + sz * gz);
                    dn[1] = 2.0 * 0.125 * (1.0 + sx * gx) * sy * (1.0 + sz * gz);
                    dn[2] = 2.0 * 0.125 * (1.0 + sx * gx) * (1.0 + sy * gy) * sz;
                }
                // B (6×24): Voigt strains from nodal displacements.
                let mut b = [[0.0f64; 24]; 6];
                for l in 0..8 {
                    let c = 3 * l;
                    b[0][c] = dndx[l][0];
                    b[1][c + 1] = dndx[l][1];
                    b[2][c + 2] = dndx[l][2];
                    // yz
                    b[3][c + 1] = dndx[l][2];
                    b[3][c + 2] = dndx[l][1];
                    // xz
                    b[4][c] = dndx[l][2];
                    b[4][c + 2] = dndx[l][0];
                    // xy
                    b[5][c] = dndx[l][1];
                    b[5][c + 1] = dndx[l][0];
                }
                // detJ of the [-1,1]³ → [0,1]³ map.
                let detj = 0.125;
                // KE += Bᵀ D B detJ (unit Gauss weights).
                for i in 0..24 {
                    for k in 0..6 {
                        if b[k][i] == 0.0 {
                            continue;
                        }
                        for m in 0..6 {
                            let dk = d[k][m] * b[k][i] * detj;
                            if dk == 0.0 {
                                continue;
                            }
                            for j in 0..24 {
                                ke[i][j] += dk * b[m][j];
                            }
                        }
                    }
                }
            }
        }
    }
    ke
}

/// Node-coupling blocks for a uniform grid: `blocks[s]` is the 3×3 block
/// coupling a node to its neighbour at the 27-point stencil offset with
/// index `s = (dx+1) + 3(dy+1) + 9(dz+1)` — the slot order of
/// [`neon_domain::Stencil::twenty_seven_point`] — summed over all shared
/// elements (full interior coupling; the matrix-free operator re-derives
/// boundary couplings per cell from element presence).
pub fn interior_node_blocks(mat: Material) -> [[[f64; 3]; 3]; 27] {
    let ke = element_stiffness(mat);
    let mut blocks = [[[0.0; 3]; 3]; 27];
    // Elements surrounding the node sit at origins n + e, e ∈ {-1,0}³.
    for ex in -1..=0i32 {
        for ey in -1..=0i32 {
            for ez in -1..=0i32 {
                // Local index of the centre node in this element.
                let a = (-ex) as usize + 2 * (-ey) as usize + 4 * (-ez) as usize;
                for l in 0..8 {
                    let (lx, ly, lz) = local_node(l);
                    let (ox, oy, oz) = (ex + lx as i32, ey + ly as i32, ez + lz as i32);
                    let s = ((ox + 1) + 3 * (oy + 1) + 9 * (oz + 1)) as usize;
                    for k in 0..3 {
                        for j in 0..3 {
                            blocks[s][k][j] += ke[3 * a + k][3 * l + j];
                        }
                    }
                }
            }
        }
    }
    blocks
}

/// Slot (27-point order) of the node `e + local(l)` relative to the
/// centre node, for element offset index `ei ∈ [0,8)` (bit-packed like
/// `local_node`) and local node `l`.
pub fn element_node_slot(ei: usize, l: usize) -> usize {
    let (ex, ey, ez) = local_node(ei); // 0 ↔ -1, 1 ↔ 0 after the shift below
    let (lx, ly, lz) = local_node(l);
    let ox = ex as i32 - 1 + lx as i32;
    let oy = ey as i32 - 1 + ly as i32;
    let oz = ez as i32 - 1 + lz as i32;
    ((ox + 1) + 3 * (oy + 1) + 9 * (oz + 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ke_is_symmetric() {
        let ke = element_stiffness(Material::default());
        for i in 0..24 {
            for j in 0..24 {
                assert!(
                    (ke[i][j] - ke[j][i]).abs() < 1e-12,
                    "KE[{i}][{j}] asymmetric"
                );
            }
        }
    }

    #[test]
    fn rigid_translations_in_null_space() {
        let ke = element_stiffness(Material::default());
        for k in 0..3 {
            let mut u = [0.0; 24];
            for l in 0..8 {
                u[3 * l + k] = 1.0;
            }
            for (i, row) in ke.iter().enumerate() {
                let f: f64 = row.iter().zip(&u).map(|(a, b)| a * b).sum();
                assert!(f.abs() < 1e-12, "row {i} not annihilated: {f}");
            }
        }
    }

    #[test]
    fn ke_positive_semidefinite_diag() {
        let ke = element_stiffness(Material::default());
        for i in 0..24 {
            assert!(ke[i][i] > 0.0, "diagonal {i} not positive");
        }
    }

    #[test]
    fn interior_blocks_are_symmetric_pairs() {
        let blocks = interior_node_blocks(Material::default());
        // K[n, n+o] = K[n+o, n]ᵀ by global symmetry; on a uniform grid
        // that means blocks[s] = blocks[26-s]ᵀ (offset negation).
        for s in 0..27 {
            for k in 0..3 {
                for j in 0..3 {
                    assert!(
                        (blocks[s][k][j] - blocks[26 - s][j][k]).abs() < 1e-12,
                        "block {s} not the transpose of its opposite"
                    );
                }
            }
        }
    }

    #[test]
    fn interior_blocks_annihilate_translation() {
        let blocks = interior_node_blocks(Material::default());
        for k in 0..3 {
            for row in 0..3 {
                let s: f64 = (0..27).map(|o| blocks[o][row][k]).sum();
                assert!(s.abs() < 1e-12, "translation not in null space");
            }
        }
    }

    #[test]
    fn element_node_slot_geometry() {
        // Element at origin (-1,-1,-1) (ei = 0), local node 0 → offset
        // (-1,-1,-1) → slot 0; local node 7 → offset (0,0,0) → slot 13.
        assert_eq!(element_node_slot(0, 0), 0);
        assert_eq!(element_node_slot(0, 7), 13);
        // Element at origin (0,0,0) (ei = 7), local node 7 → (1,1,1) → 26.
        assert_eq!(element_node_slot(7, 7), 26);
        assert_eq!(element_node_slot(7, 0), 13);
    }

    #[test]
    fn lame_parameters() {
        let m = Material { e: 210.0, nu: 0.3 };
        let (l, mu) = m.lame();
        assert!((mu - 210.0 / 2.6).abs() < 1e-9);
        assert!((l - 210.0 * 0.3 / (1.3 * 0.4)).abs() < 1e-9);
    }
}
