//! Matrix-free finite-element linear-elastic solver (paper §VI-C).
//!
//! The benchmark of the paper's Fig. 9: a solid body discretized with H8
//! elements on a uniform node grid, Dirichlet conditions fixing
//! displacements at the `z = 0` plane and a downward surface load on the
//! `z = N−1` plane, solved with matrix-free CG over a 27-point stencil.
//!
//! The operator never assembles a global matrix: each node contracts the
//! element stiffness blocks of the (up to 8) surrounding elements that
//! actually exist — decided per cell from neighbour activity, so the same
//! kernel is correct on the dense grid, at domain boundaries, and on any
//! element-sparse active set.

use std::sync::Arc;

use neon_core::OccLevel;
use neon_domain::{
    Cell, Container, Field, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike, MemLayout,
};
use neon_sys::Result;

use super::hex8::{element_node_slot, element_stiffness, interior_node_blocks, Material};
use crate::cg::{CgSolver, CgState};

/// FLOPs per node of the matrix-free apply with precomputed node-coupling
/// blocks (27 slots × 3×3 MACs plus presence checks) — the fast path that
/// covers every interior node.
pub const FEM_FLOPS_PER_CELL: u64 = 500;

/// Achieved-bandwidth fraction of the Neon FEM stencil kernel.
pub const NEON_FEM_EFFICIENCY: f64 = 0.96;

/// Build the matrix-free `Ap ← K·p` container.
///
/// Assumes the grid registered [`neon_domain::Stencil::twenty_seven_point`]
/// (so stencil slots follow the `(dx+1) + 3(dy+1) + 9(dz+1)` order).
pub fn elasticity_apply<G: GridLike>(
    grid: &G,
    state: &CgState<G>,
    material: Material,
) -> Container {
    let ke = Arc::new(element_stiffness(material));
    // Interior fast path: when all 8 surrounding elements exist, the
    // operator row collapses to the precomputed 27 node-coupling blocks
    // (identical by construction — `interior_node_blocks` sums the same
    // element contributions).
    let blocks = Arc::new(interior_node_blocks(material));
    // slot_table[ei][l]: stencil slot of element ei's local node l.
    let mut slot_table = [[0usize; 8]; 8];
    for (ei, row) in slot_table.iter_mut().enumerate() {
        for (l, s) in row.iter_mut().enumerate() {
            *s = element_node_slot(ei, l);
        }
    }
    let (p, ap) = (state.p.clone(), state.ap.clone());
    Container::compute_opts(
        "ElasticApply",
        grid.as_space(),
        move |ldr| {
            let pv = ldr.read_stencil(&p);
            let av = ldr.write(&ap);
            let ke = ke.clone();
            let blocks = blocks.clone();
            Box::new(move |c: Cell| {
                // Dirichlet plane: identity rows keep fixed dofs pinned.
                if c.z == 0 {
                    for k in 0..3 {
                        av.set(c, k, pv.at(c, k));
                    }
                    return;
                }
                // Fast path: all 27 neighbours active ⇒ all 8 elements
                // exist ⇒ use the precomputed blocks.
                let mut all_active = true;
                for s in 0..27 {
                    if s != 13 && !pv.ngh_active(c, s) {
                        all_active = false;
                        break;
                    }
                }
                if all_active {
                    let mut acc = [0.0f64; 3];
                    for (s, block) in blocks.iter().enumerate() {
                        let (u0, u1, u2) = if s == 13 {
                            (pv.at(c, 0), pv.at(c, 1), pv.at(c, 2))
                        } else {
                            (pv.ngh(c, s, 0), pv.ngh(c, s, 1), pv.ngh(c, s, 2))
                        };
                        for k in 0..3 {
                            acc[k] += block[k][0] * u0 + block[k][1] * u1 + block[k][2] * u2;
                        }
                    }
                    for k in 0..3 {
                        av.set(c, k, acc[k]);
                    }
                    return;
                }
                let mut acc = [0.0f64; 3];
                for ei in 0..8 {
                    // The element exists iff all 8 of its corner nodes are
                    // active grid cells (handles domain boundaries and
                    // sparse masks uniformly).
                    let slots = &slot_table[ei];
                    let mut present = true;
                    for &s in slots.iter() {
                        if s != 13 && !pv.ngh_active(c, s) {
                            present = false;
                            break;
                        }
                    }
                    if !present {
                        continue;
                    }
                    // Local index of the centre node within this element:
                    // element origin offset is local(ei) − 1, and the
                    // centre sits at −origin.
                    let a = 7 - ei;
                    for (l, &s) in slots.iter().enumerate() {
                        let (u0, u1, u2) = if s == 13 {
                            (pv.at(c, 0), pv.at(c, 1), pv.at(c, 2))
                        } else {
                            (pv.ngh(c, s, 0), pv.ngh(c, s, 1), pv.ngh(c, s, 2))
                        };
                        for k in 0..3 {
                            let row = &ke[3 * a + k];
                            acc[k] += row[3 * l] * u0 + row[3 * l + 1] * u1 + row[3 * l + 2] * u2;
                        }
                    }
                }
                for k in 0..3 {
                    av.set(c, k, acc[k]);
                }
            })
        },
        FEM_FLOPS_PER_CELL,
        NEON_FEM_EFFICIENCY,
    )
}

/// The linear-elasticity application: CG over the matrix-free operator.
pub struct ElasticitySolver<G: GridLike> {
    /// The CG machinery (state fields `x` hold the displacements).
    pub cg: CgSolver<G>,
    material: Material,
}

impl<G: GridLike> ElasticitySolver<G> {
    /// Build the solver on `grid` (27-point stencil registered) with the
    /// chosen OCC level and memory layout.
    pub fn new(grid: &G, material: Material, layout: MemLayout, occ: OccLevel) -> Result<Self> {
        let cg = CgSolver::new(grid, 3, layout, occ, |state| {
            elasticity_apply(grid, state, material)
        })?;
        Ok(ElasticitySolver { cg, material })
    }

    /// Build the solver with full skeleton options (OCC level, collective
    /// mode for the dot-product all-reduces, tracing, …).
    pub fn with_options(
        grid: &G,
        material: Material,
        layout: MemLayout,
        options: neon_core::SkeletonOptions,
    ) -> Result<Self> {
        let cg = CgSolver::with_options(grid, 3, layout, options, |state| {
            elasticity_apply(grid, state, material)
        })?;
        Ok(ElasticitySolver { cg, material })
    }

    /// Apply the paper's load case: fixed `z = 0` plane (implicit in the
    /// operator) and an outward (−z here: compressive) pressure on the
    /// `z = zmax` plane of the active domain, then initialize CG.
    pub fn set_pressure_load(&mut self, pressure: f64) {
        let zmax = (self.cg.state.b.grid().dim().z - 1) as i32;
        self.cg.state.b.fill(
            move |_, _, z, k| {
                if k == 2 && z == zmax {
                    -pressure
                } else {
                    0.0
                }
            },
        );
        self.cg.init();
    }

    /// Run `n` CG iterations.
    pub fn solve_iters(&mut self, n: usize) -> neon_core::ExecReport {
        self.cg.iterate(n)
    }

    /// Residual norm.
    pub fn residual(&self) -> f64 {
        self.cg.residual()
    }

    /// The displacement field.
    pub fn displacements(&self) -> &Field<f64, G> {
        &self.cg.state.x
    }

    /// The material.
    pub fn material(&self) -> Material {
        self.material
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_domain::{DenseGrid, Dim3, SparseGrid, Stencil, StorageMode};
    use neon_sys::Backend;

    fn dense_grid(n_dev: usize, n: usize) -> DenseGrid {
        let b = Backend::dgx_a100(n_dev);
        let st = Stencil::twenty_seven_point();
        DenseGrid::new(&b, Dim3::cube(n), &[&st], StorageMode::Real).unwrap()
    }

    /// K applied to a rigid translation must vanish at every *free* node
    /// whose neighbourhood is free too (no Dirichlet coupling).
    #[test]
    fn operator_annihilates_translation_in_interior() {
        let g = dense_grid(1, 6);
        let mut solver =
            ElasticitySolver::new(&g, Material::default(), MemLayout::SoA, OccLevel::None).unwrap();
        // p ← constant translation; run one apply via the CG iteration
        // plumbing: set b = translation, init (r=b), iterate once: the
        // first UpdateP makes p = r = translation, then Ap = K·p.
        solver
            .cg
            .state
            .b
            .fill(|_, _, _, k| if k == 0 { 1.0 } else { 0.0 });
        solver.cg.init();
        solver.cg.iterate(1);
        // Interior nodes with z ≥ 2 (no Dirichlet neighbour): K·1 = 0.
        solver.cg.state.ap.for_each(|x, y, z, k, v| {
            let interior = x >= 1 && y >= 1 && z >= 2 && x <= 4 && y <= 4 && z <= 4;
            if interior {
                assert!(
                    v.abs() < 1e-10,
                    "K·translation ≠ 0 at ({x},{y},{z})[{k}]: {v}"
                );
            }
        });
    }

    #[test]
    fn pressure_load_compresses_the_column() {
        let g = dense_grid(2, 6);
        let mut solver =
            ElasticitySolver::new(&g, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        solver.set_pressure_load(0.001);
        solver.solve_iters(150);
        // Top plane moved down (negative z displacement), bottom fixed.
        let top = solver.displacements().get(3, 3, 5, 2).unwrap();
        let bottom = solver.displacements().get(3, 3, 0, 2).unwrap();
        assert!(top < -1e-6, "top did not compress: {top}");
        assert_eq!(bottom, 0.0, "Dirichlet plane moved");
        // Displacement magnitude decreases towards the support.
        let mid = solver.displacements().get(3, 3, 2, 2).unwrap();
        assert!(top < mid && mid < 0.0, "profile not monotone: {top} {mid}");
    }

    #[test]
    fn cg_reduces_residual() {
        let g = dense_grid(2, 6);
        let mut solver = ElasticitySolver::new(
            &g,
            Material::default(),
            MemLayout::SoA,
            OccLevel::TwoWayExtended,
        )
        .unwrap();
        solver.set_pressure_load(0.01);
        solver.solve_iters(1);
        let r0 = solver.residual();
        solver.solve_iters(120);
        let r = solver.residual();
        assert!(r < r0 * 1e-3, "poor convergence: {r0} → {r}");
    }

    #[test]
    fn dense_and_sparse_full_domain_agree() {
        let n = 6;
        let bk = Backend::dgx_a100(2);
        let st = Stencil::twenty_seven_point();
        let dim = Dim3::cube(n);
        let dg = DenseGrid::new(&bk, dim, &[&st], StorageMode::Real).unwrap();
        let sg = SparseGrid::new(&bk, dim, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
        let mut ds =
            ElasticitySolver::new(&dg, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        let mut ss =
            ElasticitySolver::new(&sg, Material::default(), MemLayout::SoA, OccLevel::Standard)
                .unwrap();
        ds.set_pressure_load(0.005);
        ss.set_pressure_load(0.005);
        ds.solve_iters(60);
        ss.solve_iters(60);
        ds.displacements().for_each(|x, y, z, k, v| {
            let s = ss.displacements().get(x, y, z, k).unwrap();
            assert!(
                (v - s).abs() < 1e-9,
                "dense/sparse diverge at ({x},{y},{z})[{k}]: {v} vs {s}"
            );
        });
    }

    #[test]
    fn sparse_subdomain_solves() {
        // A 6×6 column inside an 8×8×8 box.
        let bk = Backend::dgx_a100(2);
        let st = Stencil::twenty_seven_point();
        let dim = Dim3::cube(8);
        let sg = SparseGrid::new(
            &bk,
            dim,
            &[&st],
            |x, y, _| (1..7).contains(&x) && (1..7).contains(&y),
            StorageMode::Real,
        )
        .unwrap();
        let mut s =
            ElasticitySolver::new(&sg, Material::default(), MemLayout::AoS, OccLevel::Extended)
                .unwrap();
        s.set_pressure_load(0.002);
        s.solve_iters(120);
        let top = s.displacements().get(3, 3, 7, 2).unwrap();
        assert!(top < -1e-7, "sparse column did not compress: {top}");
        // Outside the mask there is nothing.
        assert!(s.displacements().get(0, 0, 4, 2).is_none());
    }

    #[test]
    fn aos_and_soa_agree() {
        let g = dense_grid(2, 6);
        let run = |layout: MemLayout| {
            let mut s =
                ElasticitySolver::new(&g, Material::default(), layout, OccLevel::Standard).unwrap();
            s.set_pressure_load(0.004);
            s.solve_iters(50);
            let mut out = Vec::new();
            s.displacements().for_each(|_, _, _, _, v| out.push(v));
            out
        };
        let a = run(MemLayout::SoA);
        let b = run(MemLayout::AoS);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
