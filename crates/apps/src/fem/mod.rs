//! Finite-element linear elasticity (paper §VI-C, Fig. 9).
//!
//! * [`hex8`] — the H8 trilinear element: stiffness matrix via Gauss
//!   quadrature, interior node-coupling blocks, slot geometry.
//! * [`solver`] — the matrix-free 27-point CG solver over dense or
//!   element-sparse grids.

pub mod hex8;
pub mod solver;

pub use hex8::{element_stiffness, interior_node_blocks, Material};
pub use solver::{elasticity_apply, ElasticitySolver, FEM_FLOPS_PER_CELL, NEON_FEM_EFFICIENCY};
