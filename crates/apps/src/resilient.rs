//! Self-healing Poisson solve: transparent retry, rollback **and**
//! graceful device eviction.
//!
//! [`crate::CgSolver::iterate_resilient`] heals everything a fixed device set can
//! heal (transient kernel/transfer faults, via retry and checkpoint
//! rollback). What it cannot heal is a *permanent device loss* — the
//! hardware configuration itself changed. [`ResilientPoisson`] closes that
//! gap at the application level:
//!
//! 1. the skeleton layer restores the last checkpoint and surfaces
//!    [`ExecError::DeviceLost`];
//! 2. the dead device is evicted from the [`Backend`]
//!    ([`Backend::without_device`]) and every cached plan compiled for the
//!    old hardware fingerprint is dropped
//!    ([`neon_core::invalidate_backend`]);
//! 3. the grid and solver are rebuilt on the survivors (a fresh compile
//!    through the normal pass pipeline — recompilation *is* the recovery
//!    path, there is no special-case scheduler);
//! 4. the checkpointed fields and reduction scalars are migrated onto the
//!    new partitioning through their logical (x, y, z) coordinates;
//! 5. iteration resumes from the checkpoint — `cg-init` is *not* re-run,
//!    so the numerics continue exactly where the checkpoint left them.
//!
//! Because a checkpoint is an end-of-iteration state and CG's iteration is
//! a pure function of that state, the post-eviction residual history is
//! bit-identical to a run that *started* on the surviving devices from the
//! same checkpoint (the "voluntary eviction oracle" the fault benchmark
//! checks against). It is generally *not* bit-identical to the fault-free
//! run: fewer partitions change the grouping of the dot-product
//! reductions, which is an FP-associativity effect, not a correctness bug.
//!
//! ## The link tier
//!
//! The interconnect is its own fault domain. A permanent link loss
//! ([`ExecError::LinkLost`]) or degrade ([`ExecError::LinkDegraded`])
//! takes the *same* abort → invalidate → recompile → resume path, with one
//! crucial simplification: every device survives, so the partitioning is
//! unchanged and no state crosses a device boundary during recovery — the
//! checkpoint restore the skeleton already performed *is* the state
//! recovery. Recompiling against [`Backend::without_link`] /
//! [`Backend::with_degraded_link`] re-times every transfer and re-routes
//! collectives (an NVLink island that relied on the severed wire may
//! split, flipping hierarchical routes flat), but none of that touches
//! functional values: the post-repair residual history stays bit-identical
//! to the fault-free run, which the tests pin.

use neon_core::{ExecError, ExecReport, SkeletonOptions};
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_sys::{Backend, DeviceId, FaultPlan, FaultStats, Result};

use crate::poisson::PoissonSolver;

/// Outcome of a [`ResilientPoisson::iterate`] call that ran to completion
/// (possibly after rollbacks and device evictions).
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Aggregated execution report over every committed iteration.
    pub report: ExecReport,
    /// Checkpoint restores triggered by transient faults that escaped
    /// retry.
    pub rollbacks: u64,
    /// Committed iterations that had to be re-executed after rollbacks
    /// (transient) or evictions (device loss).
    pub replayed: u64,
    /// Permanent device losses healed by eviction + recompilation.
    pub evictions: u64,
    /// Permanent link losses/degrades healed by recompiling on the
    /// degraded topology (no state migration — every device survives).
    pub link_repairs: u64,
}

/// A Poisson CG solver that survives transient faults *and* permanent
/// device losses, rebuilding itself on the surviving devices.
pub struct ResilientPoisson {
    backend: Backend,
    dim: Dim3,
    options: SkeletonOptions,
    solver: PoissonSolver<DenseGrid>,
    /// Next logical iteration to run.
    iteration: u64,
    evictions: u64,
    link_repairs: u64,
}

impl ResilientPoisson {
    /// Build the solver on `backend` for a dense `dim` grid.
    pub fn new(backend: &Backend, dim: Dim3, options: SkeletonOptions) -> Result<Self> {
        let solver = Self::build_solver(backend, dim, &options)?;
        Ok(ResilientPoisson {
            backend: backend.clone(),
            dim,
            options,
            solver,
            iteration: 0,
            evictions: 0,
            link_repairs: 0,
        })
    }

    fn build_solver(
        backend: &Backend,
        dim: Dim3,
        options: &SkeletonOptions,
    ) -> Result<PoissonSolver<DenseGrid>> {
        let stencil = Stencil::seven_point();
        let grid = DenseGrid::new(backend, dim, &[&stencil], StorageMode::Real)?;
        PoissonSolver::with_options(&grid, *options)
    }

    /// Fill the right-hand side and run CG initialization.
    pub fn set_rhs(&mut self, f: impl Fn(i32, i32, i32) -> f64) {
        self.solver.set_rhs(f);
        self.iteration = 0;
    }

    /// Install a fault plan on the CG iteration skeleton. The plan is
    /// dropped once a permanent fault (device loss or link event) forces a
    /// rebuild: eviction renumbers the device indices the specs address,
    /// and a permanent event would otherwise re-fire against the already
    /// repaired hardware.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.solver.install_fault_plan(plan);
    }

    /// Fault statistics of the current iteration skeleton (reset when an
    /// eviction rebuilds the solver).
    pub fn fault_stats(&self) -> FaultStats {
        self.solver.fault_stats()
    }

    /// The backend currently in use (shrinks after evictions).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Devices lost and healed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Link faults (losses or degrades) healed by recompilation so far.
    pub fn link_repairs(&self) -> u64 {
        self.link_repairs
    }

    /// Next logical iteration to run.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Current residual norm.
    pub fn residual(&self) -> f64 {
        self.solver.residual()
    }

    /// Access the underlying solver (current epoch — replaced on
    /// eviction).
    pub fn solver(&self) -> &PoissonSolver<DenseGrid> {
        &self.solver
    }

    /// Run `n` CG iterations, healing transient faults by rollback and
    /// device losses by eviction. Returns an error only for failures no
    /// recovery level can absorb (structural errors, or losing the last
    /// device).
    pub fn iterate(&mut self, n: usize) -> std::result::Result<RecoveryReport, ExecError> {
        let end = self.iteration + n as u64;
        let mut out = RecoveryReport::default();
        while self.iteration < end {
            let left = (end - self.iteration) as usize;
            match self.solver.solve_iters_resilient(self.iteration, left) {
                Ok(run) => {
                    out.report.accumulate(run.report);
                    out.rollbacks += run.rollbacks;
                    out.replayed += run.replayed;
                    self.iteration = end;
                }
                Err(fail) => match fail.error {
                    ExecError::DeviceLost { device, .. } => {
                        // State is already rolled back to `fail.checkpoint`;
                        // re-run everything from there on the survivors.
                        let resume = fail.checkpoint.iteration();
                        self.recover_from_device_loss(device)?;
                        out.evictions += 1;
                        out.replayed += self.iteration.saturating_sub(resume);
                        self.iteration = resume;
                    }
                    ExecError::LinkLost { src, dst, .. } => {
                        let resume = fail.checkpoint.iteration();
                        self.recover_from_link_fault(src, dst, None)?;
                        out.link_repairs += 1;
                        out.replayed += self.iteration.saturating_sub(resume);
                        self.iteration = resume;
                    }
                    ExecError::LinkDegraded {
                        src, dst, factor, ..
                    } => {
                        let resume = fail.checkpoint.iteration();
                        self.recover_from_link_fault(src, dst, Some(factor))?;
                        out.link_repairs += 1;
                        out.replayed += self.iteration.saturating_sub(resume);
                        self.iteration = resume;
                    }
                    error => return Err(error),
                },
            }
        }
        Ok(out)
    }

    /// Voluntarily evict `dead`: flush its compiled plans, rebuild grid +
    /// solver on the survivors and migrate the current state. This is the
    /// same path a permanent device loss takes (minus the rollback, which
    /// [`Skeleton::run_iters_resilient`] has already performed by the time
    /// the loss surfaces), exposed for planned maintenance and as the
    /// benchmark's "voluntary eviction" oracle.
    ///
    /// [`Skeleton::run_iters_resilient`]: neon_core::Skeleton::run_iters_resilient
    pub fn evict_device(&mut self, dead: DeviceId) -> std::result::Result<(), ExecError> {
        self.recover_from_device_loss(dead)
    }

    /// Voluntarily sever the peer link between `src` and `dst` (planned
    /// cable pull): flush plans compiled for the healthy wire and rebuild
    /// on the degraded topology. Same path a permanent
    /// [`ExecError::LinkLost`] takes; exposed as the bench's
    /// "degraded-start" oracle.
    pub fn sever_link(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
    ) -> std::result::Result<(), ExecError> {
        self.recover_from_link_fault(src, dst, None)
    }

    /// Voluntarily degrade the peer link between `src` and `dst` to
    /// `factor` of its bandwidth; see [`ResilientPoisson::sever_link`].
    pub fn degrade_link(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        factor: f64,
    ) -> std::result::Result<(), ExecError> {
        self.recover_from_link_fault(src, dst, Some(factor))
    }

    /// Evict `dead`, flush its compiled plans, rebuild grid + solver on
    /// the survivors and migrate the (already rolled-back) state.
    fn recover_from_device_loss(&mut self, dead: DeviceId) -> std::result::Result<(), ExecError> {
        let iteration = self.iteration;
        let old_fingerprint = self.backend.fingerprint();
        let survivors = self
            .backend
            .without_device(dead)
            .map_err(|_| ExecError::DeviceLost {
                device: dead,
                iteration,
            })?;
        neon_core::invalidate_backend(old_fingerprint);
        let fresh = Self::build_solver(&survivors, self.dim, &self.options).map_err(|_| {
            ExecError::DeviceLost {
                device: dead,
                iteration,
            }
        })?;
        self.migrate_state(&fresh);
        self.backend = survivors;
        self.solver = fresh;
        self.evictions += 1;
        Ok(())
    }

    /// Heal a permanent link fault: flush plans keyed on the healthy
    /// fingerprint and recompile on the degraded topology. Every device
    /// survives, so the partitioning is unchanged and the state copy below
    /// is a same-shape transcription — nothing crosses a device boundary.
    fn recover_from_link_fault(
        &mut self,
        src: DeviceId,
        dst: DeviceId,
        factor: Option<f64>,
    ) -> std::result::Result<(), ExecError> {
        let iteration = self.iteration;
        let fail = |f: Option<f64>| match f {
            None => ExecError::LinkLost {
                src,
                dst,
                iteration,
            },
            Some(factor) => ExecError::LinkDegraded {
                src,
                dst,
                factor,
                iteration,
            },
        };
        let old_fingerprint = self.backend.fingerprint();
        let degraded = match factor {
            None => self.backend.without_link(src, dst),
            Some(f) => self.backend.with_degraded_link(src, dst, f),
        }
        .map_err(|_| fail(factor))?;
        neon_core::invalidate_backend(old_fingerprint);
        let fresh =
            Self::build_solver(&degraded, self.dim, &self.options).map_err(|_| fail(factor))?;
        self.migrate_state(&fresh);
        self.backend = degraded;
        self.solver = fresh;
        self.link_repairs += 1;
        Ok(())
    }

    /// Transcribe the current (already rolled-back) CG state into a fresh
    /// solver through logical coordinates: partition boundaries may have
    /// moved (eviction) or stayed put (link repair), the
    /// (x, y, z) -> value map did not.
    fn migrate_state(&self, fresh: &PoissonSolver<DenseGrid>) {
        let old = &self.solver.cg.state;
        let new = &fresh.cg.state;
        for (src, dst) in [
            (&old.x, &new.x),
            (&old.b, &new.b),
            (&old.r, &new.r),
            (&old.p, &new.p),
            (&old.ap, &new.ap),
        ] {
            src.for_each(|x, y, z, comp, v| {
                dst.set(x, y, z, comp, v);
            });
            dst.update_halos();
        }
        for (src, dst) in [
            (&old.rs_old, &new.rs_old),
            (&old.rs_new, &new.rs_new),
            (&old.p_ap, &new.p_ap),
            (&old.alpha, &new.alpha),
            (&old.beta, &new.beta),
        ] {
            dst.set_host(src.host_value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_core::{OccLevel, ResilienceOptions};

    fn options() -> SkeletonOptions {
        SkeletonOptions {
            resilience: ResilienceOptions {
                enabled: true,
                checkpoint_interval: 3,
                ..ResilienceOptions::default()
            },
            ..SkeletonOptions::with_occ(OccLevel::Standard)
        }
    }

    fn rhs(x: i32, y: i32, z: i32) -> f64 {
        ((x * 3 + y * 5 + z * 7) % 11) as f64 - 5.0
    }

    /// Residual history of a run with a mid-run device loss: the prefix
    /// (before the loss) is bit-identical to a fault-free run, and the
    /// suffix is bit-identical to a run that voluntarily evicted the same
    /// device at the same checkpoint.
    #[test]
    fn device_loss_heals_and_matches_voluntary_eviction() {
        let dim = Dim3::new(10, 10, 12);
        let iters = 12usize;
        let lost_at = 7u64;
        let dead = DeviceId(2);

        // Fault-free reference history on 4 devices.
        let mut clean = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
        clean.set_rhs(rhs);
        let mut clean_hist = Vec::new();
        for _ in 0..iters {
            clean.iterate(1).unwrap();
            clean_hist.push(clean.residual());
        }

        // Faulted run: device 2 dies at logical iteration `lost_at`.
        let mut faulty = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
        faulty.set_rhs(rhs);
        faulty.install_fault_plan(FaultPlan::none().with_device_loss(lost_at, dead));
        let mut fault_hist = Vec::new();
        let mut total = RecoveryReport::default();
        for _ in 0..iters {
            let r = faulty.iterate(1).unwrap();
            total.evictions += r.evictions;
            total.replayed += r.replayed;
            fault_hist.push(faulty.residual());
        }
        assert_eq!(total.evictions, 1, "exactly one eviction expected");
        assert_eq!(faulty.backend().num_devices(), 3);

        // Oracle: voluntarily switch to the 3-survivor backend at the same
        // checkpoint (iterate(1) checkpoints every iteration, so the
        // rollback target is exactly `lost_at`).
        let mut oracle = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
        oracle.set_rhs(rhs);
        let mut oracle_hist = Vec::new();
        for i in 0..iters as u64 {
            if i == lost_at {
                oracle.evict_device(dead).unwrap();
            }
            oracle.iterate(1).unwrap();
            oracle_hist.push(oracle.residual());
        }

        for i in 0..lost_at as usize {
            assert_eq!(
                fault_hist[i].to_bits(),
                clean_hist[i].to_bits(),
                "prefix diverged from fault-free at iteration {i}"
            );
        }
        for i in 0..iters {
            assert_eq!(
                fault_hist[i].to_bits(),
                oracle_hist[i].to_bits(),
                "history diverged from voluntary-eviction oracle at iteration {i}"
            );
        }
    }

    /// Transient faults (recovered or escaped) leave the residual history
    /// bit-identical to a fault-free run.
    #[test]
    fn transient_faults_are_bit_transparent() {
        let dim = Dim3::new(8, 8, 10);
        let iters = 10usize;

        let run = |plan: Option<FaultPlan>| -> Vec<u64> {
            let mut s = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
            s.set_rhs(rhs);
            if let Some(p) = plan {
                s.install_fault_plan(p);
            }
            let mut hist = Vec::new();
            for _ in 0..iters {
                s.iterate(1).unwrap();
                hist.push(s.residual().to_bits());
            }
            hist
        };

        let clean = run(None);
        // Recovered fault (fails < max_attempts) and an escaped fault
        // (fails >= max_attempts, forcing a rollback).
        let plan = FaultPlan::none()
            .with_kernel_fault(2, DeviceId(1), 0, 1)
            .with_transfer_fault(4, DeviceId(3), 0, 1)
            .with_kernel_fault(6, DeviceId(0), 1, 10);
        assert_eq!(run(Some(plan)), clean);
    }

    /// A mid-run permanent link loss heals by recompiling on the degraded
    /// topology. Unlike device eviction, every device survives: the
    /// partitioning — and with it every FP reduction grouping — is
    /// unchanged, so the *entire* residual history stays bit-identical to
    /// the fault-free run and to an oracle that severed the wire before
    /// ever starting.
    #[test]
    fn link_loss_heals_and_stays_bit_identical() {
        let dim = Dim3::new(10, 10, 12);
        let iters = 12usize;
        let lost_at = 6u64;
        let (a, b) = (DeviceId(0), DeviceId(1));

        let history = |prep: &dyn Fn(&mut ResilientPoisson)| -> (Vec<u64>, u64) {
            let mut s = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
            s.set_rhs(rhs);
            prep(&mut s);
            let mut hist = Vec::new();
            for _ in 0..iters {
                s.iterate(1).unwrap();
                hist.push(s.residual().to_bits());
            }
            assert_eq!(s.backend().num_devices(), 4, "no device was evicted");
            (hist, s.link_repairs())
        };

        let (clean, _) = history(&|_| {});
        let (faulted, repairs) = history(&|s| {
            s.install_fault_plan(FaultPlan::none().with_link_loss(lost_at, a, b));
        });
        assert_eq!(repairs, 1, "exactly one link repair expected");
        // Oracle: the wire was never there to begin with.
        let (oracle, _) = history(&|s| s.sever_link(a, b).unwrap());

        assert_eq!(faulted, clean, "link loss must be functionally invisible");
        assert_eq!(faulted, oracle, "degraded-start oracle diverged");
    }

    /// A permanent bandwidth degrade takes the same recompile path and is
    /// equally invisible to the numerics.
    #[test]
    fn link_degrade_heals_and_stays_bit_identical() {
        let dim = Dim3::new(8, 8, 10);
        let iters = 10usize;

        let mut clean = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
        clean.set_rhs(rhs);
        let mut faulty = ResilientPoisson::new(&Backend::dgx_a100(4), dim, options()).unwrap();
        faulty.set_rhs(rhs);
        faulty.install_fault_plan(FaultPlan::none().with_link_degrade(
            4,
            DeviceId(1),
            DeviceId(2),
            0.25,
        ));
        let mut repairs = 0;
        for _ in 0..iters {
            clean.iterate(1).unwrap();
            let r = faulty.iterate(1).unwrap();
            repairs += r.link_repairs;
            assert_eq!(
                faulty.residual().to_bits(),
                clean.residual().to_bits(),
                "degrade must be functionally invisible"
            );
        }
        assert_eq!(repairs, 1);
        assert_eq!(faulty.evictions(), 0);
        // The repaired backend really runs the slower wire.
        let link = faulty.backend().topology().link(DeviceId(1), DeviceId(2));
        let healthy = clean.backend().topology().link(DeviceId(1), DeviceId(2));
        assert!(link.bandwidth_gb_s < healthy.bandwidth_gb_s * 0.3);
    }

    /// Losing the only device is unrecoverable and surfaces as a
    /// structured error, not a panic.
    #[test]
    fn last_device_loss_is_fatal_but_structured() {
        let mut s =
            ResilientPoisson::new(&Backend::dgx_a100(1), Dim3::new(6, 6, 6), options()).unwrap();
        s.set_rhs(rhs);
        s.install_fault_plan(FaultPlan::none().with_device_loss(2, DeviceId(0)));
        let err = s.iterate(5).unwrap_err();
        assert!(matches!(err, ExecError::DeviceLost { device, .. } if device == DeviceId(0)));
    }
}
