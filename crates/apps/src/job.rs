//! Solver jobs as resumable handles — the unit of work of the serving
//! layer (`neon-serve`).
//!
//! A [`SolverJob`] wraps one solver instance (Poisson CG or LBM lid-driven
//! cavity) behind an iterator-style interface: [`SolverJob::advance`] runs a
//! bounded number of iterations and returns, so a scheduler can interleave
//! many jobs on one process by time-slicing at *iteration boundaries*. No
//! kernel is ever interrupted — a preempted job simply is not asked for its
//! next iteration yet — which is why a multiplexed run stays bit-identical
//! to a solo run of the same job.
//!
//! Three more capabilities make the handles schedulable under faults:
//!
//! * **checkpoint/restore** ([`SolverJob::capture`] / [`SolverJob::restore`])
//!   at iteration boundaries, so a quantum aborted by a device loss can be
//!   rolled back to its start;
//! * **migration** ([`SolverJob::migrate_to`]) onto a different (typically
//!   smaller or re-carved) backend, moving state through logical
//!   coordinates exactly like [`crate::ResilientPoisson`] does;
//! * **counter deltas** ([`SolverJob::counters`]) that survive migration, so
//!   per-tenant accounting can slice shared [`neon_sys::QueueSim`] counters
//!   without a global reset.
//!
//! Setup work (CG initialization) is charged to the first
//! [`SolverJob::advance`] report, so serving throughput numbers include it;
//! re-plan/migration cost after a device loss is *not* modelled on the
//! virtual clock (consistent with [`crate::ResilientPoisson`], where
//! recompilation is host-side work).

use neon_core::{ExecReport, SkeletonOptions};
use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
use neon_set::Checkpoint;
use std::hash::Hasher as _;

use neon_sys::{Backend, CounterSnapshot, Result, StableHasher};

use crate::lbm::{LbmParams, LidDrivenCavity};
use crate::poisson::PoissonSolver;

/// What a tenant asked the server to run. Specs are plain values so a
/// request can be replayed solo (same spec, same-size backend, same
/// migration history) to check bit-identity against the multiplexed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobSpec {
    /// Poisson CG solve on a dense `dim³` grid; the right-hand side is a
    /// pure function of logical coordinates and `rhs_seed`, so it is
    /// partition-independent.
    Poisson {
        /// Cubic grid edge length.
        dim: u32,
        /// CG iterations to run.
        iters: u64,
        /// Seed of the deterministic right-hand side.
        rhs_seed: u64,
    },
    /// D3Q19 lid-driven cavity on a dense `dim³` grid.
    Lbm {
        /// Cubic grid edge length.
        dim: u32,
        /// LBM time steps to run.
        iters: u64,
    },
}

impl JobSpec {
    /// Total iterations the job needs.
    pub fn iters(&self) -> u64 {
        match self {
            JobSpec::Poisson { iters, .. } | JobSpec::Lbm { iters, .. } => *iters,
        }
    }

    /// Build the resumable handle for this spec on `backend`.
    pub fn build(&self, backend: &Backend, options: SkeletonOptions) -> Result<Box<dyn SolverJob>> {
        match *self {
            JobSpec::Poisson {
                dim,
                iters,
                rhs_seed,
            } => Ok(Box::new(PoissonJob::new(
                backend, dim, iters, rhs_seed, options,
            )?)),
            JobSpec::Lbm { dim, iters } => Ok(Box::new(LbmJob::new(backend, dim, iters, options)?)),
        }
    }
}

/// A resumable solver job: the scheduling unit of `neon-serve`.
pub trait SolverJob {
    /// Devices of the backend the job currently runs on.
    fn num_devices(&self) -> usize;

    /// Iterations committed so far.
    fn completed(&self) -> u64;

    /// Total iterations the job needs.
    fn total(&self) -> u64;

    /// Whether every iteration has run.
    fn is_done(&self) -> bool {
        self.completed() >= self.total()
    }

    /// Run up to `iters` more iterations (clamped to the remainder) and
    /// return the aggregated report of exactly that window. The job yields
    /// between `execute` calls — this is the preemption point.
    fn advance(&mut self, iters: u64) -> ExecReport;

    /// Deterministic fingerprint of the results produced so far (residual
    /// bit history for CG, population-field bits for LBM). Two runs of the
    /// same spec on same-size backends with the same migration history
    /// fingerprint identically, bit for bit.
    fn result_bits(&self) -> u64;

    /// Capture a checkpoint of the job's full iteration state at the
    /// current iteration boundary.
    fn capture(&mut self) -> Checkpoint;

    /// Roll back to `cp` (state *and* iteration counter).
    fn restore(&mut self, cp: &Checkpoint);

    /// Rebuild the job on `backend` (same spec, fresh compile through the
    /// plan cache) and migrate the current state through logical
    /// coordinates. The iteration counter is preserved; counters
    /// accumulated so far are folded into [`SolverJob::counters`].
    fn migrate_to(&mut self, backend: &Backend) -> Result<()>;

    /// Cumulative utilization of this job across its whole life, including
    /// executors discarded by migrations.
    fn counters(&self) -> CounterSnapshot;
}

/// Deterministic right-hand side: a pure function of logical coordinates
/// and the seed (FNV-style mixing), uniform in roughly `[-1, 1)`. Being
/// partition-independent, every backend builds the identical problem.
fn poisson_rhs(seed: u64, x: i32, y: i32, z: i32) -> f64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [x as u64, y as u64, z as u64] {
        h ^= v.wrapping_add(0x0123_4567_89AB_CDEF);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    ((h >> 11) % 4096) as f64 / 2048.0 - 1.0
}

/// Poisson CG as a resumable job.
pub struct PoissonJob {
    backend: Backend,
    dim: Dim3,
    options: SkeletonOptions,
    solver: PoissonSolver<DenseGrid>,
    total: u64,
    completed: u64,
    /// Residual bits after each committed iteration (truncated on restore).
    residual_bits: Vec<u64>,
    /// Setup (cg-init) virtual time, folded into the first advance report.
    pending_setup: ExecReport,
    /// Counters of executors discarded by past migrations.
    base_counters: CounterSnapshot,
}

impl PoissonJob {
    /// Build and initialize the solver on `backend`.
    pub fn new(
        backend: &Backend,
        dim: u32,
        iters: u64,
        rhs_seed: u64,
        options: SkeletonOptions,
    ) -> Result<Self> {
        let dim3 = Dim3::cube(dim as usize);
        let mut solver = Self::build_solver(backend, dim3, &options)?;
        solver
            .cg
            .state
            .b
            .fill(|x, y, z, _| poisson_rhs(rhs_seed, x, y, z));
        let setup = solver.cg.init();
        Ok(PoissonJob {
            backend: backend.clone(),
            dim: dim3,
            options,
            solver,
            total: iters,
            completed: 0,
            residual_bits: Vec::new(),
            pending_setup: setup,
            base_counters: CounterSnapshot::default(),
        })
    }

    fn build_solver(
        backend: &Backend,
        dim: Dim3,
        options: &SkeletonOptions,
    ) -> Result<PoissonSolver<DenseGrid>> {
        let stencil = Stencil::seven_point();
        let grid = DenseGrid::new(backend, dim, &[&stencil], StorageMode::Real)?;
        PoissonSolver::with_options(&grid, *options)
    }
}

impl SolverJob for PoissonJob {
    fn num_devices(&self) -> usize {
        self.backend.num_devices()
    }

    fn completed(&self) -> u64 {
        self.completed
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn advance(&mut self, iters: u64) -> ExecReport {
        let span = iters.min(self.total - self.completed);
        let mut report = std::mem::take(&mut self.pending_setup);
        for _ in 0..span {
            report.accumulate(self.solver.solve_iters(1));
            self.completed += 1;
            self.residual_bits
                .push(self.solver.cg.state.rs_old.host_value().to_bits());
        }
        report
    }

    fn result_bits(&self) -> u64 {
        let mut h = StableHasher::new();
        for b in &self.residual_bits {
            h.write_u64(*b);
        }
        h.finish()
    }

    fn capture(&mut self) -> Checkpoint {
        self.solver.cg.capture_checkpoint(self.completed)
    }

    fn restore(&mut self, cp: &Checkpoint) {
        cp.restore();
        self.completed = cp.iteration();
        self.residual_bits.truncate(self.completed as usize);
    }

    fn migrate_to(&mut self, backend: &Backend) -> Result<()> {
        self.base_counters
            .accumulate(&self.solver.counters_snapshot());
        let fresh = Self::build_solver(backend, self.dim, &self.options)?;
        // Partition boundaries moved; the logical (x, y, z) → value map did
        // not. `b` migrates too: it is read-only but still the problem.
        let old = &self.solver.cg.state;
        let new = &fresh.cg.state;
        for (src, dst) in [
            (&old.x, &new.x),
            (&old.b, &new.b),
            (&old.r, &new.r),
            (&old.p, &new.p),
            (&old.ap, &new.ap),
        ] {
            src.for_each(|x, y, z, comp, v| {
                dst.set(x, y, z, comp, v);
            });
            dst.update_halos();
        }
        for (src, dst) in [
            (&old.rs_old, &new.rs_old),
            (&old.rs_new, &new.rs_new),
            (&old.p_ap, &new.p_ap),
            (&old.alpha, &new.alpha),
            (&old.beta, &new.beta),
        ] {
            dst.set_host(src.host_value());
        }
        self.solver = fresh;
        self.backend = backend.clone();
        Ok(())
    }

    fn counters(&self) -> CounterSnapshot {
        let mut total = self.base_counters;
        total.accumulate(&self.solver.counters_snapshot());
        total
    }
}

/// D3Q19 lid-driven cavity as a resumable job.
pub struct LbmJob {
    backend: Backend,
    dim: Dim3,
    options: SkeletonOptions,
    app: LidDrivenCavity<DenseGrid>,
    total: u64,
    completed: u64,
    base_counters: CounterSnapshot,
}

impl LbmJob {
    /// Build and initialize the cavity on `backend`.
    pub fn new(backend: &Backend, dim: u32, iters: u64, options: SkeletonOptions) -> Result<Self> {
        let dim3 = Dim3::cube(dim as usize);
        let mut app = Self::build_app(backend, dim3, &options)?;
        app.init();
        Ok(LbmJob {
            backend: backend.clone(),
            dim: dim3,
            options,
            app,
            total: iters,
            completed: 0,
            base_counters: CounterSnapshot::default(),
        })
    }

    fn build_app(
        backend: &Backend,
        dim: Dim3,
        options: &SkeletonOptions,
    ) -> Result<LidDrivenCavity<DenseGrid>> {
        let stencil = Stencil::d3q19();
        let grid = DenseGrid::new(backend, dim, &[&stencil], StorageMode::Real)?;
        LidDrivenCavity::new(&grid, LbmParams::default(), options.occ)
    }
}

impl SolverJob for LbmJob {
    fn num_devices(&self) -> usize {
        self.backend.num_devices()
    }

    fn completed(&self) -> u64 {
        self.completed
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn advance(&mut self, iters: u64) -> ExecReport {
        let span = iters.min(self.total - self.completed);
        let report = self.app.step(span as usize);
        self.completed += span;
        report
    }

    fn result_bits(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.completed);
        self.app
            .current()
            .for_each(|_, _, _, _, v| h.write_u64(v.to_bits()));
        h.finish()
    }

    fn capture(&mut self) -> Checkpoint {
        Checkpoint::capture(self.completed, &self.app.checkpoint_handles())
    }

    fn restore(&mut self, cp: &Checkpoint) {
        cp.restore();
        self.completed = cp.iteration();
        self.app.set_step_index(self.completed as usize);
    }

    fn migrate_to(&mut self, backend: &Backend) -> Result<()> {
        self.base_counters.accumulate(&self.app.counters_snapshot());
        let fresh = Self::build_app(backend, self.dim, &self.options)?;
        for q in 0..2 {
            let (src, dst) = (self.app.population(q), fresh.population(q));
            src.for_each(|x, y, z, comp, v| {
                dst.set(x, y, z, comp, v);
            });
            dst.update_halos();
        }
        self.app = fresh;
        self.app.set_step_index(self.completed as usize);
        self.backend = backend.clone();
        Ok(())
    }

    fn counters(&self) -> CounterSnapshot {
        let mut total = self.base_counters;
        total.accumulate(&self.app.counters_snapshot());
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_core::OccLevel;
    use neon_sys::DeviceId;

    fn options() -> SkeletonOptions {
        SkeletonOptions::with_occ(OccLevel::Standard)
    }

    #[test]
    fn advance_clamps_and_reports_each_window() {
        let b = Backend::dgx_a100(2);
        let spec = JobSpec::Poisson {
            dim: 8,
            iters: 5,
            rhs_seed: 7,
        };
        let mut job = spec.build(&b, options()).unwrap();
        assert_eq!(job.total(), 5);
        let r = job.advance(2);
        assert_eq!(job.completed(), 2);
        assert_eq!(r.executions, 3, "cg-init + two iterations");
        let r = job.advance(100);
        assert_eq!(job.completed(), 5);
        assert_eq!(r.executions, 3);
        assert!(job.is_done());
        assert!(job.counters().kernel_launches > 0);
    }

    #[test]
    fn sliced_run_is_bit_identical_to_straight_run() {
        let b = Backend::dgx_a100(2);
        for spec in [
            JobSpec::Poisson {
                dim: 8,
                iters: 6,
                rhs_seed: 3,
            },
            JobSpec::Lbm { dim: 6, iters: 6 },
        ] {
            let mut solo = spec.build(&b, options()).unwrap();
            solo.advance(6);
            let mut sliced = spec.build(&b, options()).unwrap();
            for _ in 0..6 {
                sliced.advance(1);
            }
            assert_eq!(
                solo.result_bits(),
                sliced.result_bits(),
                "iteration slicing changed {spec:?}"
            );
        }
    }

    #[test]
    fn checkpoint_rolls_back_state_and_iteration() {
        let b = Backend::dgx_a100(2);
        for spec in [
            JobSpec::Poisson {
                dim: 8,
                iters: 6,
                rhs_seed: 11,
            },
            JobSpec::Lbm { dim: 6, iters: 6 },
        ] {
            let mut job = spec.build(&b, options()).unwrap();
            job.advance(3);
            let cp = job.capture();
            let bits_at_cp = job.result_bits();
            job.advance(2);
            assert_ne!(job.result_bits(), bits_at_cp);
            job.restore(&cp);
            assert_eq!(job.completed(), 3);
            assert_eq!(job.result_bits(), bits_at_cp, "restore diverged {spec:?}");
            // Replaying after a rollback reproduces the same final bits.
            let mut reference = spec.build(&b, options()).unwrap();
            reference.advance(6);
            job.advance(3);
            assert_eq!(job.result_bits(), reference.result_bits());
        }
    }

    #[test]
    fn migration_matches_voluntary_restart_oracle() {
        // A job migrated from 2 devices to 1 at iteration 3 must finish
        // bit-identical to a solo run that performs the same migration at
        // the same boundary (the serving layer's device-loss oracle).
        let fleet = Backend::dgx_a100(4);
        let two = fleet.with_devices(&[DeviceId(0), DeviceId(1)]).unwrap();
        let one = fleet.with_devices(&[DeviceId(3)]).unwrap();
        for spec in [
            JobSpec::Poisson {
                dim: 8,
                iters: 6,
                rhs_seed: 5,
            },
            JobSpec::Lbm { dim: 6, iters: 6 },
        ] {
            let mut a = spec.build(&two, options()).unwrap();
            a.advance(3);
            a.migrate_to(&one).unwrap();
            assert_eq!(a.num_devices(), 1);
            a.advance(3);

            let other_one = fleet.with_devices(&[DeviceId(2)]).unwrap();
            let mut b = spec.build(&two, options()).unwrap();
            b.advance(3);
            b.migrate_to(&other_one).unwrap();
            b.advance(3);
            assert_eq!(
                a.result_bits(),
                b.result_bits(),
                "migration oracle {spec:?}"
            );
            assert!(a.counters().kernel_launches > 0);
        }
    }
}
