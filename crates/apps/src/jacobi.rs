//! Weighted-Jacobi Poisson solver — a second linear solver exercising the
//! ping-pong (twoPop-style) iteration pattern instead of CG's
//! map/stencil/reduce/host mix.
//!
//! `u_{k+1} = (1-ω)·u_k + ω·(b + Σ_{j∈N(i)} u_k[j]) / 6`
//!
//! One stencil container per iteration over two swapped buffers, plus an
//! optional residual-norm reduction. Converges much more slowly than CG
//! (it's the classic smoother, not a solver of choice), which the tests
//! verify comparatively.

use neon_core::{ExecReport, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Cell, Container, Field, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, ScalarSet,
};
use neon_sys::Result;

/// A weighted-Jacobi solver for `-∇²u = b` with Dirichlet-0 boundaries.
pub struct JacobiSolver<G: GridLike> {
    grid: G,
    u: [Field<f64, G>; 2],
    b: Field<f64, G>,
    res: Field<f64, G>,
    res_norm: ScalarSet<f64>,
    sweeps: [Skeleton; 2],
    residual_skel: [Skeleton; 2],
    step: usize,
}

fn jacobi_sweep<G: GridLike>(
    grid: &G,
    u_in: &Field<f64, G>,
    u_out: &Field<f64, G>,
    b: &Field<f64, G>,
    omega: f64,
) -> Container {
    let (ui, uo, bb) = (u_in.clone(), u_out.clone(), b.clone());
    Container::compute_opts(
        &format!("jacobi({}->{})", u_in.name(), u_out.name()),
        grid.as_space(),
        move |ldr| {
            let uv = ldr.read_stencil(&ui);
            let ov = ldr.write(&uo);
            let bv = ldr.read(&bb);
            Box::new(move |c: Cell| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += uv.ngh(c, slot, 0);
                }
                let gs = (bv.at(c, 0) + s) / 6.0;
                ov.set(c, 0, (1.0 - omega) * uv.at(c, 0) + omega * gs);
            })
        },
        0,
        crate::poisson::NEON_STENCIL_EFFICIENCY,
    )
}

/// Residual `res ← b − A·u` (A = the 7-point negative Laplacian).
fn residual_container<G: GridLike>(
    grid: &G,
    u: &Field<f64, G>,
    b: &Field<f64, G>,
    res: &Field<f64, G>,
) -> Container {
    let (uc, bc, rc) = (u.clone(), b.clone(), res.clone());
    Container::compute("residual", grid.as_space(), move |ldr| {
        let uv = ldr.read_stencil(&uc);
        let bv = ldr.read(&bc);
        let rv = ldr.write(&rc);
        Box::new(move |c: Cell| {
            let mut s = 0.0;
            for slot in 0..6 {
                s += uv.ngh(c, slot, 0);
            }
            rv.set(c, 0, bv.at(c, 0) - (6.0 * uv.at(c, 0) - s));
        })
    })
}

impl<G: GridLike> JacobiSolver<G> {
    /// Build the solver with relaxation weight `omega` (2/3 is the usual
    /// smoothing choice; 1.0 is plain Jacobi).
    pub fn new(grid: &G, omega: f64, occ: OccLevel) -> Result<Self> {
        let u0 = Field::<f64, G>::new(grid, "u0", 1, 0.0, MemLayout::SoA)?;
        let u1 = Field::<f64, G>::new(grid, "u1", 1, 0.0, MemLayout::SoA)?;
        let b = Field::<f64, G>::new(grid, "b", 1, 0.0, MemLayout::SoA)?;
        let res = Field::<f64, G>::new(grid, "res", 1, 0.0, MemLayout::SoA)?;
        let res_norm = ScalarSet::<f64>::new(grid.num_partitions(), "res2", 0.0, |a, b| a + b);
        let backend = grid.backend().clone();
        let sweeps = [
            Skeleton::sequence(
                &backend,
                "jacobi-even",
                vec![jacobi_sweep(grid, &u0, &u1, &b, omega)],
                SkeletonOptions::with_occ(occ),
            ),
            Skeleton::sequence(
                &backend,
                "jacobi-odd",
                vec![jacobi_sweep(grid, &u1, &u0, &b, omega)],
                SkeletonOptions::with_occ(occ),
            ),
        ];
        let residual_skel = [
            Skeleton::sequence(
                &backend,
                "jacobi-res-even",
                vec![
                    residual_container(grid, &u0, &b, &res),
                    ops::norm2_sq(grid, &res, &res_norm),
                ],
                SkeletonOptions::with_occ(OccLevel::None),
            ),
            Skeleton::sequence(
                &backend,
                "jacobi-res-odd",
                vec![
                    residual_container(grid, &u1, &b, &res),
                    ops::norm2_sq(grid, &res, &res_norm),
                ],
                SkeletonOptions::with_occ(OccLevel::None),
            ),
        ];
        Ok(JacobiSolver {
            grid: grid.clone(),
            u: [u0, u1],
            b,
            res,
            res_norm,
            sweeps,
            residual_skel,
            step: 0,
        })
    }

    /// Set the right-hand side and reset the iterate to zero.
    pub fn set_rhs(&mut self, f: impl Fn(i32, i32, i32) -> f64) {
        self.b.fill(|x, y, z, _| f(x, y, z));
        self.u[0].fill(|_, _, _, _| 0.0);
        self.u[1].fill(|_, _, _, _| 0.0);
        self.step = 0;
    }

    /// Run `n` sweeps (buffers swap every sweep).
    pub fn sweep(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        for _ in 0..n {
            let r = self.sweeps[self.step % 2].run();
            total.makespan += r.makespan;
            total.kernel_time += r.kernel_time;
            total.transfer_time += r.transfer_time;
            total.executions += 1;
            self.step += 1;
        }
        total
    }

    /// The current iterate.
    pub fn solution(&self) -> &Field<f64, G> {
        &self.u[self.step % 2]
    }

    /// Compute and return ‖b − A·u‖₂ for the current iterate.
    pub fn residual(&mut self) -> f64 {
        self.residual_skel[self.step % 2].run();
        self.res_norm.host_value().max(0.0).sqrt()
    }

    /// The residual field of the last [`JacobiSolver::residual`] call.
    pub fn residual_field(&self) -> &Field<f64, G> {
        &self.res
    }

    /// The grid.
    pub fn grid(&self) -> &G {
        &self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::{apply_operator_host, PoissonSolver};
    use neon_domain::{DenseGrid, Dim3, Stencil, StorageMode};
    use neon_sys::Backend;

    fn grid(ndev: usize, n: usize) -> DenseGrid {
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        DenseGrid::new(&b, Dim3::cube(n), &[&st], StorageMode::Real).unwrap()
    }

    #[test]
    fn residual_decreases() {
        let g = grid(2, 8);
        let mut j = JacobiSolver::new(&g, 1.0, OccLevel::Standard).unwrap();
        j.set_rhs(|x, y, z| if (x, y, z) == (4, 4, 4) { 1.0 } else { 0.0 });
        let r0 = j.residual();
        j.sweep(50);
        let r1 = j.residual();
        j.sweep(200);
        let r2 = j.residual();
        assert!(r1 < r0, "{r0} -> {r1}");
        assert!(r2 < r1 * 0.7, "{r1} -> {r2}");
    }

    #[test]
    fn converges_to_same_solution_as_cg() {
        let n = 8;
        let g = grid(2, n);
        let rhs = |x: i32, y: i32, z: i32| ((x + 2 * y + 3 * z) % 5) as f64 - 2.0;
        let mut j = JacobiSolver::new(&g, 1.0, OccLevel::Standard).unwrap();
        j.set_rhs(rhs);
        j.sweep(3000);
        let mut cg = PoissonSolver::new(&g, OccLevel::Standard).unwrap();
        cg.set_rhs(rhs);
        cg.solve_iters(200);
        cg.solution().for_each(|x, y, z, _, v| {
            let jv = j.solution().get(x, y, z, 0).unwrap();
            assert!(
                (v - jv).abs() < 1e-4,
                "Jacobi vs CG mismatch at ({x},{y},{z}): {jv} vs {v}"
            );
        });
    }

    #[test]
    fn cg_converges_much_faster_than_jacobi() {
        let n = 8;
        let g = grid(1, n);
        let rhs = |x: i32, _: i32, _: i32| if x == 4 { 1.0 } else { 0.0 };
        let mut j = JacobiSolver::new(&g, 1.0, OccLevel::None).unwrap();
        j.set_rhs(rhs);
        let j0 = j.residual();
        j.sweep(50);
        let jr = j.residual() / j0;
        let mut cg = PoissonSolver::new(&g, OccLevel::None).unwrap();
        cg.set_rhs(rhs);
        cg.solve_iters(1);
        let c0 = cg.residual();
        cg.solve_iters(49);
        let cr = cg.residual() / c0;
        assert!(cr < jr * 1e-2, "CG {cr} should crush Jacobi {jr}");
    }

    #[test]
    fn residual_matches_host_operator() {
        let n = 6;
        let g = grid(2, n);
        let mut j = JacobiSolver::new(&g, 0.8, OccLevel::None).unwrap();
        j.set_rhs(|x, y, z| (x * y + z) as f64);
        j.sweep(7);
        j.residual();
        // Host check: res == b - A·u.
        let mut u = vec![0.0; n * n * n];
        j.solution().for_each(|x, y, z, _, v| {
            u[(z as usize * n + y as usize) * n + x as usize] = v;
        });
        let mut au = vec![0.0; u.len()];
        apply_operator_host((n, n, n), &u, &mut au);
        j.residual_field().for_each(|x, y, z, _, r| {
            let idx = (z as usize * n + y as usize) * n + x as usize;
            let b = (x * y + z) as f64;
            assert!((r - (b - au[idx])).abs() < 1e-12);
        });
    }

    #[test]
    fn under_relaxation_still_converges() {
        let g = grid(2, 8);
        let mut j = JacobiSolver::new(&g, 2.0 / 3.0, OccLevel::TwoWayExtended).unwrap();
        j.set_rhs(|_, _, _| 1.0);
        let r0 = j.residual();
        j.sweep(300);
        assert!(j.residual() < r0 * 0.1);
    }
}
