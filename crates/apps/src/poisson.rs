//! Finite-difference Poisson solver (paper §VI-B).
//!
//! Solves `-∇²u = b` on a Cartesian grid with homogeneous Dirichlet
//! boundary conditions (the outside-domain value 0 acts as the boundary),
//! using the standard 7-point stencil (paper Listing 2) and the matrix-free
//! CG solver of [`crate::cg`] (paper Listing 3).
//!
//! The matrix-free operator is `(A·p)[i] = 6·p[i] − Σ_{j∈N(i)} p[j]`,
//! which is symmetric positive definite under Dirichlet conditions, so CG
//! converges. Neon's stencil kernel carries a small bandwidth-efficiency
//! penalty versus the hand-tuned CUDA baseline, modelling the out-of-bound
//! guards the paper cites as Neon's only overhead (§VI-B).

use neon_core::OccLevel;
use neon_domain::{
    Cell, Container, Field, FieldRead as _, FieldStencil as _, FieldWrite as _, GridLike, KernelFn,
    KernelShape, MemLayout,
};
use neon_sys::Result;

use crate::cg::{CgSolver, CgState};

/// Achieved-bandwidth fraction of Neon's guarded stencil kernel relative
/// to the hand-tuned baseline (paper §VI-B: "minimal overhead … mainly due
/// to Neon's checks to prevent out-of-bound accesses").
pub const NEON_STENCIL_EFFICIENCY: f64 = 0.96;

/// Build the 7-point negative-Laplacian container `Ap ← A·p`.
///
/// Declared [`KernelShape::MapStencil7`] with a chunked kernel: the
/// `dyn` dispatch boundary is crossed once per [`neon_set::CELL_CHUNK`]
/// cells, and the shape feeds the `layout-select` pass.
pub fn laplacian_apply<G: GridLike>(grid: &G, state: &CgState<G>) -> Container {
    let (p, ap) = (state.p.clone(), state.ap.clone());
    Container::compute_shaped_opts(
        "LaplacianStencil",
        grid.as_space(),
        KernelShape::MapStencil7,
        move |ldr| {
            let pv = ldr.read_stencil(&p);
            let av = ldr.write(&ap);
            KernelFn::chunked(move |cells: &[Cell]| {
                for &c in cells {
                    let mut s = 0.0;
                    for slot in 0..6 {
                        s += pv.ngh(c, slot, 0);
                    }
                    av.set(c, 0, 6.0 * pv.at(c, 0) - s);
                }
            })
        },
        0,
        NEON_STENCIL_EFFICIENCY,
    )
}

/// A ready-to-run Poisson CG solver on any grid type.
pub struct PoissonSolver<G: GridLike> {
    /// The underlying CG machinery.
    pub cg: CgSolver<G>,
}

impl<G: GridLike> PoissonSolver<G> {
    /// Create the solver with the given OCC level.
    pub fn new(grid: &G, occ: OccLevel) -> Result<Self> {
        let cg = CgSolver::new(grid, 1, MemLayout::SoA, occ, |state| {
            laplacian_apply(grid, state)
        })?;
        Ok(PoissonSolver { cg })
    }

    /// Create the solver with full skeleton options (OCC level, collective
    /// mode for the dot-product all-reduces, tracing, …).
    pub fn with_options(grid: &G, options: neon_core::SkeletonOptions) -> Result<Self> {
        let cg = CgSolver::with_options(grid, 1, MemLayout::SoA, options, |state| {
            laplacian_apply(grid, state)
        })?;
        Ok(PoissonSolver { cg })
    }

    /// Fill the right-hand side from `f(x, y, z)` and initialize CG.
    pub fn set_rhs(&mut self, f: impl Fn(i32, i32, i32) -> f64) {
        self.cg.state.b.fill(|x, y, z, _| f(x, y, z));
        self.cg.init();
    }

    /// Run `n` CG iterations; returns the per-iteration virtual time.
    pub fn solve_iters(&mut self, n: usize) -> neon_core::ExecReport {
        self.cg.iterate(n)
    }

    /// Fallible variant of [`PoissonSolver::solve_iters`]: a fault that
    /// escapes retry surfaces as a structured error instead of a panic.
    pub fn try_solve_iters(
        &mut self,
        n: usize,
    ) -> std::result::Result<neon_core::ExecReport, neon_core::ExecError> {
        self.cg.try_iterate(n)
    }

    /// Run iterations `start .. start + n` with checkpoints and rollback.
    pub fn solve_iters_resilient(
        &mut self,
        start: u64,
        n: usize,
    ) -> std::result::Result<neon_core::ResilientRun, Box<neon_core::ResilientError>> {
        self.cg.iterate_resilient(start, n)
    }

    /// Install a fault plan on the CG iteration skeleton.
    pub fn install_fault_plan(&mut self, plan: neon_core::FaultPlan) {
        self.cg.install_fault_plan(plan);
    }

    /// Fault statistics of the CG iteration skeleton.
    pub fn fault_stats(&self) -> neon_core::FaultStats {
        self.cg.fault_stats()
    }

    /// Reset cumulative hardware counters (between benchmark sweeps).
    pub fn reset_counters(&mut self) {
        self.cg.reset_counters();
    }

    /// Snapshot the cumulative utilization counters (init + iteration
    /// skeletons); see [`CgSolver::counters_snapshot`].
    pub fn counters_snapshot(&self) -> neon_sys::CounterSnapshot {
        self.cg.counters_snapshot()
    }

    /// Residual norm ‖b − A·x‖.
    pub fn residual(&self) -> f64 {
        self.cg.residual()
    }

    /// The solution field.
    pub fn solution(&self) -> &Field<f64, G> {
        &self.cg.state.x
    }
}

/// Host-side reference: apply the same 7-point operator to a dense array
/// (used to verify the solver and to build right-hand sides with known
/// solutions).
pub fn apply_operator_host(dim: (usize, usize, usize), u: &[f64], out: &mut [f64]) {
    let (nx, ny, nz) = dim;
    assert_eq!(u.len(), nx * ny * nz);
    assert_eq!(out.len(), u.len());
    let at = |x: i64, y: i64, z: i64| -> f64 {
        if x < 0 || y < 0 || z < 0 || x >= nx as i64 || y >= ny as i64 || z >= nz as i64 {
            0.0
        } else {
            u[(z as usize * ny + y as usize) * nx + x as usize]
        }
    };
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let idx = (z as usize * ny + y as usize) * nx + x as usize;
                out[idx] = 6.0 * at(x, y, z)
                    - at(x - 1, y, z)
                    - at(x + 1, y, z)
                    - at(x, y - 1, z)
                    - at(x, y + 1, z)
                    - at(x, y, z - 1)
                    - at(x, y, z + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_domain::{DenseGrid, Dim3, SparseGrid, Stencil, StorageMode};
    use neon_sys::Backend;

    fn host_index(dim: Dim3, x: i32, y: i32, z: i32) -> usize {
        (z as usize * dim.y + y as usize) * dim.x + x as usize
    }

    #[test]
    fn operator_matches_host_reference() {
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dim = Dim3::new(6, 6, 8);
        let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
        let mut solver = PoissonSolver::new(&g, OccLevel::None).unwrap();
        // One CG iteration from r = b: p = b, Ap = A·b.
        solver.set_rhs(|x, y, z| ((x * 3 + y * 5 + z * 7) % 11) as f64 - 5.0);
        solver.solve_iters(1);
        // Host reference.
        let mut u = vec![0.0; (dim.count()) as usize];
        solver.cg.state.b.for_each(|x, y, z, _, v| {
            u[host_index(dim, x, y, z)] = v;
        });
        let mut expect = vec![0.0; u.len()];
        apply_operator_host((dim.x, dim.y, dim.z), &u, &mut expect);
        solver.cg.state.ap.for_each(|x, y, z, _, v| {
            let e = expect[host_index(dim, x, y, z)];
            assert!(
                (v - e).abs() < 1e-12,
                "Ap mismatch at ({x},{y},{z}): {v} vs {e}"
            );
        });
    }

    #[test]
    fn cg_converges_to_known_solution() {
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dim = Dim3::new(8, 8, 8);
        let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
        // Choose a solution, build b = A·u_true, solve, compare.
        let u_true = |x: i32, y: i32, z: i32| ((x + 1) * (y + 2) % 7) as f64 * 0.1 + (z % 3) as f64;
        let mut u = vec![0.0; dim.count() as usize];
        for z in 0..8 {
            for y in 0..8 {
                for x in 0..8 {
                    u[host_index(dim, x, y, z)] = u_true(x, y, z);
                }
            }
        }
        let mut rhs = vec![0.0; u.len()];
        apply_operator_host((8, 8, 8), &u, &mut rhs);

        let mut solver = PoissonSolver::new(&g, OccLevel::TwoWayExtended).unwrap();
        solver.set_rhs(|x, y, z| rhs[host_index(dim, x, y, z)]);
        let r0 = {
            solver.solve_iters(1);
            solver.residual()
        };
        solver.solve_iters(400);
        let r = solver.residual();
        assert!(r < 1e-8 * r0.max(1.0), "CG did not converge: {r} (r0 {r0})");
        solver.solution().for_each(|x, y, z, _, v| {
            assert!(
                (v - u_true(x, y, z)).abs() < 1e-6,
                "solution mismatch at ({x},{y},{z})"
            );
        });
    }

    #[test]
    fn residual_decreases_monotonically_in_norm() {
        let b = Backend::dgx_a100(4);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(6, 6, 12), &[&st], StorageMode::Real).unwrap();
        let mut solver = PoissonSolver::new(&g, OccLevel::Standard).unwrap();
        solver.set_rhs(|x, _, _| if x == 3 { 1.0 } else { 0.0 });
        let mut last = f64::INFINITY;
        let mut decreases = 0;
        for _ in 0..20 {
            solver.solve_iters(1);
            let r = solver.residual();
            if r <= last {
                decreases += 1;
            }
            last = r;
        }
        // CG residuals aren't strictly monotone, but most steps shrink.
        assert!(decreases >= 16, "only {decreases}/20 iterations decreased");
    }

    #[test]
    fn occ_levels_agree_numerically() {
        let dim = Dim3::new(6, 6, 8);
        let mk = |occ: OccLevel| {
            let b = Backend::dgx_a100(2);
            let st = Stencil::seven_point();
            let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
            let mut s = PoissonSolver::new(&g, occ).unwrap();
            s.set_rhs(|x, y, z| ((x ^ y ^ z) % 5) as f64);
            s.solve_iters(25);
            let mut out = Vec::new();
            s.solution().for_each(|_, _, _, _, v| out.push(v));
            (out, s.residual())
        };
        let (ref_x, ref_r) = mk(OccLevel::None);
        for occ in [
            OccLevel::Standard,
            OccLevel::Extended,
            OccLevel::TwoWayExtended,
        ] {
            let (x, r) = mk(occ);
            for (a, bb) in x.iter().zip(&ref_x) {
                assert!((a - bb).abs() < 1e-10, "{occ} diverges");
            }
            assert!((r - ref_r).abs() < 1e-10);
        }
    }

    #[test]
    fn sparse_full_mask_matches_dense() {
        let dim = Dim3::new(6, 6, 8);
        let bk = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let dg = DenseGrid::new(&bk, dim, &[&st], StorageMode::Real).unwrap();
        let sg = SparseGrid::new(&bk, dim, &[&st], |_, _, _| true, StorageMode::Real).unwrap();
        let rhs = |x: i32, y: i32, z: i32| ((x * 5 + y * 3 + z) % 7) as f64 - 3.0;
        let mut ds = PoissonSolver::new(&dg, OccLevel::Standard).unwrap();
        ds.set_rhs(rhs);
        ds.solve_iters(30);
        let mut ss = PoissonSolver::new(&sg, OccLevel::Standard).unwrap();
        ss.set_rhs(rhs);
        ss.solve_iters(30);
        ds.solution().for_each(|x, y, z, _, v| {
            let s = ss.solution().get(x, y, z, 0).unwrap();
            assert!(
                (v - s).abs() < 1e-10,
                "dense/sparse mismatch at ({x},{y},{z})"
            );
        });
    }
}
