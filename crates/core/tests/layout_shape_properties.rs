//! Property tests of the monomorphized kernel data path:
//!
//! * **Layout transparency** — the same shaped program over AoS fields
//!   and over SoA fields produces bit-identical results (the layout only
//!   moves bytes, never changes the arithmetic or its order).
//! * **Shape transparency** — every [`neon_domain::ops`] fast-path
//!   container is bit-identical to its per-cell Generic twin in
//!   [`neon_domain::ops::reference`].
//!
//! Both hold for randomized sequences across 1/2/4/8 devices, every OCC
//! level, and fusion on/off — the full cross product the plan cache can
//! serve. Fields are integer-valued so all f64 arithmetic is exact;
//! bit-identity is a real property, not a tolerance.

use neon_core::{FusionLevel, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;
use proptest::prelude::*;

/// One step of a randomized BLAS-style sequence over vector fields
/// `x`, `y` (cardinality 3, so AoS and SoA genuinely differ) and the
/// reduction scalar `acc`.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `y ← 0.5` (fill).
    FillY,
    /// `y ← x` (copy).
    CopyXy,
    /// `y ← 2·x + y` (axpy, constant coefficient).
    AxpyXy,
    /// `x ← acc·x` (scale by a reduction scalar).
    ScaleX,
    /// `w ← 3·x + 0.5·y` (waxpby).
    WaxpbyXy,
    /// `acc ← x·y` (dot).
    DotXy,
    /// `acc ← ‖x‖²` (norm2).
    NormX,
}

const OPS: [Op; 7] = [
    Op::FillY,
    Op::CopyXy,
    Op::AxpyXy,
    Op::ScaleX,
    Op::WaxpbyXy,
    Op::DotXy,
    Op::NormX,
];

const CARD: usize = 3;

struct Setup {
    backend: Backend,
    grid: DenseGrid,
    x: Field<f64, DenseGrid>,
    y: Field<f64, DenseGrid>,
    w: Field<f64, DenseGrid>,
    acc: ScalarSet<f64>,
}

fn setup(n_dev: usize, layout: MemLayout) -> Setup {
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(5, 4, 16), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&grid, "x", CARD, 0.0, layout).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", CARD, 0.0, layout).unwrap();
    let w = Field::<f64, _>::new(&grid, "w", CARD, 0.0, layout).unwrap();
    x.fill(|a, b, c, k| ((a * 31 + b * 17 + c * 7 + k as i32) % 13) as f64 - 6.0);
    y.fill(|a, b, c, k| ((a * 5 + b * 3 + c + 2 * k as i32) % 7) as f64);
    let acc = ScalarSet::<f64>::new(n_dev, "acc", 0.0, |p, q| p + q);
    Setup {
        backend,
        grid,
        x,
        y,
        w,
        acc,
    }
}

/// Build the sequence from the shaped fast-path ops or their per-cell
/// Generic reference twins.
fn build_sequence(s: &Setup, ops_list: &[Op], shaped: bool) -> Vec<Container> {
    macro_rules! op {
        ($f:ident ( $($a:expr),* )) => {
            if shaped { ops::$f($($a),*) } else { ops::reference::$f($($a),*) }
        };
    }
    ops_list
        .iter()
        .map(|op| match op {
            Op::FillY => op!(set_value(&s.grid, &s.y, 0.5)),
            Op::CopyXy => op!(copy(&s.grid, &s.x, &s.y)),
            Op::AxpyXy => op!(axpy_const(&s.grid, 2.0, &s.x, &s.y)),
            Op::ScaleX => op!(scale_scalar(&s.grid, &s.acc, &s.x)),
            Op::WaxpbyXy => op!(waxpby_const(&s.grid, 3.0, &s.x, 0.5, &s.y, &s.w)),
            Op::DotXy => op!(dot(&s.grid, &s.x, &s.y, &s.acc)),
            Op::NormX => op!(norm2_sq(&s.grid, &s.x, &s.acc)),
        })
        .collect()
}

/// Compile + run one randomized sequence, returning the full observable
/// state as bit patterns (fields in traversal order, then the scalar).
fn run_case(
    ops_list: &[Op],
    n_dev: usize,
    layout: MemLayout,
    occ: OccLevel,
    fusion: FusionLevel,
    shaped: bool,
) -> Vec<u64> {
    let s = setup(n_dev, layout);
    let seq = build_sequence(&s, ops_list, shaped);
    let mut sk = Skeleton::sequence(
        &s.backend,
        "layout-shape-prop",
        seq,
        SkeletonOptions {
            occ,
            fusion,
            ..Default::default()
        },
    );
    sk.run();
    let mut bits = Vec::new();
    s.x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    s.y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    s.w.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    bits.push(s.acc.host_value().to_bits());
    bits
}

fn op_sequences() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..OPS.len()).prop_map(|i| OPS[i]), 1..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AoS and SoA runs of the same shaped program are bit-identical.
    #[test]
    fn aos_and_soa_are_bit_identical(
        ops_list in op_sequences(),
        dev_pick in 0usize..4,
        occ_pick in 0usize..4,
        fuse in any::<bool>(),
    ) {
        let n_dev = [1, 2, 4, 8][dev_pick];
        let occ = OccLevel::ALL[occ_pick];
        let fusion = if fuse { FusionLevel::Conservative } else { FusionLevel::Off };
        let soa = run_case(&ops_list, n_dev, MemLayout::SoA, occ, fusion, true);
        let aos = run_case(&ops_list, n_dev, MemLayout::AoS, occ, fusion, true);
        prop_assert_eq!(
            &aos, &soa,
            "layout changes bits for {:?} at {:?} on {} devices (fusion {:?})",
            ops_list, occ, n_dev, fusion
        );
    }

    /// Shaped fast paths and their Generic per-cell twins are
    /// bit-identical.
    #[test]
    fn shaped_matches_generic_reference(
        ops_list in op_sequences(),
        dev_pick in 0usize..4,
        occ_pick in 0usize..4,
        fuse in any::<bool>(),
        aos in any::<bool>(),
    ) {
        let n_dev = [1, 2, 4, 8][dev_pick];
        let occ = OccLevel::ALL[occ_pick];
        let fusion = if fuse { FusionLevel::Conservative } else { FusionLevel::Off };
        let layout = if aos { MemLayout::AoS } else { MemLayout::SoA };
        let fast = run_case(&ops_list, n_dev, layout, occ, fusion, true);
        let generic = run_case(&ops_list, n_dev, layout, occ, fusion, false);
        prop_assert_eq!(
            &fast, &generic,
            "shape fast path changes bits for {:?} at {:?} on {} devices \
             ({:?}, fusion {:?})",
            ops_list, occ, n_dev, layout, fusion
        );
    }
}
