//! Property tests of the fuse pass: for randomized container sequences,
//! `FusionLevel::Conservative` must be functionally invisible — bit-
//! identical fields and reduction scalars versus `FusionLevel::Off` — at
//! every device count, OCC level and halo policy, while never launching
//! *more* kernels. Plus deterministic tests of the collective-fusion half:
//! independent same-level reductions collapse into one all-reduce round.

use neon_core::{FusionLevel, HaloPolicy, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldRead as _, FieldStencil as _, FieldWrite as _,
    GridLike, MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::{Backend, SpanKind};
use proptest::prelude::*;

/// One step of a randomized sequence. The fields are integer-valued so
/// every arithmetic result is exact in f64 — bit-identity between fused
/// and unfused runs is then a real property, not a tolerance.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `x ← 2x + 1` (read-write map).
    MapX,
    /// `y ← y + 3` (read-write map).
    MapY,
    /// `y ← x` (read x, write y — exercises fused read elision).
    CopyXy,
    /// `y ← Σ ngh(x)` (7-point stencil read of x).
    StencilXy,
    /// `x ← Σ ngh(y)` (7-point stencil read of y).
    StencilYx,
    /// `a ← x·y` (reduction).
    DotA,
    /// `b ← y·y` (reduction).
    DotB,
}

const OPS: [Op; 7] = [
    Op::MapX,
    Op::MapY,
    Op::CopyXy,
    Op::StencilXy,
    Op::StencilYx,
    Op::DotA,
    Op::DotB,
];

struct Setup {
    backend: Backend,
    grid: DenseGrid,
    x: Field<f64, DenseGrid>,
    y: Field<f64, DenseGrid>,
    dot_a: ScalarSet<f64>,
    dot_b: ScalarSet<f64>,
}

fn setup(n_dev: usize) -> Setup {
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(5, 4, 16), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);
    y.fill(|a, b, c, _| ((a * 5 + b * 3 + c) % 7) as f64);
    let dot_a = ScalarSet::<f64>::new(n_dev, "a", 0.0, |p, q| p + q);
    let dot_b = ScalarSet::<f64>::new(n_dev, "b", 0.0, |p, q| p + q);
    Setup {
        backend,
        grid,
        x,
        y,
        dot_a,
        dot_b,
    }
}

fn stencil_sum(
    g: &DenseGrid,
    name: &'static str,
    from: &Field<f64, DenseGrid>,
    to: &Field<f64, DenseGrid>,
) -> Container {
    let (fc, tc) = (from.clone(), to.clone());
    Container::compute(name, g.as_space(), move |ldr| {
        let fv = ldr.read_stencil(&fc);
        let tv = ldr.write(&tc);
        Box::new(move |c| {
            let mut s = 0.0;
            for slot in 0..6 {
                s += fv.ngh(c, slot, 0);
            }
            tv.set(c, 0, s);
        })
    })
}

fn build_sequence(s: &Setup, ops_list: &[Op]) -> Vec<Container> {
    ops_list
        .iter()
        .map(|op| match op {
            Op::MapX => {
                let xc = s.x.clone();
                Container::compute("mapx", s.grid.as_space(), move |ldr| {
                    let xv = ldr.read_write(&xc);
                    Box::new(move |c| xv.set(c, 0, 2.0 * xv.at(c, 0) + 1.0))
                })
            }
            Op::MapY => {
                let yc = s.y.clone();
                Container::compute("mapy", s.grid.as_space(), move |ldr| {
                    let yv = ldr.read_write(&yc);
                    Box::new(move |c| yv.set(c, 0, yv.at(c, 0) + 3.0))
                })
            }
            Op::CopyXy => {
                let (xc, yc) = (s.x.clone(), s.y.clone());
                Container::compute("copyxy", s.grid.as_space(), move |ldr| {
                    let xv = ldr.read(&xc);
                    let yv = ldr.write(&yc);
                    Box::new(move |c| yv.set(c, 0, xv.at(c, 0)))
                })
            }
            Op::StencilXy => stencil_sum(&s.grid, "stxy", &s.x, &s.y),
            Op::StencilYx => stencil_sum(&s.grid, "styx", &s.y, &s.x),
            Op::DotA => ops::dot(&s.grid, &s.x, &s.y, &s.dot_a),
            Op::DotB => ops::dot(&s.grid, &s.y, &s.y, &s.dot_b),
        })
        .collect()
}

/// Compile + run one randomized sequence at a fusion level, returning the
/// full observable state (field bits, reduction scalars) and the metered
/// launch/traffic counters.
fn run_case(
    ops_list: &[Op],
    n_dev: usize,
    occ: OccLevel,
    halo: HaloPolicy,
    fusion: FusionLevel,
) -> (Vec<u64>, f64, f64, u64, u64, u64, u64) {
    let s = setup(n_dev);
    let seq = build_sequence(&s, ops_list);
    let mut sk = Skeleton::sequence(
        &s.backend,
        "fuseprop",
        seq,
        SkeletonOptions {
            occ,
            halo_policy: halo,
            fusion,
            ..Default::default()
        },
    );
    let report = sk.run();
    let mut bits = Vec::new();
    s.x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    s.y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    (
        bits,
        s.dot_a.host_value(),
        s.dot_b.host_value(),
        report.launches,
        report.bytes_moved,
        report.halo_rounds,
        report.redundant_flops,
    )
}

fn op_sequences() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..OPS.len()).prop_map(|i| OPS[i]), 1..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservative fusion never changes a bit of the observable state and
    /// never launches more kernels or moves more bytes than the unfused
    /// pipeline — for arbitrary sequences across 1/2/4/8 devices, every
    /// OCC level and both halo policies.
    #[test]
    fn fused_is_bit_identical_to_unfused(
        ops_list in op_sequences(),
        dev_pick in 0usize..4,
        occ_pick in 0usize..4,
        unified_halo in any::<bool>(),
    ) {
        let n_dev = [1, 2, 4, 8][dev_pick];
        let occ = OccLevel::ALL[occ_pick];
        let halo = if unified_halo {
            HaloPolicy::unified_default()
        } else {
            HaloPolicy::ExplicitTransfers
        };
        let unfused = run_case(&ops_list, n_dev, occ, halo, FusionLevel::Off);
        let fused = run_case(&ops_list, n_dev, occ, halo, FusionLevel::Conservative);
        prop_assert_eq!(
            &fused.0, &unfused.0,
            "fusion changes field bits for {:?} at {:?} on {} devices",
            ops_list, occ, n_dev
        );
        prop_assert_eq!(fused.1, unfused.1, "fusion changes dot a");
        prop_assert_eq!(fused.2, unfused.2, "fusion changes dot b");
        prop_assert!(
            fused.3 <= unfused.3,
            "fusion raised launches {} -> {} for {:?} at {:?} on {} devices",
            unfused.3, fused.3, ops_list, occ, n_dev
        );
        prop_assert!(
            fused.4 <= unfused.4,
            "fusion raised bytes moved {} -> {} for {:?} at {:?} on {} devices",
            unfused.4, fused.4, ops_list, occ, n_dev
        );
        prop_assert_eq!(
            fused.5, unfused.5,
            "kernel fusion must not change the halo-round count for {:?} on {} devices",
            ops_list, n_dev
        );
        prop_assert_eq!(fused.6, 0u64, "conservative fusion never recomputes ghost cells");
        prop_assert_eq!(unfused.6, 0u64, "unfused runs never recompute ghost cells");
    }
}

/// Two independent reductions on *different* grids (so kernel fusion can't
/// touch them) land at the same graph level; collective fusion must fold
/// their finalizations into one multi-scalar all-reduce round.
#[test]
fn independent_reductions_share_one_collective_round() {
    let run = |fusion: FusionLevel| -> (usize, f64, f64) {
        let b = Backend::dgx_a100(4);
        let st = Stencil::seven_point();
        let g1 = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&st], StorageMode::Real).unwrap();
        let g2 = DenseGrid::new(&b, Dim3::new(5, 3, 16), &[&st], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g1, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g2, "y", 1, 0.0, MemLayout::SoA).unwrap();
        x.fill(|a, b, c, _| ((a + 2 * b + 3 * c) % 5) as f64);
        y.fill(|a, b, c, _| ((2 * a + b + c) % 7) as f64 - 3.0);
        let da = ScalarSet::<f64>::new(4, "da", 0.0, |p, q| p + q);
        let db = ScalarSet::<f64>::new(4, "db", 0.0, |p, q| p + q);
        let seq = vec![ops::dot(&g1, &x, &x, &da), ops::dot(&g2, &y, &y, &db)];
        let mut sk = Skeleton::sequence(
            &b,
            "colfuse",
            seq,
            SkeletonOptions {
                fusion,
                trace: true,
                cache: false,
                ..Default::default()
            },
        );
        sk.run();
        let trace = sk.take_trace().expect("trace enabled");
        let collective_spans = trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Collective)
            .count();
        (collective_spans, da.host_value(), db.host_value())
    };
    let (unfused_spans, ua, ub) = run(FusionLevel::Off);
    let (fused_spans, fa, fb) = run(FusionLevel::Conservative);
    assert_eq!(fa, ua, "collective fusion changes dot values");
    assert_eq!(fb, ub, "collective fusion changes dot values");
    assert!(
        fused_spans < unfused_spans,
        "merging two all-reduces must shrink the collective span count \
         ({unfused_spans} -> {fused_spans})"
    );
    assert_eq!(
        fused_spans * 2,
        unfused_spans,
        "two independent rounds should become exactly one"
    );
}
