//! Plan-cache observability and bounding: the capacity knob, the
//! hit/miss/eviction counters, and cross-tenant schedule sharing.
//!
//! These tests reconfigure the *process-wide* cache capacity, so they live in
//! their own integration-test binary (own process) rather than alongside the
//! in-crate unit tests, which share the cache and would race a shrunken
//! capacity.

use std::sync::{Arc, Mutex, MutexGuard};

use neon_core::{
    clear_plan_cache, plan_cache_capacity, plan_cache_stats, set_plan_cache_capacity, OccLevel,
    Skeleton, SkeletonOptions, DEFAULT_PLAN_CACHE_CAPACITY,
};
use neon_domain::{
    Container, DenseGrid, Dim3, Field, FieldRead as _, FieldWrite as _, GridLike, MemLayout,
    Stencil, StorageMode,
};
use neon_sys::Backend;

/// Both tests mutate the process-wide cache configuration; serialize them so
/// the harness's default parallel test threads cannot interleave.
fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A one-container program whose structure is parameterized by `tag` (the
/// container name participates in the sequence signature, so distinct tags
/// are distinct cache keys).
fn program(backend: &Backend, dim: Dim3, tag: &str) -> Vec<Container> {
    let st = Stencil::seven_point();
    let g = DenseGrid::new(backend, dim, &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|xx, yy, zz, _| (xx + 2 * yy + 3 * zz) as f64);
    let (xc, yc) = (x.clone(), y.clone());
    vec![Container::compute(tag, g.as_space(), move |ldr| {
        let xv = ldr.read(&xc);
        let yv = ldr.write(&yc);
        Box::new(move |c| yv.set(c, 0, 2.0 * xv.at(c, 0) + 1.0))
    })]
}

fn skeleton(backend: &Backend, dim: Dim3, tag: &str) -> Skeleton {
    Skeleton::sequence(
        backend,
        tag,
        program(backend, dim, tag),
        SkeletonOptions::with_occ(OccLevel::None),
    )
}

#[test]
fn capacity_bound_is_configurable_and_evictions_are_counted() {
    let _guard = cache_lock();
    let b = Backend::dgx_a100(2);
    let dim = Dim3::new(4, 4, 4);
    assert_eq!(plan_cache_capacity(), DEFAULT_PLAN_CACHE_CAPACITY);

    clear_plan_cache();
    set_plan_cache_capacity(2);
    assert_eq!(plan_cache_capacity(), 2);

    let before = plan_cache_stats();
    // Three distinct programs against a capacity of 2: the first is evicted
    // (FIFO) by the third.
    skeleton(&b, dim, "prog-a");
    skeleton(&b, dim, "prog-b");
    skeleton(&b, dim, "prog-c");
    let after = plan_cache_stats();
    assert_eq!(after.entries, 2, "entry count respects the bound");
    assert_eq!(after.misses - before.misses, 3);
    assert_eq!(
        after.evictions - before.evictions,
        1,
        "FIFO eviction counted"
    );

    // The evicted program ("prog-a") recompiles: a miss and another eviction.
    skeleton(&b, dim, "prog-a");
    let again = plan_cache_stats();
    assert_eq!(again.misses - after.misses, 1);
    assert_eq!(again.evictions - after.evictions, 1);
    // The survivor ("prog-c") still hits.
    skeleton(&b, dim, "prog-c");
    let hit = plan_cache_stats();
    assert_eq!(hit.hits - again.hits, 1);

    // Shrinking below the live entry count evicts immediately.
    set_plan_cache_capacity(1);
    let shrunk = plan_cache_stats();
    assert_eq!(shrunk.entries, 1);
    assert_eq!(shrunk.evictions - hit.evictions, 1);

    // Capacity is clamped to at least one plan.
    set_plan_cache_capacity(0);
    assert_eq!(plan_cache_capacity(), 1);

    set_plan_cache_capacity(DEFAULT_PLAN_CACHE_CAPACITY);
    clear_plan_cache();
}

#[test]
fn cross_tenant_compiles_share_one_schedule() {
    let _guard = cache_lock();
    // Two "tenants" build the same program structure on plan-compatible
    // backends (equal-size subsets of one fleet). The second compile must be
    // a cache hit whose rebound plan shares the schedule allocation —
    // Arc::ptr_eq, not just equality.
    let fleet = Backend::dgx_a100(4);
    let sub_a = fleet
        .with_devices(&[neon_sys::DeviceId(0), neon_sys::DeviceId(1)])
        .unwrap();
    let sub_b = fleet
        .with_devices(&[neon_sys::DeviceId(2), neon_sys::DeviceId(3)])
        .unwrap();
    let dim = Dim3::new(6, 5, 8);

    let before = plan_cache_stats();
    let tenant_a = skeleton(&sub_a, dim, "shared-prog");
    let tenant_b = skeleton(&sub_b, dim, "shared-prog");
    let after = plan_cache_stats();

    assert!(after.hits > before.hits, "second tenant hits the cache");
    assert!(
        Arc::ptr_eq(
            tenant_a.plan().schedule_arc(),
            tenant_b.plan().schedule_arc()
        ),
        "tenants share one schedule allocation across the plan cache"
    );
}
