//! Golden test for the per-pass IR dumps: the canonical 2-device
//! map → 7-point stencil → dot sequence, dumped after every pass of the
//! pipeline and compared against a checked-in reference.
//!
//! The dump is deterministic by construction — data objects are labelled
//! by first-occurrence role (`u0`, `u1`, …) rather than raw uid, and
//! edges are sorted — so any diff is a real change to the compiler's
//! output. To regenerate after an intentional pipeline change:
//!
//! ```text
//! NEON_UPDATE_GOLDEN=1 cargo test -p neon-core --test golden_ir_dump
//! ```

use neon_core::{OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike as _,
    MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/ir_dump_2dev_7pt.txt"
);

fn pipeline_dump() -> String {
    let b = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&st], StorageMode::Virtual).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    let dot = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
    let map = {
        let xc = x.clone();
        Container::compute("map", g.as_space(), move |ldr| {
            let xv = ldr.read_write(&xc);
            Box::new(move |c| xv.set(c, 0, xv.at(c, 0) + 1.0))
        })
    };
    let sten = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("laplace", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
        })
    };
    let opts = SkeletonOptions {
        occ: OccLevel::TwoWayExtended,
        dump_ir: true,
        // A fresh compile, so the dump reflects this run of the passes
        // (a rebound plan would carry the cached dump — identical, but
        // the point here is to pin the pipeline itself).
        cache: false,
        ..Default::default()
    };
    let sk = Skeleton::sequence(
        &b,
        "golden",
        vec![map, sten, ops::dot(&g, &y, &y, &dot)],
        opts,
    );
    sk.dump_ir()
}

#[test]
fn golden_ir_dump_matches() {
    let dump = pipeline_dump();
    // Sanity before comparing: one section per pass, in pipeline order.
    for pass in [
        "dependency-graph",
        "layout-select",
        "fuse",
        "temporal-fuse",
        "multi-gpu",
        "occ",
        "collective-lowering",
        "schedule",
    ] {
        assert!(
            dump.contains(&format!("== after {pass} ==")),
            "dump is missing the {pass} section:\n{dump}"
        );
    }
    // The layout-select section carries per-object recommendations.
    assert!(
        dump.contains("layout-select: policy=auto"),
        "dump is missing the layout recommendations:\n{dump}"
    );
    if std::env::var_os("NEON_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &dump).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing — regenerate with NEON_UPDATE_GOLDEN=1 \
         cargo test -p neon-core --test golden_ir_dump",
    );
    assert_eq!(
        dump, golden,
        "IR dump drifted from tests/golden/ir_dump_2dev_7pt.txt; if the \
         pipeline change is intentional, regenerate with NEON_UPDATE_GOLDEN=1"
    );
}

#[test]
fn dump_is_identical_when_rebound_from_cache() {
    let run = |cache: bool| {
        let b = Backend::dgx_a100(2);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&st], StorageMode::Virtual).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let sten = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("laplace", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
            })
        };
        let opts = SkeletonOptions {
            occ: OccLevel::Standard,
            dump_ir: true,
            cache,
            ..Default::default()
        };
        Skeleton::sequence(&b, "rebind-dump", vec![sten], opts).dump_ir()
    };
    let fresh = run(false);
    let warm1 = run(true); // miss (or hit from another test): either way...
    let warm2 = run(true); // ...this one rebinds the cached plan.
    assert_eq!(fresh, warm1);
    assert_eq!(warm1, warm2, "rebound plan must carry the same dump");
}
