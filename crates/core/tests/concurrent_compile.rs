//! Concurrent compilation against the shared plan cache.
//!
//! The serving layer compiles many tenants' programs from many threads
//! through one process-wide cache. Property: for an arbitrary mix of
//! identical and distinct programs compiled from N threads at once, the
//! cache (a) never deadlocks, (b) never double-inserts a key — afterwards it
//! holds exactly one entry per distinct program — and (c) every thread's
//! functional result is bit-identical to a serial compile-and-run of the
//! same program.
//!
//! Own test binary: it clears the process-wide cache per case, which would
//! race the other integration tests' cache-stat diffs.

use proptest::prelude::*;

use neon_core::{clear_plan_cache, plan_cache_stats, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Container, DenseGrid, Dim3, Field, FieldRead as _, FieldWrite as _, GridLike, MemLayout,
    Stencil, StorageMode,
};
use neon_sys::Backend;

/// Compile and run program variant `variant` (a chain of `variant + 1` maps,
/// each with a variant-specific coefficient) and return the output bits.
/// Each call builds its own backend, grid and fields, so threads share
/// nothing but the plan cache.
fn compile_and_run(variant: usize) -> Vec<u64> {
    let b = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(5, 4, 8), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|xx, yy, zz, _| (xx * 7 + yy * 3 + zz) as f64 * 0.25 - 2.0);
    let coeff = 1.0 + variant as f64 * 0.5;
    let containers: Vec<Container> = (0..=variant)
        .map(|stage| {
            if stage == 0 {
                let (src, dst) = (x.clone(), y.clone());
                Container::compute(
                    &format!("map-v{variant}-s{stage}"),
                    g.as_space(),
                    move |ldr| {
                        let sv = ldr.read(&src);
                        let dv = ldr.write(&dst);
                        Box::new(move |c| dv.set(c, 0, coeff * sv.at(c, 0)))
                    },
                )
            } else {
                let yc = y.clone();
                Container::compute(
                    &format!("map-v{variant}-s{stage}"),
                    g.as_space(),
                    move |ldr| {
                        let yv = ldr.read_write(&yc);
                        Box::new(move |c| yv.set(c, 0, coeff * yv.at(c, 0) + stage as f64))
                    },
                )
            }
        })
        .collect();
    let mut sk = Skeleton::try_sequence(
        &b,
        &format!("concurrent-v{variant}"),
        containers,
        SkeletonOptions::with_occ(OccLevel::Standard),
    )
    .expect("compile must succeed");
    sk.run();
    let mut bits = Vec::new();
    y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn threaded_compiles_match_serial_and_insert_once(
        assignments in prop::collection::vec(0usize..3, 6..11),
    ) {
        // Serial references, one per distinct variant.
        let mut distinct: Vec<usize> = assignments.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let references: Vec<(usize, Vec<u64>)> = distinct
            .iter()
            .map(|&v| (v, compile_and_run(v)))
            .collect();

        // Cold cache, then all threads compile at once — a mix of identical
        // keys (racing to insert the same entry) and distinct ones.
        clear_plan_cache();
        let before = plan_cache_stats();
        let results: Vec<(usize, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|&v| scope.spawn(move || (v, compile_and_run(v))))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        let after = plan_cache_stats();

        // (b) exactly one cache entry per distinct program — racing threads
        // that both miss must not leave duplicate entries behind.
        prop_assert_eq!(after.entries, distinct.len(), "one entry per program");
        prop_assert_eq!(
            (after.hits - before.hits) + (after.misses - before.misses),
            assignments.len() as u64,
            "every thread's compile was either a hit or a miss"
        );
        prop_assert!(after.misses - before.misses >= distinct.len() as u64);

        // (c) bit-identical to the serial run, hit or miss.
        for (v, bits) in &results {
            let reference = &references.iter().find(|(rv, _)| rv == v).unwrap().1;
            prop_assert_eq!(bits, reference, "variant {} diverges under concurrency", v);
        }
    }
}
