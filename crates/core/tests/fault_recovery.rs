//! Deterministic tests of the self-healing executor: structured errors
//! when recovery is off, retry counters and trace spans when it is on,
//! checkpoint rollback, device loss surfacing, options validation, and
//! backend-scoped plan-cache invalidation.

use neon_core::{
    invalidate_backend, CompileError, ExecError, FaultPlan, OccLevel, ResilienceOptions, Skeleton,
    SkeletonOptions,
};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::{Backend, DeviceId, SpanKind};

struct Fixture {
    backend: Backend,
    u: Field<f64, DenseGrid>,
    v: Field<f64, DenseGrid>,
    s: ScalarSet<f64>,
    containers: Vec<Container>,
}

/// Stencil + read-write map + reduction over a 4-device dense grid:
/// enough structure to exercise kernels, halo transfers and scalar state.
fn fixture(ndev: usize) -> Fixture {
    let backend = Backend::dgx_a100(ndev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(4, 4, 16), &[&st], StorageMode::Real).unwrap();
    let u = Field::<f64, _>::new(&grid, "u", 1, 0.0, MemLayout::SoA).unwrap();
    let v = Field::<f64, _>::new(&grid, "v", 1, 0.0, MemLayout::SoA).unwrap();
    let s = ScalarSet::<f64>::new(ndev, "s", 0.0, |a, b| a + b);
    u.fill(|x, y, z, _| ((x * 31 + y * 17 + z * 7) % 23) as f64 * 0.5);
    let sten = {
        let (uc, vc) = (u.clone(), v.clone());
        Container::compute("sten", grid.as_space(), move |ldr| {
            let uv = ldr.read_stencil(&uc);
            let vv = ldr.write(&vc);
            Box::new(move |c| {
                let mut acc = 0.0;
                for slot in 0..6 {
                    acc += uv.ngh(c, slot, 0);
                }
                vv.set(c, 0, acc);
            })
        })
    };
    let relax = ops::axpy_const(&grid, 0.25, &v, &u);
    let reduce = ops::dot(&grid, &u, &v, &s);
    Fixture {
        backend,
        u,
        v,
        s,
        containers: vec![sten, relax, reduce],
    }
}

fn options(resilience: ResilienceOptions) -> SkeletonOptions {
    SkeletonOptions {
        occ: OccLevel::Standard,
        resilience,
        cache: false,
        ..Default::default()
    }
}

fn state_bits(f: &Fixture) -> Vec<u64> {
    let mut bits = Vec::new();
    f.u.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    f.v.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    bits.push(f.s.host_value().to_bits());
    bits
}

#[test]
fn recovery_disabled_fault_is_structured_error_not_panic() {
    let f = fixture(4);
    // Default resilience: disabled, so the retry policy is 1 attempt.
    let mut sk = Skeleton::sequence(
        &f.backend,
        "no-recovery",
        f.containers.clone(),
        options(ResilienceOptions::default()),
    );
    sk.install_fault_plan(FaultPlan::none().with_kernel_fault(1, DeviceId(2), 0, 1));
    sk.try_run().expect("iteration 0 is clean");
    let err = sk.try_run().expect_err("iteration 1 must fail");
    match err {
        ExecError::TransientFaultEscaped {
            device,
            iteration,
            attempts,
            ..
        } => {
            assert_eq!(device, DeviceId(2));
            assert_eq!(iteration, 1);
            assert_eq!(attempts, 1, "disabled resilience allows one attempt");
        }
        other => panic!("expected TransientFaultEscaped, got {other}"),
    }
    // The executor stays usable after the failure.
    sk.try_run().expect("specs consumed; next run is clean");
}

#[test]
fn recovered_faults_populate_counters_and_trace() {
    let f = fixture(4);
    let mut sk = Skeleton::sequence(
        &f.backend,
        "counters",
        f.containers.clone(),
        SkeletonOptions {
            trace: true,
            ..options(ResilienceOptions {
                enabled: true,
                ..ResilienceOptions::default()
            })
        },
    );
    sk.install_fault_plan(
        FaultPlan::none()
            .with_kernel_fault(0, DeviceId(1), 0, 2)
            .with_transfer_fault(1, DeviceId(3), 0, 1),
    );
    let run = sk.run_iters_resilient(0, 3).expect("faults recover");
    assert_eq!(run.report.faults_injected, 2);
    assert_eq!(run.report.faults_recovered, 2);
    assert_eq!(
        run.report.retries, 3,
        "2 failed kernel attempts + 1 transfer"
    );
    assert_eq!(run.rollbacks, 0);
    let stats = sk.fault_stats();
    assert_eq!(stats.injected, 2);
    assert_eq!(stats.escaped, 0);
    let trace = sk.take_trace().expect("trace enabled");
    let fault_spans = trace
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Fault)
        .count();
    assert_eq!(fault_spans, 3, "one span per failed attempt");
}

#[test]
fn escaped_fault_rolls_back_to_bit_identical_state() {
    let resilience = ResilienceOptions {
        enabled: true,
        max_attempts: 2,
        checkpoint_interval: 2,
        ..ResilienceOptions::default()
    };

    let clean = fixture(4);
    let mut clean_sk = Skeleton::sequence(
        &clean.backend,
        "rollback",
        clean.containers.clone(),
        options(resilience),
    );
    clean_sk.run_iters_resilient(0, 5).expect("clean run");

    let faulty = fixture(4);
    let mut faulty_sk = Skeleton::sequence(
        &faulty.backend,
        "rollback",
        faulty.containers.clone(),
        options(resilience),
    );
    // fails = 5 >= max_attempts = 2: escapes retry, forces a rollback off
    // the checkpoint boundary (iteration 3, checkpoints at 0/2/4).
    faulty_sk.install_fault_plan(FaultPlan::none().with_kernel_fault(3, DeviceId(0), 1, 5));
    let run = faulty_sk.run_iters_resilient(0, 5).expect("must heal");
    assert_eq!(run.rollbacks, 1);
    assert_eq!(run.replayed, 1, "iteration 2 re-ran after restoring");
    assert_eq!(state_bits(&faulty), state_bits(&clean));
}

#[test]
fn device_loss_surfaces_with_restored_checkpoint() {
    let f = fixture(4);
    let mut sk = Skeleton::sequence(
        &f.backend,
        "loss",
        f.containers.clone(),
        options(ResilienceOptions {
            enabled: true,
            checkpoint_interval: 2,
            ..ResilienceOptions::default()
        }),
    );
    sk.install_fault_plan(FaultPlan::none().with_device_loss(3, DeviceId(1)));
    let err = *sk
        .run_iters_resilient(0, 6)
        .expect_err("loss is unhealable here");
    assert!(matches!(
        err.error,
        ExecError::DeviceLost { device, iteration } if device == DeviceId(1) && iteration == 3
    ));
    assert_eq!(
        err.completed, 2,
        "rolled back to the iteration-2 checkpoint"
    );
    assert_eq!(err.checkpoint.iteration(), 2);

    // The restored state is exactly a clean 2-iteration run.
    let clean = fixture(4);
    let mut clean_sk = Skeleton::sequence(
        &clean.backend,
        "loss",
        clean.containers.clone(),
        options(ResilienceOptions::default()),
    );
    clean_sk.try_run().unwrap();
    clean_sk.try_run().unwrap();
    assert_eq!(state_bits(&f), state_bits(&clean));
}

#[test]
fn resilience_options_are_validated() {
    let f = fixture(2);
    let reject = |resilience: ResilienceOptions| match Skeleton::try_sequence(
        &f.backend,
        "invalid",
        f.containers.clone(),
        options(resilience),
    ) {
        Err(err) => assert!(
            matches!(err, CompileError::InvalidOptions { .. }),
            "expected InvalidOptions, got {err}"
        ),
        Ok(_) => panic!("invalid options must be rejected"),
    };
    reject(ResilienceOptions {
        max_attempts: 0,
        ..ResilienceOptions::default()
    });
    reject(ResilienceOptions {
        checkpoint_interval: 0,
        ..ResilienceOptions::default()
    });
    reject(ResilienceOptions {
        backoff_us: -1.0,
        ..ResilienceOptions::default()
    });
    reject(ResilienceOptions {
        backoff_us: f64::NAN,
        ..ResilienceOptions::default()
    });
    // The valid default compiles.
    Skeleton::try_sequence(
        &f.backend,
        "valid",
        f.containers.clone(),
        options(ResilienceOptions::default()),
    )
    .expect("default resilience options are valid");
}

#[test]
fn invalidate_backend_purges_only_that_fingerprint() {
    // A backend shape no other test in this binary compiles for, so the
    // process-wide cache interaction stays deterministic.
    let f = fixture(3);
    let cached = SkeletonOptions {
        occ: OccLevel::Extended,
        ..Default::default() // cache: true
    };
    let sk1 = Skeleton::sequence(&f.backend, "cache-probe", f.containers.clone(), cached);
    assert!(!sk1.compiled_from_cache(), "first compile is a miss");
    let sk2 = Skeleton::sequence(&f.backend, "cache-probe", f.containers.clone(), cached);
    assert!(sk2.compiled_from_cache(), "second compile hits the cache");

    let purged = invalidate_backend(f.backend.fingerprint());
    assert!(purged >= 1, "the cached plan belongs to this fingerprint");

    let sk3 = Skeleton::sequence(&f.backend, "cache-probe", f.containers.clone(), cached);
    assert!(
        !sk3.compiled_from_cache(),
        "eviction invalidated the dead backend's plans"
    );
    // Purging an unknown fingerprint touches nothing.
    assert_eq!(invalidate_backend(0xDEAD_BEEF), 0);
}
