//! Proof that the executor's steady-state timing replay allocates
//! nothing: after a warm-up iteration (which sizes the scratch tables and
//! the simulator's link-state vector), further `execute_iters` calls must
//! perform zero heap allocations.
//!
//! This is its own test binary because it installs a counting global
//! allocator, and it contains exactly one `#[test]` so no sibling test
//! thread can allocate during the measured window.
//!
//! Scope: the sequence is timing-only (virtual storage, so the functional
//! replay is skipped) and has no reductions (collective scheduling lives
//! in neon-comm and builds its transfer lists per call by design). The
//! functional replay cannot be allocation-free regardless: every kernel
//! launch boxes the loading-lambda's closure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use neon_core::{OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Cell, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    KernelFn, KernelShape, MemLayout, Stencil, StorageMode,
};
use neon_sys::Backend;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates verbatim to `System`; only adds a counter.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

#[test]
fn steady_state_execute_does_not_allocate() {
    let b = Backend::dgx_a100(4);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(32, 32, 64), &[&st], StorageMode::Virtual).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 2, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 2, 0.0, MemLayout::SoA).unwrap();
    let upd = {
        let xc = x.clone();
        Container::compute("update", g.as_space(), move |ldr| {
            let xv = ldr.read_write(&xc);
            Box::new(move |c| xv.set(c, 0, xv.at(c, 0)))
        })
    };
    let sten = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("stencil", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
        })
    };
    // A shaped chunked container: the monomorphized kernel data path must
    // be as allocation-free in steady state as the per-cell one.
    let shaped = {
        let xc = x.clone();
        Container::compute_shaped(
            "shaped-scale",
            g.as_space(),
            KernelShape::Scale,
            move |ldr| {
                let xv = ldr.read_write(&xc);
                KernelFn::chunked(move |cells: &[Cell]| {
                    for &c in cells {
                        xv.set(c, 0, 2.0 * xv.at(c, 0));
                    }
                })
            },
        )
    };
    let host = Container::host("tick", 4, |_| Box::new(|| {}));
    let mut sk = Skeleton::sequence(
        &b,
        "steady-state",
        vec![upd, sten, shaped, host],
        SkeletonOptions {
            occ: OccLevel::TwoWayExtended,
            cache: false,
            ..Default::default()
        },
    );
    assert!(!sk.is_functional(), "virtual storage must be timing-only");

    const ITERS: usize = 16;
    sk.run_iters(ITERS); // warm up scratch tables + makespan buffer

    let before = ALLOCS.load(Ordering::Relaxed);
    let report = sk.run_iters(ITERS);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(report.executions, ITERS as u64);
    assert_eq!(
        after - before,
        0,
        "steady-state execute loop must not touch the heap"
    );
}
