//! Property tests of the temporal-fuse pass: `FusionLevel::Temporal(k)`
//! must be functionally invisible — bit-identical fields and reduction
//! scalars versus `FusionLevel::Conservative` for the same number of
//! *logical* iterations — at every device count, OCC level and halo
//! policy. When the super-step actually engages on a multi-device run it
//! must execute strictly fewer halo rounds (one deep exchange per `k`
//! iterations instead of one per iteration); when legality fails it must
//! fall back to exactly the conservative pipeline, halo round for halo
//! round.

use neon_core::{FusionLevel, HaloPolicy, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldRead as _, FieldStencil as _, FieldWrite as _,
    GridLike, MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;
use proptest::prelude::*;

/// One step of a randomized sequence, integer-valued so every arithmetic
/// result is exact in f64 and bit-identity is a real property.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `x ← 2x + 1` (read-write map; makes a later stencil-read of x an
    /// intra-step hazard, forcing fallback).
    MapX,
    /// `y ← x` (map read x, write y).
    CopyXy,
    /// `x ← y` (map read y, write x — the Jacobi pointer swap).
    CopyYx,
    /// `y ← Σ ngh(x)` (7-point stencil read of x).
    StencilXy,
    /// `x ← Σ ngh(y)` (7-point stencil read of y).
    StencilYx,
    /// `a ← x·y` (reduction — closes super-steps, forcing fallback).
    DotA,
}

const OPS: [Op; 6] = [
    Op::MapX,
    Op::CopyXy,
    Op::CopyYx,
    Op::StencilXy,
    Op::StencilYx,
    Op::DotA,
];

struct Setup {
    backend: Backend,
    grid: DenseGrid,
    x: Field<f64, DenseGrid>,
    y: Field<f64, DenseGrid>,
    dot_a: ScalarSet<f64>,
}

/// Ghost layers stored per side: enough for `k ≤ 4` at radius 1.
const HALO_CAP: usize = 4;

fn setup(n_dev: usize) -> Setup {
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    // 64 z-layers: middle partitions of an 8-device split keep the 8
    // layers the deep halo capacity requires.
    let grid = DenseGrid::with_halo_capacity(
        &backend,
        Dim3::new(4, 4, 64),
        &[&st],
        StorageMode::Real,
        HALO_CAP,
    )
    .unwrap();
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);
    y.fill(|a, b, c, _| ((a * 5 + b * 3 + c) % 7) as f64);
    let dot_a = ScalarSet::<f64>::new(n_dev, "a", 0.0, |p, q| p + q);
    Setup {
        backend,
        grid,
        x,
        y,
        dot_a,
    }
}

fn stencil_sum(
    g: &DenseGrid,
    name: &'static str,
    from: &Field<f64, DenseGrid>,
    to: &Field<f64, DenseGrid>,
) -> Container {
    let (fc, tc) = (from.clone(), to.clone());
    Container::compute_opts(
        name,
        g.as_space(),
        move |ldr| {
            let fv = ldr.read_stencil(&fc);
            let tv = ldr.write(&tc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += fv.ngh(c, slot, 0);
                }
                tv.set(c, 0, s);
            })
        },
        // 6 neighbor adds per cell: gives the virtual-clock model (and the
        // redundant-recompute meter) something nonzero to price.
        6,
        1.0,
    )
}

fn build_sequence(s: &Setup, ops_list: &[Op]) -> Vec<Container> {
    ops_list
        .iter()
        .map(|op| match op {
            Op::MapX => {
                let xc = s.x.clone();
                Container::compute("mapx", s.grid.as_space(), move |ldr| {
                    let xv = ldr.read_write(&xc);
                    Box::new(move |c| xv.set(c, 0, 2.0 * xv.at(c, 0) + 1.0))
                })
            }
            Op::CopyXy => {
                let (xc, yc) = (s.x.clone(), s.y.clone());
                Container::compute("copyxy", s.grid.as_space(), move |ldr| {
                    let xv = ldr.read(&xc);
                    let yv = ldr.write(&yc);
                    Box::new(move |c| yv.set(c, 0, xv.at(c, 0)))
                })
            }
            Op::CopyYx => ops::copy(&s.grid, &s.y, &s.x),
            Op::StencilXy => stencil_sum(&s.grid, "stxy", &s.x, &s.y),
            Op::StencilYx => stencil_sum(&s.grid, "styx", &s.y, &s.x),
            Op::DotA => ops::dot(&s.grid, &s.x, &s.y, &s.dot_a),
        })
        .collect()
}

/// Logical iterations per case; divisible by every tested `k`.
const LOGICAL_ITERS: usize = 12;

struct CaseResult {
    bits: Vec<u64>,
    dot: f64,
    halo_rounds: u64,
    redundant_flops: u64,
    /// Iterations one execution performed (k if the super-step engaged).
    iters_per_exec: usize,
}

/// Compile + run `LOGICAL_ITERS` logical iterations of one sequence at a
/// fusion level, returning the observable state and metered counters.
fn run_case(
    ops_list: &[Op],
    n_dev: usize,
    occ: OccLevel,
    halo: HaloPolicy,
    fusion: FusionLevel,
) -> CaseResult {
    let s = setup(n_dev);
    let seq = build_sequence(&s, ops_list);
    let mut sk = Skeleton::sequence(
        &s.backend,
        "temporalprop",
        seq,
        SkeletonOptions {
            occ,
            halo_policy: halo,
            fusion,
            ..Default::default()
        },
    );
    let iters_per_exec = sk.logical_iters_per_execution();
    assert_eq!(
        LOGICAL_ITERS % iters_per_exec,
        0,
        "test iteration count must divide by the super-step depth"
    );
    let report = sk.run_iters(LOGICAL_ITERS / iters_per_exec);
    let mut bits = Vec::new();
    s.x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    s.y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    CaseResult {
        bits,
        dot: s.dot_a.host_value(),
        halo_rounds: report.halo_rounds,
        redundant_flops: report.redundant_flops,
        iters_per_exec,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Temporal(k)` is bit-identical to `Conservative` over the same
    /// logical iteration count for arbitrary sequences — whether the
    /// super-step engages (deep halo + ghost recompute) or legality
    /// fails (fallback). When it engages on 2+ devices it runs strictly
    /// fewer halo rounds; when it falls back the rounds are equal.
    #[test]
    fn temporal_is_bit_identical_to_conservative(
        ops_list in prop::collection::vec((0usize..OPS.len()).prop_map(|i| OPS[i]), 1..4),
        k in 2u8..5,
        dev_pick in 0usize..4,
        occ_pick in 0usize..4,
        unified_halo in any::<bool>(),
    ) {
        let n_dev = [1, 2, 4, 8][dev_pick];
        let occ = OccLevel::ALL[occ_pick];
        let halo = if unified_halo {
            HaloPolicy::unified_default()
        } else {
            HaloPolicy::ExplicitTransfers
        };
        let cons = run_case(&ops_list, n_dev, occ, halo, FusionLevel::Conservative);
        let temp = run_case(&ops_list, n_dev, occ, halo, FusionLevel::Temporal(k));
        prop_assert_eq!(
            &temp.bits, &cons.bits,
            "temporal blocking changes field bits for {:?} k={} at {:?} on {} devices",
            ops_list, k, occ, n_dev
        );
        prop_assert_eq!(temp.dot, cons.dot, "temporal blocking changes dot a");
        if temp.iters_per_exec > 1 {
            prop_assert_eq!(temp.iters_per_exec, k as usize);
            if n_dev >= 2 {
                prop_assert!(
                    temp.halo_rounds < cons.halo_rounds,
                    "super-step must shrink halo rounds ({} -> {}) for {:?} k={} on {} devices",
                    cons.halo_rounds, temp.halo_rounds, ops_list, k, n_dev
                );
                prop_assert_eq!(
                    temp.halo_rounds * k as u64, cons.halo_rounds,
                    "one deep round per k iterations"
                );
            }
        } else {
            prop_assert_eq!(
                temp.halo_rounds, cons.halo_rounds,
                "fallback must match conservative round for round"
            );
            prop_assert_eq!(temp.redundant_flops, 0u64, "fallback recomputes nothing");
        }
    }
}

/// The canonical engagement case: a Jacobi-style sweep (stencil + pointer
/// swap). Deterministic over every `k` × device-count cell so counter
/// expectations can be exact.
#[test]
fn jacobi_super_step_engages_and_matches() {
    let jacobi = [Op::StencilXy, Op::CopyYx];
    for n_dev in [1usize, 2, 4, 8] {
        let cons = run_case(
            &jacobi,
            n_dev,
            OccLevel::Standard,
            HaloPolicy::ExplicitTransfers,
            FusionLevel::Conservative,
        );
        assert_eq!(cons.redundant_flops, 0, "conservative recomputes nothing");
        for k in 2u8..5 {
            let temp = run_case(
                &jacobi,
                n_dev,
                OccLevel::Standard,
                HaloPolicy::ExplicitTransfers,
                FusionLevel::Temporal(k),
            );
            assert_eq!(
                temp.iters_per_exec, k as usize,
                "super-step must engage on the Jacobi sweep (k={k}, {n_dev} devices)"
            );
            assert_eq!(
                temp.bits, cons.bits,
                "ghost-zone recompute must be bit-identical (k={k}, {n_dev} devices)"
            );
            if n_dev >= 2 {
                assert_eq!(
                    cons.halo_rounds, LOGICAL_ITERS as u64,
                    "conservative exchanges once per iteration"
                );
                assert_eq!(
                    temp.halo_rounds,
                    (LOGICAL_ITERS / k as usize) as u64,
                    "temporal exchanges once per super-step"
                );
                assert!(
                    temp.redundant_flops > 0,
                    "ghost recompute must be metered (k={k}, {n_dev} devices)"
                );
            } else {
                assert_eq!(temp.halo_rounds, 0);
                assert_eq!(cons.halo_rounds, 0);
                assert_eq!(
                    temp.redundant_flops, 0,
                    "one device has no ghost zone to recompute"
                );
            }
        }
    }
}

/// Reductions close super-steps: the same sweep plus a dot product must
/// fall back to the conservative pipeline, bit for bit and round for
/// round.
#[test]
fn reduction_closes_the_super_step() {
    let seq = [Op::StencilXy, Op::CopyYx, Op::DotA];
    let cons = run_case(
        &seq,
        4,
        OccLevel::Standard,
        HaloPolicy::ExplicitTransfers,
        FusionLevel::Conservative,
    );
    let temp = run_case(
        &seq,
        4,
        OccLevel::Standard,
        HaloPolicy::ExplicitTransfers,
        FusionLevel::Temporal(3),
    );
    assert_eq!(temp.iters_per_exec, 1, "reduction must force fallback");
    assert_eq!(temp.bits, cons.bits);
    assert_eq!(temp.dot, cons.dot);
    assert_eq!(temp.halo_rounds, cons.halo_rounds);
    assert_eq!(temp.redundant_flops, 0);
}

/// A grid without spare ghost capacity cannot host the expanded
/// iteration: the pass must fall back rather than build an illegal step.
#[test]
fn insufficient_ghost_capacity_falls_back() {
    let n_dev = 4;
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    // Default capacity = radius: ghost_capacity() is 0.
    let grid = DenseGrid::new(&backend, Dim3::new(4, 4, 64), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|a, b, c, _| ((a + b + c) % 5) as f64);
    let seq = vec![stencil_sum(&grid, "stxy", &x, &y), ops::copy(&grid, &y, &x)];
    let sk = Skeleton::sequence(
        &backend,
        "no-capacity",
        seq,
        SkeletonOptions {
            fusion: FusionLevel::Temporal(3),
            cache: false,
            ..Default::default()
        },
    );
    assert_eq!(
        sk.logical_iters_per_execution(),
        1,
        "no spare ghost layers: the super-step must not engage"
    );
}

/// Plan-cache round trip: a temporal plan compiled once must rebind onto
/// a structurally identical fresh sequence and still run the super-step
/// bit-identically.
#[test]
fn temporal_plan_rebinds_from_cache() {
    let run = || {
        let s = setup(4);
        let seq = build_sequence(&s, &[Op::StencilXy, Op::CopyYx]);
        let mut sk = Skeleton::sequence(
            &s.backend,
            "temporal-rebind",
            seq,
            SkeletonOptions {
                fusion: FusionLevel::Temporal(2),
                ..Default::default()
            },
        );
        assert_eq!(sk.logical_iters_per_execution(), 2);
        sk.run_iters(LOGICAL_ITERS / 2);
        let from_cache = sk.compiled_from_cache();
        let mut bits = Vec::new();
        s.x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
        s.y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
        (bits, from_cache)
    };
    let (first, _) = run();
    let (second, second_cached) = run();
    assert!(second_cached, "second compile must hit the plan cache");
    assert_eq!(first, second, "rebound super-step must match the original");
}
