//! Property tests of the pass pipeline: for randomized container
//! sequences, the inter-pass validator accepts the IR at every OCC level,
//! functional results are bit-identical across OCC levels, and a plan
//! rebound from the cache executes identically to a fresh compile.

use neon_core::{validate_ir, FunctionalMode, HaloPolicy, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;
use proptest::prelude::*;

/// One step of a randomized sequence. The fields are integer-valued so
/// every arithmetic result is exact in f64 — bit-identity across OCC
/// levels is then a real property, not a tolerance.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `x ← 2x + 1` (read-write map).
    MapX,
    /// `y ← y + 3` (read-write map).
    MapY,
    /// `y ← Σ ngh(x)` (7-point stencil read of x).
    StencilXy,
    /// `x ← Σ ngh(y)` (7-point stencil read of y).
    StencilYx,
    /// `a ← x·y` (reduction).
    DotA,
    /// `b ← y·y` (reduction).
    DotB,
}

const OPS: [Op; 6] = [
    Op::MapX,
    Op::MapY,
    Op::StencilXy,
    Op::StencilYx,
    Op::DotA,
    Op::DotB,
];

struct Setup {
    backend: Backend,
    grid: DenseGrid,
    x: Field<f64, DenseGrid>,
    y: Field<f64, DenseGrid>,
    dot_a: ScalarSet<f64>,
    dot_b: ScalarSet<f64>,
}

fn setup(n_dev: usize) -> Setup {
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(5, 4, 16), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);
    y.fill(|a, b, c, _| ((a * 5 + b * 3 + c) % 7) as f64);
    let dot_a = ScalarSet::<f64>::new(n_dev, "a", 0.0, |p, q| p + q);
    let dot_b = ScalarSet::<f64>::new(n_dev, "b", 0.0, |p, q| p + q);
    Setup {
        backend,
        grid,
        x,
        y,
        dot_a,
        dot_b,
    }
}

fn stencil_sum(
    g: &DenseGrid,
    name: &'static str,
    from: &Field<f64, DenseGrid>,
    to: &Field<f64, DenseGrid>,
) -> Container {
    let (fc, tc) = (from.clone(), to.clone());
    Container::compute(name, g.as_space(), move |ldr| {
        let fv = ldr.read_stencil(&fc);
        let tv = ldr.write(&tc);
        Box::new(move |c| {
            let mut s = 0.0;
            for slot in 0..6 {
                s += fv.ngh(c, slot, 0);
            }
            tv.set(c, 0, s);
        })
    })
}

fn build_sequence(s: &Setup, ops_list: &[Op]) -> Vec<Container> {
    ops_list
        .iter()
        .map(|op| match op {
            Op::MapX => {
                let xc = s.x.clone();
                Container::compute("mapx", s.grid.as_space(), move |ldr| {
                    let xv = ldr.read_write(&xc);
                    Box::new(move |c| xv.set(c, 0, 2.0 * xv.at(c, 0) + 1.0))
                })
            }
            Op::MapY => {
                let yc = s.y.clone();
                Container::compute("mapy", s.grid.as_space(), move |ldr| {
                    let yv = ldr.read_write(&yc);
                    Box::new(move |c| yv.set(c, 0, yv.at(c, 0) + 3.0))
                })
            }
            Op::StencilXy => stencil_sum(&s.grid, "stxy", &s.x, &s.y),
            Op::StencilYx => stencil_sum(&s.grid, "styx", &s.y, &s.x),
            Op::DotA => ops::dot(&s.grid, &s.x, &s.y, &s.dot_a),
            Op::DotB => ops::dot(&s.grid, &s.y, &s.y, &s.dot_b),
        })
        .collect()
}

/// Compile + run one randomized sequence, returning the full observable
/// state: both fields (exact bits) and both reduction scalars.
fn run_case(ops_list: &[Op], n_dev: usize, occ: OccLevel) -> (Vec<u64>, f64, f64) {
    run_case_opts(
        ops_list,
        n_dev,
        occ,
        FunctionalMode::default(),
        HaloPolicy::ExplicitTransfers,
    )
}

fn run_case_opts(
    ops_list: &[Op],
    n_dev: usize,
    occ: OccLevel,
    mode: FunctionalMode,
    halo: HaloPolicy,
) -> (Vec<u64>, f64, f64) {
    let s = setup(n_dev);
    let seq = build_sequence(&s, ops_list);
    let mut sk = Skeleton::try_sequence(
        &s.backend,
        "prop",
        seq,
        SkeletonOptions {
            occ,
            functional_mode: mode,
            halo_policy: halo,
            ..Default::default()
        },
    )
    .expect("validator must accept the pipeline's own output");
    // Validate the final IR once more from the outside (the pipeline
    // already validated between passes because options.validate is on).
    validate_ir(sk.graph(), Some(sk.schedule()), n_dev, true)
        .expect("final graph + schedule must satisfy all invariants");
    sk.run();
    let mut bits = Vec::new();
    s.x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    s.y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    (bits, s.dot_a.host_value(), s.dot_b.host_value())
}

fn op_sequences() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..OPS.len()).prop_map(|i| OPS[i]), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The validator accepts every intermediate IR for arbitrary
    /// sequences at every OCC level and device count, and the functional
    /// results do not depend on the OCC level — bit for bit.
    #[test]
    fn random_sequences_validate_and_agree_across_occ(
        ops_list in op_sequences(),
        n_dev in 1usize..=4,
    ) {
        let reference = run_case(&ops_list, n_dev, OccLevel::None);
        for occ in [
            OccLevel::Standard,
            OccLevel::Extended,
            OccLevel::TwoWayExtended,
        ] {
            let got = run_case(&ops_list, n_dev, occ);
            prop_assert_eq!(
                &got.0, &reference.0,
                "{:?} changes field bits for {:?} on {} devices",
                occ, ops_list, n_dev
            );
            prop_assert_eq!(got.1, reference.1, "{:?} changes dot a", occ);
            prop_assert_eq!(got.2, reference.2, "{:?} changes dot b", occ);
        }
    }

    /// The event-driven parallel replay (and the per-launch spawn mode)
    /// must be bit-identical to the serial reference walk for arbitrary
    /// sequences — across OCC levels, 1/2/4/8 devices, and both halo
    /// policies. The halo policy only shapes the virtual-clock replay, so
    /// it appearing in a functional diff would itself be a bug.
    #[test]
    fn parallel_replay_is_bit_identical_to_serial(
        ops_list in op_sequences(),
        dev_pick in 0usize..4,
        occ_pick in 0usize..4,
        unified_halo in any::<bool>(),
    ) {
        let n_dev = [1, 2, 4, 8][dev_pick];
        let occ = [
            OccLevel::None,
            OccLevel::Standard,
            OccLevel::Extended,
            OccLevel::TwoWayExtended,
        ][occ_pick];
        let halo = if unified_halo {
            HaloPolicy::unified_default()
        } else {
            HaloPolicy::ExplicitTransfers
        };
        let reference = run_case_opts(&ops_list, n_dev, occ, FunctionalMode::Serial, halo);
        for mode in [FunctionalMode::SpawnPerLaunch, FunctionalMode::Parallel] {
            let got = run_case_opts(&ops_list, n_dev, occ, mode, halo);
            prop_assert_eq!(
                &got.0, &reference.0,
                "{:?} changes field bits for {:?} at {:?} on {} devices",
                mode, ops_list, occ, n_dev
            );
            prop_assert_eq!(got.1, reference.1, "{:?} changes dot a", mode);
            prop_assert_eq!(got.2, reference.2, "{:?} changes dot b", mode);
        }
    }
}

/// A plan rebound from the cache must execute exactly like the fresh
/// compile it was rebound from: same ExecReport, span for span.
#[test]
fn cached_plan_reports_identical_to_fresh() {
    let run = |cache: bool| {
        let s = setup(3);
        let seq = build_sequence(
            &s,
            &[Op::MapX, Op::StencilXy, Op::DotB, Op::MapY, Op::StencilYx],
        );
        let mut sk = Skeleton::sequence(
            &s.backend,
            "cached-vs-fresh",
            seq,
            SkeletonOptions {
                occ: OccLevel::Extended,
                cache,
                ..Default::default()
            },
        );
        (sk.compiled_from_cache(), sk.run_iters(3))
    };
    let (_, fresh) = run(false);
    let _ = run(true); // warm the cache (miss or hit, either is fine)
    let (from_cache, cached) = run(true);
    assert!(from_cache, "second cached build must be a hit");
    assert_eq!(fresh.makespan.as_us(), cached.makespan.as_us());
    assert_eq!(fresh.kernel_time.as_us(), cached.kernel_time.as_us());
    assert_eq!(fresh.transfer_time.as_us(), cached.transfer_time.as_us());
    assert_eq!(fresh.host_time.as_us(), cached.host_time.as_us());
}
