//! Lifecycle tests of the parallel functional executor: the persistent
//! worker pool must survive panicking kernels (propagating the payload,
//! not deadlocking), coexist across executors, and join its threads on
//! drop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use neon_core::{FunctionalMode, OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    Container, DenseGrid, Dim3, Field, FieldRead as _, FieldWrite as _, GridLike, MemLayout,
    Stencil, StorageMode,
};
use neon_sys::Backend;

struct Fixture {
    backend: Backend,
    grid: DenseGrid,
    x: Field<f64, DenseGrid>,
    y: Field<f64, DenseGrid>,
}

fn fixture(n_dev: usize) -> Fixture {
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(6, 5, 12), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).unwrap();
    reset(&x, &y);
    Fixture {
        backend,
        grid,
        x,
        y,
    }
}

fn reset(x: &Field<f64, DenseGrid>, y: &Field<f64, DenseGrid>) {
    x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);
    y.fill(|a, b, c, _| ((a * 5 + b * 3 + c) % 7) as f64);
}

/// `y ← x + y`, panicking per cell while `bomb` is armed.
fn sum_container(f: &Fixture, bomb: Arc<AtomicBool>) -> Container {
    let (xc, yc) = (f.x.clone(), f.y.clone());
    Container::compute("sum", f.grid.as_space(), move |ldr| {
        let xv = ldr.read(&xc);
        let yv = ldr.read_write(&yc);
        let bomb = Arc::clone(&bomb);
        Box::new(move |c| {
            assert!(!bomb.load(Ordering::Relaxed), "armed kernel bomb");
            yv.set(c, 0, xv.at(c, 0) + yv.at(c, 0));
        })
    })
}

fn skeleton(f: &Fixture, seq: Vec<Container>, mode: FunctionalMode) -> Skeleton {
    Skeleton::sequence(
        &f.backend,
        "lifecycle",
        seq,
        SkeletonOptions {
            occ: OccLevel::Standard,
            functional_mode: mode,
            cache: false,
            ..Default::default()
        },
    )
}

fn field_bits(x: &Field<f64, DenseGrid>, y: &Field<f64, DenseGrid>) -> Vec<u64> {
    let mut bits = Vec::new();
    x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    bits
}

/// Threads of this process, from /proc (Linux-only; the CI target).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

#[test]
fn panicking_kernel_propagates_and_executor_survives() {
    let f = fixture(3);
    let bomb = Arc::new(AtomicBool::new(true));
    let seq = vec![sum_container(&f, Arc::clone(&bomb))];
    let mut sk = skeleton(&f, seq, FunctionalMode::Parallel);

    // Armed: the worker's panic must reach this thread (no deadlock —
    // the 60 s harness timeout is the implicit bound) with its payload.
    let err = catch_unwind(AssertUnwindSafe(|| sk.run())).expect_err("bomb must propagate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(msg.contains("armed kernel bomb"), "payload was {msg:?}");

    // Disarmed: the same executor (same pool) must run to completion and
    // produce exactly the serial reference, despite the aborted replay's
    // half-written state in between.
    bomb.store(false, Ordering::Relaxed);
    reset(&f.x, &f.y);
    sk.run();
    let got = field_bits(&f.x, &f.y);

    let r = fixture(3);
    let rbomb = Arc::new(AtomicBool::new(false));
    let mut reference = skeleton(&r, vec![sum_container(&r, rbomb)], FunctionalMode::Serial);
    reference.run();
    assert_eq!(got, field_bits(&r.x, &r.y));
}

#[test]
fn post_panic_execute_matches_fresh_executor_bit_for_bit() {
    // A panicking kernel must leave the executor fully usable: the next
    // execute on the *same* executor (whose worker pool was poisoned and
    // respawned) must be bit-identical to a brand-new parallel executor
    // running the same program on the same data.
    let f = fixture(4);
    let bomb = Arc::new(AtomicBool::new(true));
    let mut sk = skeleton(
        &f,
        vec![sum_container(&f, Arc::clone(&bomb))],
        FunctionalMode::Parallel,
    );
    catch_unwind(AssertUnwindSafe(|| sk.run())).expect_err("bomb must propagate");

    bomb.store(false, Ordering::Relaxed);
    reset(&f.x, &f.y);
    sk.run();
    let survivor = field_bits(&f.x, &f.y);

    let fresh = fixture(4);
    let mut fresh_sk = skeleton(
        &fresh,
        vec![sum_container(&fresh, Arc::new(AtomicBool::new(false)))],
        FunctionalMode::Parallel,
    );
    fresh_sk.run();
    assert_eq!(survivor, field_bits(&fresh.x, &fresh.y));
}

#[test]
fn two_parallel_executors_coexist() {
    let f1 = fixture(2);
    let f2 = fixture(4);
    let off = Arc::new(AtomicBool::new(false));
    let mut sk1 = skeleton(
        &f1,
        vec![sum_container(&f1, Arc::clone(&off))],
        FunctionalMode::Parallel,
    );
    let mut sk2 = skeleton(
        &f2,
        vec![sum_container(&f2, Arc::clone(&off))],
        FunctionalMode::Parallel,
    );
    // Interleave runs: each executor's pool and event table are private,
    // so neither replay may disturb the other.
    sk1.run();
    sk2.run();
    sk1.run();
    sk2.run();

    let r = fixture(2);
    let mut reference = skeleton(
        &r,
        vec![sum_container(&r, Arc::new(AtomicBool::new(false)))],
        FunctionalMode::Serial,
    );
    reference.run();
    reference.run();
    assert_eq!(field_bits(&f1.x, &f1.y), field_bits(&r.x, &r.y));
}

#[cfg(target_os = "linux")]
#[test]
fn dropping_the_executor_joins_its_workers() {
    let f = fixture(4);
    let off = Arc::new(AtomicBool::new(false));
    let mut sk = skeleton(&f, vec![sum_container(&f, off)], FunctionalMode::Parallel);
    sk.run(); // spawns the pool
    let with_pool = thread_count();
    drop(sk);
    // Joining is synchronous in drop, but give the kernel a moment to
    // retire the task structs before asserting (other tests' threads may
    // add noise; we only require a strict decrease from our own pool).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if thread_count() < with_pool {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker threads still alive after executor drop"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
