//! Property tests of the link fault domain's transient tier: for
//! randomized container sequences, seeded fault plans mixing kernel,
//! halo-transfer and collective-link transients are absorbed by the
//! retry machinery with zero escapes, and the functional results stay
//! bit-identical to a fault-free run — across 2/4/8 devices and every
//! OCC level. The virtual clock pays for retries; the numerics must
//! never notice them.

use neon_core::{FaultPlan, OccLevel, ResilienceOptions, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike,
    MemLayout, ScalarSet, Stencil, StorageMode,
};
use neon_sys::Backend;
use proptest::prelude::*;

/// One step of a randomized sequence. Integer-valued arithmetic keeps
/// every f64 result exact, so bit-identity is a real property.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `x ← 2x + 1` (read-write map).
    MapX,
    /// `y ← Σ ngh(x)` (7-point stencil read of x — halo traffic).
    StencilXy,
    /// `x ← Σ ngh(y)` (7-point stencil read of y — halo traffic).
    StencilYx,
    /// `a ← x·y` (reduction — collective traffic).
    DotA,
}

const OPS: [Op; 4] = [Op::MapX, Op::StencilXy, Op::StencilYx, Op::DotA];

struct Setup {
    backend: Backend,
    grid: DenseGrid,
    x: Field<f64, DenseGrid>,
    y: Field<f64, DenseGrid>,
    dot_a: ScalarSet<f64>,
}

fn setup(n_dev: usize) -> Setup {
    let backend = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let grid = DenseGrid::new(&backend, Dim3::new(4, 4, 16), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&grid, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&grid, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|a, b, c, _| ((a * 31 + b * 17 + c * 7) % 13) as f64 - 6.0);
    y.fill(|a, b, c, _| ((a * 5 + b * 3 + c) % 7) as f64);
    let dot_a = ScalarSet::<f64>::new(n_dev, "a", 0.0, |p, q| p + q);
    Setup {
        backend,
        grid,
        x,
        y,
        dot_a,
    }
}

fn stencil_sum(
    g: &DenseGrid,
    name: &'static str,
    from: &Field<f64, DenseGrid>,
    to: &Field<f64, DenseGrid>,
) -> Container {
    let (fc, tc) = (from.clone(), to.clone());
    Container::compute(name, g.as_space(), move |ldr| {
        let fv = ldr.read_stencil(&fc);
        let tv = ldr.write(&tc);
        Box::new(move |c| {
            let mut s = 0.0;
            for slot in 0..6 {
                s += fv.ngh(c, slot, 0);
            }
            tv.set(c, 0, s);
        })
    })
}

fn build_sequence(s: &Setup, ops_list: &[Op]) -> Vec<Container> {
    ops_list
        .iter()
        .map(|op| match op {
            Op::MapX => {
                let xc = s.x.clone();
                Container::compute("mapx", s.grid.as_space(), move |ldr| {
                    let xv = ldr.read_write(&xc);
                    Box::new(move |c| xv.set(c, 0, 2.0 * xv.at(c, 0) + 1.0))
                })
            }
            Op::StencilXy => stencil_sum(&s.grid, "stxy", &s.x, &s.y),
            Op::StencilYx => stencil_sum(&s.grid, "styx", &s.y, &s.x),
            Op::DotA => ops::dot(&s.grid, &s.x, &s.y, &s.dot_a),
        })
        .collect()
}

/// Run `iters` iterations of the sequence under `plan`, returning the
/// full observable state. Resilience stays at the default retry policy
/// (3 attempts), which dominates the ≤2 consecutive failures a seeded
/// plan injects per site.
fn run_case(
    ops_list: &[Op],
    n_dev: usize,
    occ: OccLevel,
    iters: u64,
    plan: Option<FaultPlan>,
) -> Vec<u64> {
    let s = setup(n_dev);
    let seq = build_sequence(&s, ops_list);
    let mut sk = Skeleton::sequence(
        &s.backend,
        "link-prop",
        seq,
        SkeletonOptions {
            occ,
            resilience: ResilienceOptions {
                enabled: true,
                checkpoint_interval: 2,
                ..ResilienceOptions::default()
            },
            cache: false,
            ..Default::default()
        },
    );
    let faulted = plan.is_some();
    if let Some(p) = plan {
        sk.install_fault_plan(p);
    }
    let run = sk
        .run_iters_resilient(0, iters as usize)
        .expect("transient-only plans must always heal");
    if faulted {
        assert_eq!(run.report.faults_injected, run.report.faults_recovered);
        assert_eq!(sk.fault_stats().escaped, 0, "no transient may escape");
    }
    let mut bits = Vec::new();
    s.x.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    s.y.for_each(|_, _, _, _, v| bits.push(v.to_bits()));
    bits.push(s.dot_a.host_value().to_bits());
    bits
}

fn op_sequences() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..OPS.len()).prop_map(|i| OPS[i]), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random programs × seeded link-fault plans × {2,4,8} devices × all
    /// OCC levels: retried transients are bit-invisible.
    #[test]
    fn transient_link_faults_are_bit_invisible(
        ops_list in op_sequences(),
        n_dev_idx in 0usize..3,
        occ_idx in 0usize..4,
        seed in any::<u32>(),
        n_faults in 1usize..6,
        iters in 3u64..6,
    ) {
        let n_dev = [2usize, 4, 8][n_dev_idx];
        let occ = [
            OccLevel::None,
            OccLevel::Standard,
            OccLevel::Extended,
            OccLevel::TwoWayExtended,
        ][occ_idx];
        let plan = FaultPlan::seeded_with_links(seed as u64, iters, n_dev, n_faults);
        let clean = run_case(&ops_list, n_dev, occ, iters, None);
        let faulted = run_case(&ops_list, n_dev, occ, iters, Some(plan));
        prop_assert_eq!(
            faulted, clean,
            "seed {} ({} faults) changed bits for {:?} on {} devices at {:?}",
            seed, n_faults, ops_list, n_dev, occ
        );
    }
}
