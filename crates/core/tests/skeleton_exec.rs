//! End-to-end tests of the Skeleton: functional correctness across device
//! counts and OCC levels, and timing behaviour of the virtual clock.

use neon_core::{OccLevel, Skeleton, SkeletonOptions};
use neon_domain::{
    ops, Container, DenseGrid, Dim3, Field, FieldRead as _, FieldStencil as _, FieldWrite as _,
    GridLike, MemLayout, Offset3, ScalarSet, SparseGrid, Stencil, StorageMode,
};
use neon_sys::{Backend, SpanKind};

/// Build the Laplacian stencil container (7-point, matrix-free).
fn laplacian<G: GridLike>(g: &G, input: &Field<f64, G>, out: &Field<f64, G>) -> Container {
    let (xc, yc) = (input.clone(), out.clone());
    Container::compute("laplacian", g.as_space(), move |ldr| {
        let xv = ldr.read_stencil(&xc);
        let yv = ldr.write(&yc);
        Box::new(move |c| {
            let mut s = 0.0;
            for slot in 0..6 {
                s += xv.ngh(c, slot, 0);
            }
            yv.set(c, 0, s - 6.0 * xv.at(c, 0));
        })
    })
}

fn checkerboard(x: i32, y: i32, z: i32) -> f64 {
    ((x * 31 + y * 17 + z * 7) % 13) as f64 - 6.0
}

/// Run map → laplacian → dot on `n_dev` devices and return (field, dot).
fn run_pipeline(n_dev: usize, occ: OccLevel) -> (Vec<f64>, f64) {
    let b = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let dim = Dim3::new(6, 5, 16);
    let g = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    let dot = ScalarSet::<f64>::new(n_dev, "dot", 0.0, |a, b| a + b);
    x.fill(|x, y, z, _| checkerboard(x, y, z));

    // A map that perturbs x (so the halo machinery is actually exercised),
    // then the stencil, then a reduction.
    let perturb = {
        let xc = x.clone();
        Container::compute("perturb", g.as_space(), move |ldr| {
            let xv = ldr.read_write(&xc);
            Box::new(move |c| xv.set(c, 0, xv.at(c, 0) * 2.0 + 1.0))
        })
    };
    let mut sk = Skeleton::sequence(
        &b,
        "pipeline",
        vec![perturb, laplacian(&g, &x, &y), ops::dot(&g, &y, &y, &dot)],
        SkeletonOptions::with_occ(occ),
    );
    assert!(sk.is_functional());
    sk.run();

    let mut vals = Vec::new();
    for z in 0..16 {
        for yy in 0..5 {
            for xx in 0..6 {
                vals.push(y.get(xx, yy, z, 0).unwrap());
            }
        }
    }
    (vals, dot.host_value())
}

#[test]
fn multi_gpu_matches_single_gpu() {
    let (ref_vals, ref_dot) = run_pipeline(1, OccLevel::None);
    for n in [2, 4, 8] {
        let (vals, dotv) = run_pipeline(n, OccLevel::None);
        assert_eq!(vals, ref_vals, "{n} devices diverge from 1 device");
        assert!((dotv - ref_dot).abs() < 1e-9 * ref_dot.abs().max(1.0));
    }
}

#[test]
fn occ_levels_do_not_change_results() {
    let (ref_vals, ref_dot) = run_pipeline(4, OccLevel::None);
    for occ in [
        OccLevel::Standard,
        OccLevel::Extended,
        OccLevel::TwoWayExtended,
    ] {
        let (vals, dotv) = run_pipeline(4, occ);
        assert_eq!(vals, ref_vals, "{occ} changes results");
        assert!((dotv - ref_dot).abs() < 1e-9 * ref_dot.abs().max(1.0));
    }
}

#[test]
fn occ_reduces_makespan_when_comm_bound() {
    // Large halo (card 8, SoA) + moderate compute: communication matters.
    let mk = |occ: OccLevel| {
        let b = Backend::gv100_pcie(4); // slow PCIe links stress comm
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(64, 64, 64), &[&st], StorageMode::Virtual).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 8, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 8, 0.0, MemLayout::SoA).unwrap();
        let upd = {
            let xc = x.clone();
            Container::compute("update", g.as_space(), move |ldr| {
                let xv = ldr.read_write(&xc);
                Box::new(move |c| xv.set(c, 0, xv.at(c, 0)))
            })
        };
        let sten = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("stencil", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
            })
        };
        let mut sk = Skeleton::sequence(
            &b,
            "comm-bound",
            vec![upd, sten],
            SkeletonOptions::with_occ(occ),
        );
        sk.run_iters(10).time_per_execution().as_us()
    };
    let none = mk(OccLevel::None);
    let std = mk(OccLevel::Standard);
    let ext = mk(OccLevel::Extended);
    assert!(
        std < none * 0.999,
        "Standard OCC should beat no OCC: {std} vs {none}"
    );
    assert!(
        ext <= std * 1.001,
        "Extended should not be slower here: {ext} vs {std}"
    );
}

#[test]
fn trace_shows_transfer_compute_overlap() {
    let b = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(32, 32, 32), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 4, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 4, 0.0, MemLayout::SoA).unwrap();
    let sten = {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("stencil", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
        })
    };
    let mut opts = SkeletonOptions::with_occ(OccLevel::Standard);
    opts.trace = true;
    let mut sk = Skeleton::sequence(&b, "traced", vec![sten], opts);
    sk.run();
    let trace = sk.take_trace().expect("trace enabled");
    let spans = trace.spans();
    let transfers: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Transfer)
        .collect();
    let kernels: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Kernel)
        .collect();
    assert!(!transfers.is_empty());
    // The internal kernel halves overlap some transfer in time.
    let internal: Vec<_> = kernels
        .iter()
        .filter(|k| k.name.ends_with(".int"))
        .collect();
    assert!(!internal.is_empty(), "stencil was split");
    let overlap = internal.iter().any(|k| {
        transfers
            .iter()
            .any(|t| k.start.as_us() < t.end.as_us() && t.start.as_us() < k.end.as_us())
    });
    assert!(overlap, "internal compute should overlap halo transfers");
}

#[test]
fn cg_style_scalar_flow() {
    // x ← x + alpha·y with alpha = dot(y,y)/len computed by a host node.
    let n_dev = 2;
    let b = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|_, _, _, _| 0.0);
    y.fill(|_, _, _, _| 2.0);
    let dot = ScalarSet::<f64>::new(n_dev, "dot", 0.0, |a, b| a + b);
    let alpha = ScalarSet::<f64>::new(n_dev, "alpha", 0.0, |a, b| a + b);
    let n_cells = g.active_cells() as f64;

    let host_alpha = {
        let (d, a) = (dot.clone(), alpha.clone());
        Container::host("alpha=dot/n", n_dev, move |ldr| {
            let dv = ldr.scalar_reader(&d);
            let aw = ldr.scalar_writer(&a);
            Box::new(move || aw.set(dv.get() / n_cells))
        })
    };
    let mut sk = Skeleton::sequence(
        &b,
        "cg-ish",
        vec![
            ops::dot(&g, &y, &y, &dot),
            host_alpha,
            ops::axpy_scalar(&g, &alpha, 1.0, &y, &x),
        ],
        SkeletonOptions::default(),
    );
    sk.run();
    // dot = 4·n, alpha = 4, x = 0 + 4·2 = 8.
    assert_eq!(dot.host_value(), 4.0 * n_cells);
    assert_eq!(alpha.host_value(), 4.0);
    x.for_each(|_, _, _, _, v| assert_eq!(v, 8.0));

    // Second iteration reuses the same skeleton: x = 8 + 4·2 = 16.
    sk.run();
    x.for_each(|_, _, _, _, v| assert_eq!(v, 16.0));
}

#[test]
fn cpu_backend_runs_single_stream() {
    let b = Backend::cpu();
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    x.fill(|_, _, _, _| 1.0);
    let mut sk = Skeleton::sequence(
        &b,
        "cpu",
        vec![laplacian(&g, &x, &y)],
        SkeletonOptions::default(),
    );
    assert_eq!(sk.schedule().num_streams, 1);
    sk.run();
    // Interior cells of a constant field have zero Laplacian.
    assert_eq!(y.get(2, 2, 4, 0), Some(0.0));
    // Corner cell: 3 missing neighbours (outside value 0).
    assert_eq!(y.get(0, 0, 0, 0), Some(-3.0));
}

#[test]
fn virtual_and_real_storage_time_identically() {
    let mk = |mode: StorageMode| {
        let b = Backend::dgx_a100(4);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(16, 16, 32), &[&st], mode).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let mut sk = Skeleton::sequence(
            &b,
            "sized",
            vec![laplacian(&g, &x, &y)],
            SkeletonOptions::with_occ(OccLevel::Standard),
        );
        sk.run_iters(3).makespan.as_us()
    };
    let real = mk(StorageMode::Real);
    let virt = mk(StorageMode::Virtual);
    assert!(
        (real - virt).abs() < 1e-9,
        "timing model must not depend on storage: {real} vs {virt}"
    );
}

#[test]
fn sparse_grid_through_skeleton() {
    let n_dev = 2;
    let b = Backend::dgx_a100(n_dev);
    let st = Stencil::seven_point();
    let dim = Dim3::new(8, 8, 16);
    // Active: a thick plate spanning all z (so both devices have cells).
    let dg = DenseGrid::new(&b, dim, &[&st], StorageMode::Real).unwrap();
    let sg = SparseGrid::new(&b, dim, &[&st], |x, _, _| x < 6, StorageMode::Real).unwrap();

    let dx = Field::<f64, _>::new(&dg, "dx", 1, 0.0, MemLayout::SoA).unwrap();
    let dy = Field::<f64, _>::new(&dg, "dy", 1, 0.0, MemLayout::SoA).unwrap();
    let sx = Field::<f64, _>::new(&sg, "sx", 1, 0.0, MemLayout::SoA).unwrap();
    let sy = Field::<f64, _>::new(&sg, "sy", 1, 0.0, MemLayout::SoA).unwrap();
    // The dense reference masks the same region by zeroing outside; to get
    // identical stencil results at interior active cells away from the
    // mask edge, fill both with the same values inside the mask.
    dx.fill(|x, y, z, _| if x < 6 { checkerboard(x, y, z) } else { 0.0 });
    sx.fill(|x, y, z, _| checkerboard(x, y, z));

    let mut skd = Skeleton::sequence(
        &b,
        "dense",
        vec![laplacian(&dg, &dx, &dy)],
        SkeletonOptions::default(),
    );
    skd.run();
    let mut sks = Skeleton::sequence(
        &b,
        "sparse",
        vec![laplacian(&sg, &sx, &sy)],
        SkeletonOptions::default(),
    );
    sks.run();

    // Compare at active cells at least one cell away from the mask edge
    // (x < 5): there the dense zero-padding and the sparse outside-value
    // semantics agree.
    let mut compared = 0;
    for z in 0..16 {
        for y in 0..8 {
            for x in 0..5 {
                let d = dy.get(x, y, z, 0).unwrap();
                let s = sy.get(x, y, z, 0).unwrap();
                assert!(
                    (d - s).abs() < 1e-12,
                    "mismatch at ({x},{y},{z}): {d} vs {s}"
                );
                compared += 1;
            }
        }
    }
    assert_eq!(compared, 5 * 8 * 16);
}

#[test]
fn offset_slot_lookup_is_stable() {
    let b = Backend::dgx_a100(1);
    let st = Stencil::d3q19();
    let g = DenseGrid::new(&b, Dim3::new(8, 8, 8), &[&st], StorageMode::Real).unwrap();
    for (q, o) in neon_domain::d3q19_offsets().iter().enumerate() {
        assert_eq!(g.slot_of(*o), Some(q));
    }
    assert_eq!(g.slot_of(Offset3::new(1, 1, 1)), None);
}

#[test]
fn dot_export_and_schedule_render() {
    let b = Backend::dgx_a100(2);
    let st = Stencil::seven_point();
    let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&st], StorageMode::Real).unwrap();
    let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
    let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
    let dot_s = ScalarSet::<f64>::new(2, "dot", 0.0, |a, b| a + b);
    let sk = Skeleton::sequence(
        &b,
        "render",
        vec![
            ops::set_value(&g, &x, 1.0),
            laplacian(&g, &x, &y),
            ops::dot(&g, &y, &y, &dot_s),
        ],
        // Fusion would merge laplacian+dot into one reduce node, which OCC
        // leaves whole — this test renders the split .int/.bnd halves.
        SkeletonOptions {
            fusion: neon_core::FusionLevel::Off,
            ..SkeletonOptions::with_occ(OccLevel::TwoWayExtended)
        },
    );
    let dot = sk.graph().to_dot("render");
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("lightblue"), "halo node styled: {dot}");
    assert!(dot.contains("palegreen"), "internal halves styled");
    assert!(dot.contains("style=dotted"), "hints rendered");
    assert!(dot.ends_with("}\n"));
    // Every node and edge present.
    for (i, _) in sk.graph().nodes().iter().enumerate() {
        assert!(dot.contains(&format!("n{i} [")));
    }
    let table = sk.schedule().render(sk.graph());
    assert!(table.contains("laplacian.int"));
    assert_eq!(table.lines().count(), sk.graph().len() + 1);
}

#[test]
fn unified_memory_halo_is_slower_and_defeats_occ() {
    use neon_core::HaloPolicy;
    let mk = |policy: HaloPolicy, occ: OccLevel| {
        let b = Backend::dgx_a100(4);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(128, 128, 64), &[&st], StorageMode::Virtual).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 8, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 8, 0.0, MemLayout::SoA).unwrap();
        let upd = {
            let xc = x.clone();
            Container::compute("upd", g.as_space(), move |ldr| {
                let xv = ldr.read_write(&xc);
                Box::new(move |c| xv.set(c, 0, xv.at(c, 0)))
            })
        };
        let sten = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("stn", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| yv.set(c, 0, xv.ngh(c, 0, 0)))
            })
        };
        let opts = SkeletonOptions {
            occ,
            halo_policy: policy,
            ..Default::default()
        };
        Skeleton::sequence(&b, "um", vec![upd, sten], opts)
            .run_iters(5)
            .time_per_execution()
            .as_us()
    };
    let explicit = mk(neon_core::HaloPolicy::ExplicitTransfers, OccLevel::None);
    let unified = mk(neon_core::HaloPolicy::unified_default(), OccLevel::None);
    assert!(
        unified > explicit * 1.05,
        "unified memory should pay a penalty: {unified} vs {explicit}"
    );
    // OCC helps the explicit model but cannot hide page faults.
    let explicit_occ = mk(neon_core::HaloPolicy::ExplicitTransfers, OccLevel::Standard);
    let unified_occ = mk(neon_core::HaloPolicy::unified_default(), OccLevel::Standard);
    let explicit_gain = explicit / explicit_occ;
    let unified_gain = unified / unified_occ;
    assert!(
        explicit_gain > unified_gain + 0.01,
        "OCC gain explicit {explicit_gain:.3} vs unified {unified_gain:.3}"
    );
}

#[test]
fn unified_memory_preserves_functional_results() {
    use neon_core::HaloPolicy;
    let run = |policy: HaloPolicy| {
        let b = Backend::dgx_a100(3);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 9), &[&st], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        x.fill(|a, b, c, _| (a + 2 * b + 3 * c) as f64);
        let mut opts = SkeletonOptions::with_occ(OccLevel::Standard);
        opts.halo_policy = policy;
        let mut sk = Skeleton::sequence(&b, "umf", vec![laplacian(&g, &x, &y)], opts);
        sk.run();
        let mut out = Vec::new();
        y.for_each(|_, _, _, _, v| out.push(v));
        out
    };
    let a = run(HaloPolicy::ExplicitTransfers);
    let b = run(HaloPolicy::unified_default());
    assert_eq!(a, b);
}
