//! The Skeleton — Neon's orchestrator (paper §V).
//!
//! Users hand the Skeleton a *sequential* list of containers and a
//! backend; it compiles them through the pass pipeline
//! ([`crate::pass::PassManager`]):
//!
//! 1. `dependency-graph` — extract the data dependency graph from the
//!    containers' recorded accesses,
//! 2. `fuse` — merge legal map chains (and a trailing reduction) into
//!    single fused sweeps,
//! 3. `multi-gpu` — insert halo updates, prune redundant edges,
//! 4. `occ` — split kernels at the configured OCC level,
//! 5. `collective-lowering` — turn finalizing reduces into collective
//!    nodes (merging independent same-level collectives when fusion is
//!    on),
//! 6. `schedule` — map nodes to streams, organize events, fix the enqueue
//!    order,
//!
//! validating pipeline invariants between passes, and then executes the
//! resulting [`CompiledPlan`] — repeatedly, for iterative solvers —
//! entirely without user intervention.
//!
//! Plans are cached process-wide (see [`crate::plan`]): a solver that
//! rebuilds a skeleton for the same sequence shape, backend and options
//! reuses the compiled graph and schedule, paying only a cheap rebinding
//! of its containers.

use std::collections::HashSet;
use std::sync::Arc;

use neon_set::{Checkpoint, ComputePattern, Container, StateHandle};
use neon_sys::{Backend, FaultPlan, FaultStats, RetryPolicy, SimTime, Trace};

use crate::collective::CollectiveMode;
use crate::exec::{CommMode, ExecError, ExecReport, Executor, FunctionalMode, HaloPolicy};
use crate::fuse::FusionLevel;
use crate::graph::Graph;
use crate::health::{HealthReport, StragglerMonitor, StragglerPolicy};
use crate::layout_select::LayoutPolicy;
use crate::occ::OccLevel;
use crate::pass::{CompileError, PassTiming};
use crate::plan::{self, CompiledPlan};
use crate::schedule::Schedule;

/// Fault-recovery policy of a skeleton (paper-style self-healing: retry
/// transient faults, checkpoint periodically, roll back when retry is
/// exhausted).
///
/// Pure runtime policy — it never changes the compiled plan, so it is
/// excluded from the plan-cache key like `trace` and `functional_mode`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceOptions {
    /// Master switch. When off, any injected fault escapes on its first
    /// failure (`max_attempts` is treated as 1) and surfaces as a
    /// structured [`ExecError`] from the `try_*` entry points.
    pub enabled: bool,
    /// Attempts allowed per faulted operation, including the first.
    /// Must be at least 1.
    pub max_attempts: u32,
    /// Base backoff before the first re-attempt, in virtual µs; doubles
    /// per retry. Must be finite and non-negative.
    pub backoff_us: f64,
    /// A checkpoint is captured every this many iterations in
    /// [`Skeleton::run_iters_resilient`]. Must be at least 1.
    pub checkpoint_interval: u32,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            enabled: false,
            max_attempts: 3,
            backoff_us: 50.0,
            checkpoint_interval: 4,
        }
    }
}

impl ResilienceOptions {
    /// The retry policy faults are judged against ([`RetryPolicy`] with a
    /// single attempt when recovery is disabled).
    pub fn retry_policy(&self) -> RetryPolicy {
        if self.enabled {
            RetryPolicy {
                max_attempts: self.max_attempts,
                backoff: SimTime::from_us(self.backoff_us),
            }
        } else {
            RetryPolicy {
                max_attempts: 1,
                backoff: SimTime::ZERO,
            }
        }
    }

    fn validate(&self) -> Result<(), CompileError> {
        if self.max_attempts == 0 {
            return Err(CompileError::InvalidOptions {
                reason: "resilience.max_attempts must be at least 1 \
                         (the first attempt counts)"
                    .to_string(),
            });
        }
        if self.checkpoint_interval == 0 {
            return Err(CompileError::InvalidOptions {
                reason: "resilience.checkpoint_interval must be at least 1".to_string(),
            });
        }
        if !self.backoff_us.is_finite() || self.backoff_us < 0.0 {
            return Err(CompileError::InvalidOptions {
                reason: format!(
                    "resilience.backoff_us must be finite and non-negative, got {}",
                    self.backoff_us
                ),
            });
        }
        Ok(())
    }
}

/// Configuration of a skeleton.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonOptions {
    /// The OCC optimization level (a single switch, as the paper argues a
    /// system should offer — no best level exists for all configurations).
    pub occ: OccLevel,
    /// Cap on concurrent compute streams per device.
    pub max_streams: usize,
    /// Honour scheduling hints in the task ordering (ablation switch).
    pub hints: bool,
    /// Model concurrent kernels as each getting full bandwidth (ablation
    /// switch; physically kernels share a device's bandwidth, so the
    /// default serializes them per device).
    pub kernel_concurrency: bool,
    /// Halo coherency implementation (paper §IV-C2): explicit peer
    /// transfers (default — required for OCC) or driver-managed unified
    /// memory (page faults serialize with the consuming kernels).
    pub halo_policy: HaloPolicy,
    /// How the functional replay parallelizes across devices: serial
    /// reference, a thread scope per launch, or the event-driven
    /// persistent worker pool (default). A runtime knob — it never
    /// changes the compiled plan, so it is excluded from the plan-cache
    /// key.
    pub functional_mode: FunctionalMode,
    /// Record an execution trace (timeline spans).
    pub trace: bool,
    /// Container fusion (the `fuse` compile pass): merge contiguous
    /// same-grid map chains — and the map side of a trailing reduction —
    /// into single fused sweeps, and combine independent same-level
    /// collectives into one multi-scalar all-reduce. `Conservative`
    /// (default) only fuses when provably bit-identical to `Off`.
    pub fusion: FusionLevel,
    /// How multi-device reductions are realized: lowered to collective
    /// nodes whose algorithm (ring / tree / host-staged / hierarchical)
    /// is picked from the topology and payload (`Auto`), or forced
    /// (`Fixed`).
    pub collectives: CollectiveMode,
    /// How communication completion gates downstream compute: whole-node
    /// epochs (default) or per-chunk events, where halo payloads stream
    /// in chunks and consuming kernels split into an interior span that
    /// overlaps in-flight chunks and a boundary span gated on the last
    /// arrival. Shapes the device plan's event table, so it is part of
    /// the plan-cache key.
    pub comm: CommMode,
    /// Run the invariant validator between compile passes (cheap on
    /// app-sized graphs; turn off for huge synthetic sequences).
    pub validate: bool,
    /// Consult the process-wide plan cache (same sequence shape + backend
    /// + options ⇒ reuse the compiled graph and schedule).
    pub cache: bool,
    /// Capture a text IR dump after every pass (see
    /// [`Skeleton::dump_ir`]). Independently, setting the `NEON_DUMP_IR`
    /// environment variable prints dumps to stderr.
    pub dump_ir: bool,
    /// Fault-recovery policy (runtime only — excluded from the plan-cache
    /// key). Validated by [`Skeleton::try_sequence`].
    pub resilience: ResilienceOptions,
    /// How the `layout-select` pass recommends field memory layouts
    /// (folded into the plan-cache key — recommendations feed allocation,
    /// so plans under different policies must never alias).
    pub layout: LayoutPolicy,
}

impl Default for SkeletonOptions {
    fn default() -> Self {
        SkeletonOptions {
            occ: OccLevel::Standard,
            max_streams: 8,
            hints: true,
            kernel_concurrency: false,
            halo_policy: HaloPolicy::ExplicitTransfers,
            functional_mode: FunctionalMode::default(),
            trace: false,
            fusion: FusionLevel::default(),
            collectives: CollectiveMode::Auto,
            comm: CommMode::Epoch,
            validate: true,
            cache: true,
            dump_ir: false,
            resilience: ResilienceOptions::default(),
            layout: LayoutPolicy::default(),
        }
    }
}

impl SkeletonOptions {
    /// Options with a given OCC level and **fusion off** — the paper's
    /// baseline executor, where the OCC level under study is what shapes
    /// the graph. Fusing a trailing reduction produces a node OCC leaves
    /// whole (see the `fuse` pass), which would flatten every OCC
    /// comparison built on this constructor; opt into fusion explicitly
    /// via `Default::default()` or the `fusion` field.
    pub fn with_occ(occ: OccLevel) -> Self {
        SkeletonOptions {
            occ,
            fusion: FusionLevel::Off,
            ..Default::default()
        }
    }
}

/// A compiled, executable application sequence.
pub struct Skeleton {
    name: String,
    options: SkeletonOptions,
    plan: Arc<CompiledPlan>,
    executor: Executor,
    from_cache: bool,
    /// Optional straggler monitor, fed one per-device kernel-span sample
    /// per execution routed through the skeleton's run entry points.
    monitor: Option<StragglerMonitor>,
}

impl Skeleton {
    /// Compile `containers` (in program order) for `backend`.
    ///
    /// Panics if a compile pass violates a pipeline invariant — which
    /// means a bug in the pipeline, not in user code. Use
    /// [`Skeleton::try_sequence`] to handle it as an error.
    pub fn sequence(
        backend: &Backend,
        name: &str,
        containers: Vec<Container>,
        options: SkeletonOptions,
    ) -> Self {
        Self::try_sequence(backend, name, containers, options)
            .unwrap_or_else(|e| panic!("compiling skeleton '{name}': {e}"))
    }

    /// [`Skeleton::sequence`], returning compile-pipeline failures.
    pub fn try_sequence(
        backend: &Backend,
        name: &str,
        containers: Vec<Container>,
        options: SkeletonOptions,
    ) -> Result<Self, CompileError> {
        options.resilience.validate()?;
        let (plan, from_cache) = plan::compile(backend, containers, options)?;
        let mut executor = Executor::from_plan(backend.clone(), Arc::clone(&plan));
        executor.set_kernel_concurrency(options.kernel_concurrency);
        executor.set_halo_policy(options.halo_policy);
        executor.set_collective_mode(options.collectives);
        executor.set_comm_mode(options.comm);
        executor.set_functional_mode(options.functional_mode);
        if options.trace {
            executor.enable_trace();
        }
        Ok(Skeleton {
            name: name.to_string(),
            options,
            plan,
            executor,
            from_cache,
            monitor: None,
        })
    }

    /// The skeleton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured options.
    pub fn options(&self) -> &SkeletonOptions {
        &self.options
    }

    /// The compiled plan (graph + schedule + bindings).
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// Whether this skeleton's plan came from the plan cache (rebound)
    /// rather than a fresh pipeline run.
    pub fn compiled_from_cache(&self) -> bool {
        self.from_cache
    }

    /// Logical iterations one [`Skeleton::run`] performs: `k` when the
    /// temporal-fuse pass built a `k`-iteration super-step, 1 otherwise.
    /// A solver wanting `n` logical iterations calls
    /// `run_iters(n / logical_iters_per_execution())`.
    pub fn logical_iters_per_execution(&self) -> usize {
        self.plan.temporal_k()
    }

    /// Per-pass compile wall-clock timings (empty for a cache hit).
    pub fn pass_timings(&self) -> &[PassTiming] {
        self.plan.pass_timings()
    }

    /// Total compile wall-clock time (zero for a cache hit).
    pub fn compile_time(&self) -> SimTime {
        // fold, not sum: an empty f64 sum is -0.0, which prints as "-0".
        let us = self
            .plan
            .pass_timings()
            .iter()
            .fold(0.0, |a, t| a + t.wall_us);
        SimTime::from_us(us)
    }

    /// The per-pass IR dumps, concatenated (requires `options.dump_ir`;
    /// empty otherwise). Deterministic across runs — data objects are
    /// labelled by role, not raw uid.
    pub fn dump_ir(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pass, dump) in self.plan.dumps() {
            let _ = writeln!(out, "== after {pass} ==");
            out.push_str(dump);
        }
        out
    }

    /// Compile-time trace spans ([`neon_sys::SpanKind::Compile`]), kept
    /// separate from the execution trace so execution timelines stay
    /// undistorted.
    pub fn compile_trace(&self) -> &Trace {
        self.plan.compile_trace()
    }

    /// The raw data dependency graph (before the multi-GPU transform).
    pub fn dependency_graph(&self) -> &Graph {
        self.plan.dependency_graph()
    }

    /// The final (multi-GPU, OCC-optimized) execution graph.
    pub fn graph(&self) -> &Graph {
        self.plan.graph()
    }

    /// The execution plan.
    pub fn schedule(&self) -> &Schedule {
        self.plan.schedule()
    }

    /// Whether kernels run on real data.
    pub fn is_functional(&self) -> bool {
        self.executor.is_functional()
    }

    /// Force timing-only execution (for huge benchmark domains).
    pub fn set_functional(&mut self, on: bool) {
        self.executor.set_functional(on);
    }

    /// Change how the functional replay parallelizes (see
    /// [`FunctionalMode`]). Takes effect on the next run.
    pub fn set_functional_mode(&mut self, mode: FunctionalMode) {
        self.executor.set_functional_mode(mode);
    }

    /// Per-iteration makespans of the most recent [`Skeleton::run_iters`].
    pub fn per_iteration_makespans(&self) -> &[SimTime] {
        self.executor.per_iteration_makespans()
    }

    /// Execute the sequence once.
    pub fn run(&mut self) -> ExecReport {
        let r = self.executor.execute();
        self.observe_health();
        r
    }

    /// Execute the sequence `n` times (an iterative solver's outer loop).
    ///
    /// With a straggler monitor enabled, each iteration contributes one
    /// per-device kernel-span sample to the EWMA.
    pub fn run_iters(&mut self, n: usize) -> ExecReport {
        if self.monitor.is_none() {
            return self.executor.execute_iters(n);
        }
        let mut total = ExecReport::default();
        for _ in 0..n {
            total.accumulate(self.run());
        }
        total
    }

    /// Average virtual time of one execution over `n` runs.
    pub fn time_per_iteration(&mut self, n: usize) -> SimTime {
        self.run_iters(n).time_per_execution()
    }

    /// Take the recorded trace (requires `options.trace`).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.executor.take_trace()
    }

    /// The underlying executor (virtual clock, fault injector, counters).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Mutable access to the underlying executor.
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.executor
    }

    /// Zero the virtual clock's cumulative utilization counters (kernel
    /// launches, bytes, link busy/contention); benchmarks call this
    /// between sweep configurations. Prefer [`Skeleton::counters_snapshot`]
    /// when other jobs may share the process — a reset is global.
    pub fn reset_counters(&mut self) {
        self.executor.reset_counters();
    }

    /// Snapshot the cumulative utilization counters (see
    /// [`Executor::counters_snapshot`]); subtract two snapshots to slice out
    /// one window's traffic without disturbing concurrent jobs.
    pub fn counters_snapshot(&self) -> neon_sys::CounterSnapshot {
        self.executor.counters_snapshot()
    }

    /// Install a fault plan; retry behavior follows
    /// `options.resilience` (recovery disabled ⇒ single attempt, every
    /// fault escapes as a structured error).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        let policy = self.options.resilience.retry_policy();
        self.executor.install_fault_plan(plan, policy);
    }

    /// Lifetime fault counters (zero without an installed plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.executor.fault_stats()
    }

    /// Set the logical iteration the next run executes as (the coordinate
    /// fault plans target).
    pub fn set_logical_iteration(&mut self, iteration: u64) {
        self.executor.set_logical_iteration(iteration);
    }

    /// Execute the sequence once, reporting failures as values instead of
    /// panicking (see [`Executor::try_execute`]).
    pub fn try_run(&mut self) -> Result<ExecReport, ExecError> {
        let r = self.executor.try_execute();
        if r.is_ok() {
            self.observe_health();
        }
        r
    }

    /// Enable the deterministic straggler monitor: every execution routed
    /// through this skeleton's run entry points feeds one per-device
    /// kernel-span sample (off the virtual clock —
    /// [`Executor::per_device_kernel_time`]) into an EWMA judged by
    /// `policy`. Replaces any previous monitor.
    pub fn enable_straggler_monitor(&mut self, policy: StragglerPolicy) {
        self.monitor = Some(StragglerMonitor::new(
            self.executor.queue().num_devices(),
            policy,
        ));
    }

    /// The current fleet-health snapshot, if a monitor is enabled.
    pub fn health_report(&self) -> Option<HealthReport> {
        self.monitor.as_ref().map(|m| m.report())
    }

    /// Fold the most recent execution's per-device kernel spans into the
    /// monitor (no-op when disabled). Called by the run entry points;
    /// exposed for callers that drive the executor directly.
    pub fn observe_health(&mut self) {
        if let Some(m) = &mut self.monitor {
            m.observe(self.executor.per_device_kernel_time());
        }
    }

    /// Type-erased state handles of every data object the sequence
    /// writes (fields written or read-written by kernels, reduction
    /// scalars), deduplicated — exactly the set a checkpoint must capture
    /// for a rollback to restore the iteration boundary.
    pub fn state_handles(&self) -> Vec<Arc<dyn StateHandle>> {
        let mut seen: HashSet<neon_set::DataUid> = HashSet::new();
        let mut out: Vec<Arc<dyn StateHandle>> = Vec::new();
        for c in self.plan.containers() {
            for a in c.accesses() {
                if !(a.mode.writes() || a.pattern == ComputePattern::Reduce) {
                    continue;
                }
                if let Some(h) = &a.state {
                    if seen.insert(h.state_uid()) {
                        out.push(Arc::clone(h));
                    }
                }
            }
        }
        out
    }

    /// Snapshot the sequence's write set. `iteration` is the first
    /// iteration to (re-)execute after a restore.
    pub fn capture_checkpoint(&self, iteration: u64) -> Checkpoint {
        Checkpoint::capture(iteration, &self.state_handles())
    }

    /// Run iterations `start .. start + n` with periodic checkpoints and
    /// automatic rollback.
    ///
    /// A transient fault that escapes retry restores the last checkpoint
    /// and replays from it (fault specs are consumed once, so the replay
    /// passes clean — and because recovered faults have no data effects,
    /// the final state is bit-identical to a fault-free run). A device
    /// loss cannot be healed at this level: the last checkpoint is
    /// restored and the error is returned so the caller can rebuild on
    /// the surviving devices and resume from `completed`.
    pub fn run_iters_resilient(
        &mut self,
        start: u64,
        n: usize,
    ) -> Result<ResilientRun, Box<ResilientError>> {
        let interval = u64::from(self.options.resilience.checkpoint_interval.max(1));
        let handles = self.state_handles();
        let mut checkpoint = Checkpoint::capture(start, &handles);
        let mut report = ExecReport::default();
        let mut rollbacks = 0u64;
        let mut replayed = 0u64;
        let end = start + n as u64;
        let mut i = start;
        while i < end {
            self.executor.set_logical_iteration(i);
            match self.executor.try_execute() {
                Ok(r) => {
                    report.accumulate(r);
                    self.observe_health();
                    i += 1;
                    if (i - start).is_multiple_of(interval) && i < end {
                        checkpoint = Checkpoint::capture(i, &handles);
                    }
                }
                Err(ExecError::TransientFaultEscaped { .. }) => {
                    checkpoint.restore();
                    rollbacks += 1;
                    replayed += i - checkpoint.iteration();
                    i = checkpoint.iteration();
                }
                Err(error) => {
                    checkpoint.restore();
                    let completed = checkpoint.iteration();
                    return Err(Box::new(ResilientError {
                        error,
                        checkpoint,
                        completed,
                    }));
                }
            }
        }
        Ok(ResilientRun {
            report,
            rollbacks,
            replayed,
        })
    }
}

/// Outcome of a completed [`Skeleton::run_iters_resilient`].
#[derive(Debug)]
pub struct ResilientRun {
    /// Aggregated report over every *successful* iteration (aborted
    /// iterations contribute no report; their virtual time still advanced
    /// the clock, which is how recovery overhead shows up in makespans).
    pub report: ExecReport,
    /// Checkpoint restores performed.
    pub rollbacks: u64,
    /// Successful iterations that had to be re-executed after rollbacks.
    pub replayed: u64,
}

/// A failure [`Skeleton::run_iters_resilient`] could not heal. The data
/// objects have already been restored to `checkpoint`'s state.
#[derive(Debug)]
pub struct ResilientError {
    /// The unhealable failure (device loss, or a structural error).
    pub error: ExecError,
    /// The checkpoint that was restored (its `iteration()` is the first
    /// iteration to re-run after the caller recovers).
    pub checkpoint: Checkpoint,
    /// Iterations committed before the failure.
    pub completed: u64,
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} iterations committed, state rolled back)",
            self.error, self.completed
        )
    }
}

impl std::error::Error for ResilientError {}
