//! The Skeleton — Neon's orchestrator (paper §V).
//!
//! Users hand the Skeleton a *sequential* list of containers and a
//! backend; it:
//!
//! 1. extracts the data dependency graph from the containers' recorded
//!    accesses,
//! 2. builds the multi-GPU graph (halo updates, redundancy pruning),
//! 3. applies the configured OCC optimization,
//! 4. schedules the graph onto streams (BFS mapping, events, task order),
//!
//! and then executes the plan — repeatedly, for iterative solvers —
//! entirely without user intervention.

use neon_set::Container;
use neon_sys::{Backend, SimTime, Trace};

use crate::collective::{lower_collectives, CollectiveMode};
use crate::exec::{ExecReport, Executor, HaloPolicy};
use crate::graph::{build_dependency_graph, Graph};
use crate::multigpu::to_multigpu_graph;
use crate::occ::{apply_occ, OccLevel};
use crate::schedule::{build_schedule_opts, Schedule};

/// Configuration of a skeleton.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonOptions {
    /// The OCC optimization level (a single switch, as the paper argues a
    /// system should offer — no best level exists for all configurations).
    pub occ: OccLevel,
    /// Cap on concurrent compute streams per device.
    pub max_streams: usize,
    /// Honour scheduling hints in the task ordering (ablation switch).
    pub hints: bool,
    /// Model concurrent kernels as each getting full bandwidth (ablation
    /// switch; physically kernels share a device's bandwidth, so the
    /// default serializes them per device).
    pub kernel_concurrency: bool,
    /// Halo coherency implementation (paper §IV-C2): explicit peer
    /// transfers (default — required for OCC) or driver-managed unified
    /// memory (page faults serialize with the consuming kernels).
    pub halo_policy: HaloPolicy,
    /// Record an execution trace (timeline spans).
    pub trace: bool,
    /// How multi-device reductions are realized: lowered to collective
    /// nodes whose algorithm (ring / tree / host-staged) is picked from
    /// the topology and payload (`Auto`), or forced (`Fixed`).
    pub collectives: CollectiveMode,
}

impl Default for SkeletonOptions {
    fn default() -> Self {
        SkeletonOptions {
            occ: OccLevel::Standard,
            max_streams: 8,
            hints: true,
            kernel_concurrency: false,
            halo_policy: HaloPolicy::ExplicitTransfers,
            trace: false,
            collectives: CollectiveMode::Auto,
        }
    }
}

impl SkeletonOptions {
    /// Options with a given OCC level, defaults otherwise.
    pub fn with_occ(occ: OccLevel) -> Self {
        SkeletonOptions {
            occ,
            ..Default::default()
        }
    }
}

/// A compiled, executable application sequence.
pub struct Skeleton {
    name: String,
    options: SkeletonOptions,
    dependency_graph: Graph,
    graph: Graph,
    schedule: Schedule,
    executor: Executor,
}

impl Skeleton {
    /// Compile `containers` (in program order) for `backend`.
    pub fn sequence(
        backend: &Backend,
        name: &str,
        containers: Vec<Container>,
        options: SkeletonOptions,
    ) -> Self {
        let dependency_graph = build_dependency_graph(&containers);
        let mg = to_multigpu_graph(&dependency_graph, backend.num_devices());
        let occ = apply_occ(&mg, options.occ);
        // Lower finalizing reduces to collective nodes after OCC (so the
        // boundary half is visible) and before scheduling (so the nodes
        // get streams and events like everything else).
        let occ = lower_collectives(&occ, backend.num_devices());
        let max_streams = if backend.concurrent_kernels() {
            options.max_streams
        } else {
            1 // the CPU back end runs one kernel at a time (paper §IV-A)
        };
        let schedule = build_schedule_opts(&occ, max_streams, options.hints);
        let mut executor = Executor::new(backend.clone(), occ.clone(), schedule.clone());
        executor.set_kernel_concurrency(options.kernel_concurrency);
        executor.set_halo_policy(options.halo_policy);
        executor.set_collective_mode(options.collectives);
        if options.trace {
            executor.enable_trace();
        }
        Skeleton {
            name: name.to_string(),
            options,
            dependency_graph,
            graph: occ,
            schedule,
            executor,
        }
    }

    /// The skeleton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured options.
    pub fn options(&self) -> &SkeletonOptions {
        &self.options
    }

    /// The raw data dependency graph (before the multi-GPU transform).
    pub fn dependency_graph(&self) -> &Graph {
        &self.dependency_graph
    }

    /// The final (multi-GPU, OCC-optimized) execution graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The execution plan.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Whether kernels run on real data.
    pub fn is_functional(&self) -> bool {
        self.executor.is_functional()
    }

    /// Force timing-only execution (for huge benchmark domains).
    pub fn set_functional(&mut self, on: bool) {
        self.executor.set_functional(on);
    }

    /// Execute the sequence once.
    pub fn run(&mut self) -> ExecReport {
        self.executor.execute()
    }

    /// Execute the sequence `n` times (an iterative solver's outer loop).
    pub fn run_iters(&mut self, n: usize) -> ExecReport {
        self.executor.execute_iters(n)
    }

    /// Average virtual time of one execution over `n` runs.
    pub fn time_per_iteration(&mut self, n: usize) -> SimTime {
        self.run_iters(n).time_per_execution()
    }

    /// Take the recorded trace (requires `options.trace`).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.executor.take_trace()
    }
}
