//! Per-device task partitions and the event dependency table.
//!
//! The virtual-clock replay models per-GPU streams and events; the
//! functional replay should *realize* them. A [`DevicePlan`] is the
//! compile-time product that makes this possible without any allocation in
//! the hot loop: the compiled schedule's task list is partitioned into one
//! step list per device worker, and every cross-device ordering constraint
//! is lowered to a wait on an *event slot* — an atomic epoch counter the
//! producing step signals when it completes (paper §IV-D's stream/event
//! mapping, realized on host threads).
//!
//! ## Slot layout
//!
//! Every graph node owns `ndev + 2` consecutive slots:
//!
//! * `slot(n, d)` (`d < ndev`) — device `d`'s share of node `n` is done
//!   (kernel launch finished, or halo copies *into* `d` finished);
//! * `aux_init(n)` — node `n`'s reduction partials were reset;
//! * `aux_done(n)` — node `n`'s owner-side epilogue is done (host step,
//!   collective fold, or reduce finalize).
//!
//! A slot stores the executor epoch in which it was last signaled, so
//! nothing is cleared between iterations and stale values from an aborted
//! (panicked) replay are automatically invalid.
//!
//! ## Wait rules
//!
//! For a consumer step of node `u` running on device `d`, each data parent
//! `p` (from the precomputed parent lists) contributes:
//!
//! * `p` = host / collective / finalizing compute → `aux_done(p)`;
//! * `p` = plain compute → `slot(p, d)` — the per-device relaxation that
//!   creates real overlap: kernels only touch their own partition's
//!   storage, so device `d` never needs to wait for a parent's launch on
//!   another device;
//! * `p` = halo → `slot(p, d)` plus `slot(p, e)` for every device `e` that
//!   pulls *from* `d` — those pulls read `d`'s boundary cells, so anything
//!   that may overwrite them must wait for the remote readers too.
//!
//! Owner-side steps (reduce init/finalize, host, collective, whole-exchange
//! halo) wait conservatively on every parent over every device.
//!
//! Deadlock freedom: each worker walks its steps in schedule order, and a
//! step only waits on slots of earlier tasks or on the fixed intra-task
//! chain `init → kernels → finalize` — induction over the task index.

use neon_set::HaloDescriptor;
use neon_sys::topology::{LinkModel, Topology};

use crate::exec::CommMode;
use crate::graph::{Graph, NodeId, NodeKind};
use crate::schedule::Schedule;

/// How halo payloads are split into pipelined chunks.
///
/// A chunk should be large enough that the per-chunk round-trip latency
/// amortizes, and small enough that the first chunk lands early (that
/// early arrival is what lets a consumer's interior span overlap the rest
/// of the stream). The classic sizing rule is a small multiple of the
/// link's *bandwidth–delay product* — the bytes in flight on the wire at
/// full rate — so [`ChunkPolicy::for_link`] derives `chunk_bytes` from
/// `latency × bandwidth` instead of hard-coding one size for every
/// interconnect: a PCIe 3 link (18 µs × 6.5 GB/s ≈ 114 KiB BDP) chunks at
/// 1 MiB, an NVLink wire (9.5 µs × 173 GB/s ≈ 1.6 MiB BDP) at 16 MiB.
///
/// The policy is baked into the [`DevicePlan`] at compile time (the chunk
/// counts shape the event table), so a cache-hit rebind — which has no
/// backend in hand — reuses the stored policy and stays consistent with
/// the timing replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Target bytes per chunk (power of two).
    pub chunk_bytes: u64,
    /// Cap on chunks per transfer (bounds event-slot growth).
    pub max_chunks: u64,
}

impl ChunkPolicy {
    /// The historical fixed policy (1 MiB chunks, at most 8), which is
    /// also what [`ChunkPolicy::for_link`] derives for a PCIe-class link.
    pub const DEFAULT: ChunkPolicy = ChunkPolicy {
        chunk_bytes: 1 << 20,
        max_chunks: 8,
    };

    /// Derive the policy from one link: chunks of 8× the bandwidth–delay
    /// product, rounded up to a power of two and clamped to
    /// `[1 MiB, 16 MiB]`.
    pub fn for_link(link: &LinkModel) -> ChunkPolicy {
        // µs × GB/s = 1e-6 s × 1e9 B/s = 1e3 bytes.
        let bdp_bytes = link.latency_us * link.bandwidth_gb_s * 1e3;
        let target = (8.0 * bdp_bytes).max(1.0) as u64;
        ChunkPolicy {
            chunk_bytes: target.next_power_of_two().clamp(1 << 20, 16 << 20),
            max_chunks: 8,
        }
    }

    /// Derive the policy from a topology's *slowest* distinct-pair link
    /// (smallest bandwidth, then largest latency): halos cross every kind
    /// of wire the partition touches, and chunking for the slowest one
    /// keeps the policy a single plan-wide constant. Single-device
    /// topologies fall back to [`ChunkPolicy::DEFAULT`].
    pub fn for_topology(topo: &Topology) -> ChunkPolicy {
        let n = topo.num_devices();
        let mut slowest: Option<LinkModel> = None;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let l = *topo.link(neon_sys::DeviceId(s), neon_sys::DeviceId(d));
                let worse = slowest.is_none_or(|b| {
                    l.bandwidth_gb_s < b.bandwidth_gb_s
                        || (l.bandwidth_gb_s == b.bandwidth_gb_s && l.latency_us > b.latency_us)
                });
                if worse {
                    slowest = Some(l);
                }
            }
        }
        slowest.map_or(ChunkPolicy::DEFAULT, |l| ChunkPolicy::for_link(&l))
    }

    /// Split a transfer of `bytes` into `(chunks, bytes_per_chunk)`.
    pub fn chunks(&self, bytes: u64) -> (usize, u64) {
        if bytes == 0 {
            return (1, 0);
        }
        let c = bytes
            .div_ceil(self.chunk_bytes.max(1))
            .clamp(1, self.max_chunks.max(1));
        (c as usize, bytes.div_ceil(c))
    }
}

/// [`ChunkPolicy::DEFAULT`]'s split — the policy the collective engine's
/// pipelining defaults mirror (1 MiB chunks, at most 8 per transfer).
/// Plans compiled against a real backend use the topology-derived policy
/// stored in their [`DevicePlan`] instead.
pub fn comm_chunks(bytes: u64) -> (usize, u64) {
    ChunkPolicy::DEFAULT.chunks(bytes)
}

/// What a single per-device step executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevAction {
    /// Reset reduction partials (owner only, before the kernels).
    ReduceInit,
    /// Run the node's compute lambda over this device's partition.
    Kernel,
    /// Execute the halo copies whose destination is this device.
    HaloPull,
    /// Execute a whole halo exchange on the owner (fallback for exchanges
    /// without per-device support).
    HaloAll,
    /// Run a host container (owner only).
    Host,
    /// Fold collective partials into the host value (owner only).
    Collective,
    /// Fold reduction partials into the host value (owner only).
    ReduceFinalize,
}

/// One entry of a device's step list.
#[derive(Debug, Clone, Copy)]
pub struct DevStep {
    /// The graph node this step belongs to.
    pub node: u32,
    /// What to execute.
    pub action: DevAction,
    /// Start of this step's wait-slot range in the plan's flat wait pool
    /// (resolve with [`DevicePlan::waits_of`]).
    pub wait_start: u32,
    /// Length of the wait-slot range.
    pub wait_len: u32,
}

/// The compiled per-device task partition + event table of one schedule.
///
/// Purely structural (node indices and slot numbers, no containers), so a
/// rebound plan can share it unchanged whenever the graph structure and
/// halo src/dst pairs are unchanged.
#[derive(Debug, Clone)]
pub struct DevicePlan {
    ndev: usize,
    slots_per_node: usize,
    num_slots: usize,
    /// One step list per device, each in schedule task order.
    steps: Vec<Vec<DevStep>>,
    /// Flat pool of wait slots, referenced by [`DevStep`] ranges.
    waits: Vec<u32>,
    /// Whether this plan was built under [`CommMode::ChunkEvents`] (halo
    /// consumers wait fine-grained per-chunk arrival slots).
    chunked: bool,
    /// Per-node base of the chunk-slot region (`u32::MAX` = none).
    chunk_base: Vec<u32>,
    /// Per-node chunk-slot count per device (0 = none).
    chunk_counts: Vec<u32>,
    /// The chunking policy the plan was built under — the timing replay
    /// reads it back so its per-chunk transfer spans agree with the event
    /// table, and a cache-hit rebind (no backend in hand) re-derives chunk
    /// counts from it.
    policy: ChunkPolicy,
}

impl DevicePlan {
    /// Number of devices (= worker threads).
    pub fn ndev(&self) -> usize {
        self.ndev
    }

    /// Total number of event slots an executor must allocate.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Event slot for device `dev`'s share of `node`.
    #[inline]
    pub fn slot(&self, node: usize, dev: usize) -> usize {
        node * self.slots_per_node + dev
    }

    /// Event slot for `node`'s reduction-partial reset.
    #[inline]
    pub fn aux_init(&self, node: usize) -> usize {
        node * self.slots_per_node + self.ndev
    }

    /// Event slot for `node`'s owner-side epilogue.
    #[inline]
    pub fn aux_done(&self, node: usize) -> usize {
        node * self.slots_per_node + self.ndev + 1
    }

    /// Device `dev`'s step list, in execution order.
    pub fn steps(&self, dev: usize) -> &[DevStep] {
        &self.steps[dev]
    }

    /// The event slots `step` must wait for.
    #[inline]
    pub fn waits_of(&self, step: &DevStep) -> &[u32] {
        &self.waits[step.wait_start as usize..(step.wait_start + step.wait_len) as usize]
    }

    /// Whether the plan carries per-chunk halo arrival slots (built under
    /// [`CommMode::ChunkEvents`]).
    pub fn chunked(&self) -> bool {
        self.chunked
    }

    /// The chunking policy this plan was built under.
    pub fn chunk_policy(&self) -> ChunkPolicy {
        self.policy
    }

    /// Number of per-device chunk slots of `node` (0 unless the node is a
    /// per-device halo exchange in a chunked plan).
    #[inline]
    pub fn chunk_count(&self, node: usize) -> usize {
        self.chunk_counts.get(node).map_or(0, |&c| c as usize)
    }

    /// Event slot signaled when chunk `k` of node `node`'s halo payload
    /// into device `dev` has landed.
    #[inline]
    pub fn chunk_slot(&self, node: usize, dev: usize, k: usize) -> usize {
        debug_assert!(k < self.chunk_count(node));
        self.chunk_base[node] as usize + dev * self.chunk_counts[node] as usize + k
    }

    /// Total number of steps across all devices.
    pub fn total_steps(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }

    /// Deterministic text rendering (for IR dumps).
    pub fn dump(&self, g: &Graph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "device-plan: {} devices, {} slots",
            self.ndev, self.num_slots
        );
        for (d, list) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "  dev{d}: {} steps", list.len());
            for s in list {
                let waits = self.waits_of(s);
                let w = if waits.is_empty() {
                    "-".to_string()
                } else {
                    waits
                        .iter()
                        .map(|x| format!("e{x}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = writeln!(
                    out,
                    "    {:?} n{} ({}) wait={w}",
                    s.action,
                    s.node,
                    g.node(s.node as usize).name
                );
            }
        }
        out
    }
}

/// How a parent node publishes its completion — decides which slots its
/// consumers wait on.
#[derive(Clone, Copy)]
enum ParentSignal {
    /// Per-device slots (plain compute launches).
    PerDevice,
    /// Per-device slots, plus cross-waits for writers (halo exchanges; the
    /// index selects the node's `srcs`/`dsts` tables).
    Halo(usize),
    /// A single owner-side done slot.
    AuxDone,
}

/// Partition `schedule`'s tasks over `ndev` device workers and lower every
/// data dependency to event-slot waits.
///
/// `parents[n]` must be the deduplicated data-edge parents of node `n`
/// (as precomputed by the plan layer).
pub fn build_device_plan(
    graph: &Graph,
    schedule: &Schedule,
    parents: &[Vec<NodeId>],
    ndev: usize,
) -> DevicePlan {
    build_device_plan_with(graph, schedule, parents, ndev, CommMode::Epoch)
}

/// [`build_device_plan`] with an explicit communication-signaling mode.
///
/// Under [`CommMode::ChunkEvents`] every per-device halo node gets an
/// extra region of `chunks × ndev` event slots — one per arriving chunk
/// per destination — and its consumers wait those fine-grained arrival
/// slots instead of the whole-pull slot. The pull signals both, so the
/// ordering (and therefore the functional result) is identical; what
/// changes is the *granularity* the event table can express, mirroring
/// the per-chunk transfer spans of the timing replay.
pub fn build_device_plan_with(
    graph: &Graph,
    schedule: &Schedule,
    parents: &[Vec<NodeId>],
    ndev: usize,
    comm: CommMode,
) -> DevicePlan {
    build_device_plan_policy(graph, schedule, parents, ndev, comm, ChunkPolicy::DEFAULT)
}

/// [`build_device_plan_with`] under an explicit [`ChunkPolicy`] (the pass
/// pipeline derives one from the backend topology's slowest link; see
/// [`ChunkPolicy::for_topology`]).
pub fn build_device_plan_policy(
    graph: &Graph,
    schedule: &Schedule,
    parents: &[Vec<NodeId>],
    ndev: usize,
    comm: CommMode,
    policy: ChunkPolicy,
) -> DevicePlan {
    assert!(ndev >= 1);
    let n = graph.len();
    let slots_per_node = ndev + 2;
    let chunked = comm == CommMode::ChunkEvents;

    // Per halo node: which devices each device's pulls read from, and
    // which devices pull *from* each device.
    let mut halo_srcs: Vec<Vec<Vec<usize>>> = Vec::new(); // [halo][dst] -> srcs
    let mut halo_dsts: Vec<Vec<Vec<usize>>> = Vec::new(); // [halo][src] -> dsts
    let mut signal_of: Vec<ParentSignal> = Vec::with_capacity(n);
    // Chunk-slot region: assigned after the regular `n × slots_per_node`
    // block, `chunk_counts[p]` slots per device for chunked halo nodes.
    let mut chunk_base = vec![u32::MAX; n];
    let mut chunk_counts = vec![0u32; n];
    let mut num_slots = n * slots_per_node;
    for (id, node) in graph.nodes().iter().enumerate() {
        signal_of.push(match &node.kind {
            NodeKind::Compute {
                reduce_finalize, ..
            } => {
                if *reduce_finalize {
                    ParentSignal::AuxDone
                } else {
                    ParentSignal::PerDevice
                }
            }
            NodeKind::Halo { exchange } => {
                let descs: Vec<HaloDescriptor> = exchange.descriptors();
                let mut srcs = vec![Vec::new(); ndev];
                let mut dsts = vec![Vec::new(); ndev];
                for d in &descs {
                    if !srcs[d.dst.0].contains(&d.src.0) {
                        srcs[d.dst.0].push(d.src.0);
                    }
                    if !dsts[d.src.0].contains(&d.dst.0) {
                        dsts[d.src.0].push(d.dst.0);
                    }
                }
                if chunked && exchange.supports_per_device() && !descs.is_empty() {
                    let k = descs
                        .iter()
                        .map(|d| policy.chunks(d.bytes).0)
                        .max()
                        .unwrap_or(1) as u32;
                    chunk_base[id] = num_slots as u32;
                    chunk_counts[id] = k;
                    num_slots += k as usize * ndev;
                }
                halo_srcs.push(srcs);
                halo_dsts.push(dsts);
                ParentSignal::Halo(halo_srcs.len() - 1)
            }
            NodeKind::Host { .. } | NodeKind::Collective { .. } => ParentSignal::AuxDone,
        });
    }

    let mut plan = DevicePlan {
        ndev,
        slots_per_node,
        num_slots,
        steps: vec![Vec::new(); ndev],
        waits: Vec::new(),
        chunked,
        chunk_base: chunk_base.clone(),
        chunk_counts: chunk_counts.clone(),
        policy,
    };

    // Slots a consumer on device `d` waits for, for parent `p`.
    let parent_waits = |out: &mut Vec<u32>, p: NodeId, d: usize| match signal_of[p] {
        ParentSignal::AuxDone => out.push((p * slots_per_node + ndev + 1) as u32),
        ParentSignal::PerDevice => out.push((p * slots_per_node + d) as u32),
        ParentSignal::Halo(h) => {
            if chunk_counts[p] > 0 {
                // Chunked plan: wait each arriving chunk into `d` instead
                // of the whole-pull slot.
                let base = chunk_base[p] as usize + d * chunk_counts[p] as usize;
                for k in 0..chunk_counts[p] as usize {
                    out.push((base + k) as u32);
                }
            } else {
                out.push((p * slots_per_node + d) as u32);
            }
            // Remote pulls still reading `d`'s boundary: writers on `d`
            // must not proceed until they finish.
            for &e in &halo_dsts[h][d] {
                out.push((p * slots_per_node + e) as u32);
            }
        }
    };
    // Conservative variant: every parent over every device.
    let all_dev_waits = |out: &mut Vec<u32>, ps: &[NodeId]| {
        for &p in ps {
            match signal_of[p] {
                ParentSignal::AuxDone => out.push((p * slots_per_node + ndev + 1) as u32),
                ParentSignal::PerDevice | ParentSignal::Halo(_) => {
                    for d in 0..ndev {
                        out.push((p * slots_per_node + d) as u32);
                    }
                }
            }
        }
    };

    let mut scratch: Vec<u32> = Vec::new();
    let push_step = |plan: &mut DevicePlan,
                     dev: usize,
                     node: usize,
                     action: DevAction,
                     waits: &mut Vec<u32>| {
        waits.sort_unstable();
        waits.dedup();
        let wait_start = plan.waits.len() as u32;
        plan.waits.extend_from_slice(waits);
        plan.steps[dev].push(DevStep {
            node: node as u32,
            action,
            wait_start,
            wait_len: waits.len() as u32,
        });
        waits.clear();
    };

    for task in &schedule.tasks {
        let node_id = task.node;
        let ps = &parents[node_id];
        match &graph.node(node_id).kind {
            NodeKind::Compute {
                container,
                reduce_init,
                reduce_finalize,
                ..
            } => {
                if *reduce_init {
                    // Reset partials before any kernel half runs. The
                    // other OCC half (if any) is ordered behind this one
                    // by its int→bnd data edge, so one init gate suffices.
                    all_dev_waits(&mut scratch, ps);
                    push_step(&mut plan, 0, node_id, DevAction::ReduceInit, &mut scratch);
                }
                for d in 0..ndev {
                    for &p in ps {
                        parent_waits(&mut scratch, p, d);
                    }
                    if *reduce_init {
                        scratch.push(plan.aux_init(node_id) as u32);
                    }
                    push_step(&mut plan, d, node_id, DevAction::Kernel, &mut scratch);
                }
                if *reduce_finalize {
                    for d in 0..ndev {
                        scratch.push(plan.slot(node_id, d) as u32);
                    }
                    push_step(
                        &mut plan,
                        0,
                        node_id,
                        DevAction::ReduceFinalize,
                        &mut scratch,
                    );
                }
                let _ = container;
            }
            NodeKind::Halo { exchange } => {
                if exchange.supports_per_device() {
                    let h = match signal_of[node_id] {
                        ParentSignal::Halo(h) => h,
                        _ => unreachable!("halo node classified above"),
                    };
                    for (d, srcs) in halo_srcs[h].iter().enumerate() {
                        // The pull into `d` writes `d`'s halo layers and
                        // reads each source's boundary cells: wait for the
                        // parents on `d` and on every source device.
                        for &p in ps {
                            parent_waits(&mut scratch, p, d);
                            for &e in srcs {
                                parent_waits(&mut scratch, p, e);
                            }
                        }
                        push_step(&mut plan, d, node_id, DevAction::HaloPull, &mut scratch);
                    }
                } else {
                    all_dev_waits(&mut scratch, ps);
                    push_step(&mut plan, 0, node_id, DevAction::HaloAll, &mut scratch);
                }
            }
            NodeKind::Host { .. } => {
                all_dev_waits(&mut scratch, ps);
                push_step(&mut plan, 0, node_id, DevAction::Host, &mut scratch);
            }
            NodeKind::Collective { .. } => {
                all_dev_waits(&mut scratch, ps);
                push_step(&mut plan, 0, node_id, DevAction::Collective, &mut scratch);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::{Ir, PassCtx, PassManager};
    use crate::skeleton::SkeletonOptions;
    use neon_domain::{
        ops, Container, DenseGrid, Dim3, Field, FieldStencil as _, FieldWrite as _, GridLike as _,
        MemLayout, ScalarSet, Stencil, StorageMode,
    };
    use neon_sys::Backend;

    fn compiled(ndev: usize) -> (Graph, Schedule, Vec<Vec<NodeId>>) {
        let b = Backend::dgx_a100(ndev);
        let st = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&st], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 1.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(ndev, "dot", 0.0, |a, b| a + b);
        let lap = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("lap", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| {
                    let mut s = 0.0;
                    for slot in 0..6 {
                        s += xv.ngh(c, slot, 0);
                    }
                    yv.set(c, 0, s);
                })
            })
        };
        let seq = vec![ops::set_value(&g, &x, 2.0), lap, ops::dot(&g, &y, &y, &dot)];
        let mut ir = Ir::new(seq);
        let cx = PassCtx {
            backend: b,
            options: SkeletonOptions::default(),
        };
        PassManager::standard().run(&mut ir, &cx).unwrap();
        let schedule = ir.schedule.take().unwrap();
        let parents: Vec<Vec<NodeId>> = (0..ir.graph.len())
            .map(|n| {
                let mut v: Vec<NodeId> = ir.graph.data_parents(n).map(|e| e.from).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        (ir.graph, schedule, parents)
    }

    #[test]
    fn every_node_gets_steps_and_waits_point_backwards() {
        let (graph, schedule, parents) = compiled(4);
        let dp = build_device_plan(&graph, &schedule, &parents, 4);
        assert_eq!(dp.ndev(), 4);
        // Every device's list is ordered by schedule task index, and every
        // wait references a slot of a strictly earlier task or this node's
        // own aux-init slot.
        let task_pos: Vec<usize> = {
            let mut pos = vec![0usize; graph.len()];
            for (i, t) in schedule.tasks.iter().enumerate() {
                pos[t.node] = i;
            }
            pos
        };
        for d in 0..4 {
            let mut last = 0usize;
            for s in dp.steps(d) {
                let p = task_pos[s.node as usize];
                assert!(p >= last, "steps must follow task order");
                last = p;
                for &w in dp.waits_of(s) {
                    let w_node = w as usize / (4 + 2);
                    if w_node == s.node as usize {
                        // Intra-node: kernels gate on init, finalize on
                        // kernels.
                        continue;
                    }
                    assert!(
                        task_pos[w_node] < p,
                        "wait on a later task would deadlock: {} waits {}",
                        graph.node(s.node as usize).name,
                        graph.node(w_node).name
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_exist_on_every_device_and_owner_steps_on_dev0() {
        let (graph, schedule, parents) = compiled(2);
        let dp = build_device_plan(&graph, &schedule, &parents, 2);
        for (i, node) in graph.nodes().iter().enumerate() {
            match &node.kind {
                NodeKind::Compute { .. } => {
                    for d in 0..2 {
                        assert!(dp
                            .steps(d)
                            .iter()
                            .any(|s| s.node as usize == i && s.action == DevAction::Kernel));
                    }
                }
                NodeKind::Halo { .. } => {
                    for d in 0..2 {
                        assert!(dp.steps(d).iter().any(|s| s.node as usize == i
                            && matches!(s.action, DevAction::HaloPull | DevAction::HaloAll)
                            || d != 0));
                    }
                }
                NodeKind::Host { .. } | NodeKind::Collective { .. } => {
                    assert!(dp.steps(0).iter().any(|s| s.node as usize == i
                        && matches!(s.action, DevAction::Host | DevAction::Collective)));
                }
            }
        }
    }

    #[test]
    fn chunked_plan_adds_arrival_slots_and_consumers_wait_them() {
        let (graph, schedule, parents) = compiled(4);
        let base = build_device_plan(&graph, &schedule, &parents, 4);
        let dp = build_device_plan_with(&graph, &schedule, &parents, 4, CommMode::ChunkEvents);
        assert!(dp.chunked());
        assert!(!base.chunked());
        let halos: Vec<usize> = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_halo())
            .map(|(i, _)| i)
            .collect();
        assert!(!halos.is_empty(), "stencil pipeline must carry a halo");
        let mut extra = 0;
        for &h in &halos {
            assert!(dp.chunk_count(h) >= 1);
            assert_eq!(base.chunk_count(h), 0);
            extra += dp.chunk_count(h) * 4;
            // Chunk slots live past the regular region and are unique per
            // (device, chunk).
            let mut seen = std::collections::HashSet::new();
            for d in 0..4 {
                for k in 0..dp.chunk_count(h) {
                    let s = dp.chunk_slot(h, d, k);
                    assert!(s >= graph.len() * (4 + 2));
                    assert!(s < dp.num_slots());
                    assert!(seen.insert(s));
                }
            }
        }
        assert_eq!(dp.num_slots(), base.num_slots() + extra);
        // At least one consumer step waits a fine-grained chunk slot.
        let regular = graph.len() * (4 + 2);
        assert!((0..4).any(|d| dp
            .steps(d)
            .iter()
            .any(|s| dp.waits_of(s).iter().any(|&w| (w as usize) >= regular))));
        // The step lists themselves are identical — only the event table
        // got finer.
        assert_eq!(dp.total_steps(), base.total_steps());
    }

    #[test]
    fn chunk_policy_is_stable() {
        assert_eq!(comm_chunks(0), (1, 0));
        assert_eq!(comm_chunks(1), (1, 1));
        assert_eq!(comm_chunks(1 << 20), (1, 1 << 20));
        let (c, cb) = comm_chunks(3 << 20);
        assert_eq!(c, 3);
        assert_eq!(cb, 1 << 20);
        // Above 8 MiB the chunk count saturates and the chunks grow.
        let (c, cb) = comm_chunks(64 << 20);
        assert_eq!(c, 8);
        assert_eq!(cb, 8 << 20);
    }

    #[test]
    fn chunk_policy_follows_the_bandwidth_delay_product() {
        use neon_sys::topology::LinkModel;
        // PCIe 3: 18 µs × 6.5 GB/s ≈ 114 KiB BDP; ×8 ≈ 0.9 MiB rounds up
        // to the 1 MiB floor — exactly the historical fixed policy, so
        // PCIe-era plans are unchanged.
        let pcie = ChunkPolicy::for_link(&LinkModel::pcie3());
        assert_eq!(pcie.chunk_bytes, 1 << 20);
        assert_eq!(pcie, ChunkPolicy::DEFAULT);
        // NVLink: 9.5 µs × 173 GB/s ≈ 1.6 MiB BDP; ×8 ≈ 13 MiB rounds up
        // to 16 MiB — a fat wire wants much coarser chunks before the
        // per-chunk latency amortizes.
        let nv = ChunkPolicy::for_link(&LinkModel::nvlink());
        assert_eq!(nv.chunk_bytes, 16 << 20);

        // Topology derivation picks the slowest wire: an all-PCIe box
        // chunks at 1 MiB, a pure NVLink island at 16 MiB, and a mixed
        // multi-island machine (NVLink inside, PCIe across) stays at the
        // PCIe policy because halos cross the slow wire too.
        let pcie_box = Backend::gv100_pcie(4);
        assert_eq!(
            ChunkPolicy::for_topology(pcie_box.topology()).chunk_bytes,
            1 << 20
        );
        let nv_island = Backend::dgx_a100(4);
        assert_eq!(
            ChunkPolicy::for_topology(nv_island.topology()).chunk_bytes,
            16 << 20
        );
        let mixed = Backend::dgx_islands(&[2, 2]);
        assert_eq!(
            ChunkPolicy::for_topology(mixed.topology()).chunk_bytes,
            1 << 20
        );

        // The NVLink policy actually coarsens the split.
        assert_eq!(nv.chunks(8 << 20), (1, 8 << 20));
        assert_eq!(ChunkPolicy::DEFAULT.chunks(8 << 20), (8, 1 << 20));
    }

    #[test]
    fn single_device_plan_is_fully_serial_on_worker_zero() {
        let (graph, schedule, parents) = compiled(1);
        let dp = build_device_plan(&graph, &schedule, &parents, 1);
        assert_eq!(dp.ndev(), 1);
        assert_eq!(dp.total_steps(), dp.steps(0).len());
        assert!(dp.total_steps() >= graph.len());
    }
}
