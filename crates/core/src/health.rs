//! Deterministic device-health tracking: straggler detection over the
//! virtual clock.
//!
//! A *straggler* is a device that is consistently slower than its peers —
//! thermal throttling, a flaky VRM, a neighbour hammering the same PCIe
//! switch. On real clusters stragglers are detected from noisy wall-clock
//! samples; here every kernel span comes off the deterministic virtual
//! clock ([`crate::Executor::per_device_kernel_time`]), so the monitor's
//! entire history — EWMAs, flag decisions, re-weighting — is bit-identical
//! across runs and can be asserted in tests.
//!
//! The pieces:
//!
//! * [`StragglerMonitor`] folds one per-device kernel-busy sample per
//!   iteration into an exponentially-weighted moving average (EWMA).
//! * [`HealthReport`] is the monitor's snapshot: per-device EWMAs, the
//!   fleet mean, and which devices the policy currently flags.
//! * [`StragglerPolicy`] turns a report into action: it decides when a
//!   deviation is worth reacting to and computes a re-weighted partition
//!   share per device (slow devices get proportionally less work), which
//!   a scheduler can apply at the next replan boundary.
//!
//! The monitor deliberately has no opinion about *why* a device is slow.
//! Permanent faults (device loss, link loss) surface through
//! [`crate::ExecError`] and the recovery tiers; the monitor covers the
//! gray zone below them — the device still answers, just late.

use neon_sys::{DeviceId, SimTime};

/// When to flag a straggler and how hard to shift work away from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerPolicy {
    /// EWMA weight of the newest sample, in `(0, 1]`. Higher reacts
    /// faster; 1.0 degenerates to "last sample only".
    pub alpha: f64,
    /// A device is flagged when its EWMA exceeds `threshold ×` the fleet
    /// mean (must be `> 1`).
    pub threshold: f64,
    /// Samples to accumulate before flagging anything — the EWMA needs a
    /// few iterations to forget its zero start.
    pub min_samples: u64,
    /// Lower bound on a re-weighted share, in `(0, 1]`: even a badly
    /// lagging device keeps this fraction of an even split, because
    /// shrinking a partition to nothing just moves the bottleneck to
    /// halo surface area.
    pub floor: f64,
}

impl Default for StragglerPolicy {
    fn default() -> Self {
        StragglerPolicy {
            alpha: 0.25,
            threshold: 1.25,
            min_samples: 4,
            floor: 0.5,
        }
    }
}

impl StragglerPolicy {
    /// Panics unless every knob is in range.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(self.threshold > 1.0, "straggler threshold must exceed 1");
        assert!(
            self.floor > 0.0 && self.floor <= 1.0,
            "share floor must be in (0, 1]"
        );
    }
}

/// A deterministic snapshot of fleet health.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Per-device EWMA of kernel busy time, µs, indexed by rank.
    pub ewma_us: Vec<f64>,
    /// Mean of `ewma_us` over the fleet.
    pub mean_us: f64,
    /// Devices the policy currently flags, ascending by rank. Empty while
    /// the monitor is still warming up.
    pub stragglers: Vec<DeviceId>,
    /// Samples folded in so far (one per observed iteration).
    pub samples: u64,
    /// Re-weighted partition shares, normalized to mean 1.0: a device with
    /// share 0.8 should own 80% of an even split's cells. All 1.0 while
    /// warming up or when nothing is flagged.
    pub shares: Vec<f64>,
}

impl HealthReport {
    /// Whether the policy currently wants a repartition.
    pub fn wants_rebalance(&self) -> bool {
        !self.stragglers.is_empty()
    }
}

/// EWMA-based straggler detector. Feed it one
/// [`crate::Executor::per_device_kernel_time`] slice per iteration.
#[derive(Debug, Clone)]
pub struct StragglerMonitor {
    policy: StragglerPolicy,
    ewma_us: Vec<f64>,
    samples: u64,
}

impl StragglerMonitor {
    /// A monitor over `ndev` devices. Panics on an out-of-range policy.
    pub fn new(ndev: usize, policy: StragglerPolicy) -> Self {
        policy.validate();
        assert!(ndev > 0, "monitor needs at least one device");
        StragglerMonitor {
            policy,
            ewma_us: vec![0.0; ndev],
            samples: 0,
        }
    }

    /// The policy this monitor judges against.
    pub fn policy(&self) -> StragglerPolicy {
        self.policy
    }

    /// Samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Fold one iteration's per-device kernel busy times into the EWMA.
    /// The first sample seeds the average directly (no zero bias).
    pub fn observe(&mut self, spans: &[SimTime]) {
        assert_eq!(
            spans.len(),
            self.ewma_us.len(),
            "sample width must match the fleet"
        );
        let a = self.policy.alpha;
        for (e, s) in self.ewma_us.iter_mut().zip(spans) {
            let us = s.as_us();
            *e = if self.samples == 0 {
                us
            } else {
                a * us + (1.0 - a) * *e
            };
        }
        self.samples += 1;
    }

    /// Snapshot health: EWMAs, flags, and the policy's re-weighted shares.
    pub fn report(&self) -> HealthReport {
        let n = self.ewma_us.len();
        let mean_us = self.ewma_us.iter().sum::<f64>() / n as f64;
        let warmed = self.samples >= self.policy.min_samples;
        let stragglers: Vec<DeviceId> = if warmed && mean_us > 0.0 {
            self.ewma_us
                .iter()
                .enumerate()
                .filter(|(_, &e)| e > self.policy.threshold * mean_us)
                .map(|(d, _)| DeviceId(d))
                .collect()
        } else {
            Vec::new()
        };
        // Shares are inverse-EWMA, floored, then renormalized to mean 1 so
        // the total cell count is conserved. Only computed once something
        // is flagged: constant small jitter must not thrash the partition.
        let shares = if stragglers.is_empty() {
            vec![1.0; n]
        } else {
            let raw: Vec<f64> = self
                .ewma_us
                .iter()
                .map(|&e| (mean_us / e).max(self.policy.floor))
                .collect();
            let scale = n as f64 / raw.iter().sum::<f64>();
            raw.iter().map(|r| r * scale).collect()
        };
        HealthReport {
            ewma_us: self.ewma_us.clone(),
            mean_us,
            stragglers,
            samples: self.samples,
            shares,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn warmup_never_flags() {
        let mut m = StragglerMonitor::new(4, StragglerPolicy::default());
        for _ in 0..3 {
            m.observe(&[us(100.0), us(100.0), us(100.0), us(500.0)]);
            assert!(m.report().stragglers.is_empty(), "still warming up");
            assert_eq!(m.report().shares, vec![1.0; 4]);
        }
        m.observe(&[us(100.0), us(100.0), us(100.0), us(500.0)]);
        assert_eq!(m.report().stragglers, vec![DeviceId(3)]);
    }

    #[test]
    fn balanced_fleet_stays_unflagged_and_unweighted() {
        let mut m = StragglerMonitor::new(4, StragglerPolicy::default());
        for i in 0..16 {
            let v = 100.0 + (i % 3) as f64; // small deterministic jitter
            m.observe(&[us(v); 4]);
        }
        let r = m.report();
        assert!(r.stragglers.is_empty());
        assert!(!r.wants_rebalance());
        assert_eq!(r.shares, vec![1.0; 4]);
    }

    #[test]
    fn straggler_share_shrinks_and_total_is_conserved() {
        let mut m = StragglerMonitor::new(4, StragglerPolicy::default());
        for _ in 0..8 {
            m.observe(&[us(100.0), us(100.0), us(100.0), us(300.0)]);
        }
        let r = m.report();
        assert_eq!(r.stragglers, vec![DeviceId(3)]);
        assert!(r.shares[3] < 1.0, "flagged device sheds work");
        assert!(r.shares[0] > 1.0, "healthy peers absorb it");
        let total: f64 = r.shares.iter().sum();
        assert!((total - 4.0).abs() < 1e-12, "cells conserved: {total}");
        // mean=150: raw shares are (1.5, 1.5, 1.5, max(0.5, 0.5)) — the
        // floor binds exactly — then ×4/5 renormalization gives 0.4.
        assert!((r.shares[3] - 0.4).abs() < 1e-12, "{}", r.shares[3]);
    }

    #[test]
    fn ewma_history_is_deterministic() {
        let run = || {
            let mut m = StragglerMonitor::new(2, StragglerPolicy::default());
            for i in 0..32u64 {
                let v = 100.0 + (i * 37 % 11) as f64;
                m.observe(&[us(v), us(v * 1.5)]);
            }
            m.report()
        };
        assert_eq!(run(), run(), "bit-identical health history");
    }

    #[test]
    fn recovery_unflags_after_the_ewma_catches_up() {
        let mut m = StragglerMonitor::new(2, StragglerPolicy::default());
        for _ in 0..8 {
            m.observe(&[us(100.0), us(400.0)]);
        }
        assert_eq!(m.report().stragglers, vec![DeviceId(1)]);
        // The device recovers; alpha=0.25 needs a few samples to forgive.
        for _ in 0..16 {
            m.observe(&[us(100.0), us(100.0)]);
        }
        let r = m.report();
        assert!(r.stragglers.is_empty(), "recovered: {:?}", r.ewma_us);
        assert_eq!(r.shares, vec![1.0; 2]);
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn sample_width_is_checked() {
        let mut m = StragglerMonitor::new(3, StragglerPolicy::default());
        m.observe(&[us(1.0); 2]);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn policy_is_validated() {
        StragglerMonitor::new(
            2,
            StragglerPolicy {
                threshold: 0.9,
                ..StragglerPolicy::default()
            },
        );
    }
}
