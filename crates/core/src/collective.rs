//! Lowering multi-device reductions to collective communication nodes.
//!
//! The original executor realized a reduce container's finalization as a
//! host-staged merge with **zero modeled transfer cost**: every device's
//! partial was folded on the host behind a global synchronization. This
//! pass replaces that with explicit [`NodeKind::Collective`] nodes, so the
//! combine participates in scheduling like any other graph node — it gets
//! a stream lane, events, and real transfer spans from `neon-comm`'s
//! ring / tree / host-staged algorithms over the backend's topology.
//!
//! The pass runs after OCC (so it sees the boundary half that carries the
//! `reduce_finalize` flag) and before scheduling (so the collective node is
//! part of the task list and `tasks.len() == graph.len()` holds). For each
//! finalizing compute node it:
//!
//! 1. clears the node's `reduce_finalize` flag (the kernel now only
//!    accumulates partials);
//! 2. appends a `Collective` node carrying the container and the payload
//!    size (8 bytes per reduced scalar);
//! 3. re-points the finalizer's outgoing data edges *on the reduced
//!    scalars* — RaW to consumers, and WaR/WaW toward the next writer of
//!    the partials — to leave from the collective instead, and adds a
//!    RaW edge compute → collective.
//!
//! Single-device backends are left untouched: there is nothing to
//! communicate, and the old fold-on-host path is exact.

use neon_comm::Algorithm;
use neon_set::ComputePattern;

use crate::graph::{Edge, EdgeKind, Graph, Node, NodeKind};

/// How multi-device reductions are realized (see [`lower_collectives`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveMode {
    /// Pick the algorithm per collective from the topology's link class and
    /// the payload size (ring for bandwidth, tree for latency, host-staged
    /// when serialization makes peer algorithms pointless).
    #[default]
    Auto,
    /// Force one algorithm for every collective (used by the ablations and
    /// the host-staged baseline comparisons).
    Fixed(Algorithm),
}

impl CollectiveMode {
    /// The forced algorithm, if any.
    pub fn fixed_algorithm(self) -> Option<Algorithm> {
        match self {
            CollectiveMode::Auto => None,
            CollectiveMode::Fixed(a) => Some(a),
        }
    }
}

/// Lower every finalizing reduce node of `g` to a compute + collective
/// pair. Returns `g` unchanged (cloned) for single-device backends.
pub fn lower_collectives(g: &Graph, ndev: usize) -> Graph {
    let mut out = g.clone();
    if ndev < 2 {
        return out;
    }
    let original = out.len();
    let mut lowered: Vec<(
        crate::graph::NodeId,
        crate::graph::NodeId,
        Vec<neon_set::DataUid>,
    )> = Vec::new();
    for id in 0..original {
        let (container, uids) = match &out.node(id).kind {
            NodeKind::Compute {
                container,
                reduce_finalize: true,
                ..
            } => {
                let uids: Vec<_> = container
                    .accesses()
                    .iter()
                    .filter(|a| a.pattern == ComputePattern::Reduce)
                    .map(|a| a.uid)
                    .collect();
                (container.clone(), uids)
            }
            _ => continue,
        };
        let uids_for_anchor = uids.clone();
        if let NodeKind::Compute {
            reduce_finalize, ..
        } = &mut out.node_mut(id).kind
        {
            *reduce_finalize = false;
        }
        let bytes = 8 * uids.len().max(1) as u64;
        let name = format!("{}:allreduce", out.node(id).name);
        let source = out.node(id).source;
        let fused_sources = out.node(id).fused_sources.clone();
        let cid = out.add_node(Node {
            name,
            kind: NodeKind::Collective { container, bytes },
            source,
            fused_sources,
        });
        // The collective is now the producer of the reduced scalars: its
        // consumers (RaW) and the partials' next writers (WaR/WaW) must
        // order against it, not the accumulating kernel.
        for e in out.edges_mut() {
            if e.from == id && e.kind.is_data() && e.data.is_some_and(|u| uids.contains(&u)) {
                e.from = cid;
            }
        }
        out.add_edge(Edge {
            from: id,
            to: cid,
            kind: EdgeKind::RaW,
            data: uids.first().copied(),
        });
        lowered.push((id, cid, uids_for_anchor));
    }
    // Transitive reduction may have deleted the direct edge between a
    // reduce kernel and a later toucher of its scalar (a longer path
    // through other data already orders the two kernels). Repointing then
    // finds nothing to move and the collective dangles, unordered against
    // the scalar's next use. Re-anchor: order each collective before every
    // later toucher of its uids that the kernel reaches but the collective
    // does not. The collective's only in-edge is kernel → collective, so a
    // new edge cannot close a cycle (the toucher reaching the collective
    // would mean it also reaches the kernel that reaches it).
    let reaches = |out: &Graph, from: crate::graph::NodeId, to: crate::graph::NodeId| -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; out.len()];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if std::mem::replace(&mut seen[u], true) {
                continue;
            }
            for e in out.edges() {
                if e.from == u && e.kind.is_data() && !seen[e.to] {
                    stack.push(e.to);
                }
            }
        }
        false
    };
    for (id, cid, uids) in lowered {
        for uid in uids {
            let touchers: Vec<_> = (0..out.len())
                .filter(|&m| m != id && m != cid)
                .filter(|&m| {
                    out.node(m)
                        .container()
                        .is_some_and(|c| c.accesses().iter().any(|a| a.uid == uid))
                })
                .filter(|&m| reaches(&out, id, m))
                .collect();
            for m in touchers {
                if !reaches(&out, cid, m) {
                    out.add_edge(Edge {
                        from: cid,
                        to: m,
                        kind: EdgeKind::RaW,
                        data: Some(uid),
                    });
                }
            }
        }
    }
    out.dedup_edges();
    out
}

/// Collective fusion: merge independent all-reduce rounds into one
/// multi-scalar round.
///
/// Collective nodes on the same BFS level have no dependency path between
/// them, so their payloads can ride one collective instead of paying one
/// latency-bound round each. Every same-level group is replaced by a
/// single node at the first member's position carrying the summed payload
/// and a [`neon_set::Container::fused_reductions`] container whose
/// finalize folds every member's partials; the graph is rebuilt without
/// the merged-away nodes. Members must carry provenance (`source` or
/// `fused_sources`) so a cached plan can rebind them; nodes without it
/// are left alone.
pub fn merge_collectives(g: &Graph) -> Graph {
    use std::collections::HashMap;

    // Any-edge reachability (hints included): insurance against merging
    // nodes that a scheduling hint chain secretly orders.
    let reaches = |from: crate::graph::NodeId, to: crate::graph::NodeId| -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; g.len()];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if std::mem::replace(&mut seen[u], true) {
                continue;
            }
            for e in g.edges() {
                if e.from == u && !seen[e.to] {
                    stack.push(e.to);
                }
            }
        }
        false
    };

    let mut groups: Vec<Vec<crate::graph::NodeId>> = Vec::new();
    for level in g.bfs_levels(false) {
        let mut group: Vec<crate::graph::NodeId> = Vec::new();
        for id in level {
            let n = g.node(id);
            if !n.is_collective() || (n.source.is_none() && n.fused_sources.is_empty()) {
                continue;
            }
            if group.iter().any(|&m| reaches(m, id) || reaches(id, m)) {
                continue;
            }
            group.push(id);
        }
        if group.len() >= 2 {
            groups.push(group);
        }
    }
    if groups.is_empty() {
        return g.clone();
    }

    // Map every node to its representative (first group member), then
    // rebuild the graph without the merged-away nodes.
    let mut rep: HashMap<crate::graph::NodeId, crate::graph::NodeId> = HashMap::new();
    for grp in &groups {
        for &m in grp {
            rep.insert(m, grp[0]);
        }
    }
    let mut out = Graph::new();
    let mut remap: HashMap<crate::graph::NodeId, crate::graph::NodeId> = HashMap::new();
    for (id, n) in g.nodes().iter().enumerate() {
        let r = rep.get(&id).copied().unwrap_or(id);
        if r != id {
            continue; // merged into its representative
        }
        let new_id = if let Some(grp) = groups.iter().find(|grp| grp[0] == id) {
            let members: Vec<_> = grp
                .iter()
                .map(|&m| g.node(m).container().expect("collective").clone())
                .collect();
            let name = grp
                .iter()
                .map(|&m| g.node(m).name.as_str())
                .collect::<Vec<_>>()
                .join("+");
            let bytes = grp
                .iter()
                .map(|&m| match &g.node(m).kind {
                    NodeKind::Collective { bytes, .. } => *bytes,
                    _ => unreachable!("group members are collectives"),
                })
                .sum();
            let fused_sources = grp
                .iter()
                .flat_map(|&m| {
                    let n = g.node(m);
                    if n.fused_sources.is_empty() {
                        vec![n.source.expect("provenance checked above")]
                    } else {
                        n.fused_sources.clone()
                    }
                })
                .collect();
            out.add_node(Node::with_fused_sources(
                name,
                NodeKind::Collective {
                    container: neon_set::Container::fused_reductions("merged-allreduce", members),
                    bytes,
                },
                fused_sources,
            ))
        } else {
            out.add_node(n.clone())
        };
        remap.insert(id, new_id);
    }
    for e in g.edges() {
        let from = remap[&rep.get(&e.from).copied().unwrap_or(e.from)];
        let to = remap[&rep.get(&e.to).copied().unwrap_or(e.to)];
        if from != to {
            out.add_edge(Edge { from, to, ..*e });
        }
    }
    out.dedup_edges();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_dependency_graph;
    use crate::multigpu::to_multigpu_graph;
    use crate::occ::{apply_occ, OccLevel};
    use neon_domain::{
        ops, DenseGrid, Dim3, Field, GridLike as _, MemLayout, ScalarSet, Stencil, StorageMode,
    };
    use neon_set::Container;
    use neon_sys::Backend;

    fn dot_pipeline(ndev: usize) -> (Graph, neon_set::DataUid) {
        let b = Backend::dgx_a100(ndev.max(1));
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 1.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(g.num_partitions(), "dot", 0.0, |a, b| a + b);
        let host = {
            let d = dot.clone();
            Container::host("consume", g.num_partitions(), move |ldr| {
                let r = ldr.scalar_reader(&d);
                Box::new(move || {
                    let _ = r.get();
                })
            })
        };
        let graph = build_dependency_graph(&[ops::dot(&g, &x, &x, &dot), host]);
        (graph, dot.uid())
    }

    #[test]
    fn single_device_is_untouched() {
        let (g, _) = dot_pipeline(1);
        let lowered = lower_collectives(&g, 1);
        assert_eq!(lowered.len(), g.len());
        assert!(!lowered.nodes().iter().any(|n| n.is_collective()));
    }

    #[test]
    fn reduce_gains_collective_node_and_loses_finalize() {
        let (g, _) = dot_pipeline(2);
        let lowered = lower_collectives(&g, 2);
        assert_eq!(lowered.len(), g.len() + 1);
        let c = lowered
            .nodes()
            .iter()
            .position(|n| n.is_collective())
            .expect("collective node added");
        match &lowered.node(c).kind {
            NodeKind::Collective { bytes, .. } => assert_eq!(*bytes, 8),
            _ => unreachable!(),
        }
        for n in lowered.nodes() {
            if let NodeKind::Compute {
                reduce_finalize, ..
            } = &n.kind
            {
                assert!(!reduce_finalize, "finalize moved to the collective");
            }
        }
    }

    #[test]
    fn consumer_edges_repoint_to_collective() {
        let (g, uid) = dot_pipeline(2);
        let lowered = lower_collectives(&g, 2);
        let c = lowered
            .nodes()
            .iter()
            .position(|n| n.is_collective())
            .unwrap();
        // host "consume" (node 1) now reads from the collective…
        assert!(lowered
            .edges()
            .iter()
            .any(|e| e.from == c && e.to == 1 && e.kind == EdgeKind::RaW && e.data == Some(uid)));
        // …and no longer directly from the dot (node 0).
        assert!(!lowered
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.data == Some(uid)));
        // The dot feeds the collective.
        assert!(lowered
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == c && e.kind == EdgeKind::RaW));
        // Result stays acyclic and schedulable.
        lowered.bfs_levels(true);
    }

    #[test]
    fn occ_boundary_half_is_the_lowered_node() {
        let (g, _) = dot_pipeline(4);
        let mg = to_multigpu_graph(&g, 4);
        let occ = apply_occ(&mg, OccLevel::Standard);
        let lowered = lower_collectives(&occ, 4);
        assert_eq!(lowered.len(), occ.len() + 1);
        let c = lowered
            .nodes()
            .iter()
            .position(|n| n.is_collective())
            .unwrap();
        // The boundary (finalizing) half feeds the collective.
        let feeder = lowered
            .edges()
            .iter()
            .find(|e| e.to == c)
            .map(|e| e.from)
            .unwrap();
        assert!(lowered.node(feeder).name.contains("dot"));
        lowered.bfs_levels(true);
    }

    #[test]
    fn mode_fixed_algorithm_accessor() {
        assert_eq!(CollectiveMode::Auto.fixed_algorithm(), None);
        assert_eq!(
            CollectiveMode::Fixed(Algorithm::Ring).fixed_algorithm(),
            Some(Algorithm::Ring)
        );
        assert_eq!(CollectiveMode::default(), CollectiveMode::Auto);
    }
}
