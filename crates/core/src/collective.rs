//! Lowering multi-device reductions to collective communication nodes.
//!
//! The original executor realized a reduce container's finalization as a
//! host-staged merge with **zero modeled transfer cost**: every device's
//! partial was folded on the host behind a global synchronization. This
//! pass replaces that with explicit [`NodeKind::Collective`] nodes, so the
//! combine participates in scheduling like any other graph node — it gets
//! a stream lane, events, and real transfer spans from `neon-comm`'s
//! ring / tree / host-staged algorithms over the backend's topology.
//!
//! The pass runs after OCC (so it sees the boundary half that carries the
//! `reduce_finalize` flag) and before scheduling (so the collective node is
//! part of the task list and `tasks.len() == graph.len()` holds). For each
//! finalizing compute node it:
//!
//! 1. clears the node's `reduce_finalize` flag (the kernel now only
//!    accumulates partials);
//! 2. appends a `Collective` node carrying the container and the payload
//!    size (8 bytes per reduced scalar);
//! 3. re-points the finalizer's outgoing data edges *on the reduced
//!    scalars* — RaW to consumers, and WaR/WaW toward the next writer of
//!    the partials — to leave from the collective instead, and adds a
//!    RaW edge compute → collective.
//!
//! Single-device backends are left untouched: there is nothing to
//! communicate, and the old fold-on-host path is exact.

use neon_comm::Algorithm;
use neon_set::ComputePattern;

use crate::graph::{Edge, EdgeKind, Graph, Node, NodeKind};

/// How multi-device reductions are realized (see [`lower_collectives`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveMode {
    /// Pick the algorithm per collective from the topology's link class and
    /// the payload size (ring for bandwidth, tree for latency, host-staged
    /// when serialization makes peer algorithms pointless).
    #[default]
    Auto,
    /// Force one algorithm for every collective (used by the ablations and
    /// the host-staged baseline comparisons).
    Fixed(Algorithm),
}

impl CollectiveMode {
    /// The forced algorithm, if any.
    pub fn fixed_algorithm(self) -> Option<Algorithm> {
        match self {
            CollectiveMode::Auto => None,
            CollectiveMode::Fixed(a) => Some(a),
        }
    }
}

/// Lower every finalizing reduce node of `g` to a compute + collective
/// pair. Returns `g` unchanged (cloned) for single-device backends.
pub fn lower_collectives(g: &Graph, ndev: usize) -> Graph {
    let mut out = g.clone();
    if ndev < 2 {
        return out;
    }
    let original = out.len();
    for id in 0..original {
        let (container, uids) = match &out.node(id).kind {
            NodeKind::Compute {
                container,
                reduce_finalize: true,
                ..
            } => {
                let uids: Vec<_> = container
                    .accesses()
                    .iter()
                    .filter(|a| a.pattern == ComputePattern::Reduce)
                    .map(|a| a.uid)
                    .collect();
                (container.clone(), uids)
            }
            _ => continue,
        };
        if let NodeKind::Compute {
            reduce_finalize, ..
        } = &mut out.node_mut(id).kind
        {
            *reduce_finalize = false;
        }
        let bytes = 8 * uids.len().max(1) as u64;
        let name = format!("{}:allreduce", out.node(id).name);
        let source = out.node(id).source;
        let cid = out.add_node(Node {
            name,
            kind: NodeKind::Collective { container, bytes },
            source,
        });
        // The collective is now the producer of the reduced scalars: its
        // consumers (RaW) and the partials' next writers (WaR/WaW) must
        // order against it, not the accumulating kernel.
        for e in out.edges_mut() {
            if e.from == id && e.kind.is_data() && e.data.is_some_and(|u| uids.contains(&u)) {
                e.from = cid;
            }
        }
        out.add_edge(Edge {
            from: id,
            to: cid,
            kind: EdgeKind::RaW,
            data: uids.first().copied(),
        });
    }
    out.dedup_edges();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_dependency_graph;
    use crate::multigpu::to_multigpu_graph;
    use crate::occ::{apply_occ, OccLevel};
    use neon_domain::{
        ops, DenseGrid, Dim3, Field, GridLike as _, MemLayout, ScalarSet, Stencil, StorageMode,
    };
    use neon_set::Container;
    use neon_sys::Backend;

    fn dot_pipeline(ndev: usize) -> (Graph, neon_set::DataUid) {
        let b = Backend::dgx_a100(ndev.max(1));
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 1.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(g.num_partitions(), "dot", 0.0, |a, b| a + b);
        let host = {
            let d = dot.clone();
            Container::host("consume", g.num_partitions(), move |ldr| {
                let r = ldr.scalar_reader(&d);
                Box::new(move || {
                    let _ = r.get();
                })
            })
        };
        let graph = build_dependency_graph(&[ops::dot(&g, &x, &x, &dot), host]);
        (graph, dot.uid())
    }

    #[test]
    fn single_device_is_untouched() {
        let (g, _) = dot_pipeline(1);
        let lowered = lower_collectives(&g, 1);
        assert_eq!(lowered.len(), g.len());
        assert!(!lowered.nodes().iter().any(|n| n.is_collective()));
    }

    #[test]
    fn reduce_gains_collective_node_and_loses_finalize() {
        let (g, _) = dot_pipeline(2);
        let lowered = lower_collectives(&g, 2);
        assert_eq!(lowered.len(), g.len() + 1);
        let c = lowered
            .nodes()
            .iter()
            .position(|n| n.is_collective())
            .expect("collective node added");
        match &lowered.node(c).kind {
            NodeKind::Collective { bytes, .. } => assert_eq!(*bytes, 8),
            _ => unreachable!(),
        }
        for n in lowered.nodes() {
            if let NodeKind::Compute {
                reduce_finalize, ..
            } = &n.kind
            {
                assert!(!reduce_finalize, "finalize moved to the collective");
            }
        }
    }

    #[test]
    fn consumer_edges_repoint_to_collective() {
        let (g, uid) = dot_pipeline(2);
        let lowered = lower_collectives(&g, 2);
        let c = lowered
            .nodes()
            .iter()
            .position(|n| n.is_collective())
            .unwrap();
        // host "consume" (node 1) now reads from the collective…
        assert!(lowered
            .edges()
            .iter()
            .any(|e| e.from == c && e.to == 1 && e.kind == EdgeKind::RaW && e.data == Some(uid)));
        // …and no longer directly from the dot (node 0).
        assert!(!lowered
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.data == Some(uid)));
        // The dot feeds the collective.
        assert!(lowered
            .edges()
            .iter()
            .any(|e| e.from == 0 && e.to == c && e.kind == EdgeKind::RaW));
        // Result stays acyclic and schedulable.
        lowered.bfs_levels(true);
    }

    #[test]
    fn occ_boundary_half_is_the_lowered_node() {
        let (g, _) = dot_pipeline(4);
        let mg = to_multigpu_graph(&g, 4);
        let occ = apply_occ(&mg, OccLevel::Standard);
        let lowered = lower_collectives(&occ, 4);
        assert_eq!(lowered.len(), occ.len() + 1);
        let c = lowered
            .nodes()
            .iter()
            .position(|n| n.is_collective())
            .unwrap();
        // The boundary (finalizing) half feeds the collective.
        let feeder = lowered
            .edges()
            .iter()
            .find(|e| e.to == c)
            .map(|e| e.from)
            .unwrap();
        assert!(lowered.node(feeder).name.contains("dot"));
        lowered.bfs_levels(true);
    }

    #[test]
    fn mode_fixed_algorithm_accessor() {
        assert_eq!(CollectiveMode::Auto.fixed_algorithm(), None);
        assert_eq!(
            CollectiveMode::Fixed(Algorithm::Ring).fixed_algorithm(),
            Some(Algorithm::Ring)
        );
        assert_eq!(CollectiveMode::default(), CollectiveMode::Auto);
    }
}
