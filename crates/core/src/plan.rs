//! Immutable compiled execution plans and the process-wide plan cache.
//!
//! A [`CompiledPlan`] is the product of the pass pipeline: the final
//! execution graph, its schedule, and precomputed per-node parent lists,
//! all behind an `Arc` so the executor borrows task and node data by index
//! instead of cloning per task per iteration.
//!
//! Plans are cached by [`PlanKey`]:
//!
//! * the **sequence signature** ([`neon_set::sequence_signature`]) — a
//!   structural hash of the container sequence over *normalized* data-uid
//!   roles, deliberately excluding cell counts and per-cell costs (those
//!   are read from the bound containers at execution time), so the same
//!   solver over a different grid size still hits;
//! * the **backend fingerprint** ([`neon_sys::Backend::fingerprint`]) —
//!   device models plus topology;
//! * the **options signature** — every [`SkeletonOptions`] field that
//!   shapes the graph or schedule (`trace` and `validate` don't).
//!
//! On a hit the cached plan is *rebound*: node containers are swapped by
//! provenance index, halo exchanges and edge data uids are remapped via
//! the role correspondence, and the schedule — which depends only on graph
//! structure — is shared untouched. `Arc::ptr_eq` on the schedule is
//! therefore proof that a sequence compiled once.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

use neon_set::{sequence_signature, uid_roles, Container, DataUid, HaloDescriptor, HaloExchange};
use neon_sys::{stable_hash_of, Backend, StableHasher, Trace};

use crate::collective::CollectiveMode;
use crate::devplan::{build_device_plan, build_device_plan_policy, DevicePlan};
use crate::exec::{CommMode, HaloPolicy};
use crate::fuse::FusionLevel;
use crate::graph::{Edge, Graph, Node, NodeId, NodeKind};
use crate::pass::{CompileError, Ir, PassCtx, PassManager, PassTiming};
use crate::schedule::Schedule;
use crate::skeleton::SkeletonOptions;

/// The immutable result of compiling a container sequence.
pub struct CompiledPlan {
    containers: Vec<Container>,
    dependency_graph: Graph,
    graph: Graph,
    schedule: Arc<Schedule>,
    device_plan: Arc<DevicePlan>,
    data_parents: Vec<Vec<NodeId>>,
    /// Per-node halo transfer descriptors (empty for non-halo nodes),
    /// cached so the executor's hot loop never calls the allocating
    /// `HaloExchange::descriptors()`.
    halo_descs: Vec<Vec<HaloDescriptor>>,
    timings: Vec<PassTiming>,
    dumps: Vec<(String, String)>,
    compile_trace: Trace,
}

impl CompiledPlan {
    /// The raw dependency graph (before the multi-GPU transform).
    pub fn dependency_graph(&self) -> &Graph {
        &self.dependency_graph
    }

    /// The final (multi-GPU, OCC-optimized, lowered) execution graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The execution plan.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The schedule's shared handle (`Arc::ptr_eq` across two plans proves
    /// they came from one compilation).
    pub fn schedule_arc(&self) -> &Arc<Schedule> {
        &self.schedule
    }

    /// The bound container sequence, in program order.
    pub fn containers(&self) -> &[Container] {
        &self.containers
    }

    /// Data-edge parents of a node (precomputed at compile time).
    pub fn data_parents(&self, node: NodeId) -> &[NodeId] {
        &self.data_parents[node]
    }

    /// The per-device task partition + event table (shared handle).
    pub fn device_plan(&self) -> &Arc<DevicePlan> {
        &self.device_plan
    }

    /// Cached halo transfer descriptors of a node (empty unless the node
    /// is a halo update).
    pub fn halo_descriptors(&self, node: NodeId) -> &[HaloDescriptor] {
        &self.halo_descs[node]
    }

    /// Per-pass compile timings. Empty for a rebound (cache-hit) plan —
    /// no compilation happened.
    pub fn pass_timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// `(pass name, dump)` pairs captured when `dump_ir` was on.
    pub fn dumps(&self) -> &[(String, String)] {
        &self.dumps
    }

    /// Compile-time [`neon_sys::SpanKind::Compile`] spans, one per pass
    /// (empty for a rebound plan).
    pub fn compile_trace(&self) -> &Trace {
        &self.compile_trace
    }

    /// Logical iterations one `execute()` of this plan performs: `k` when
    /// the temporal-fuse pass built a super-step, 1 otherwise. Callers
    /// running `n` logical iterations execute the plan `n / k` times.
    pub fn temporal_k(&self) -> usize {
        self.graph
            .nodes()
            .iter()
            .filter_map(|n| n.container().and_then(|c| c.temporal_spec()))
            .map(|spec| spec.k as usize)
            .max()
            .unwrap_or(1)
    }

    /// Wrap an already-built graph and schedule (no containers, no
    /// dependency graph, no timings). This is the compatibility path for
    /// [`crate::exec::Executor::new`]; skeleton-built plans carry the full
    /// state.
    pub fn from_parts(graph: Graph, schedule: Schedule) -> Arc<CompiledPlan> {
        let data_parents = precompute_parents(&graph);
        // No backend here: infer the device count from the graph itself.
        let ndev = infer_ndev(&graph);
        let device_plan = Arc::new(build_device_plan(&graph, &schedule, &data_parents, ndev));
        let halo_descs = precompute_halo_descs(&graph);
        Arc::new(CompiledPlan {
            containers: Vec::new(),
            dependency_graph: Graph::new(),
            graph,
            schedule: Arc::new(schedule),
            device_plan,
            data_parents,
            halo_descs,
            timings: Vec::new(),
            dumps: Vec::new(),
            compile_trace: Trace::new(),
        })
    }
}

fn precompute_parents(g: &Graph) -> Vec<Vec<NodeId>> {
    (0..g.len())
        .map(|n| {
            let mut v: Vec<NodeId> = g.data_parents(n).map(|e| e.from).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

fn precompute_halo_descs(g: &Graph) -> Vec<Vec<neon_set::HaloDescriptor>> {
    g.nodes()
        .iter()
        .map(|n| match &n.kind {
            NodeKind::Halo { exchange } => exchange.descriptors(),
            _ => Vec::new(),
        })
        .collect()
}

/// Largest device index referenced by the graph, for the compatibility
/// path that wraps a bare graph + schedule without a backend in hand.
fn infer_ndev(g: &Graph) -> usize {
    let mut n = 1usize;
    for node in g.nodes() {
        match &node.kind {
            NodeKind::Compute { container, .. } => n = n.max(container.num_devices()),
            NodeKind::Halo { exchange } => {
                for d in exchange.descriptors() {
                    n = n.max(d.src.0 + 1).max(d.dst.0 + 1);
                }
            }
            _ => {}
        }
    }
    n
}

/// Cache key of a compiled plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structural signature of the container sequence.
    pub seq: u64,
    /// Backend fingerprint (device models + topology).
    pub backend: u64,
    /// Signature of the graph-shaping skeleton options.
    pub opts: u64,
}

impl PlanKey {
    /// Compute the key for compiling `containers` on `backend` with
    /// `options`.
    pub fn new(backend: &Backend, containers: &[Container], options: &SkeletonOptions) -> PlanKey {
        PlanKey {
            seq: sequence_signature(containers),
            backend: backend.fingerprint(),
            opts: options_signature(options),
        }
    }
}

/// Hash every option that shapes the compiled graph or schedule. `trace`,
/// `validate`, `cache`, `functional_mode` and `resilience` are
/// diagnostics/runtime policy — same plan either way.
fn options_signature(o: &SkeletonOptions) -> u64 {
    use std::hash::Hasher as _;
    let mut h = StableHasher::new();
    let mut put = |v: u64| h.write_u64(v);
    put(o.occ as u64);
    put(o.max_streams as u64);
    put(o.hints as u64);
    put(o.kernel_concurrency as u64);
    match o.halo_policy {
        HaloPolicy::ExplicitTransfers => put(0),
        HaloPolicy::UnifiedMemory {
            page_bytes,
            fault_us,
            bandwidth_gb_s,
        } => {
            put(1);
            put(page_bytes);
            put(fault_us.to_bits());
            put(bandwidth_gb_s.to_bits());
        }
    }
    match o.collectives {
        CollectiveMode::Auto => put(2),
        CollectiveMode::Fixed(a) => {
            put(3);
            put(stable_hash_of(&format!("{a:?}")));
        }
    }
    match o.comm {
        CommMode::Epoch => put(200),
        // Chunk events change the device plan's event table (per-chunk
        // arrival slots), so the two modes must never alias in the cache.
        CommMode::ChunkEvents => put(201),
    }
    match o.fusion {
        FusionLevel::Off => put(100),
        FusionLevel::Conservative => put(101),
        FusionLevel::Temporal(k) => {
            put(102);
            put(k as u64);
        }
    }
    put(o.dump_ir as u64);
    put(o.layout.signature_byte() as u64);
    h.finish()
}

/// Counters of the process-wide plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a plan (each hit skips a full pipeline run).
    pub hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
    /// Plans pushed out by the capacity bound (FIFO order). Backend
    /// invalidations and explicit clears are not counted here.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
    /// Current capacity bound (see [`set_plan_cache_capacity`]).
    pub capacity: usize,
}

struct CacheInner {
    map: HashMap<PlanKey, Arc<CompiledPlan>>,
    order: VecDeque<PlanKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
    capacity: usize,
}

impl CacheInner {
    /// Evict FIFO until the entry count fits `capacity`, counting evictions.
    fn enforce_capacity(&mut self, headroom: usize) {
        while self.map.len().saturating_add(headroom) > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    if self.map.remove(&old).is_some() {
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }
}

/// Default plan-cache capacity (plans, not bytes).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 32;

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(CacheInner {
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            capacity: DEFAULT_PLAN_CACHE_CAPACITY,
        })
    })
}

/// Current plan-cache counters.
pub fn plan_cache_stats() -> CacheStats {
    let c = cache().lock().unwrap();
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
        entries: c.map.len(),
        capacity: c.capacity,
    }
}

/// Bound the process-wide plan cache to `capacity` plans (clamped to at
/// least 1). Shrinking below the current entry count evicts FIFO immediately.
/// A serving deployment sizes this to its working set of distinct
/// (program structure × backend fingerprint × options) keys.
pub fn set_plan_cache_capacity(capacity: usize) {
    let mut c = cache().lock().unwrap();
    c.capacity = capacity.max(1);
    c.enforce_capacity(0);
}

/// Current plan-cache capacity bound.
pub fn plan_cache_capacity() -> usize {
    cache().lock().unwrap().capacity
}

/// Drop every cached plan (counters are kept; tests diff them).
pub fn clear_plan_cache() {
    let mut c = cache().lock().unwrap();
    c.map.clear();
    c.order.clear();
}

/// Drop every cached plan compiled for the backend with `fingerprint`,
/// returning how many were evicted. Called when a device is lost: plans
/// compiled for the dead topology must not be rebound — the surviving
/// backend has a different fingerprint and will compile fresh.
pub fn invalidate_backend(fingerprint: u64) -> usize {
    let mut c = cache().lock().unwrap();
    let before = c.map.len();
    c.map.retain(|k, _| k.backend != fingerprint);
    c.order.retain(|k| k.backend != fingerprint);
    before - c.map.len()
}

/// Compile `containers`, consulting the plan cache when `options.cache`.
/// Returns the plan and whether it came from the cache.
pub(crate) fn compile(
    backend: &Backend,
    containers: Vec<Container>,
    options: SkeletonOptions,
) -> Result<(Arc<CompiledPlan>, bool), CompileError> {
    if !options.cache {
        return Ok((compile_fresh(backend, containers, &options)?, false));
    }
    let key = PlanKey::new(backend, &containers, &options);
    let cached = cache().lock().unwrap().map.get(&key).cloned();
    if let Some(plan) = cached {
        let rebound = rebind(&plan, containers);
        let mut c = cache().lock().unwrap();
        c.hits += 1;
        // Keep the most recently bound instance: a later identical request
        // then shares containers too, not just the schedule.
        c.map.insert(key, Arc::clone(&rebound));
        return Ok((rebound, true));
    }
    let plan = compile_fresh(backend, containers, &options)?;
    let mut c = cache().lock().unwrap();
    c.misses += 1;
    if !c.map.contains_key(&key) {
        c.enforce_capacity(1);
        c.order.push_back(key);
    }
    c.map.insert(key, Arc::clone(&plan));
    Ok((plan, false))
}

/// Run the standard pass pipeline to a fresh plan.
fn compile_fresh(
    backend: &Backend,
    containers: Vec<Container>,
    options: &SkeletonOptions,
) -> Result<Arc<CompiledPlan>, CompileError> {
    let mut ir = Ir::new(containers);
    let cx = PassCtx {
        backend: backend.clone(),
        options: *options,
    };
    let log = PassManager::standard().run(&mut ir, &cx)?;
    let schedule = ir
        .schedule
        .take()
        .expect("schedule pass produced a schedule");
    let device_plan = ir
        .device_plan
        .take()
        .expect("device-partition pass ran last and produced a device plan");
    let graph = ir.graph;
    let data_parents = precompute_parents(&graph);
    let halo_descs = precompute_halo_descs(&graph);
    Ok(Arc::new(CompiledPlan {
        containers: ir.containers,
        dependency_graph: ir.dependency_graph.unwrap_or_default(),
        graph,
        schedule: Arc::new(schedule),
        device_plan: Arc::new(device_plan),
        data_parents,
        halo_descs,
        timings: log.timings,
        dumps: log.dumps,
        compile_trace: log.trace,
    }))
}

/// Re-bind a cached plan to a new (structurally identical) container
/// sequence: swap containers by provenance index, remap data uids via the
/// role correspondence, share the schedule.
fn rebind(plan: &CompiledPlan, containers: Vec<Container>) -> Arc<CompiledPlan> {
    let old_roles = uid_roles(&plan.containers);
    let new_roles = uid_roles(&containers);
    let role_to_new: HashMap<usize, DataUid> = new_roles.iter().map(|(u, r)| (*r, *u)).collect();
    let map_uid = |u: DataUid| -> DataUid {
        old_roles
            .get(&u)
            .and_then(|r| role_to_new.get(r))
            .copied()
            .unwrap_or(u)
    };
    // Halo exchanges of the new sequence, by (new) uid.
    let mut halos: HashMap<DataUid, Arc<dyn HaloExchange>> = HashMap::new();
    for c in &containers {
        for a in c.accesses() {
            if let Some(h) = &a.halo {
                halos.entry(a.uid).or_insert_with(|| Arc::clone(h));
            }
        }
    }
    let rebind_graph = |g: &Graph| -> Graph {
        let mut out = Graph::new();
        for n in g.nodes() {
            // Fused nodes re-fuse the new instance's member containers by
            // provenance; collectives only ever run finalize hooks, so the
            // lighter `fused_reductions` merge covers both a merged
            // all-reduce and the lowered half of a fused map+reduce.
            let swap = |c: &Container| -> Container {
                if !n.fused_sources.is_empty() {
                    // A temporal super-step's provenance list is flattened:
                    // re-chunk it by the old members' arity (a fused member
                    // contributed its own member count) and rebuild the
                    // same fused-then-temporal structure over the new
                    // instance's containers.
                    if let Some(spec) = c.temporal_spec() {
                        let mut next = n.fused_sources.iter().copied();
                        let members: Vec<Container> = c
                            .fused_members()
                            .iter()
                            .map(|m| {
                                let arity = m.fused_members().len().max(1);
                                let chunk: Vec<Container> = (0..arity)
                                    .map(|_| {
                                        containers[next.next().expect("provenance arity")].clone()
                                    })
                                    .collect();
                                if arity > 1 {
                                    Container::fused(m.name(), chunk)
                                } else {
                                    chunk.into_iter().next().unwrap()
                                }
                            })
                            .collect();
                        return Container::temporal(c.name(), members, spec.k);
                    }
                    let members: Vec<Container> = n
                        .fused_sources
                        .iter()
                        .map(|&i| containers[i].clone())
                        .collect();
                    return if n.is_collective() {
                        Container::fused_reductions(c.name(), members)
                    } else {
                        Container::fused(c.name(), members)
                    };
                }
                match n.source {
                    Some(i) => containers[i].clone(),
                    None => c.clone(),
                }
            };
            let node = match &n.kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => Node {
                    name: n.name.clone(),
                    kind: NodeKind::Compute {
                        container: swap(container),
                        view: *view,
                        reduce_init: *reduce_init,
                        reduce_finalize: *reduce_finalize,
                    },
                    source: n.source,
                    fused_sources: n.fused_sources.clone(),
                },
                NodeKind::Host { container } => Node {
                    name: n.name.clone(),
                    kind: NodeKind::Host {
                        container: swap(container),
                    },
                    source: n.source,
                    fused_sources: n.fused_sources.clone(),
                },
                NodeKind::Collective { container, bytes } => Node {
                    name: n.name.clone(),
                    kind: NodeKind::Collective {
                        container: swap(container),
                        bytes: *bytes,
                    },
                    source: n.source,
                    fused_sources: n.fused_sources.clone(),
                },
                NodeKind::Halo { exchange } => {
                    let uid = map_uid(exchange.data_uid());
                    // Preserve the cached node's exchange depth: a temporal
                    // plan's deep halo must stay `k·r` layers deep after the
                    // new instance's (radius-deep) exchange is swapped in.
                    let ex = halos
                        .get(&uid)
                        .map(|h| {
                            h.at_depth(exchange.depth())
                                .unwrap_or_else(|| Arc::clone(h))
                        })
                        .unwrap_or_else(|| Arc::clone(exchange));
                    Node {
                        name: format!("halo({})", ex.data_name()),
                        kind: NodeKind::Halo { exchange: ex },
                        source: None,
                        fused_sources: Vec::new(),
                    }
                }
            };
            out.add_node(node);
        }
        for e in g.edges() {
            out.add_edge(Edge {
                from: e.from,
                to: e.to,
                kind: e.kind,
                data: e.data.map(map_uid),
            });
        }
        out
    };
    let graph = rebind_graph(&plan.graph);
    // Descriptor byte sizes change with grid size, so recompute the cache;
    // the device plan only depends on the src/dst pair structure and can
    // be shared when that is unchanged (the common case).
    let halo_descs = precompute_halo_descs(&graph);
    let same_pairs = halo_descs.len() == plan.halo_descs.len()
        && halo_descs.iter().zip(&plan.halo_descs).all(|(a, b)| {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(x, y)| x.src == y.src && x.dst == y.dst)
        });
    // A chunked device plan additionally bakes in per-descriptor chunk
    // counts, which follow the payload *bytes* — a rebind onto a larger
    // grid can change them even when the pair structure is identical.
    let policy = plan.device_plan.chunk_policy();
    let same_chunks = !plan.device_plan.chunked()
        || halo_descs.iter().zip(&plan.halo_descs).all(|(a, b)| {
            a.iter()
                .zip(b)
                .all(|(x, y)| policy.chunks(x.bytes).0 == policy.chunks(y.bytes).0)
        });
    let device_plan = if same_pairs && same_chunks {
        Arc::clone(&plan.device_plan)
    } else {
        Arc::new(build_device_plan_policy(
            &graph,
            &plan.schedule,
            &plan.data_parents,
            plan.device_plan.ndev(),
            if plan.device_plan.chunked() {
                CommMode::ChunkEvents
            } else {
                CommMode::Epoch
            },
            policy,
        ))
    };
    Arc::new(CompiledPlan {
        dependency_graph: rebind_graph(&plan.dependency_graph),
        graph,
        schedule: Arc::clone(&plan.schedule),
        device_plan,
        data_parents: plan.data_parents.clone(),
        halo_descs,
        timings: Vec::new(),
        dumps: plan.dumps.clone(),
        compile_trace: Trace::new(),
        containers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::FusionLevel;
    use crate::occ::OccLevel;
    use neon_domain::{ops, DenseGrid, Dim3, Field, MemLayout, ScalarSet, Stencil, StorageMode};

    fn sequence(ndev: usize, nz: usize) -> (Backend, Vec<Container>) {
        let b = Backend::dgx_a100(ndev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, nz), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 1.0, MemLayout::SoA).unwrap();
        let dot = ScalarSet::<f64>::new(ndev, "dot", 0.0, |a, b| a + b);
        let seq = vec![ops::set_value(&g, &x, 2.0), ops::dot(&g, &x, &x, &dot)];
        (b, seq)
    }

    #[test]
    fn identical_sequences_share_one_compilation() {
        let opts = SkeletonOptions::default();
        let (b, seq1) = sequence(2, 8);
        let (p1, hit1) = compile(&b, seq1, opts).unwrap();
        let (_b2, seq2) = sequence(2, 8);
        let (p2, hit2) = compile(&b, seq2, opts).unwrap();
        assert!(
            !hit1 || hit2,
            "second lookup cannot be colder than the first"
        );
        assert!(hit2, "structurally identical sequence must hit");
        assert!(
            Arc::ptr_eq(p1.schedule_arc(), p2.schedule_arc()),
            "schedule compiled once, shared"
        );
        // The rebound plan is bound to the *new* containers.
        assert!(!p2.containers().is_empty());
        assert!(
            p2.pass_timings().is_empty(),
            "cache hit does no compile work"
        );
    }

    #[test]
    fn grid_size_does_not_fragment_the_cache() {
        let opts = SkeletonOptions::default();
        let (b, small) = sequence(2, 8);
        let (_, _) = compile(&b, small, opts).unwrap();
        let (_b, large) = sequence(2, 64);
        let (_, hit) = compile(&b, large, opts).unwrap();
        assert!(hit, "same structure over a bigger grid reuses the plan");
    }

    #[test]
    fn options_and_backend_fragment_the_cache() {
        let (b, seq1) = sequence(2, 8);
        let (_, _) = compile(&b, seq1, SkeletonOptions::default()).unwrap();
        let (_b, seq2) = sequence(2, 8);
        let (_, hit) = compile(
            &b,
            seq2,
            SkeletonOptions::with_occ(OccLevel::TwoWayExtended),
        )
        .unwrap();
        assert!(!hit, "different OCC level compiles fresh");
        let (b4, seq3) = sequence(4, 8);
        let (_, hit) = compile(&b4, seq3, SkeletonOptions::default()).unwrap();
        assert!(!hit, "different device count compiles fresh");
    }

    #[test]
    fn cache_opt_out_always_compiles_fresh() {
        let opts = SkeletonOptions {
            cache: false,
            ..Default::default()
        };
        let (b, seq1) = sequence(2, 8);
        let (p1, hit1) = compile(&b, seq1, opts).unwrap();
        let (_b, seq2) = sequence(2, 8);
        let (p2, hit2) = compile(&b, seq2, opts).unwrap();
        assert!(!hit1 && !hit2);
        assert!(!Arc::ptr_eq(p1.schedule_arc(), p2.schedule_arc()));
    }

    #[test]
    fn runtime_options_do_not_fragment_the_key() {
        let base = SkeletonOptions::default();
        let traced = SkeletonOptions {
            trace: true,
            validate: false,
            functional_mode: crate::exec::FunctionalMode::Serial,
            resilience: crate::skeleton::ResilienceOptions {
                enabled: true,
                max_attempts: 9,
                backoff_us: 1.0,
                checkpoint_interval: 2,
            },
            ..Default::default()
        };
        assert_eq!(options_signature(&base), options_signature(&traced));
    }

    #[test]
    fn every_graph_shaping_option_fragments_the_signature() {
        // Audit: each option that changes the compiled graph or schedule
        // must be part of the cache key, or a cache hit would silently
        // hand back a plan compiled under different semantics.
        let base = SkeletonOptions::default();
        let variants: Vec<(&str, SkeletonOptions)> = vec![
            (
                "occ",
                SkeletonOptions {
                    occ: OccLevel::TwoWayExtended,
                    ..base
                },
            ),
            (
                "max_streams",
                SkeletonOptions {
                    max_streams: 2,
                    ..base
                },
            ),
            (
                "hints",
                SkeletonOptions {
                    hints: false,
                    ..base
                },
            ),
            (
                "kernel_concurrency",
                SkeletonOptions {
                    kernel_concurrency: true,
                    ..base
                },
            ),
            (
                "halo_policy",
                SkeletonOptions {
                    halo_policy: HaloPolicy::UnifiedMemory {
                        page_bytes: 65536,
                        fault_us: 20.0,
                        bandwidth_gb_s: 32.0,
                    },
                    ..base
                },
            ),
            (
                "fusion",
                SkeletonOptions {
                    fusion: FusionLevel::Off,
                    ..base
                },
            ),
            (
                "fusion-temporal-2",
                SkeletonOptions {
                    fusion: FusionLevel::Temporal(2),
                    ..base
                },
            ),
            (
                "fusion-temporal-3",
                SkeletonOptions {
                    fusion: FusionLevel::Temporal(3),
                    ..base
                },
            ),
            (
                "collectives",
                SkeletonOptions {
                    collectives: CollectiveMode::Fixed(neon_comm::Algorithm::Tree),
                    ..base
                },
            ),
            (
                "comm",
                SkeletonOptions {
                    comm: CommMode::ChunkEvents,
                    ..base
                },
            ),
            (
                "dump_ir",
                SkeletonOptions {
                    dump_ir: true,
                    ..base
                },
            ),
            (
                "layout",
                SkeletonOptions {
                    layout: crate::layout_select::LayoutPolicy::FixedAoS,
                    ..base
                },
            ),
        ];
        let sig = options_signature(&base);
        for (name, v) in &variants {
            assert_ne!(
                options_signature(v),
                sig,
                "flipping `{name}` must miss the plan cache"
            );
        }
        // And pairwise: no two variants may collide either.
        for i in 0..variants.len() {
            for j in (i + 1)..variants.len() {
                assert_ne!(
                    options_signature(&variants[i].1),
                    options_signature(&variants[j].1),
                    "`{}` and `{}` collide",
                    variants[i].0,
                    variants[j].0
                );
            }
        }
    }

    /// A sequence with a stencil consumer, so the compiled graph carries
    /// a halo node (the chunk-events device plan is only observably
    /// different when one exists).
    fn stencil_sequence(ndev: usize) -> (Backend, Vec<Container>) {
        use neon_domain::{FieldStencil as _, FieldWrite as _, GridLike as _};
        let b = Backend::dgx_a100(ndev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 16), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 1.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let lap = {
            let (xc, yc) = (x.clone(), y.clone());
            Container::compute("lap", g.as_space(), move |ldr| {
                let xv = ldr.read_stencil(&xc);
                let yv = ldr.write(&yc);
                Box::new(move |c| {
                    let mut s = 0.0;
                    for slot in 0..6 {
                        s += xv.ngh(c, slot, 0);
                    }
                    yv.set(c, 0, s);
                })
            })
        };
        (b, vec![ops::set_value(&g, &x, 2.0), lap])
    }

    #[test]
    fn comm_mode_fragments_the_cache() {
        // Regression: Epoch and ChunkEvents device plans differ (the
        // latter carries per-chunk arrival slots), so the two modes must
        // compile fresh instead of aliasing in the cache.
        let (b, seq1) = stencil_sequence(2);
        let (base_plan, _) = compile(&b, seq1, SkeletonOptions::default()).unwrap();
        let (_b, seq2) = stencil_sequence(2);
        let (p, hit) = compile(
            &b,
            seq2,
            SkeletonOptions {
                comm: CommMode::ChunkEvents,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!hit, "different comm mode compiles fresh");
        assert!(p.device_plan().chunked());
        assert!(!base_plan.device_plan().chunked());
        // The chunked plan carries strictly more event slots: the halo
        // node gained a per-chunk arrival region.
        assert!(p.device_plan().num_slots() > base_plan.device_plan().num_slots());
    }

    #[test]
    fn fusion_level_fragments_the_cache() {
        let (b, seq1) = sequence(2, 8);
        let _ = compile(&b, seq1, SkeletonOptions::default()).unwrap();
        let (_b, seq2) = sequence(2, 8);
        let (_, hit) = compile(
            &b,
            seq2,
            SkeletonOptions {
                fusion: FusionLevel::Off,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!hit, "different fusion level compiles fresh");
    }
}
