//! # neon-core — the Skeleton abstraction
//!
//! The highest layer of the Neon programming model (paper §V): users
//! describe an application as a *sequential* list of containers; the
//! Skeleton turns it into an optimized multi-GPU execution —
//!
//! * [`graph`] — the data dependency graph inferred from Loader records
//!   (RaW / WaR / WaW edges), with BFS levels and transitive reduction;
//! * [`fuse`] — the container-fusion pass merging map chains and a
//!   trailing reduction into single fused sweeps (fewer launches, fewer
//!   field re-reads);
//! * [`multigpu`] — the multi-GPU transform inserting halo-update nodes;
//! * [`occ`] — the overlap-computation-and-communication optimizations
//!   (*Standard*, *Extended*, *Two-way Extended*) via internal/boundary
//!   node splitting and scheduling hints;
//! * [`schedule`] — the greedy three-phase scheduler (stream mapping,
//!   event organization, task ordering);
//! * [`pass`] — the pass manager driving those stages as a uniform,
//!   timed, validated pipeline over a compilation IR;
//! * [`validate`] — the inter-pass invariant checker (acyclicity,
//!   conflict ordering, halo precedence, schedule/event soundness);
//! * [`plan`] — immutable [`CompiledPlan`]s and the process-wide plan
//!   cache keyed by sequence signature × backend fingerprint × options;
//! * [`exec`] — the executor: virtual-clock timing replay plus functional
//!   execution of the kernels on real partition data, borrowing plan data
//!   by index.
//!
//! ```no_run
//! # use neon_core::{Skeleton, SkeletonOptions, OccLevel};
//! # use neon_sys::Backend;
//! # let backend = Backend::dgx_a100(8);
//! # let containers = vec![];
//! let mut app = Skeleton::sequence(
//!     &backend,
//!     "my-solver",
//!     containers, // map/stencil/reduce containers, in program order
//!     SkeletonOptions::with_occ(OccLevel::TwoWayExtended),
//! );
//! let report = app.run_iters(100);
//! println!("per iteration: {}", report.time_per_execution());
//! ```

pub mod collective;
pub mod devplan;
pub mod exec;
pub mod fuse;
pub mod graph;
pub mod health;
pub mod layout_select;
pub mod multigpu;
pub mod occ;
pub mod pass;
pub mod plan;
pub mod schedule;
pub mod skeleton;
pub mod temporal;
pub mod validate;

pub use collective::{lower_collectives, merge_collectives, CollectiveMode};
pub use devplan::{
    build_device_plan, build_device_plan_policy, build_device_plan_with, comm_chunks, ChunkPolicy,
    DevAction, DevStep, DevicePlan,
};
pub use exec::{CommMode, ExecError, ExecReport, Executor, FunctionalMode, HaloPolicy};
pub use fuse::{fuse_graph, FusePass, FusionLevel};
pub use graph::{build_dependency_graph, Edge, EdgeKind, Graph, Node, NodeId, NodeKind};
pub use health::{HealthReport, StragglerMonitor, StragglerPolicy};
pub use layout_select::{
    recommend_layout, summarize_accesses, AccessSummary, LayoutPolicy, LayoutRec, LayoutSelectPass,
};
pub use multigpu::to_multigpu_graph;
pub use neon_comm::Algorithm as CollectiveAlgorithm;
pub use neon_sys::{
    CounterSnapshot, FaultPlan, FaultSite, FaultSiteKind, FaultStats, LinkEvent, PermanentFault,
    RetryPolicy,
};
pub use occ::{apply_occ, OccLevel};
pub use pass::{CompileError, CompileLog, Ir, Pass, PassCtx, PassManager, PassTiming};
pub use plan::{
    clear_plan_cache, invalidate_backend, plan_cache_capacity, plan_cache_stats,
    set_plan_cache_capacity, CacheStats, CompiledPlan, PlanKey, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use schedule::{build_schedule, build_schedule_opts, Schedule, Task};
pub use skeleton::{ResilienceOptions, ResilientError, ResilientRun, Skeleton, SkeletonOptions};
pub use temporal::TemporalFusePass;
pub use validate::{validate_graph, validate_ir, validate_schedule, ValidationError};
