//! Container fusion (compile pass).
//!
//! Grid computations spend their time streaming fields through memory:
//! every container launch is one full sweep over its iteration space, so a
//! chain of cell-local maps re-reads and re-writes the same fields once per
//! link. This pass merges maximal runs of fusible containers into a single
//! [`Container::fused`] node that performs **one** traversal per partition
//! and applies every member kernel per cell, eliding the redundant
//! intermediate loads (a field written by an earlier member is re-read
//! in-register by later members for free).
//!
//! # Legality (Conservative)
//!
//! The pass scans the dependency graph in node order (node ids are program
//! order before the multi-GPU transform, and all data edges point from
//! lower to higher ids) and greedily grows a group. A candidate joins the
//! open group iff
//!
//! * it is a compute node whose iteration space has a stable identity
//!   ([`neon_set::IterationSpace::space_id`]) equal to the group's — same grid, same
//!   cardinality, same partitioning;
//! * it does not **stencil-read** a field the group writes (the
//!   neighbourhood would observe a mix of old and new values; a halo
//!   update must run in between);
//! * it does not **write** a field the group stencil-reads (the group's
//!   neighbourhood reads of remote halo cells would race the overwrite);
//! * no scalar reduced by one side is accessed by the other (the reduced
//!   host value only materialises at the fused node's finalize, so a
//!   member reading it through [`neon_set::Loader::scalar`] would observe a stale
//!   value);
//! * the group holds no reduction yet — a reduce member *closes* the
//!   group, so reductions only appear as the trailing member (the paper's
//!   `map+dot` shape) and the fused node keeps single init/finalize
//!   semantics.
//!
//! Plain map reads of group-written fields are legal: members run per cell
//! in sequence order, so the read observes the freshly computed value
//! exactly as the unfused schedule would — and it is exactly these reads
//! whose bytes the fused container elides. Because groups are contiguous
//! runs of node ids and data edges are monotone, fusing can never create a
//! cycle through an external node, and edge monotonicity (which the
//! multi-GPU transform relies on) is preserved.
//!
//! Host nodes and any legality failure close the group; only groups of two
//! or more members are materialised. Everything downstream — OCC
//! splitting, collective lowering, scheduling, device partitioning — sees
//! an ordinary compute node (with [`Node::fused_sources`] provenance for
//! plan rebinding and IR dumps).

use std::collections::{HashMap, HashSet};

use neon_set::{ComputePattern, Container, DataUid};

use crate::graph::{Edge, Graph, Node, NodeId, NodeKind};
use crate::pass::{Ir, Pass, PassCtx};
use neon_set::DataView;

/// How aggressively the skeleton fuses containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionLevel {
    /// No fusion: one launch per container, as authored.
    Off,
    /// Fuse contiguous same-grid map chains and a trailing reduction when
    /// provably legal (no stencil/scalar hazards). Bit-identical to `Off`.
    #[default]
    Conservative,
    /// Everything `Conservative` does, plus temporal blocking: when the
    /// whole post-fuse graph is one legal stencil sweep, rewrite it into a
    /// super-step executing `k` iterations per launch with an expanded
    /// (depth `k·r`) halo and deterministic ghost-zone recompute. Falls
    /// back to `Conservative` behaviour whenever the legality checks fail.
    /// Bit-identical to `Off`.
    Temporal(u8),
}

/// Per-node access summary used by the legality checks.
#[derive(Default)]
struct AccessSets {
    writes: HashSet<DataUid>,
    stencil_reads: HashSet<DataUid>,
    reduce_writes: HashSet<DataUid>,
    accessed: HashSet<DataUid>,
}

impl AccessSets {
    fn of(c: &Container) -> Self {
        let mut s = AccessSets::default();
        for a in c.accesses() {
            s.accessed.insert(a.uid);
            if a.mode.writes() {
                s.writes.insert(a.uid);
            }
            if a.pattern == ComputePattern::Stencil && a.mode.reads() {
                s.stencil_reads.insert(a.uid);
            }
            if a.pattern == ComputePattern::Reduce {
                s.reduce_writes.insert(a.uid);
            }
        }
        s
    }

    fn absorb(&mut self, other: &AccessSets) {
        self.writes.extend(other.writes.iter().copied());
        self.stencil_reads
            .extend(other.stencil_reads.iter().copied());
        self.reduce_writes
            .extend(other.reduce_writes.iter().copied());
        self.accessed.extend(other.accessed.iter().copied());
    }

    fn disjoint(a: &HashSet<DataUid>, b: &HashSet<DataUid>) -> bool {
        a.iter().all(|u| !b.contains(u))
    }
}

/// A fusible compute node: its id, its space identity and access summary.
struct Eligible {
    id: NodeId,
    space_id: u64,
    sets: AccessSets,
}

fn eligible(g: &Graph, id: NodeId) -> Option<Eligible> {
    let n = g.node(id);
    let NodeKind::Compute { container, .. } = &n.kind else {
        return None;
    };
    let space_id = container.space().and_then(|s| s.space_id())?;
    Some(Eligible {
        id,
        space_id,
        sets: AccessSets::of(container),
    })
}

/// Compute the fusion groups (each a contiguous run of node ids, length
/// ≥ 2) of a dependency graph.
fn fusion_groups(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    let mut run: Vec<NodeId> = Vec::new();
    let mut run_sets = AccessSets::default();
    let mut run_space = 0u64;
    let mut run_has_reduce = false;

    let mut flush = |run: &mut Vec<NodeId>| {
        if run.len() >= 2 {
            groups.push(std::mem::take(run));
        } else {
            run.clear();
        }
    };

    for id in 0..g.len() {
        let Some(cand) = eligible(g, id) else {
            flush(&mut run);
            run_has_reduce = false;
            continue;
        };
        let joins = !run.is_empty()
            && !run_has_reduce
            && cand.space_id == run_space
            && AccessSets::disjoint(&cand.sets.stencil_reads, &run_sets.writes)
            && AccessSets::disjoint(&cand.sets.writes, &run_sets.stencil_reads)
            && AccessSets::disjoint(&cand.sets.reduce_writes, &run_sets.accessed)
            && AccessSets::disjoint(&cand.sets.accessed, &run_sets.reduce_writes);
        if !joins {
            flush(&mut run);
            run_sets = AccessSets::default();
            run_has_reduce = false;
            run_space = cand.space_id;
        }
        run_has_reduce |= !cand.sets.reduce_writes.is_empty();
        run_sets.absorb(&cand.sets);
        run.push(cand.id);
    }
    flush(&mut run);
    groups
}

/// Apply `fusion_groups` to a graph: rebuild it with each group replaced
/// by a single fused compute node at the first member's position, edges
/// remapped (intra-group edges dropped, duplicates collapsed).
pub fn fuse_graph(g: &Graph, containers: &[Container]) -> Graph {
    let groups = fusion_groups(g);
    if groups.is_empty() {
        return g.clone();
    }

    // Member node → index of its group.
    let mut group_of: HashMap<NodeId, usize> = HashMap::new();
    for (gi, grp) in groups.iter().enumerate() {
        for &m in grp {
            group_of.insert(m, gi);
        }
    }

    let mut out = Graph::new();
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for (id, n) in g.nodes().iter().enumerate() {
        let Some(&gi) = group_of.get(&id) else {
            let nid = out.add_node(n.clone());
            remap.insert(id, nid);
            continue;
        };
        let grp = &groups[gi];
        if grp[0] != id {
            continue; // emitted at the first member's position
        }
        let srcs: Vec<usize> = grp
            .iter()
            .map(|&m| {
                g.node(m)
                    .source
                    .expect("fusible compute nodes carry a sequence index")
            })
            .collect();
        let members: Vec<Container> = srcs.iter().map(|&s| containers[s].clone()).collect();
        let name = format!(
            "fused{{{}}}",
            grp.iter()
                .map(|&m| g.node(m).name.as_str())
                .collect::<Vec<_>>()
                .join("+")
        );
        let fused = Container::fused(&name, members);
        let is_reduce = fused.is_reduce();
        let nid = out.add_node(Node::with_fused_sources(
            name,
            NodeKind::Compute {
                container: fused,
                view: DataView::Standard,
                reduce_init: is_reduce,
                reduce_finalize: is_reduce,
            },
            srcs,
        ));
        for &m in grp {
            remap.insert(m, nid);
        }
    }
    for e in g.edges() {
        let (from, to) = (remap[&e.from], remap[&e.to]);
        if from != to {
            out.add_edge(Edge {
                from,
                to,
                kind: e.kind,
                data: e.data,
            });
        }
    }
    out.dedup_edges();
    out
}

/// The fuse pass: rewrites `ir.graph` per [`FusionLevel`]. A no-op at
/// `Off` (the pass still runs, so pipelines have the same shape in both
/// settings).
pub struct FusePass;

impl Pass for FusePass {
    fn name(&self) -> &'static str {
        "fuse"
    }

    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        if cx.options.fusion == FusionLevel::Off {
            return;
        }
        ir.graph = fuse_graph(&ir.graph, &ir.containers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_dependency_graph;
    use neon_domain::{
        ops, DenseGrid, Dim3, Field, FieldRead as _, FieldStencil as _, FieldWrite as _,
        GridLike as _, MemLayout, ScalarSet, Stencil, StorageMode,
    };
    use neon_sys::Backend;

    fn fixtures(
        n_dev: usize,
    ) -> (
        DenseGrid,
        Field<f64, DenseGrid>,
        Field<f64, DenseGrid>,
        ScalarSet<f64>,
    ) {
        let b = Backend::dgx_a100(n_dev);
        let s = Stencil::seven_point();
        let g = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let d = ScalarSet::<f64>::new(n_dev, "dot", 0.0, |a, b| a + b);
        (g, x, y, d)
    }

    fn laplace(g: &DenseGrid, x: &Field<f64, DenseGrid>, y: &Field<f64, DenseGrid>) -> Container {
        let (xc, yc) = (x.clone(), y.clone());
        Container::compute("laplace", g.as_space(), move |ldr| {
            let xv = ldr.read_stencil(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| {
                let mut s = 0.0;
                for slot in 0..6 {
                    s += xv.ngh(c, slot, 0);
                }
                yv.set(c, 0, s);
            })
        })
    }

    #[test]
    fn map_chain_fuses_into_one_node() {
        let (g, x, y, _) = fixtures(2);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            ops::axpy_const(&g, 2.0, &x, &y),
            ops::copy(&g, &y, &x),
        ];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        assert_eq!(fused.len(), 1, "three maps fuse into one node");
        let n = fused.node(0);
        assert_eq!(n.fused_sources, vec![0, 1, 2]);
        assert!(n.name.starts_with("fused{"));
        let c = n.container().unwrap();
        assert!(c.is_fused());
        assert!(!c.is_reduce());
    }

    #[test]
    fn trailing_dot_joins_and_closes_the_group() {
        let (g, x, y, d) = fixtures(2);
        let seq = vec![
            ops::axpy_const(&g, 2.0, &x, &y),
            ops::dot(&g, &y, &y, &d),
            ops::set_value(&g, &x, 0.5),
        ];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        // {axpy, dot} fuse; the reduce closes the group, so scale stays out.
        assert_eq!(fused.len(), 2);
        let n = fused.node(0);
        assert_eq!(n.fused_sources, vec![0, 1]);
        assert!(n.container().unwrap().is_reduce());
        match &n.kind {
            NodeKind::Compute {
                reduce_init,
                reduce_finalize,
                ..
            } => assert!(reduce_init & reduce_finalize),
            _ => panic!("fused node is a compute node"),
        }
        assert_eq!(fused.node(1).source, Some(2));
    }

    #[test]
    fn stencil_read_of_written_field_blocks_fusion() {
        let (g, x, y, _) = fixtures(2);
        let seq = vec![ops::set_value(&g, &x, 1.0), laplace(&g, &x, &y)];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        assert_eq!(fused.len(), 2, "halo must run between writer and stencil");
        assert!(fused.nodes().iter().all(|n| n.fused_sources.is_empty()));
    }

    #[test]
    fn stencil_and_cell_local_consumer_fuse() {
        // laplace writes y cell-locally; dot reads y cell-locally → legal,
        // and the group inherits the stencil read of x (halo still
        // inserted in front of the fused node by the multi-GPU pass).
        let (g, x, y, d) = fixtures(2);
        let seq = vec![laplace(&g, &x, &y), ops::dot(&g, &y, &y, &d)];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        assert_eq!(fused.len(), 1);
        let c = fused.node(0).container().unwrap();
        assert!(c.is_reduce());
        assert_eq!(c.stencil_reads().count(), 1);
    }

    #[test]
    fn host_node_closes_the_group() {
        let (g, x, y, d) = fixtures(1);
        let dc = d.clone();
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            ops::set_value(&g, &y, 2.0),
            Container::host("host", 1, move |ldr| {
                let s = ldr.scalar_reader(&dc);
                Box::new(move || {
                    let _ = s.get();
                })
            }),
            ops::set_value(&g, &x, 0.5),
            ops::set_value(&g, &y, 2.0),
        ];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        // {set,set} + host + {scale,scale}
        assert_eq!(fused.len(), 3);
        assert_eq!(fused.node(0).fused_sources, vec![0, 1]);
        assert!(fused.node(1).container().unwrap().kind() == neon_set::ContainerKind::Host);
        assert_eq!(fused.node(2).fused_sources, vec![3, 4]);
    }

    #[test]
    fn different_grids_do_not_fuse() {
        let b = Backend::dgx_a100(2);
        let s = Stencil::seven_point();
        let g1 = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let g2 = DenseGrid::new(&b, Dim3::new(4, 4, 8), &[&s], StorageMode::Real).unwrap();
        let x = Field::<f64, _>::new(&g1, "x", 1, 0.0, MemLayout::SoA).unwrap();
        let y = Field::<f64, _>::new(&g2, "y", 1, 0.0, MemLayout::SoA).unwrap();
        let seq = vec![ops::set_value(&g1, &x, 1.0), ops::set_value(&g2, &y, 2.0)];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        assert_eq!(fused.len(), 2, "identical shape but distinct grid identity");
    }

    #[test]
    fn scalar_consumer_of_group_reduction_stays_out() {
        // axpy reads the scalar the dot reduces into → fusing all three
        // would read a stale value; the scalar hazard must split them.
        let (g, x, y, d) = fixtures(2);
        let dc = d.clone();
        let (xc, yc) = (x.clone(), y.clone());
        let consumer = Container::compute("consume", g.as_space(), move |ldr| {
            let s = ldr.scalar(&dc);
            let xv = ldr.read(&xc);
            let yv = ldr.write(&yc);
            Box::new(move |c| yv.set(c, 0, s + xv.at(c, 0)))
        });
        let seq = vec![ops::dot(&g, &x, &x, &d), consumer];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        assert_eq!(fused.len(), 2, "stale-scalar hazard blocks fusion");
    }

    #[test]
    fn edges_are_remapped_and_deduped() {
        let (g, x, y, d) = fixtures(2);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),
            laplace(&g, &x, &y), // blocked from fusing with set (stencil read of x)
            ops::axpy_const(&g, 1.0, &x, &y),
            ops::dot(&g, &y, &y, &d),
        ];
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        // set | {laplace, scale, dot}: laplace writes y cell-locally, scale
        // rw y cell-locally, dot reads y — all legal.
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.node(1).fused_sources, vec![1, 2, 3]);
        // One edge set→fused remains; intra-group edges are gone and the
        // remapped duplicates collapsed.
        assert_eq!(fused.edges().len(), 1);
        let e = fused.edges()[0];
        assert_eq!((e.from, e.to), (0, 1));
        // Edge monotonicity (required by the multi-GPU transform) holds.
        assert!(fused.edges().iter().all(|e| e.from < e.to));
    }

    #[test]
    fn fused_bytes_elide_intermediate_reads() {
        let (g, x, y, _) = fixtures(1);
        let seq = vec![
            ops::set_value(&g, &x, 1.0),      // write x: 8 B
            ops::axpy_const(&g, 2.0, &x, &y), // read x + rw y: 24 B
        ];
        let unfused: u64 = seq.iter().map(|c| c.bytes_per_cell()).sum();
        let dep = build_dependency_graph(&seq);
        let fused = fuse_graph(&dep, &seq);
        let c = fused.node(0).container().unwrap();
        // x's read is elided (written by the first member in-register).
        assert_eq!(unfused, 32);
        assert_eq!(c.bytes_per_cell(), 24);
    }

    #[test]
    fn fusion_level_off_leaves_graph_alone() {
        use crate::skeleton::SkeletonOptions;
        let opts = SkeletonOptions {
            fusion: FusionLevel::Off,
            ..Default::default()
        };
        assert_eq!(opts.fusion, FusionLevel::Off);
        assert_eq!(SkeletonOptions::default().fusion, FusionLevel::Conservative);
    }
}
