//! The `layout-select` compile pass: memory layout as a compile *policy*.
//!
//! The paper's §IV-C2 promises layout transparency — user kernels index
//! fields through an abstract `(cell, component)` interface, so SoA vs
//! AoS is free to vary per field. This pass makes the choice part of the
//! compile pipeline instead of a hard-coded per-field default: from each
//! data object's recorded access pattern it derives a **recommended**
//! [`MemLayout`] and the reason, annotated on the IR (and visible in IR
//! dumps).
//!
//! The pass is *advisory*: fields are allocated before the skeleton
//! compiles, so the pipeline cannot relocate storage in flight. Apps
//! consult [`recommend_layout`] (directly or via the skeleton's
//! [`LayoutPolicy`]) at allocation time; the plan cache folds the policy
//! into the options signature so plans compiled under different layout
//! policies never alias.
//!
//! The heuristic mirrors the halo-transfer arithmetic asserted by the
//! grid tests (`MemLayout::halo_transfers_per_pair`):
//!
//! * cardinality 1 — SoA and AoS coincide; SoA (the default) wins.
//! * cardinality > 1 and stencil-read with a live halo — AoS: halo planes
//!   are contiguous, 2 transfers per partition pair instead of `2·card`.
//! * cardinality > 1, map-only — SoA: component sweeps stay contiguous
//!   and vectorizable, and no halo traffic exists to amortize.

use neon_set::{uid_roles, ComputePattern, Container, MemLayout};

use crate::pass::{Ir, Pass, PassCtx};

/// How the skeleton chooses field layouts (folded into the plan key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutPolicy {
    /// Recommend per field from the access pattern (the heuristic above).
    #[default]
    Auto,
    /// Recommend SoA for every field.
    FixedSoA,
    /// Recommend AoS for every field.
    FixedAoS,
}

impl LayoutPolicy {
    /// Short label used in IR dumps and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            LayoutPolicy::Auto => "auto",
            LayoutPolicy::FixedSoA => "fixed-soa",
            LayoutPolicy::FixedAoS => "fixed-aos",
        }
    }

    /// Stable byte for the options signature.
    pub fn signature_byte(self) -> u8 {
        match self {
            LayoutPolicy::Auto => 0,
            LayoutPolicy::FixedSoA => 1,
            LayoutPolicy::FixedAoS => 2,
        }
    }
}

/// One per-data-object recommendation produced by the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutRec {
    /// The data object's role (first-occurrence index; see
    /// [`neon_set::uid_roles`]) — stable across runs, unlike raw uids.
    pub role: usize,
    /// The data object's name (diagnostics).
    pub name: String,
    /// The recommended layout.
    pub layout: MemLayout,
    /// Why (short, stable phrase — appears in golden IR dumps).
    pub reason: &'static str,
}

/// The access summary [`recommend_layout`] decides from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSummary {
    /// Field cardinality (components per cell).
    pub card: usize,
    /// Whether any access stencil-reads the object.
    pub stencil: bool,
    /// Whether a halo exchange with at least one transfer is attached.
    pub live_halo: bool,
}

/// The layout the policy recommends for one data object.
pub fn recommend_layout(policy: LayoutPolicy, s: AccessSummary) -> (MemLayout, &'static str) {
    match policy {
        LayoutPolicy::FixedSoA => (MemLayout::SoA, "policy=fixed-soa"),
        LayoutPolicy::FixedAoS => (MemLayout::AoS, "policy=fixed-aos"),
        LayoutPolicy::Auto => {
            if s.card <= 1 {
                (MemLayout::SoA, "scalar: layouts coincide")
            } else if s.stencil || s.live_halo {
                (MemLayout::AoS, "vector stencil: 2 halo transfers, not 2n")
            } else {
                (MemLayout::SoA, "vector map: contiguous component sweeps")
            }
        }
    }
}

/// Summarize every data object's accesses across a container sequence,
/// in role order. Cardinality is estimated from the largest per-cell
/// byte count any access declares (all shipped fields are `f64`); the
/// estimate only needs to distinguish scalar from vector.
pub fn summarize_accesses(containers: &[Container]) -> Vec<(usize, String, AccessSummary)> {
    let roles = uid_roles(containers);
    let mut out: Vec<Option<(String, AccessSummary)>> = vec![None; roles.len()];
    for c in containers {
        for a in c.accesses() {
            let role = roles[&a.uid];
            let entry = out[role].get_or_insert_with(|| (a.name.clone(), AccessSummary::default()));
            let bytes = a.read_bytes_per_cell.max(a.write_bytes_per_cell);
            entry.1.card = entry.1.card.max((bytes / 8).max(1) as usize);
            if a.pattern == ComputePattern::Stencil && a.mode.reads() {
                entry.1.stencil = true;
            }
            if a.halo
                .as_ref()
                .map(|h| !h.descriptors().is_empty())
                .unwrap_or(false)
            {
                entry.1.live_halo = true;
            }
        }
    }
    out.into_iter()
        .enumerate()
        .filter_map(|(role, e)| e.map(|(name, s)| (role, name, s)))
        .collect()
}

/// The `layout-select` pass: annotate the IR with one [`LayoutRec`] per
/// data object.
pub struct LayoutSelectPass;

impl Pass for LayoutSelectPass {
    fn name(&self) -> &'static str {
        "layout-select"
    }
    fn run(&self, ir: &mut Ir, cx: &PassCtx) {
        ir.layout_policy = cx.options.layout;
        ir.layout_recs = summarize_accesses(&ir.containers)
            .into_iter()
            .map(|(role, name, s)| {
                let (layout, reason) = recommend_layout(cx.options.layout, s);
                LayoutRec {
                    role,
                    name,
                    layout,
                    reason,
                }
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policies_override_everything() {
        let s = AccessSummary {
            card: 3,
            stencil: true,
            live_halo: true,
        };
        assert_eq!(
            recommend_layout(LayoutPolicy::FixedSoA, s).0,
            MemLayout::SoA
        );
        assert_eq!(
            recommend_layout(LayoutPolicy::FixedAoS, s).0,
            MemLayout::AoS
        );
    }

    #[test]
    fn auto_scalar_prefers_soa() {
        let (l, _) = recommend_layout(
            LayoutPolicy::Auto,
            AccessSummary {
                card: 1,
                stencil: true,
                live_halo: true,
            },
        );
        assert_eq!(l, MemLayout::SoA);
    }

    #[test]
    fn auto_vector_stencil_prefers_aos() {
        let (l, _) = recommend_layout(
            LayoutPolicy::Auto,
            AccessSummary {
                card: 19,
                stencil: true,
                live_halo: true,
            },
        );
        assert_eq!(l, MemLayout::AoS);
    }

    #[test]
    fn auto_vector_map_prefers_soa() {
        let (l, _) = recommend_layout(
            LayoutPolicy::Auto,
            AccessSummary {
                card: 3,
                stencil: false,
                live_halo: false,
            },
        );
        assert_eq!(l, MemLayout::SoA);
    }

    #[test]
    fn policy_bytes_are_distinct() {
        let all = [
            LayoutPolicy::Auto,
            LayoutPolicy::FixedSoA,
            LayoutPolicy::FixedAoS,
        ];
        let mut seen = std::collections::HashSet::new();
        for p in all {
            assert!(seen.insert(p.signature_byte()), "duplicate {}", p.label());
        }
    }
}
