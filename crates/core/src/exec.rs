//! Executing a compiled plan.
//!
//! The executor holds an immutable, shareable [`CompiledPlan`] and does two
//! things for every task of its schedule:
//!
//! * **Virtual timing** — enqueues the operation on the owning stream of
//!   the [`neon_sys::QueueSim`] virtual clock: kernels cost
//!   `launch + bytes/bandwidth` (roofline), halo transfers cost
//!   `latency + bytes/link-bandwidth` per segment on dedicated per-device
//!   transfer lanes (one per direction, modelling a GPU's copy engines),
//!   host steps synchronize all devices. Every overlap the schedule
//!   enables shows up as reduced makespan — this is how the paper's OCC
//!   figures are reproduced without hardware.
//!
//! * **Functional execution** — actually runs the compute lambdas over the
//!   partition data (one OS thread per device, disjoint partitions),
//!   executes halo copies, reduce folds and host steps, in task order.
//!   Skipped automatically when the grid uses virtual (timing-only)
//!   storage.
//!
//! Tasks, nodes and parent lists are *borrowed from the plan by index* —
//! the hot loop clones nothing per task, and the per-node completion-time
//! table is a flat scratch buffer reused across iterations, so an
//! iterative solver's steady state allocates nothing.
//!
//! Event semantics are per-device: a kernel on device *d* waits for its
//! data parents on *d*; a halo transfer waits for its source's and
//! destination's parents; a host step waits for everything.

#![allow(clippy::needless_range_loop)] // device loops index per-device tables

use std::sync::Arc;

use neon_comm::{CollectiveEngine, CollectiveKind, EngineConfig};
use neon_sys::{Backend, DeviceId, QueueSim, SimTime, SpanKind, StreamId, Trace};

use crate::collective::CollectiveMode;
use crate::graph::{Graph, NodeKind};
use crate::plan::CompiledPlan;
use crate::schedule::Schedule;

/// How halo coherency is realized (paper §IV-C2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HaloPolicy {
    /// Explicit peer-to-peer copies on dedicated transfer lanes — the
    /// model the paper's grids use, and the one OCC can overlap.
    ExplicitTransfers,
    /// Driver-managed unified memory: remote pages migrate on first
    /// touch *inside* the consuming kernel, so migration time serializes
    /// with computation on the device's compute lane and no overlap is
    /// possible — the performance penalty the paper cites for rejecting
    /// this design.
    UnifiedMemory {
        /// Migration page size in bytes (2 MiB on modern GPUs).
        page_bytes: u64,
        /// Fault-handling latency per page group, in µs.
        fault_us: f64,
        /// Sustained migration bandwidth, in GB/s.
        bandwidth_gb_s: f64,
    },
}

impl HaloPolicy {
    /// The unified-memory model with typical NVLink-system parameters.
    pub fn unified_default() -> Self {
        HaloPolicy::UnifiedMemory {
            page_bytes: 2 << 20,
            fault_us: 25.0,
            bandwidth_gb_s: 50.0,
        }
    }
}

/// Timing summary of one or more executions.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecReport {
    /// Wall-clock (virtual) time from first enqueue to last completion.
    pub makespan: SimTime,
    /// Total kernel busy time summed over all streams and devices.
    pub kernel_time: SimTime,
    /// Total transfer busy time summed over all lanes.
    pub transfer_time: SimTime,
    /// Total host-step time.
    pub host_time: SimTime,
    /// Total collective-communication busy time over all lanes.
    pub collective_time: SimTime,
    /// Number of executions aggregated.
    pub executions: u64,
}

impl ExecReport {
    fn accumulate(&mut self, other: ExecReport) {
        self.makespan += other.makespan;
        self.kernel_time += other.kernel_time;
        self.transfer_time += other.transfer_time;
        self.host_time += other.host_time;
        self.collective_time += other.collective_time;
        self.executions += other.executions;
    }

    /// Average makespan per execution.
    pub fn time_per_execution(&self) -> SimTime {
        if self.executions == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_us(self.makespan.as_us() / self.executions as f64)
        }
    }
}

/// Replays a compiled plan on the virtual clock and (optionally) the real
/// data.
pub struct Executor {
    backend: Backend,
    plan: Arc<CompiledPlan>,
    queue: QueueSim,
    compute_streams: usize,
    functional: bool,
    kernel_concurrency: bool,
    halo_policy: HaloPolicy,
    engine: CollectiveEngine,
    collective_mode: CollectiveMode,
    /// Flat `node × device` completion-time table, reused across
    /// executions.
    ends_scratch: Vec<SimTime>,
    /// Per-device staging buffer for halo/collective readiness times,
    /// reused across tasks.
    lane_scratch: Vec<SimTime>,
}

impl Executor {
    /// Build an executor over an already-built graph and schedule
    /// (compatibility path; the skeleton uses [`Executor::from_plan`]).
    pub fn new(backend: Backend, graph: Graph, schedule: Schedule) -> Self {
        Self::from_plan(backend, CompiledPlan::from_parts(graph, schedule))
    }

    /// Build an executor over a shared compiled plan. Functional execution
    /// is enabled iff every compute node's iteration space has real
    /// storage.
    pub fn from_plan(backend: Backend, plan: Arc<CompiledPlan>) -> Self {
        let compute_streams = plan.schedule().num_streams;
        // lanes: [0, compute_streams) kernels, +0/+1 transfers, +2 host,
        // +3 collectives.
        let queue = QueueSim::new(backend.num_devices(), compute_streams + 4);
        let engine = CollectiveEngine::new(backend.topology().clone());
        let functional = plan.graph().nodes().iter().all(|n| match &n.kind {
            NodeKind::Compute { container, .. } => container
                .space()
                .map(|s| s.supports_functional())
                .unwrap_or(true),
            _ => true,
        });
        Executor {
            backend,
            plan,
            queue,
            compute_streams,
            functional,
            kernel_concurrency: false,
            halo_policy: HaloPolicy::ExplicitTransfers,
            engine,
            collective_mode: CollectiveMode::default(),
            ends_scratch: Vec::new(),
            lane_scratch: Vec::new(),
        }
    }

    /// The plan this executor replays.
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// Select the halo coherency model (see [`HaloPolicy`]).
    pub fn set_halo_policy(&mut self, policy: HaloPolicy) {
        self.halo_policy = policy;
    }

    /// Select how collective nodes pick their algorithm (default:
    /// [`CollectiveMode::Auto`]).
    pub fn set_collective_mode(&mut self, mode: CollectiveMode) {
        self.collective_mode = mode;
        self.engine = CollectiveEngine::with_config(
            self.backend.topology().clone(),
            EngineConfig {
                algorithm: mode.fixed_algorithm(),
                ..EngineConfig::default()
            },
        );
    }

    /// The virtual-clock simulator (link utilization counters live here).
    pub fn queue(&self) -> &QueueSim {
        &self.queue
    }

    /// Let kernels of different streams run concurrently at full modelled
    /// bandwidth each.
    ///
    /// Off by default: the applications here are memory-bound, and a real
    /// GPU's bandwidth is shared between concurrent kernels, so the
    /// faithful model serializes a device's kernels on one lane (transfers
    /// keep their own DMA lanes). Enabling this reproduces the unphysical
    /// super-linear efficiencies the ablation demonstrates.
    pub fn set_kernel_concurrency(&mut self, on: bool) {
        self.kernel_concurrency = on;
    }

    /// Whether kernels actually run on data (vs. timing-only).
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Force timing-only execution (used by large benchmark sweeps).
    pub fn set_functional(&mut self, on: bool) {
        assert!(
            !on || self.plan.graph().nodes().iter().all(|n| match &n.kind {
                NodeKind::Compute { container, .. } => container
                    .space()
                    .map(|s| s.supports_functional())
                    .unwrap_or(true),
                _ => true,
            }),
            "cannot enable functional execution on virtual storage"
        );
        self.functional = on;
    }

    /// Enable span recording on the virtual clock.
    pub fn enable_trace(&mut self) {
        self.queue.enable_trace();
    }

    /// Take the recorded trace (if tracing was enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.queue.take_trace()
    }

    fn transfer_lane(&self, src: DeviceId, dst: DeviceId) -> usize {
        self.compute_streams + usize::from(dst.0 < src.0)
    }

    fn host_lane(&self) -> usize {
        self.compute_streams + 2
    }

    fn collective_lane(&self) -> usize {
        self.compute_streams + 3
    }

    /// Execute the plan once.
    pub fn execute(&mut self) -> ExecReport {
        // Clone the Arc so plan data can be borrowed by index while the
        // queue (and scratch) are mutated — nothing inside is copied.
        let plan = Arc::clone(&self.plan);
        let graph = plan.graph();
        let schedule = plan.schedule();
        let ndev = self.backend.num_devices();
        let t0 = self.queue.makespan();
        let mut report = ExecReport {
            executions: 1,
            ..Default::default()
        };
        // Completion time of each node on each device, flat `node × dev`.
        let mut ends = std::mem::take(&mut self.ends_scratch);
        ends.clear();
        ends.resize(graph.len() * ndev, t0);

        for task in &schedule.tasks {
            let node_id = task.node;
            let node = graph.node(node_id);
            let parents = plan.data_parents(node_id);

            match &node.kind {
                NodeKind::Compute {
                    container,
                    view,
                    reduce_init,
                    reduce_finalize,
                } => {
                    let space = container
                        .space()
                        .expect("compute node has an iteration space");
                    let bytes_per_cell = container.bytes_per_cell();
                    let flops_per_cell = container.flops_per_cell();
                    let eff = container.bw_efficiency();
                    for d in 0..ndev {
                        let dev = DeviceId(d);
                        let earliest = parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max);
                        let cells = space.cell_count(dev, *view);
                        if cells == 0 {
                            ends[node_id * ndev + d] = earliest;
                            continue;
                        }
                        let dur = self.backend.device(dev).kernel_time(
                            cells * bytes_per_cell,
                            cells * flops_per_cell,
                            eff,
                        );
                        let lane = if self.kernel_concurrency {
                            task.stream
                        } else {
                            0
                        };
                        let stream = StreamId::new(dev, lane);
                        let (_, e) = self.queue.enqueue_from(
                            stream,
                            earliest,
                            dur,
                            &node.name,
                            SpanKind::Kernel,
                        );
                        report.kernel_time += dur;
                        ends[node_id * ndev + d] = e;
                    }
                    if *reduce_finalize {
                        // Folding partials into the host value synchronizes
                        // the devices and pays a host round trip.
                        let sync = self.backend.device(DeviceId(0)).sync_overhead();
                        let gmax = (0..ndev)
                            .map(|d| ends[node_id * ndev + d])
                            .fold(t0, SimTime::max)
                            + sync;
                        report.host_time += sync;
                        for d in 0..ndev {
                            ends[node_id * ndev + d] = gmax;
                        }
                    }
                    if self.functional {
                        if *reduce_init {
                            container.reduce_init();
                        }
                        let view = *view;
                        // Borrow the container into the per-device threads
                        // (`Container: Sync`) — no per-launch clones.
                        std::thread::scope(|s| {
                            for d in 0..ndev {
                                s.spawn(move || container.run_device(DeviceId(d), view));
                            }
                        });
                        if *reduce_finalize {
                            container.reduce_finalize();
                        }
                    }
                }
                NodeKind::Halo { exchange } => {
                    // lanes = [constraint | into | from], each `ndev` wide.
                    let mut lanes = std::mem::take(&mut self.lane_scratch);
                    lanes.clear();
                    lanes.resize(3 * ndev, t0);
                    for d in 0..ndev {
                        let c = parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max);
                        lanes[d] = c;
                        lanes[ndev + d] = c;
                        lanes[2 * ndev + d] = c;
                    }
                    match self.halo_policy {
                        HaloPolicy::ExplicitTransfers => {
                            for desc in exchange.descriptors() {
                                let earliest = lanes[desc.src.0].max(lanes[desc.dst.0]);
                                let lane = self.transfer_lane(desc.src, desc.dst);
                                let dur = self
                                    .backend
                                    .topology()
                                    .transfer_time(desc.src, desc.dst, desc.bytes);
                                // Occupy the physical link: peer copies on a
                                // PCIe box all contend for the host root
                                // complex; NVLink pairs are dedicated.
                                let res = self
                                    .backend
                                    .topology()
                                    .link_resources(desc.src, desc.dst)
                                    .to_vec();
                                let stream = StreamId::new(desc.src, lane);
                                let (s, e) = self.queue.enqueue_transfer(
                                    stream,
                                    earliest,
                                    dur,
                                    &res,
                                    &node.name,
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += e - s;
                                lanes[ndev + desc.dst.0] = lanes[ndev + desc.dst.0].max(e);
                                lanes[2 * ndev + desc.src.0] = lanes[2 * ndev + desc.src.0].max(e);
                            }
                        }
                        HaloPolicy::UnifiedMemory {
                            page_bytes,
                            fault_us,
                            bandwidth_gb_s,
                        } => {
                            // Pages migrate on first touch in the consuming
                            // kernel: the cost lands on the DESTINATION
                            // device's compute lane (lane 0), serializing
                            // with kernels — OCC cannot hide it.
                            for desc in exchange.descriptors() {
                                let earliest = lanes[desc.src.0].max(lanes[desc.dst.0]);
                                let pages = desc.bytes.div_ceil(page_bytes);
                                let dur = SimTime::from_us(
                                    pages as f64 * fault_us
                                        + desc.bytes as f64 / bandwidth_gb_s * 1e-3,
                                );
                                let stream = StreamId::new(desc.dst, 0);
                                let (_, e) = self.queue.enqueue_from(
                                    stream,
                                    earliest,
                                    dur,
                                    &format!("{}(um)", node.name),
                                    SpanKind::Transfer,
                                );
                                report.transfer_time += dur;
                                lanes[ndev + desc.dst.0] = lanes[ndev + desc.dst.0].max(e);
                                lanes[2 * ndev + desc.src.0] = lanes[2 * ndev + desc.src.0].max(e);
                            }
                        }
                    }
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = lanes[ndev + d].max(lanes[2 * ndev + d]);
                    }
                    self.lane_scratch = lanes;
                    if self.functional {
                        // Functionally, unified memory still ends up with
                        // coherent halos — the driver migrated the pages.
                        exchange.execute();
                    }
                }
                NodeKind::Host { container } => {
                    // Host steps synchronize against every parent on every
                    // device, pay a sync + host overhead, and gate everyone.
                    let sync = self.backend.device(DeviceId(0)).sync_overhead();
                    let earliest = parents
                        .iter()
                        .flat_map(|&p| (0..ndev).map(move |d| p * ndev + d))
                        .map(|i| ends[i])
                        .fold(t0, SimTime::max);
                    let stream = StreamId::new(DeviceId(0), self.host_lane());
                    let (_, e) =
                        self.queue
                            .enqueue_from(stream, earliest, sync, &node.name, SpanKind::Host);
                    report.host_time += sync;
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = e;
                    }
                    if self.functional {
                        container.run_host();
                    }
                }
                NodeKind::Collective { container, bytes } => {
                    // Per-device readiness: a device joins the collective as
                    // soon as ITS parents are done — no global barrier.
                    let mut earliest = std::mem::take(&mut self.lane_scratch);
                    earliest.clear();
                    earliest.extend((0..ndev).map(|d| {
                        parents
                            .iter()
                            .map(|&p| ends[p * ndev + d])
                            .fold(t0, SimTime::max)
                    }));
                    let lane = self.collective_lane();
                    let timing = self.engine.schedule(
                        &mut self.queue,
                        CollectiveKind::AllReduce,
                        *bytes,
                        &earliest,
                        lane,
                        &node.name,
                    );
                    self.lane_scratch = earliest;
                    report.collective_time += timing.busy;
                    for d in 0..ndev {
                        ends[node_id * ndev + d] = timing.done[d];
                    }
                    if self.functional {
                        // Canonical rank-order fold: bit-identical to the
                        // host-staged merge regardless of algorithm.
                        container.reduce_finalize();
                    }
                }
            }
        }

        self.ends_scratch = ends;

        // Align all streams at the end of one execution so iterations
        // measure cleanly (a zero-cost barrier on the virtual clock).
        let end = self.queue.sync_all();
        report.makespan = end - t0;
        if self.queue.trace().is_some() {
            let topo = self.backend.topology();
            let stats: Vec<(String, f64, u64)> = (0..topo.num_link_resources())
                .map(|r| {
                    (
                        topo.link_resource_name(r).to_string(),
                        self.queue.link_busy_time(r).as_us(),
                        self.queue.link_contention_events(r),
                    )
                })
                .collect();
            if let Some(trace) = self.queue.trace_mut() {
                for (name, busy, contended) in stats {
                    trace.set_counter(&format!("link:{name}:busy_us"), busy);
                    trace.set_counter(&format!("link:{name}:contended"), contended as f64);
                }
            }
        }
        report
    }

    /// Execute the plan `n` times, aggregating the report.
    ///
    /// When tracing, asserts (debug builds) that each iteration emits the
    /// same number of spans — the compiled schedule is replayed verbatim,
    /// so a drifting span count means the executor grew hidden state.
    pub fn execute_iters(&mut self, n: usize) -> ExecReport {
        let mut total = ExecReport::default();
        let mut spans_per_iter: Option<usize> = None;
        for _ in 0..n {
            let before = self.queue.trace().map(|t| t.spans().len());
            total.accumulate(self.execute());
            if let (Some(b), Some(t)) = (before, self.queue.trace()) {
                let delta = t.spans().len() - b;
                if let Some(expected) = spans_per_iter {
                    debug_assert_eq!(
                        expected, delta,
                        "trace span count must be stable across iterations"
                    );
                }
                spans_per_iter = Some(delta);
            }
        }
        total
    }
}
